//! Memoization of deterministic search results.
//!
//! A PODEM search outcome is a pure function of `(circuit, fault, search
//! options)` — nothing else. The mixed-scheme sweep exploits that: two
//! adjacent prefix checkpoints leave *mostly the same* hard faults open,
//! so their deterministic top-ups re-run mostly the same searches. A
//! [`CubeCache`] carried across [`TestGenerator`](crate::TestGenerator)
//! runs answers those repeats without searching again, leaving the
//! results bit-identical to a cold run.
//!
//! This only works because the X-fill seed of each search is derived from
//! the fault's *identity* ([`stable_fill_seed`]) rather than its position
//! in the per-checkpoint fault sub-list: a position-derived seed (the
//! historical behaviour) silently changes whenever any earlier fault
//! leaves the frontier, which keys every checkpoint's searches apart and
//! drives the cache hit rate to zero.

// determinism-vetted: the cache map is keyed lookup only, never iterated
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;

use bist_fault::Fault;
use bist_logicsim::{InjectedFault, Pattern};
use bist_netlist::NodeId;

use crate::cube::TestCube;
use crate::podem::PodemOptions;

/// A per-fault fill seed that depends only on what the fault *is* — never
/// on where it sits in the universe being targeted. SplitMix64 over the
/// fault's site, variant and polarity: consecutive faults still get
/// decorrelated fills (maximizing collateral detection during fault
/// dropping), but the seed survives arbitrary re-slicings of the fault
/// list, which is what makes cross-checkpoint memoization possible.
pub fn stable_fill_seed(fault: &Fault) -> u64 {
    let (tag, site, pin, value) = match *fault {
        Fault::StuckAt { site, pin, value } => (
            0u64,
            site.index() as u64,
            pin.map_or(0xFFu64, u64::from),
            u64::from(value),
        ),
        Fault::OpenSeries { site } => (1, site.index() as u64, 0xFF, 0),
        Fault::OpenParallel { site, pin } => (2, site.index() as u64, u64::from(pin), 0),
        Fault::OpenRise { site } => (3, site.index() as u64, 0xFF, 0),
        Fault::OpenFall { site } => (4, site.index() as u64, 0xFF, 0),
    };
    splitmix64((site << 12) ^ (pin << 4) ^ (value << 3) ^ tag)
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What one target's deterministic generation produced: the complete,
/// replayable outcome of its PODEM (and, for stuck-open pairs,
/// justification) searches. `calls` records how many searches a cold run
/// performs for this outcome, so replaying from cache keeps the
/// `atpg_calls` accounting identical to an uncached run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CachedGen {
    /// The searches produced a test unit (one pattern, or an ordered
    /// initialization/transition pair).
    Unit {
        /// Patterns in application order.
        patterns: Vec<Pattern>,
        /// Pre-fill cubes, parallel to `patterns`.
        cubes: Vec<TestCube>,
        /// Search count of a cold run.
        calls: usize,
    },
    /// The search space was exhausted: the fault is untestable.
    Redundant {
        /// Search count of a cold run.
        calls: usize,
    },
    /// The backtrack budget ran out first.
    Aborted {
        /// Search count of a cold run.
        calls: usize,
    },
}

/// The full key a search outcome depends on (beyond the circuit, which is
/// fixed per cache owner): the fault itself and the search options that
/// steered PODEM. Nothing positional, nothing per-checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    fault: Fault,
    fill_seed: u64,
    backtrack_limit: u32,
}

impl CacheKey {
    fn new(fault: Fault, options: PodemOptions) -> Self {
        CacheKey {
            fault,
            fill_seed: options.fill_seed,
            backtrack_limit: options.backtrack_limit,
        }
    }
}

/// The seed-independent result of one raw PODEM search: the outcome kind
/// and, for a successful search, the pre-fill cube. PODEM's decisions
/// never read `fill_seed` (it only fills don't-cares once the goal is
/// reached), so this is a pure function of the injected fault — or the
/// justification requirements — and the backtrack budget alone. Distinct
/// *faults* whose searches coincide (every series-open shares its `v2`
/// target and `v1` requirement with the same gate's rise- or fall-open;
/// a series-open's `v2` is literally a stem stuck-at) share one entry and
/// re-fill the cube with their own seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum RawSearch {
    /// The search reached its goal; the cube holds the committed bits.
    Test { cube: TestCube },
    /// The search space was exhausted.
    Redundant,
    /// The backtrack budget ran out first.
    Aborted,
}

/// A cache of per-fault deterministic search results, intended to be
/// carried across many [`TestGenerator`](crate::TestGenerator) runs on
/// the **same circuit** (a sweep of the mixed scheme's prefix ladder, a
/// batch of related ATPG jobs). Results answered from the cache are
/// bit-identical to fresh searches — memoization of a pure function — so
/// cached and cold flows produce the same sequences.
///
/// Besides the per-fault outcome map it memoizes *raw searches* (see
/// [`RawSearch`]): seed-independent cube-level results keyed by the
/// search target rather than the fault consuming it, so faults whose
/// deterministic targets coincide pay for one search between them.
#[derive(Debug, Default)]
pub struct CubeCache {
    #[allow(clippy::disallowed_types)]
    map: HashMap<CacheKey, CachedGen>,
    /// Raw detect searches keyed by `(target, backtrack_limit)`.
    // determinism-vetted: keyed lookup only, never iterated
    #[allow(clippy::disallowed_types)]
    raw_detect: HashMap<(InjectedFault, u32), RawSearch>,
    /// Raw justification searches keyed by `(requirements, backtrack_limit)`
    /// — requirement *order* steers the search, so it stays in the key.
    // determinism-vetted: keyed lookup only, never iterated
    #[allow(clippy::disallowed_types)]
    raw_justify: HashMap<(Vec<(NodeId, bool)>, u32), RawSearch>,
    hits: usize,
    misses: usize,
}

impl CubeCache {
    /// An empty cache.
    pub fn new() -> Self {
        CubeCache::default()
    }

    /// Number of memoized search outcomes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Searches answered from memory across the cache's lifetime (only
    /// targets whose result was actually consumed are counted — wasted
    /// speculative lookups are not).
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Searches that had to run cold.
    pub fn misses(&self) -> usize {
        self.misses
    }

    pub(crate) fn get(&self, fault: Fault, options: PodemOptions) -> Option<&CachedGen> {
        self.map.get(&CacheKey::new(fault, options))
    }

    pub(crate) fn insert(&mut self, fault: Fault, options: PodemOptions, generated: CachedGen) {
        self.map.insert(CacheKey::new(fault, options), generated);
    }

    pub(crate) fn count_hit(&mut self) {
        self.hits += 1;
    }

    pub(crate) fn count_miss(&mut self) {
        self.misses += 1;
    }

    pub(crate) fn raw_detect(
        &self,
        target: InjectedFault,
        backtrack_limit: u32,
    ) -> Option<&RawSearch> {
        self.raw_detect.get(&(target, backtrack_limit))
    }

    pub(crate) fn insert_raw_detect(
        &mut self,
        target: InjectedFault,
        backtrack_limit: u32,
        raw: RawSearch,
    ) {
        self.raw_detect.insert((target, backtrack_limit), raw);
    }

    pub(crate) fn raw_justify(
        &self,
        reqs: &[(NodeId, bool)],
        backtrack_limit: u32,
    ) -> Option<&RawSearch> {
        self.raw_justify.get(&(reqs.to_vec(), backtrack_limit))
    }

    pub(crate) fn insert_raw_justify(
        &mut self,
        reqs: Vec<(NodeId, bool)>,
        backtrack_limit: u32,
        raw: RawSearch,
    ) {
        self.raw_justify.insert((reqs, backtrack_limit), raw);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::NodeId;

    #[test]
    fn stable_seed_distinguishes_faults_and_ignores_position() {
        let a = Fault::StuckAt {
            site: NodeId::from_index(3),
            pin: None,
            value: false,
        };
        let b = Fault::StuckAt {
            site: NodeId::from_index(3),
            pin: None,
            value: true,
        };
        let c = Fault::OpenSeries {
            site: NodeId::from_index(3),
        };
        assert_ne!(stable_fill_seed(&a), stable_fill_seed(&b));
        assert_ne!(stable_fill_seed(&a), stable_fill_seed(&c));
        // determinism: same fault, same seed, every time
        assert_eq!(stable_fill_seed(&a), stable_fill_seed(&a));
    }

    #[test]
    fn cache_round_trip() {
        let mut cache = CubeCache::new();
        let fault = Fault::OpenRise {
            site: NodeId::from_index(7),
        };
        let opts = PodemOptions::default();
        assert!(cache.get(fault, opts).is_none());
        cache.insert(fault, opts, CachedGen::Redundant { calls: 1 });
        assert_eq!(
            cache.get(fault, opts),
            Some(&CachedGen::Redundant { calls: 1 })
        );
        // a different backtrack budget is a different search
        let tighter = PodemOptions {
            backtrack_limit: 5,
            ..opts
        };
        assert!(cache.get(fault, tighter).is_none());
        assert_eq!(cache.len(), 1);
    }
}
