use std::fmt;
use std::str::FromStr;

use bist_logicsim::Pattern;

/// A partially specified test pattern: the primary-input assignments a
/// PODEM search actually committed to, before don't-care fill.
///
/// Deterministic BIST architectures that *encode* rather than *replay*
/// test sets — most notably LFSR reseeding (\[Hel92\], reproduced in
/// `bist-baselines`) — exploit the fact that a typical ATPG cube specifies
/// only a handful of its bits: a degree-`k` LFSR seed can satisfy any cube
/// with at most `k` specified bits (with high probability for `k ≥ s+20`),
/// so the storage cost tracks *specified bits*, not pattern width.
///
/// # Example
///
/// ```
/// use bist_atpg::TestCube;
///
/// let cube: TestCube = "1X0XX".parse()?;
/// assert_eq!(cube.len(), 5);
/// assert_eq!(cube.num_specified(), 2);
/// assert_eq!(cube.get(0), Some(true));
/// assert_eq!(cube.get(1), None);
/// # Ok::<(), bist_atpg::ParseTestCubeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TestCube {
    bits: Vec<Option<bool>>,
}

impl TestCube {
    /// A cube of `len` bits, all unspecified.
    pub fn unspecified(len: usize) -> Self {
        TestCube {
            bits: vec![None; len],
        }
    }

    /// Builds a cube from explicit per-bit assignments.
    pub fn from_bits(bits: Vec<Option<bool>>) -> Self {
        TestCube { bits }
    }

    /// A fully specified cube carrying exactly the bits of `pattern`.
    pub fn from_pattern(pattern: &Pattern) -> Self {
        TestCube {
            bits: pattern.iter().map(Some).collect(),
        }
    }

    /// Number of bits (specified or not).
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True if the cube has zero bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The assignment of bit `i` (`None` = don't-care).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> Option<bool> {
        self.bits[i]
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, value: Option<bool>) {
        self.bits[i] = value;
    }

    /// How many bits are specified (non-X).
    pub fn num_specified(&self) -> usize {
        self.bits.iter().filter(|b| b.is_some()).count()
    }

    /// Iterates over `(position, value)` for the specified bits only.
    pub fn specified_bits(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.map(|v| (i, v)))
    }

    /// Iterates over all bit assignments.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Option<bool>>> {
        self.bits.iter().copied()
    }

    /// True if `pattern` agrees with every specified bit of the cube.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn matches(&self, pattern: &Pattern) -> bool {
        assert_eq!(
            pattern.len(),
            self.len(),
            "cube width {} vs pattern width {}",
            self.len(),
            pattern.len()
        );
        self.specified_bits().all(|(i, v)| pattern.get(i) == v)
    }

    /// Expands the cube to a full pattern, filling don't-cares with `fill`.
    pub fn fill_with(&self, fill: bool) -> Pattern {
        Pattern::from_fn(self.len(), |i| self.bits[i].unwrap_or(fill))
    }

    /// True if every bit of `self` is compatible with `other` (no position
    /// where both are specified with opposite values).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn compatible(&self, other: &TestCube) -> bool {
        assert_eq!(self.len(), other.len(), "cube width mismatch");
        self.bits
            .iter()
            .zip(&other.bits)
            .all(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            })
    }

    /// The intersection of two compatible cubes (union of their specified
    /// bits), or `None` if they conflict. Static compaction merges cubes
    /// this way.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn merge(&self, other: &TestCube) -> Option<TestCube> {
        if !self.compatible(other) {
            return None;
        }
        Some(TestCube {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a.or(*b))
                .collect(),
        })
    }
}

impl fmt::Display for TestCube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bits {
            f.write_str(match b {
                Some(false) => "0",
                Some(true) => "1",
                None => "X",
            })?;
        }
        Ok(())
    }
}

/// Error parsing a [`TestCube`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTestCubeError {
    /// Byte offset of the offending character.
    pub position: usize,
    /// The character that is not one of `0`, `1`, `x`, `X`.
    pub found: char,
}

impl fmt::Display for ParseTestCubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid cube character {:?} at position {} (expected 0, 1 or X)",
            self.found, self.position
        )
    }
}

impl std::error::Error for ParseTestCubeError {}

impl FromStr for TestCube {
    type Err = ParseTestCubeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut bits = Vec::with_capacity(s.len());
        for (position, found) in s.chars().enumerate() {
            bits.push(match found {
                '0' => Some(false),
                '1' => Some(true),
                'x' | 'X' => None,
                _ => return Err(ParseTestCubeError { position, found }),
            });
        }
        Ok(TestCube { bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        for text in ["", "0", "1", "X", "10X01XX1"] {
            let cube: TestCube = text.parse().unwrap();
            assert_eq!(cube.to_string(), text);
            assert_eq!(cube.len(), text.len());
        }
    }

    #[test]
    fn parse_accepts_lowercase_x() {
        let cube: TestCube = "1x0".parse().unwrap();
        assert_eq!(cube.to_string(), "1X0");
    }

    #[test]
    fn parse_rejects_junk() {
        let err = "102".parse::<TestCube>().unwrap_err();
        assert_eq!(err.position, 2);
        assert_eq!(err.found, '2');
        assert!(err.to_string().contains("position 2"));
    }

    #[test]
    fn specified_bits_and_counts() {
        let cube: TestCube = "1X0XX1".parse().unwrap();
        assert_eq!(cube.num_specified(), 3);
        let spec: Vec<_> = cube.specified_bits().collect();
        assert_eq!(spec, vec![(0, true), (2, false), (5, true)]);
    }

    #[test]
    fn matches_checks_only_specified_bits() {
        let cube: TestCube = "1X0".parse().unwrap();
        assert!(cube.matches(&Pattern::from_bits(&[true, false, false])));
        assert!(cube.matches(&Pattern::from_bits(&[true, true, false])));
        assert!(!cube.matches(&Pattern::from_bits(&[false, true, false])));
        assert!(!cube.matches(&Pattern::from_bits(&[true, true, true])));
    }

    #[test]
    fn fill_expands_dont_cares() {
        let cube: TestCube = "1X0X".parse().unwrap();
        assert_eq!(cube.fill_with(false).to_string(), "1000");
        assert_eq!(cube.fill_with(true).to_string(), "1101");
    }

    #[test]
    fn merge_unions_compatible_cubes() {
        let a: TestCube = "1XX0".parse().unwrap();
        let b: TestCube = "1X1X".parse().unwrap();
        let m = a.merge(&b).unwrap();
        assert_eq!(m.to_string(), "1X10");
        assert_eq!(a.merge(&a).unwrap(), a);
    }

    #[test]
    fn merge_rejects_conflicts() {
        let a: TestCube = "1X".parse().unwrap();
        let b: TestCube = "0X".parse().unwrap();
        assert!(a.merge(&b).is_none());
        assert!(!a.compatible(&b));
    }

    #[test]
    fn from_pattern_is_fully_specified() {
        let p = Pattern::from_bits(&[true, false, true]);
        let cube = TestCube::from_pattern(&p);
        assert_eq!(cube.num_specified(), 3);
        assert!(cube.matches(&p));
    }

    #[test]
    fn set_and_get() {
        let mut cube = TestCube::unspecified(4);
        assert_eq!(cube.num_specified(), 0);
        cube.set(2, Some(true));
        cube.set(3, Some(false));
        assert_eq!(cube.get(2), Some(true));
        assert_eq!(cube.to_string(), "XX10");
        cube.set(2, None);
        assert_eq!(cube.num_specified(), 1);
    }
}
