use bist_fault::{Fault, FaultList, FaultStatus};
use bist_faultsim::{CoverageReport, FaultSim};
use bist_logicsim::{InjectedFault, Pattern};
use bist_netlist::Circuit;

use crate::cube::TestCube;
use crate::podem::{justify_cube, podem_cube, CubeOutcome, PodemOptions};

/// Options for the full ATPG flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AtpgOptions {
    /// Search limits handed to every PODEM call.
    pub podem: PodemOptions,
    /// Skip reverse-order compaction (compaction is on by default).
    pub no_compaction: bool,
}

/// One entry of a deterministic test sequence: a single pattern for a
/// stuck-at target, or an ordered *(initialization, transition)* pair for a
/// stuck-open target. Units are atomic — compaction never splits a pair,
/// preserving the order attribute the LFSROM relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestUnit {
    /// The patterns, in application order (length 1 or 2).
    pub patterns: Vec<Pattern>,
    /// The pre-fill test cubes, parallel to `patterns`: the input bits the
    /// PODEM search actually required, everything else don't-care. Seed
    /// encoders (LFSR reseeding) consume these instead of the filled
    /// patterns.
    pub cubes: Vec<TestCube>,
    /// The fault this unit was generated for.
    pub target: Fault,
}

/// Outcome of a [`TestGenerator`] run.
#[derive(Debug, Clone)]
pub struct AtpgRun {
    /// The deterministic test units, in application order.
    pub units: Vec<TestUnit>,
    /// Coverage of the emitted sequence over the input fault universe.
    pub report: CoverageReport,
    /// Final status of every fault, parallel to the input universe.
    pub statuses: Vec<FaultStatus>,
    /// Number of PODEM searches performed (including justifications).
    pub atpg_calls: usize,
}

impl AtpgRun {
    /// The flat ordered pattern sequence (units concatenated).
    pub fn sequence(&self) -> Vec<Pattern> {
        self.units
            .iter()
            .flat_map(|u| u.patterns.iter().cloned())
            .collect()
    }

    /// Number of patterns in the flat sequence.
    pub fn num_patterns(&self) -> usize {
        self.units.iter().map(|u| u.patterns.len()).sum()
    }
}

/// The deterministic test generation flow: PODEM per open fault, pattern
/// pairs for stuck-open faults, collateral fault dropping by PPSFP
/// simulation, redundancy bookkeeping and reverse-order compaction.
///
/// This is the reproduction's stand-in for the paper's System Hilo runs —
/// both for the full deterministic test sets of Table 1/Figure 6 and for
/// the top-up sequences of the mixed scheme (Table 2/Figures 5/7/8).
#[derive(Debug)]
pub struct TestGenerator<'c> {
    circuit: &'c Circuit,
    faults: FaultList,
    options: AtpgOptions,
}

impl<'c> TestGenerator<'c> {
    /// Creates a generator targeting `faults` on `circuit`.
    pub fn new(circuit: &'c Circuit, faults: FaultList, options: AtpgOptions) -> Self {
        TestGenerator {
            circuit,
            faults,
            options,
        }
    }

    /// Runs the full flow and returns the ordered deterministic sequence
    /// with its coverage report.
    pub fn run(self) -> AtpgRun {
        let TestGenerator {
            circuit,
            faults,
            options,
        } = self;
        let mut session = FaultSim::new(circuit, faults.clone());
        let mut units: Vec<TestUnit> = Vec::new();
        let mut atpg_calls = 0usize;

        for fi in 0..faults.len() {
            if session.status_of(fi) != FaultStatus::Undetected {
                continue;
            }
            let fault = *faults.get(fi).expect("index in range");
            // vary the X-fill per target so consecutive units exercise
            // diverse input values (maximizing collateral detection)
            let podem_opts = PodemOptions {
                fill_seed: options
                    .podem
                    .fill_seed
                    .wrapping_add((fi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ..options.podem
            };
            let generated = match fault {
                Fault::StuckAt { site, pin, value } => {
                    atpg_calls += 1;
                    match podem_cube(
                        circuit,
                        InjectedFault {
                            site,
                            pin,
                            stuck: value,
                        },
                        podem_opts,
                    ) {
                        CubeOutcome::Test { pattern, cube } => Some((vec![pattern], vec![cube])),
                        CubeOutcome::Redundant => {
                            session.set_status(fi, FaultStatus::Redundant);
                            None
                        }
                        CubeOutcome::Aborted => {
                            session.set_status(fi, FaultStatus::Aborted);
                            None
                        }
                    }
                }
                open => {
                    let (v2_fault, v1_reqs) = open_fault_targets(circuit, open);
                    atpg_calls += 1;
                    match podem_cube(circuit, v2_fault, podem_opts) {
                        CubeOutcome::Test {
                            pattern: v2,
                            cube: v2_cube,
                        } => {
                            atpg_calls += 1;
                            match justify_cube(circuit, &v1_reqs, podem_opts) {
                                CubeOutcome::Test {
                                    pattern: v1,
                                    cube: v1_cube,
                                } => Some((vec![v1, v2], vec![v1_cube, v2_cube])),
                                CubeOutcome::Redundant => {
                                    session.set_status(fi, FaultStatus::Redundant);
                                    None
                                }
                                CubeOutcome::Aborted => {
                                    session.set_status(fi, FaultStatus::Aborted);
                                    None
                                }
                            }
                        }
                        CubeOutcome::Redundant => {
                            session.set_status(fi, FaultStatus::Redundant);
                            None
                        }
                        CubeOutcome::Aborted => {
                            session.set_status(fi, FaultStatus::Aborted);
                            None
                        }
                    }
                }
            };
            let Some((patterns, cubes)) = generated else {
                continue;
            };
            session.simulate(&patterns);
            if session.status_of(fi) == FaultStatus::Detected {
                units.push(TestUnit {
                    patterns,
                    cubes,
                    target: fault,
                });
            } else {
                // The search said "test" but grading disagrees — should be
                // unreachable; fail safe instead of looping.
                debug_assert!(
                    false,
                    "generated unit does not detect {}",
                    fault.describe(circuit)
                );
                session.set_status(fi, FaultStatus::Aborted);
            }
        }

        let baseline_detected = session.report().detected;
        if !options.no_compaction {
            units = compact(circuit, &faults, units, baseline_detected);
        }

        // authoritative final grading of the emitted sequence
        let mut final_session = FaultSim::new(circuit, faults.clone());
        for unit in &units {
            final_session.simulate(&unit.patterns);
        }
        let mut statuses = final_session.statuses().to_vec();
        for (fi, status) in statuses.iter_mut().enumerate() {
            if *status == FaultStatus::Undetected {
                if let s @ (FaultStatus::Redundant | FaultStatus::Aborted) = session.status_of(fi) {
                    *status = s
                }
            }
        }
        let report = CoverageReport::from_statuses(&statuses);
        AtpgRun {
            units,
            report,
            statuses,
            atpg_calls,
        }
    }
}

/// Maps a stuck-open fault to its transition-pattern PODEM target (`v2`)
/// and the good-value requirements of its initialization pattern (`v1`).
///
/// See `bist-fault`'s crate docs for the transistor-level reasoning; in
/// short, `v2` is a stuck-at test for the blocked transition's target
/// value, and `v1` justifies the complementary output level (for
/// parallel-opens: all inputs non-controlling).
fn open_fault_targets(
    circuit: &Circuit,
    fault: Fault,
) -> (InjectedFault, Vec<(bist_netlist::NodeId, bool)>) {
    match fault {
        Fault::OpenSeries { site } => {
            let kind = circuit.node(site).kind();
            let co = kind
                .controlled_output()
                .expect("series-open only on gates with controlling values");
            (
                InjectedFault {
                    site,
                    pin: None,
                    stuck: co,
                },
                vec![(site, co)],
            )
        }
        Fault::OpenParallel { site, pin } => {
            let kind = circuit.node(site).kind();
            let c = kind
                .controlling_value()
                .expect("parallel-open only on gates with controlling values");
            let reqs = circuit
                .node(site)
                .fanin()
                .iter()
                .map(|&f| (f, !c))
                .collect();
            (
                InjectedFault {
                    site,
                    pin: Some(pin),
                    stuck: !c,
                },
                reqs,
            )
        }
        Fault::OpenRise { site } => (
            InjectedFault {
                site,
                pin: None,
                stuck: false,
            },
            vec![(site, false)],
        ),
        Fault::OpenFall { site } => (
            InjectedFault {
                site,
                pin: None,
                stuck: true,
            },
            vec![(site, true)],
        ),
        Fault::StuckAt { .. } => unreachable!("stuck-at faults have single-pattern tests"),
    }
}

/// Reverse-order compaction: simulate units last-to-first with fault
/// dropping; units detecting nothing new in that order are discarded. The
/// compacted sequence is verified forward — if (through stuck-open
/// adjacency effects) it detects fewer faults than the original, the
/// original is kept.
fn compact(
    circuit: &Circuit,
    faults: &FaultList,
    units: Vec<TestUnit>,
    baseline_detected: usize,
) -> Vec<TestUnit> {
    let mut reverse_session = FaultSim::new(circuit, faults.clone());
    let mut keep = vec![false; units.len()];
    for (k, unit) in units.iter().enumerate().rev() {
        let newly = reverse_session.simulate(&unit.patterns);
        if newly > 0 {
            keep[k] = true;
        }
    }
    let compacted: Vec<TestUnit> = units
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(u, _)| u.clone())
        .collect();
    if compacted.len() == units.len() {
        return units;
    }
    let mut verify = FaultSim::new(circuit, faults.clone());
    for unit in &compacted {
        verify.simulate(&unit.patterns);
    }
    if verify.report().detected >= baseline_detected {
        compacted
    } else {
        units
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_full_flow_covers_everything() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::mixed_model(&c17);
        let total = faults.len();
        let run = TestGenerator::new(&c17, faults, AtpgOptions::default()).run();
        assert_eq!(run.report.total(), total);
        assert_eq!(run.report.undetected, 0);
        assert_eq!(run.report.aborted, 0);
        assert_eq!(run.report.redundant, 0, "c17 has no redundant faults");
        assert!(run.report.detected == total);
        // the paper quotes a 5-pattern deterministic set for c17 (stuck-at
        // + stuck-open); ours lands in the same small ballpark
        assert!(
            run.num_patterns() <= 16,
            "expected a compact set, got {}",
            run.num_patterns()
        );
    }

    #[test]
    fn compaction_shrinks_or_preserves() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::mixed_model(&c17);
        let uncompacted = TestGenerator::new(
            &c17,
            faults.clone(),
            AtpgOptions {
                no_compaction: true,
                ..AtpgOptions::default()
            },
        )
        .run();
        let compacted = TestGenerator::new(&c17, faults, AtpgOptions::default()).run();
        assert!(compacted.num_patterns() <= uncompacted.num_patterns());
        assert_eq!(compacted.report.detected, uncompacted.report.detected);
    }

    #[test]
    fn pairs_are_adjacent_and_ordered() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_open(&c17);
        let run = TestGenerator::new(&c17, faults, AtpgOptions::default()).run();
        assert_eq!(run.report.undetected, 0);
        for unit in &run.units {
            assert_eq!(unit.patterns.len(), 2, "stuck-open tests come in pairs");
            assert!(unit.target.is_stuck_open());
        }
    }

    #[test]
    fn redundant_faults_reported_on_planted_circuit() {
        use bist_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("red");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_input("c").unwrap();
        b.add_gate("t", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("r", GateKind::Or, &["a", "t"]).unwrap();
        b.add_gate("y", GateKind::Nand, &["r", "c"]).unwrap();
        b.mark_output("y").unwrap();
        let circuit = b.build().unwrap();
        let faults = FaultList::stuck_at_collapsed(&circuit);
        let run = TestGenerator::new(&circuit, faults, AtpgOptions::default()).run();
        assert!(run.report.redundant > 0, "planted redundancy not proven");
        assert_eq!(run.report.undetected, 0);
        assert_eq!(run.report.aborted, 0);
    }

    #[test]
    fn cubes_parallel_patterns_and_match() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        let run = TestGenerator::new(&c, faults, AtpgOptions::default()).run();
        assert!(!run.units.is_empty());
        let mut partially_specified = 0usize;
        for unit in &run.units {
            assert_eq!(unit.cubes.len(), unit.patterns.len());
            for (cube, pattern) in unit.cubes.iter().zip(&unit.patterns) {
                assert_eq!(cube.len(), pattern.len());
                assert!(
                    cube.matches(pattern),
                    "fill changed a committed bit for {}",
                    unit.target.describe(&c)
                );
                if cube.num_specified() < cube.len() {
                    partially_specified += 1;
                }
            }
        }
        // the whole point of cubes: most ATPG tests leave inputs free
        assert!(
            partially_specified > run.units.len() / 2,
            "expected mostly partial cubes, got {partially_specified}"
        );
    }

    #[test]
    fn sequence_flattening_matches_units() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::mixed_model(&c17);
        let run = TestGenerator::new(&c17, faults, AtpgOptions::default()).run();
        let seq = run.sequence();
        assert_eq!(seq.len(), run.num_patterns());
        let mut offset = 0;
        for unit in &run.units {
            for p in &unit.patterns {
                assert_eq!(&seq[offset], p);
                offset += 1;
            }
        }
    }

    #[test]
    fn c432_profile_flow_terminates_with_high_efficiency() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        let run = TestGenerator::new(&c, faults, AtpgOptions::default()).run();
        // the default 2000-backtrack budget leaves a few dozen aborts on
        // this profile (~96.8 % efficiency, zero undetected)
        assert!(
            run.report.efficiency_pct() > 96.0,
            "efficiency {:.2} too low ({} aborted, {} undetected)",
            run.report.efficiency_pct(),
            run.report.aborted,
            run.report.undetected
        );
        assert!(run.num_patterns() > 10);
    }
}
