use bist_fault::{Fault, FaultList, FaultStatus};
use bist_faultsim::{CoverageReport, FaultSim};
use bist_logicsim::{InjectedFault, Pattern};
use bist_netlist::{Circuit, NodeId};
use bist_par::Pool;

use crate::cache::{stable_fill_seed, CachedGen, CubeCache, RawSearch};
use crate::cube::TestCube;
use crate::podem::{fill_cube, justify_cube, podem_cube, CubeOutcome, PodemOptions};

/// One justification requirement: drive `node` to the given good value.
type NodeReq = (NodeId, bool);

/// Options for the full ATPG flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AtpgOptions {
    /// Search limits handed to every PODEM call.
    pub podem: PodemOptions,
    /// Skip reverse-order compaction (compaction is on by default).
    pub no_compaction: bool,
    /// Pool width for batched target generation (`0` = automatic:
    /// `BIST_THREADS` or the machine width). The emitted sequence is
    /// bit-identical at every width; `1` runs the historical serial loop.
    pub threads: usize,
}

/// One entry of a deterministic test sequence: a single pattern for a
/// stuck-at target, or an ordered *(initialization, transition)* pair for a
/// stuck-open target. Units are atomic — compaction never splits a pair,
/// preserving the order attribute the LFSROM relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestUnit {
    /// The patterns, in application order (length 1 or 2).
    pub patterns: Vec<Pattern>,
    /// The pre-fill test cubes, parallel to `patterns`: the input bits the
    /// PODEM search actually required, everything else don't-care. Seed
    /// encoders (LFSR reseeding) consume these instead of the filled
    /// patterns.
    pub cubes: Vec<TestCube>,
    /// The fault this unit was generated for.
    pub target: Fault,
}

/// Outcome of a [`TestGenerator`] run.
#[derive(Debug, Clone)]
pub struct AtpgRun {
    /// The deterministic test units, in application order.
    pub units: Vec<TestUnit>,
    /// Coverage of the emitted sequence over the input fault universe.
    pub report: CoverageReport,
    /// Final status of every fault, parallel to the input universe.
    pub statuses: Vec<FaultStatus>,
    /// Number of PODEM searches performed (including justifications).
    pub atpg_calls: usize,
}

impl AtpgRun {
    /// The flat ordered pattern sequence (units concatenated).
    pub fn sequence(&self) -> Vec<Pattern> {
        self.units
            .iter()
            .flat_map(|u| u.patterns.iter().cloned())
            .collect()
    }

    /// Number of patterns in the flat sequence.
    pub fn num_patterns(&self) -> usize {
        self.units.iter().map(|u| u.patterns.len()).sum()
    }
}

/// The deterministic test generation flow: PODEM per open fault, pattern
/// pairs for stuck-open faults, collateral fault dropping by PPSFP
/// simulation, redundancy bookkeeping and reverse-order compaction.
///
/// This is the reproduction's stand-in for the paper's System Hilo runs —
/// both for the full deterministic test sets of Table 1/Figure 6 and for
/// the top-up sequences of the mixed scheme (Table 2/Figures 5/7/8).
#[derive(Debug)]
pub struct TestGenerator<'c> {
    circuit: &'c Circuit,
    faults: FaultList,
    options: AtpgOptions,
}

impl<'c> TestGenerator<'c> {
    /// Creates a generator targeting `faults` on `circuit`.
    pub fn new(circuit: &'c Circuit, faults: FaultList, options: AtpgOptions) -> Self {
        TestGenerator {
            circuit,
            faults,
            options,
        }
    }

    /// Runs the full flow and returns the ordered deterministic sequence
    /// with its coverage report.
    pub fn run(self) -> AtpgRun {
        self.run_with_cache(&mut CubeCache::new())
    }

    /// [`TestGenerator::run`] backed by a search cache carried across
    /// runs on the same circuit (see [`CubeCache`]). Cached answers are
    /// memoized pure-function results, so the emitted sequence is
    /// bit-identical to a cold [`TestGenerator::run`].
    ///
    /// Targets are generated in speculative batches sharded across the
    /// pool (`options.threads`): up to `2 × threads` still-open faults
    /// have their searches run concurrently, then the batch is *replayed*
    /// serially in fault order — a speculative result whose target was
    /// meanwhile dropped by an earlier unit's collateral detection is
    /// discarded (and kept in the cache), so the unit list, statuses and
    /// `atpg_calls` match the serial engine exactly.
    pub fn run_with_cache(self, cache: &mut CubeCache) -> AtpgRun {
        let TestGenerator {
            circuit,
            faults,
            options,
        } = self;
        let pool = Pool::resolve(options.threads);
        let batch_cap = if pool.is_serial() {
            1
        } else {
            pool.threads() * 2
        };
        let mut session = FaultSim::new(circuit, faults.clone()).with_threads(options.threads);
        let mut units: Vec<TestUnit> = Vec::new();
        let mut atpg_calls = 0usize;

        let mut next = 0usize;
        while next < faults.len() {
            // the next batch of currently-open targets
            let mut batch: Vec<usize> = Vec::new();
            while next < faults.len() && batch.len() < batch_cap {
                if session.status_of(next) == FaultStatus::Undetected {
                    batch.push(next);
                }
                next += 1;
            }
            if batch.is_empty() {
                continue;
            }

            // run the missing searches, concurrently across the batch.
            // Searches run at the *raw* level (seed-independent, keyed by
            // the deterministic target rather than the consuming fault),
            // so batch members whose targets coincide — every series-open
            // with its gate's rise- or fall-open, stuck-open `v2`s with
            // stem stuck-ats — pay for one search between them, and each
            // consumer re-fills the shared cube with its own seed.
            let misses: Vec<(usize, Fault)> = batch
                .iter()
                .map(|&fi| (fi, *faults.get(fi).expect("index in range")))
                .filter(|(_, fault)| cache.get(*fault, target_options(options, fault)).is_none())
                .collect();

            // phase 1: the detect search every miss starts with (for a
            // stuck-open, its v2 transition target)
            let mut pending: Vec<(InjectedFault, PodemOptions)> = Vec::new();
            for &(_, fault) in &misses {
                let opts = target_options(options, &fault);
                let target = detect_target(circuit, &fault);
                if cache.raw_detect(target, opts.backtrack_limit).is_none()
                    && !pending.iter().any(|&(t, _)| t == target)
                {
                    pending.push((target, opts));
                }
            }
            let raws = pool.par_map(&pending, |&(target, opts)| {
                match podem_cube(circuit, target, opts) {
                    CubeOutcome::Test { cube, .. } => RawSearch::Test { cube },
                    CubeOutcome::Redundant => RawSearch::Redundant,
                    CubeOutcome::Aborted => RawSearch::Aborted,
                }
            });
            for ((target, opts), raw) in pending.into_iter().zip(raws) {
                cache.insert_raw_detect(target, opts.backtrack_limit, raw);
            }

            // phase 2: v1 justification for stuck-opens whose v2 search
            // produced a test (the only case the serial flow justifies)
            let mut pending: Vec<(Vec<NodeReq>, PodemOptions)> = Vec::new();
            for &(_, fault) in &misses {
                if matches!(fault, Fault::StuckAt { .. }) {
                    continue;
                }
                let opts = target_options(options, &fault);
                let (v2_target, v1_reqs) = open_fault_targets(circuit, fault);
                if !matches!(
                    cache.raw_detect(v2_target, opts.backtrack_limit),
                    Some(RawSearch::Test { .. })
                ) {
                    continue;
                }
                if cache.raw_justify(&v1_reqs, opts.backtrack_limit).is_none()
                    && !pending.iter().any(|(r, _)| *r == v1_reqs)
                {
                    pending.push((v1_reqs, opts));
                }
            }
            let raws = pool.par_map(&pending, |(reqs, opts)| {
                match justify_cube(circuit, reqs, *opts) {
                    CubeOutcome::Test { cube, .. } => RawSearch::Test { cube },
                    CubeOutcome::Redundant => RawSearch::Redundant,
                    CubeOutcome::Aborted => RawSearch::Aborted,
                }
            });
            for ((reqs, opts), raw) in pending.into_iter().zip(raws) {
                cache.insert_raw_justify(reqs, opts.backtrack_limit, raw);
            }

            // assemble each miss's per-fault outcome from the raw results
            let freshly_searched: Vec<usize> = misses.iter().map(|&(fi, _)| fi).collect();
            for (_, fault) in misses {
                let generated = assemble(circuit, cache, options, &fault);
                cache.insert(fault, target_options(options, &fault), generated);
            }

            // deterministic replay in fault order: exactly the serial flow,
            // with every search answered from the (now warm) cache
            for fi in batch {
                if session.status_of(fi) != FaultStatus::Undetected {
                    continue; // dropped by an earlier unit of this batch
                }
                let fault = *faults.get(fi).expect("index in range");
                let generated = cache
                    .get(fault, target_options(options, &fault))
                    .expect("batch member resolved above")
                    .clone();
                if freshly_searched.contains(&fi) {
                    cache.count_miss();
                } else {
                    cache.count_hit();
                }
                match generated {
                    CachedGen::Unit {
                        patterns,
                        cubes,
                        calls,
                    } => {
                        atpg_calls += calls;
                        session.simulate(&patterns);
                        if session.status_of(fi) == FaultStatus::Detected {
                            units.push(TestUnit {
                                patterns,
                                cubes,
                                target: fault,
                            });
                        } else {
                            // The search said "test" but grading disagrees —
                            // should be unreachable; fail safe instead of
                            // looping.
                            debug_assert!(
                                false,
                                "generated unit does not detect {}",
                                fault.describe(circuit)
                            );
                            session.set_status(fi, FaultStatus::Aborted);
                        }
                    }
                    CachedGen::Redundant { calls } => {
                        atpg_calls += calls;
                        session.set_status(fi, FaultStatus::Redundant);
                    }
                    CachedGen::Aborted { calls } => {
                        atpg_calls += calls;
                        session.set_status(fi, FaultStatus::Aborted);
                    }
                }
            }
        }

        let baseline_detected = session.report().detected;
        if !options.no_compaction {
            units = compact(circuit, &faults, units, baseline_detected, options.threads);
        }

        // authoritative final grading of the emitted sequence
        let mut final_session =
            FaultSim::new(circuit, faults.clone()).with_threads(options.threads);
        for unit in &units {
            final_session.simulate(&unit.patterns);
        }
        let mut statuses = final_session.statuses().to_vec();
        for (fi, status) in statuses.iter_mut().enumerate() {
            if *status == FaultStatus::Undetected {
                if let s @ (FaultStatus::Redundant | FaultStatus::Aborted) = session.status_of(fi) {
                    *status = s
                }
            }
        }
        let report = CoverageReport::from_statuses(&statuses);
        AtpgRun {
            units,
            report,
            statuses,
            atpg_calls,
        }
    }
}

/// The search options for one target: the flow's limits with the X-fill
/// seed tied to the fault's identity. Seeding by identity (rather than by
/// the target's position in the fault list, as the engine historically
/// did) keeps consecutive units' fills decorrelated — the property that
/// maximizes collateral detection — while making the search outcome
/// independent of which *other* faults happen to share the run, so a
/// [`CubeCache`] keyed on `(fault, options)` hits across re-slicings of
/// the universe.
fn target_options(options: AtpgOptions, fault: &Fault) -> PodemOptions {
    PodemOptions {
        fill_seed: options
            .podem
            .fill_seed
            .wrapping_add(stable_fill_seed(fault)),
        ..options.podem
    }
}

/// The stuck-at target a fault's deterministic generation starts with: a
/// stuck-at fault is its own target, a stuck-open contributes its `v2`
/// transition target.
fn detect_target(circuit: &Circuit, fault: &Fault) -> InjectedFault {
    match *fault {
        Fault::StuckAt { site, pin, value } => InjectedFault {
            site,
            pin,
            stuck: value,
        },
        open => open_fault_targets(circuit, open).0,
    }
}

/// Materializes one fault's replayable outcome from the raw search
/// results resolved for its batch: the same decision tree the historical
/// per-fault searches walked (`calls` counts *logical* searches so the
/// `atpg_calls` accounting is unchanged by raw-search sharing), with each
/// shared cube re-filled under this fault's own seed.
fn assemble(
    circuit: &Circuit,
    cache: &CubeCache,
    options: AtpgOptions,
    fault: &Fault,
) -> CachedGen {
    let opts = target_options(options, fault);
    let limit = opts.backtrack_limit;
    match *fault {
        Fault::StuckAt { .. } => {
            match cache
                .raw_detect(detect_target(circuit, fault), limit)
                .expect("detect target resolved in phase 1")
            {
                RawSearch::Test { cube } => CachedGen::Unit {
                    patterns: vec![fill_cube(cube, opts.fill_seed)],
                    cubes: vec![cube.clone()],
                    calls: 1,
                },
                RawSearch::Redundant => CachedGen::Redundant { calls: 1 },
                RawSearch::Aborted => CachedGen::Aborted { calls: 1 },
            }
        }
        open => {
            let (v2_target, v1_reqs) = open_fault_targets(circuit, open);
            match cache
                .raw_detect(v2_target, limit)
                .expect("v2 target resolved in phase 1")
            {
                RawSearch::Test { cube: v2_cube } => {
                    match cache
                        .raw_justify(&v1_reqs, limit)
                        .expect("v1 requirements resolved in phase 2")
                    {
                        RawSearch::Test { cube: v1_cube } => CachedGen::Unit {
                            patterns: vec![
                                fill_cube(v1_cube, opts.fill_seed),
                                fill_cube(v2_cube, opts.fill_seed),
                            ],
                            cubes: vec![v1_cube.clone(), v2_cube.clone()],
                            calls: 2,
                        },
                        RawSearch::Redundant => CachedGen::Redundant { calls: 2 },
                        RawSearch::Aborted => CachedGen::Aborted { calls: 2 },
                    }
                }
                RawSearch::Redundant => CachedGen::Redundant { calls: 1 },
                RawSearch::Aborted => CachedGen::Aborted { calls: 1 },
            }
        }
    }
}

/// Maps a stuck-open fault to its transition-pattern PODEM target (`v2`)
/// and the good-value requirements of its initialization pattern (`v1`).
///
/// See `bist-fault`'s crate docs for the transistor-level reasoning; in
/// short, `v2` is a stuck-at test for the blocked transition's target
/// value, and `v1` justifies the complementary output level (for
/// parallel-opens: all inputs non-controlling).
fn open_fault_targets(
    circuit: &Circuit,
    fault: Fault,
) -> (InjectedFault, Vec<(bist_netlist::NodeId, bool)>) {
    match fault {
        Fault::OpenSeries { site } => {
            let kind = circuit.node(site).kind();
            let co = kind
                .controlled_output()
                .expect("series-open only on gates with controlling values");
            (
                InjectedFault {
                    site,
                    pin: None,
                    stuck: co,
                },
                vec![(site, co)],
            )
        }
        Fault::OpenParallel { site, pin } => {
            let kind = circuit.node(site).kind();
            let c = kind
                .controlling_value()
                .expect("parallel-open only on gates with controlling values");
            let reqs = circuit
                .node(site)
                .fanin()
                .iter()
                .map(|&f| (f, !c))
                .collect();
            (
                InjectedFault {
                    site,
                    pin: Some(pin),
                    stuck: !c,
                },
                reqs,
            )
        }
        Fault::OpenRise { site } => (
            InjectedFault {
                site,
                pin: None,
                stuck: false,
            },
            vec![(site, false)],
        ),
        Fault::OpenFall { site } => (
            InjectedFault {
                site,
                pin: None,
                stuck: true,
            },
            vec![(site, true)],
        ),
        Fault::StuckAt { .. } => unreachable!("stuck-at faults have single-pattern tests"),
    }
}

/// Reverse-order compaction: simulate units last-to-first with fault
/// dropping; units detecting nothing new in that order are discarded. The
/// compacted sequence is verified forward — if (through stuck-open
/// adjacency effects) it detects fewer faults than the original, the
/// original is kept.
fn compact(
    circuit: &Circuit,
    faults: &FaultList,
    units: Vec<TestUnit>,
    baseline_detected: usize,
    threads: usize,
) -> Vec<TestUnit> {
    let mut reverse_session = FaultSim::new(circuit, faults.clone()).with_threads(threads);
    let mut keep = vec![false; units.len()];
    for (k, unit) in units.iter().enumerate().rev() {
        let newly = reverse_session.simulate(&unit.patterns);
        if newly > 0 {
            keep[k] = true;
        }
    }
    let compacted: Vec<TestUnit> = units
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(u, _)| u.clone())
        .collect();
    if compacted.len() == units.len() {
        return units;
    }
    let mut verify = FaultSim::new(circuit, faults.clone()).with_threads(threads);
    for unit in &compacted {
        verify.simulate(&unit.patterns);
    }
    if verify.report().detected >= baseline_detected {
        compacted
    } else {
        units
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_full_flow_covers_everything() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::mixed_model(&c17);
        let total = faults.len();
        let run = TestGenerator::new(&c17, faults, AtpgOptions::default()).run();
        assert_eq!(run.report.total(), total);
        assert_eq!(run.report.undetected, 0);
        assert_eq!(run.report.aborted, 0);
        assert_eq!(run.report.redundant, 0, "c17 has no redundant faults");
        assert!(run.report.detected == total);
        // the paper quotes a 5-pattern deterministic set for c17 (stuck-at
        // + stuck-open); ours lands in the same small ballpark
        assert!(
            run.num_patterns() <= 16,
            "expected a compact set, got {}",
            run.num_patterns()
        );
    }

    #[test]
    fn compaction_shrinks_or_preserves() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::mixed_model(&c17);
        let uncompacted = TestGenerator::new(
            &c17,
            faults.clone(),
            AtpgOptions {
                no_compaction: true,
                ..AtpgOptions::default()
            },
        )
        .run();
        let compacted = TestGenerator::new(&c17, faults, AtpgOptions::default()).run();
        assert!(compacted.num_patterns() <= uncompacted.num_patterns());
        assert_eq!(compacted.report.detected, uncompacted.report.detected);
    }

    #[test]
    fn pairs_are_adjacent_and_ordered() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_open(&c17);
        let run = TestGenerator::new(&c17, faults, AtpgOptions::default()).run();
        assert_eq!(run.report.undetected, 0);
        for unit in &run.units {
            assert_eq!(unit.patterns.len(), 2, "stuck-open tests come in pairs");
            assert!(unit.target.is_stuck_open());
        }
    }

    #[test]
    fn redundant_faults_reported_on_planted_circuit() {
        use bist_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("red");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_input("c").unwrap();
        b.add_gate("t", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("r", GateKind::Or, &["a", "t"]).unwrap();
        b.add_gate("y", GateKind::Nand, &["r", "c"]).unwrap();
        b.mark_output("y").unwrap();
        let circuit = b.build().unwrap();
        let faults = FaultList::stuck_at_collapsed(&circuit);
        let run = TestGenerator::new(&circuit, faults, AtpgOptions::default()).run();
        assert!(run.report.redundant > 0, "planted redundancy not proven");
        assert_eq!(run.report.undetected, 0);
        assert_eq!(run.report.aborted, 0);
    }

    #[test]
    fn cubes_parallel_patterns_and_match() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        let run = TestGenerator::new(&c, faults, AtpgOptions::default()).run();
        assert!(!run.units.is_empty());
        let mut partially_specified = 0usize;
        for unit in &run.units {
            assert_eq!(unit.cubes.len(), unit.patterns.len());
            for (cube, pattern) in unit.cubes.iter().zip(&unit.patterns) {
                assert_eq!(cube.len(), pattern.len());
                assert!(
                    cube.matches(pattern),
                    "fill changed a committed bit for {}",
                    unit.target.describe(&c)
                );
                if cube.num_specified() < cube.len() {
                    partially_specified += 1;
                }
            }
        }
        // the whole point of cubes: most ATPG tests leave inputs free
        assert!(
            partially_specified > run.units.len() / 2,
            "expected mostly partial cubes, got {partially_specified}"
        );
    }

    #[test]
    fn sequence_flattening_matches_units() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::mixed_model(&c17);
        let run = TestGenerator::new(&c17, faults, AtpgOptions::default()).run();
        let seq = run.sequence();
        assert_eq!(seq.len(), run.num_patterns());
        let mut offset = 0;
        for unit in &run.units {
            for p in &unit.patterns {
                assert_eq!(&seq[offset], p);
                offset += 1;
            }
        }
    }

    #[test]
    fn batched_generation_is_bit_identical_to_serial() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        let serial = TestGenerator::new(
            &c,
            faults.clone(),
            AtpgOptions {
                threads: 1,
                ..AtpgOptions::default()
            },
        )
        .run();
        for threads in [2, 4] {
            let batched = TestGenerator::new(
                &c,
                faults.clone(),
                AtpgOptions {
                    threads,
                    ..AtpgOptions::default()
                },
            )
            .run();
            assert_eq!(serial.units, batched.units, "threads={threads}");
            assert_eq!(serial.statuses, batched.statuses, "threads={threads}");
            assert_eq!(serial.atpg_calls, batched.atpg_calls, "threads={threads}");
        }
    }

    #[test]
    fn warm_cache_replays_bit_identically_and_hits() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        let options = AtpgOptions {
            threads: 1,
            ..AtpgOptions::default()
        };
        let mut cache = crate::CubeCache::new();
        let cold = TestGenerator::new(&c, faults.clone(), options).run_with_cache(&mut cache);
        assert_eq!(cache.hits(), 0, "first run has nothing to reuse");
        let searched = cache.misses();
        assert!(searched > 0);

        let warm = TestGenerator::new(&c, faults.clone(), options).run_with_cache(&mut cache);
        assert_eq!(cold.units, warm.units);
        assert_eq!(cold.statuses, warm.statuses);
        assert_eq!(cold.atpg_calls, warm.atpg_calls);
        assert_eq!(cache.hits(), searched, "every repeat answered from memory");

        // and the cache-free entry point agrees with both
        let fresh = TestGenerator::new(&c, faults, options).run();
        assert_eq!(fresh.units, cold.units);
    }

    #[test]
    fn fill_seed_is_positional_independent() {
        // drop the first fault from the universe: every surviving target
        // must generate exactly the same unit as in the full run, because
        // seeds are keyed on fault identity, not list position
        let c17 = bist_netlist::iscas85::c17();
        let faults = FaultList::stuck_at_collapsed(&c17);
        let options = AtpgOptions {
            no_compaction: true,
            threads: 1,
            ..AtpgOptions::default()
        };
        let full = TestGenerator::new(&c17, faults.clone(), options).run();
        let tail: FaultList = faults.iter().copied().skip(1).collect();
        let shifted = TestGenerator::new(&c17, tail, options).run();
        for unit in &shifted.units {
            if let Some(counterpart) = full.units.iter().find(|u| u.target == unit.target) {
                assert_eq!(
                    counterpart.patterns,
                    unit.patterns,
                    "re-slicing the universe changed the unit for {}",
                    unit.target.describe(&c17)
                );
            }
        }
    }

    #[test]
    fn c432_profile_flow_terminates_with_high_efficiency() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::mixed_model(&c);
        let run = TestGenerator::new(&c, faults, AtpgOptions::default()).run();
        // the default 2000-backtrack budget leaves a few dozen aborts on
        // this profile (~96.8 % efficiency, zero undetected)
        assert!(
            run.report.efficiency_pct() > 96.0,
            "efficiency {:.2} too low ({} aborted, {} undetected)",
            run.report.efficiency_pct(),
            run.report.aborted,
            run.report.undetected
        );
        assert!(run.num_patterns() > 10);
    }
}
