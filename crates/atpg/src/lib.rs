//! Deterministic test pattern generation (ATPG) for the LFSROM mixed-BIST
//! reproduction.
//!
//! The paper obtains its deterministic sequences from a commercial ATPG
//! (System Hilo). This crate replaces it with a from-scratch implementation
//! of the textbook **PODEM** algorithm (Goel 1981) over the five-valued
//! calculus of [`bist_logicsim::FiveValueSim`]:
//!
//! * [`podem`] — single stuck-at test generation with objective /
//!   backtrace / implication / backtracking, complete up to a backtrack
//!   limit: exhausting the search space **proves redundancy**, which is how
//!   the C3540 coverage ceiling (the paper's 96.7 %) is established.
//! * [`justify`] — the same search machinery aimed at plain value
//!   justification, used for the initialization half of two-pattern tests.
//! * [`TestGenerator`] — the full flow: walk the fault universe, generate a
//!   test (or pattern *pair* for stuck-open faults — initialization then
//!   transition, kept adjacent and ordered, which is why the paper's
//!   LFSROM preserves sequence order), fault-simulate for collateral drops,
//!   optionally compact by reverse-order simulation. Independent targets
//!   are searched in speculative parallel batches (`AtpgOptions::threads`
//!   / `BIST_THREADS`) and replayed in fault order, so the emitted
//!   sequence is bit-identical at every pool width.
//! * [`CubeCache`] — memoization of per-target search results across runs
//!   on the same circuit; a sweep's adjacent checkpoints re-target mostly
//!   the same hard faults, and the cache answers those repeats without
//!   searching again (bit-identically — the searches are pure).
//!
//! # Example
//!
//! ```
//! use bist_atpg::{AtpgOptions, TestGenerator};
//! use bist_fault::FaultList;
//!
//! let c17 = bist_netlist::iscas85::c17();
//! let faults = FaultList::mixed_model(&c17);
//! let run = TestGenerator::new(&c17, faults, AtpgOptions::default()).run();
//! assert_eq!(run.report.undetected, 0); // c17 is fully testable
//! assert!(run.sequence().len() >= run.units.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cube;
mod engine;
mod podem;

pub use cache::CubeCache;
pub use cube::{ParseTestCubeError, TestCube};
pub use engine::{AtpgOptions, AtpgRun, TestGenerator, TestUnit};
pub use podem::{
    justify, justify_cube, podem, podem_cube, CubeOutcome, PodemOptions, PodemOutcome,
};
