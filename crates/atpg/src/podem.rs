use bist_logicsim::{FiveValueSim, InjectedFault, Pattern, V5};
use bist_netlist::{Circuit, GateKind, NodeId};

use crate::cube::TestCube;

/// Tuning knobs for the PODEM search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodemOptions {
    /// Give up (returning [`PodemOutcome::Aborted`]) after this many
    /// backtracks. A search that terminates *without* hitting the limit has
    /// explored the full input space and proves redundancy.
    pub backtrack_limit: u32,
    /// Seed for filling unassigned inputs in emitted patterns. Random fill
    /// maximizes collateral fault detection during fault dropping (0-fill
    /// produces nearly identical patterns across targets); detection of the
    /// targeted fault is guaranteed for *any* fill.
    pub fill_seed: u64,
}

impl Default for PodemOptions {
    fn default() -> Self {
        PodemOptions {
            backtrack_limit: 2_000,
            fill_seed: 0x5eed_cafe,
        }
    }
}

/// Result of a PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test pattern was found (unassigned inputs filled with 0).
    Test(Pattern),
    /// The search space was exhausted: the fault is untestable
    /// (redundant) / the justification goal is unsatisfiable.
    Redundant,
    /// The backtrack limit was hit before a conclusion.
    Aborted,
}

impl PodemOutcome {
    /// The test pattern, if one was found.
    pub fn pattern(&self) -> Option<&Pattern> {
        match self {
            PodemOutcome::Test(p) => Some(p),
            _ => None,
        }
    }
}

/// Result of a PODEM run that also reports the pre-fill test cube.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CubeOutcome {
    /// A test was found.
    Test {
        /// The emitted pattern (cube plus don't-care fill).
        pattern: Pattern,
        /// The assignments the search committed to; every pattern matching
        /// this cube detects the target.
        cube: TestCube,
    },
    /// The search space was exhausted: the fault is untestable (redundant)
    /// / the justification goal is unsatisfiable.
    Redundant,
    /// The backtrack limit was hit before a conclusion.
    Aborted,
}

impl CubeOutcome {
    /// Drops the cube, keeping only the filled pattern.
    pub fn into_podem_outcome(self) -> PodemOutcome {
        match self {
            CubeOutcome::Test { pattern, .. } => PodemOutcome::Test(pattern),
            CubeOutcome::Redundant => PodemOutcome::Redundant,
            CubeOutcome::Aborted => PodemOutcome::Aborted,
        }
    }
}

/// Generates a test for a single stuck-at fault with the PODEM algorithm.
///
/// `fault` uses the injection addressing of
/// [`InjectedFault`]: `pin: None` for stem faults, `pin: Some(k)` for the
/// branch seen by fan-in `k` of node `site`.
///
/// # Example
///
/// ```
/// use bist_atpg::{podem, PodemOptions, PodemOutcome};
/// use bist_logicsim::InjectedFault;
///
/// let c17 = bist_netlist::iscas85::c17();
/// let g10 = c17.find("G10").unwrap();
/// let outcome = podem(
///     &c17,
///     InjectedFault { site: g10, pin: None, stuck: false },
///     PodemOptions::default(),
/// );
/// assert!(matches!(outcome, PodemOutcome::Test(_)));
/// ```
pub fn podem(circuit: &Circuit, fault: InjectedFault, options: PodemOptions) -> PodemOutcome {
    podem_cube(circuit, fault, options).into_podem_outcome()
}

/// Like [`podem`], but additionally reports the *test cube* — the input
/// assignments the search committed to, with every other input left as a
/// don't-care. Test-set-encoding architectures (LFSR reseeding) consume the
/// cube rather than the filled pattern.
///
/// # Example
///
/// ```
/// use bist_atpg::{podem_cube, CubeOutcome, PodemOptions};
/// use bist_logicsim::InjectedFault;
///
/// let c17 = bist_netlist::iscas85::c17();
/// let g10 = c17.find("G10").unwrap();
/// let fault = InjectedFault { site: g10, pin: None, stuck: false };
/// match podem_cube(&c17, fault, PodemOptions::default()) {
///     CubeOutcome::Test { pattern, cube } => {
///         assert!(cube.matches(&pattern));
///         assert!(cube.num_specified() <= pattern.len());
///     }
///     other => panic!("{other:?}"),
/// }
/// ```
pub fn podem_cube(circuit: &Circuit, fault: InjectedFault, options: PodemOptions) -> CubeOutcome {
    Search::new(circuit, Goal::Detect(fault), options).run()
}

/// Finds an input pattern giving every listed node its required good value
/// (no fault injected), or proves none exists. Used for the initialization
/// half of stuck-open pattern pairs.
///
/// # Example
///
/// ```
/// use bist_atpg::{justify, PodemOptions, PodemOutcome};
///
/// let c17 = bist_netlist::iscas85::c17();
/// let g22 = c17.find("G22").unwrap();
/// let outcome = justify(&c17, &[(g22, false)], PodemOptions::default());
/// assert!(matches!(outcome, PodemOutcome::Test(_)));
/// ```
pub fn justify(
    circuit: &Circuit,
    requirements: &[(NodeId, bool)],
    options: PodemOptions,
) -> PodemOutcome {
    justify_cube(circuit, requirements, options).into_podem_outcome()
}

/// Like [`justify`], but reports the pre-fill [`TestCube`]; see
/// [`podem_cube`].
pub fn justify_cube(
    circuit: &Circuit,
    requirements: &[(NodeId, bool)],
    options: PodemOptions,
) -> CubeOutcome {
    Search::new(circuit, Goal::Justify(requirements.to_vec()), options).run()
}

/// Applies the deterministic X-fill to a pre-fill cube: specified bits
/// pass through, don't-cares are filled by a sparse xorshift stream — 1s
/// with probability 1/8. Fully random fill maximizes collateral detection
/// but makes the deterministic sequence incompressible (the LFSROM
/// two-level network blows up); all-zero fill compresses best but
/// patterns barely differ. Sparse biased fill keeps both properties.
///
/// This is exactly the fill a search performs when it reaches its goal,
/// exposed separately because the search *decisions* (and therefore the
/// cube) never depend on `fill_seed` — so one search's cube can be
/// re-filled for any consumer whose seed differs.
pub fn fill_cube(cube: &TestCube, fill_seed: u64) -> Pattern {
    let mut fill = fill_seed | 1;
    Pattern::from_fn(cube.len(), |i| {
        cube.get(i).unwrap_or_else(|| {
            fill ^= fill << 13;
            fill ^= fill >> 7;
            fill ^= fill << 17;
            fill & 7 == 7
        })
    })
}

#[derive(Debug, Clone)]
enum Goal {
    Detect(InjectedFault),
    Justify(Vec<(NodeId, bool)>),
}

enum Objective {
    /// The goal already holds under the current assignment.
    Achieved,
    /// Next value to pursue: drive `node` (a node with unknown good value)
    /// to `value`.
    Drive(NodeId, bool),
    /// The goal is unreachable under the current partial assignment:
    /// backtrack.
    Stuck,
}

struct Search<'c> {
    circuit: &'c Circuit,
    sim: FiveValueSim<'c>,
    goal: Goal,
    options: PodemOptions,
    /// Decision stack: (input position, chosen value, alternative tried?).
    stack: Vec<(usize, bool, bool)>,
    backtracks: u32,
    /// Minimum distance (in gates) from each node to any primary output —
    /// the D-frontier selection heuristic.
    po_distance: Vec<u32>,
    /// Fan-out cone of the fault site (topological order); fault effects —
    /// and therefore the D-frontier and every X-path to an output — live
    /// entirely inside it, so per-iteration scans touch only the cone.
    cone: Vec<NodeId>,
    in_cone: Vec<bool>,
    /// Primary outputs inside the cone.
    cone_outputs: Vec<NodeId>,
    /// Scratch buffer for the X-path reachability sweep.
    reach: Vec<bool>,
}

impl<'c> Search<'c> {
    fn new(circuit: &'c Circuit, goal: Goal, options: PodemOptions) -> Self {
        let fault = match goal {
            Goal::Detect(f) => Some(f),
            Goal::Justify(_) => None,
        };
        let mut po_distance = vec![u32::MAX; circuit.num_nodes()];
        for &o in circuit.outputs() {
            po_distance[o.index()] = 0;
        }
        for &id in circuit.topo_order().iter().rev() {
            let d = po_distance[id.index()];
            if d == u32::MAX {
                continue;
            }
            for &f in circuit.node(id).fanin() {
                po_distance[f.index()] = po_distance[f.index()].min(d + 1);
            }
        }
        let cone = match fault {
            Some(f) => circuit.fanout_cone(f.site),
            None => Vec::new(),
        };
        let mut in_cone = vec![false; circuit.num_nodes()];
        for &id in &cone {
            in_cone[id.index()] = true;
        }
        let cone_outputs = cone
            .iter()
            .copied()
            .filter(|&id| circuit.is_output(id))
            .collect();
        let mut sim = FiveValueSim::new(circuit, fault);
        if let Goal::Justify(reqs) = &goal {
            // A justification search only ever reads the requirement
            // nodes, the fan-in chains its backtrace walks down from them,
            // and the raw input assignments — all inside the requirements'
            // fan-in cone. Scoping implication to that cone keeps every
            // value the search can observe bit-identical (the mask is
            // fan-in closed) while skipping the rest of each input's
            // fan-out cone, which on deep circuits is most of the netlist.
            let mut in_scope = vec![false; circuit.num_nodes()];
            let mut stack: Vec<NodeId> = Vec::new();
            for &(node, _) in reqs {
                if !in_scope[node.index()] {
                    in_scope[node.index()] = true;
                    stack.push(node);
                }
            }
            while let Some(id) = stack.pop() {
                for &f in circuit.node(id).fanin() {
                    if !in_scope[f.index()] {
                        in_scope[f.index()] = true;
                        stack.push(f);
                    }
                }
            }
            sim.restrict_scope(in_scope);
        }
        Search {
            circuit,
            sim,
            goal,
            options,
            stack: Vec::new(),
            backtracks: 0,
            po_distance,
            cone,
            in_cone,
            cone_outputs,
            reach: vec![false; circuit.num_nodes()],
        }
    }

    /// True if a fault effect has reached a primary output.
    fn fault_at_output(&self) -> bool {
        self.cone_outputs
            .iter()
            .any(|&o| self.sim.value(o).is_fault_effect())
    }

    /// The D-frontier, scanning only the fault cone.
    fn d_frontier(&self) -> Vec<NodeId> {
        let mut frontier = Vec::new();
        for &id in &self.cone {
            let node = self.circuit.node(id);
            if !node.kind().is_combinational() || !self.sim.value(id).is_unknown() {
                continue;
            }
            if node
                .fanin()
                .iter()
                .any(|f| self.sim.value(*f).is_fault_effect())
            {
                frontier.push(id);
            }
        }
        frontier
    }

    /// True if some frontier gate still has an X-path (through the cone)
    /// to a primary output. Cone-restricted version of
    /// [`FiveValueSim::x_path_to_output_exists`].
    fn x_path_exists(&mut self, frontier: &[NodeId]) -> bool {
        for &id in &self.cone {
            self.reach[id.index()] = false;
        }
        for &o in &self.cone_outputs {
            if self.sim.value(o).is_unknown() {
                self.reach[o.index()] = true;
            }
        }
        for &id in self.cone.iter().rev() {
            if !self.reach[id.index()] {
                continue;
            }
            for &f in self.circuit.node(id).fanin() {
                if self.in_cone[f.index()] && self.sim.value(f).is_unknown() {
                    self.reach[f.index()] = true;
                }
            }
        }
        frontier.iter().any(|g| {
            self.reach[g.index()]
                || self
                    .circuit
                    .fanout(*g)
                    .iter()
                    .any(|s| self.reach[s.index()])
        })
    }

    fn assign(&mut self, pi: usize, value: Option<bool>) {
        self.sim.set_input(pi, value);
        self.sim.imply_from_input(pi);
    }

    fn run(&mut self) -> CubeOutcome {
        self.sim.imply();
        loop {
            match self.objective() {
                Objective::Achieved => {
                    let width = self.circuit.inputs().len();
                    let cube = TestCube::from_bits((0..width).map(|i| self.sim.input(i)).collect());
                    let pattern = fill_cube(&cube, self.options.fill_seed);
                    return CubeOutcome::Test { pattern, cube };
                }
                Objective::Drive(node, value) => match self.backtrace(node, value) {
                    Some((pi, v)) => {
                        self.stack.push((pi, v, false));
                        self.assign(pi, Some(v));
                    }
                    None => {
                        if let Some(outcome) = self.backtrack() {
                            return outcome;
                        }
                    }
                },
                Objective::Stuck => {
                    if let Some(outcome) = self.backtrack() {
                        return outcome;
                    }
                }
            }
        }
    }

    /// Reverts decisions until an untried alternative exists. Returns
    /// `Some(outcome)` when the search ends.
    fn backtrack(&mut self) -> Option<CubeOutcome> {
        self.backtracks += 1;
        if self.backtracks > self.options.backtrack_limit {
            return Some(CubeOutcome::Aborted);
        }
        while let Some((pi, v, tried_both)) = self.stack.pop() {
            if tried_both {
                self.assign(pi, None);
            } else {
                self.stack.push((pi, !v, true));
                self.assign(pi, Some(!v));
                return None;
            }
        }
        Some(CubeOutcome::Redundant)
    }

    fn objective(&mut self) -> Objective {
        if let Goal::Detect(fault) = &self.goal {
            let fault = *fault;
            return self.detect_objective(fault);
        }
        let Goal::Justify(reqs) = &self.goal else {
            unreachable!("goals are Detect or Justify");
        };
        for &(node, value) in reqs {
            match self.sim.value(node).good() {
                None => return Objective::Drive(node, value),
                Some(v) if v != value => return Objective::Stuck,
                Some(_) => {}
            }
        }
        Objective::Achieved
    }

    fn detect_objective(&mut self, fault: InjectedFault) -> Objective {
        if self.fault_at_output() {
            return Objective::Achieved;
        }
        // --- activation phase ---
        match fault.pin {
            None => match self.sim.value(fault.site).good() {
                None => return Objective::Drive(fault.site, !fault.stuck),
                Some(v) if v == fault.stuck => return Objective::Stuck,
                Some(_) => {}
            },
            Some(p) => {
                let gate = self.circuit.node(fault.site);
                let driver = gate.fanin()[p as usize];
                match self.sim.value(driver).good() {
                    None => return Objective::Drive(driver, !fault.stuck),
                    Some(v) if v == fault.stuck => return Objective::Stuck,
                    Some(_) => {}
                }
                // The driver is activated; the difference must still pass
                // through the faulted gate itself.
                let site_value = self.sim.value(fault.site);
                if !site_value.is_fault_effect() {
                    if !site_value.is_unknown() {
                        return Objective::Stuck; // masked by a controlling side input
                    }
                    // drive the side inputs non-controlling
                    match gate.kind().controlling_value() {
                        Some(c) => {
                            for (k, f) in gate.fanin().iter().enumerate() {
                                if k == p as usize {
                                    continue;
                                }
                                match self.sim.value(*f).good() {
                                    None => return Objective::Drive(*f, !c),
                                    Some(v) if v == c => return Objective::Stuck,
                                    Some(_) => {}
                                }
                            }
                        }
                        None => {
                            // XOR family: any defined side value exposes the
                            // difference
                            for (k, f) in gate.fanin().iter().enumerate() {
                                if k == p as usize {
                                    continue;
                                }
                                if self.sim.value(*f).good().is_none() {
                                    return Objective::Drive(*f, false);
                                }
                            }
                        }
                    }
                    return Objective::Stuck;
                }
            }
        }
        // --- propagation phase ---
        let frontier = self.d_frontier();
        if frontier.is_empty() || !self.x_path_exists(&frontier) {
            return Objective::Stuck;
        }
        let gate = frontier
            .into_iter()
            .min_by_key(|g| self.po_distance[g.index()])
            .expect("frontier non-empty");
        let node = self.circuit.node(gate);
        let want = match node.kind().controlling_value() {
            Some(c) => !c,
            None => false,
        };
        for f in node.fanin() {
            if self.sim.value(*f) == V5::X {
                return Objective::Drive(*f, want);
            }
        }
        Objective::Stuck
    }

    /// Walks an objective back to an unassigned primary input through
    /// X-valued nodes, tracking inversion parity.
    fn backtrace(&self, mut node: NodeId, mut value: bool) -> Option<(usize, bool)> {
        loop {
            let n = self.circuit.node(node);
            match n.kind() {
                GateKind::Input => {
                    let pos = self
                        .circuit
                        .inputs()
                        .iter()
                        .position(|&pi| pi == node)
                        .expect("registered input");
                    return Some((pos, value));
                }
                GateKind::Dff | GateKind::Const0 | GateKind::Const1 => return None,
                kind => {
                    value ^= kind.is_inverting();
                    let next = n
                        .fanin()
                        .iter()
                        .find(|f| self.sim.value(**f).good().is_none())?;
                    node = *next;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_fault::{Fault, FaultList};
    use bist_faultsim::serial;

    fn as_injected(f: Fault) -> Option<InjectedFault> {
        match f {
            Fault::StuckAt { site, pin, value } => Some(InjectedFault {
                site,
                pin,
                stuck: value,
            }),
            _ => None,
        }
    }

    #[test]
    fn c17_all_collapsed_faults_get_tests() {
        let c17 = bist_netlist::iscas85::c17();
        for fault in FaultList::stuck_at_collapsed(&c17).iter() {
            let injected = as_injected(*fault).unwrap();
            match podem(&c17, injected, PodemOptions::default()) {
                PodemOutcome::Test(p) => {
                    assert!(
                        serial::detects(&c17, *fault, None, &p),
                        "pattern {p} does not detect {}",
                        fault.describe(&c17)
                    );
                }
                other => panic!("{}: {:?}", fault.describe(&c17), other),
            }
        }
    }

    #[test]
    fn proves_planted_redundancy() {
        use bist_netlist::CircuitBuilder;
        // r = OR(a, AND(a, b)): AND output stuck-at-0 is redundant.
        let mut b = CircuitBuilder::new("red");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("t", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("r", GateKind::Or, &["a", "t"]).unwrap();
        b.mark_output("r").unwrap();
        let c = b.build().unwrap();
        let t = c.find("t").unwrap();
        let outcome = podem(
            &c,
            InjectedFault {
                site: t,
                pin: None,
                stuck: false,
            },
            PodemOptions::default(),
        );
        assert_eq!(outcome, PodemOutcome::Redundant);
    }

    #[test]
    fn justify_reaches_both_output_values() {
        let c17 = bist_netlist::iscas85::c17();
        let g23 = c17.find("G23").unwrap();
        for v in [false, true] {
            match justify(&c17, &[(g23, v)], PodemOptions::default()) {
                PodemOutcome::Test(p) => {
                    let values = bist_logicsim::naive_eval(&c17, &p.to_bits());
                    assert_eq!(values[g23.index()], v);
                }
                other => panic!("justify {v}: {other:?}"),
            }
        }
    }

    #[test]
    fn justify_detects_unsatisfiable_goals() {
        use bist_netlist::CircuitBuilder;
        // y = AND(a, NOT(a)) is constant 0.
        let mut b = CircuitBuilder::new("const");
        b.add_input("a").unwrap();
        b.add_gate("na", GateKind::Not, &["a"]).unwrap();
        b.add_gate("y", GateKind::And, &["a", "na"]).unwrap();
        b.mark_output("y").unwrap();
        let c = b.build().unwrap();
        let y = c.find("y").unwrap();
        assert_eq!(
            justify(&c, &[(y, true)], PodemOptions::default()),
            PodemOutcome::Redundant
        );
        assert!(matches!(
            justify(&c, &[(y, false)], PodemOptions::default()),
            PodemOutcome::Test(_)
        ));
    }

    #[test]
    fn branch_faults_get_tests_on_c432() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = FaultList::stuck_at_collapsed(&c);
        let mut tested = 0;
        let mut failures = Vec::new();
        for fault in faults
            .iter()
            .filter(|f| matches!(f, Fault::StuckAt { pin: Some(_), .. }))
        {
            let injected = as_injected(*fault).unwrap();
            match podem(&c, injected, PodemOptions::default()) {
                PodemOutcome::Test(p) => {
                    tested += 1;
                    if !serial::detects(&c, *fault, None, &p) {
                        failures.push(fault.describe(&c));
                    }
                }
                PodemOutcome::Redundant | PodemOutcome::Aborted => {}
            }
            if tested > 40 {
                break; // keep the unit test quick
            }
        }
        assert!(tested > 10, "too few branch faults exercised");
        assert!(failures.is_empty(), "bad tests for {failures:?}");
    }

    #[test]
    fn tight_limit_aborts() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        // find some fault that needs > 0 backtracks under a 0 limit:
        // with limit 0 every first backtrack aborts, so any fault whose
        // initial greedy descent fails reports Aborted, never looping.
        let faults = FaultList::stuck_at_collapsed(&c);
        let opts = PodemOptions {
            backtrack_limit: 0,
            ..PodemOptions::default()
        };
        let mut saw_abort = false;
        for fault in faults.iter().take(200) {
            if let Some(injected) = as_injected(*fault) {
                if podem(&c, injected, opts) == PodemOutcome::Aborted {
                    saw_abort = true;
                    break;
                }
            }
        }
        assert!(saw_abort, "expected at least one abort with limit 0");
    }
}
