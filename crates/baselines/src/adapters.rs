use bist_lfsr::{Lfsr, Polynomial, ScanExpander};
use bist_logicsim::Pattern;
use bist_lfsrom::LfsromGenerator;
use bist_synth::{CellCount, CellKind};

use crate::tpg::TestPatternGenerator;

/// [`TestPatternGenerator`] face of the paper's LFSROM (the contribution
/// under comparison), so it can sit in the same bake-off table as the
/// baselines.
///
/// # Example
///
/// ```
/// use bist_baselines::{LfsromTpg, TestPatternGenerator};
/// use bist_lfsrom::LfsromGenerator;
/// use bist_logicsim::Pattern;
///
/// let seq: Vec<Pattern> =
///     ["00101", "11010", "00011"].iter().map(|s| s.parse()).collect::<Result<_, _>>()?;
/// let tpg = LfsromTpg::new(LfsromGenerator::synthesize(&seq)?);
/// assert_eq!(tpg.sequence(), seq);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct LfsromTpg {
    inner: LfsromGenerator,
}

impl LfsromTpg {
    /// Wraps a synthesized LFSROM.
    pub fn new(inner: LfsromGenerator) -> Self {
        LfsromTpg { inner }
    }

    /// The wrapped generator.
    pub fn inner(&self) -> &LfsromGenerator {
        &self.inner
    }

    /// Unwraps the generator.
    pub fn into_inner(self) -> LfsromGenerator {
        self.inner
    }
}

impl TestPatternGenerator for LfsromTpg {
    fn architecture(&self) -> &'static str {
        "lfsrom"
    }

    fn width(&self) -> usize {
        self.inner.width()
    }

    fn test_length(&self) -> usize {
        self.inner.sequence().len()
    }

    fn sequence(&self) -> Vec<Pattern> {
        self.inner.replay(self.inner.sequence().len())
    }

    fn cells(&self) -> CellCount {
        self.inner.cells()
    }
}

/// The paper's reference pseudo-random generator: a plain Fibonacci LFSR
/// expanded through the (shared) scan register. The cost charged is the
/// LFSR core alone — `k` flip-flops plus the feedback XOR tree — matching
/// the paper's 0.25 mm² accounting, which reuses the circuit's scan chain
/// for the expansion register.
#[derive(Debug, Clone)]
pub struct PlainLfsr {
    poly: Polynomial,
    seed: u64,
    width: usize,
    test_length: usize,
}

impl PlainLfsr {
    /// Creates a generator emitting `test_length` patterns of `width`
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `test_length` is 0, or if the seed is invalid
    /// for the polynomial (see [`Lfsr::fibonacci`]).
    pub fn new(poly: Polynomial, seed: u64, width: usize, test_length: usize) -> Self {
        assert!(width > 0, "pattern width must be positive");
        assert!(test_length > 0, "test length must be positive");
        let _check = Lfsr::fibonacci(poly, seed);
        PlainLfsr {
            poly,
            seed,
            width,
            test_length,
        }
    }

    /// The feedback polynomial.
    pub fn poly(&self) -> Polynomial {
        self.poly
    }
}

impl TestPatternGenerator for PlainLfsr {
    fn architecture(&self) -> &'static str {
        "lfsr"
    }

    fn width(&self) -> usize {
        self.width
    }

    fn test_length(&self) -> usize {
        self.test_length
    }

    fn sequence(&self) -> Vec<Pattern> {
        let lfsr = Lfsr::fibonacci(self.poly, self.seed);
        ScanExpander::new(lfsr, self.width).patterns(self.test_length)
    }

    fn cells(&self) -> CellCount {
        let mut cells = CellCount::new();
        cells.add(CellKind::Dff, self.poly.degree() as usize);
        cells.add(CellKind::Xor2, self.poly.taps().len().saturating_sub(1));
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_synth::AreaModel;

    #[test]
    fn plain_lfsr_matches_paper_anchor() {
        let tpg = PlainLfsr::new(bist_lfsr::paper_poly(), 1, 50, 100);
        let mm2 = tpg.area_mm2(&AreaModel::es2_1um());
        assert!(
            (0.2..0.3).contains(&mm2),
            "paper charges 0.25 mm², got {mm2:.3}"
        );
        assert_eq!(tpg.sequence().len(), 100);
    }

    #[test]
    fn plain_lfsr_sequence_matches_expander() {
        let a = PlainLfsr::new(bist_lfsr::paper_poly(), 1, 23, 40).sequence();
        let b = bist_lfsr::pseudo_random_patterns(bist_lfsr::paper_poly(), 23, 40);
        assert_eq!(a, b);
    }

    #[test]
    fn lfsrom_adapter_round_trips() {
        let seq: Vec<Pattern> = ["0110", "1001", "1111", "0000"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let tpg = LfsromTpg::new(LfsromGenerator::synthesize(&seq).unwrap());
        assert_eq!(tpg.architecture(), "lfsrom");
        assert_eq!(tpg.test_length(), 4);
        assert_eq!(tpg.sequence(), seq);
        assert!(tpg.cells().get(CellKind::Dff) >= 4);
        assert_eq!(tpg.inner().width(), 4);
    }
}
