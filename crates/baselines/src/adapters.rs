use bist_lfsrom::LfsromGenerator;
use bist_logicsim::Pattern;
use bist_netlist::Circuit;
use bist_synth::CellCount;
use bist_tpg::Tpg;

/// Back-compat re-export: the plain-LFSR generator now lives in
/// [`bist_tpg`] next to the trait it implements.
pub use bist_tpg::PlainLfsr;

/// [`Tpg`] wrapper around the paper's LFSROM, kept for compatibility
/// with code written before [`LfsromGenerator`] implemented [`Tpg`]
/// directly — new code should use the generator itself.
///
/// # Example
///
/// ```
/// use bist_baselines::{LfsromTpg, Tpg};
/// use bist_lfsrom::LfsromGenerator;
/// use bist_logicsim::Pattern;
///
/// let seq: Vec<Pattern> =
///     ["00101", "11010", "00011"].iter().map(|s| s.parse()).collect::<Result<_, _>>()?;
/// let tpg = LfsromTpg::new(LfsromGenerator::synthesize(&seq)?);
/// assert_eq!(tpg.sequence(), seq);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct LfsromTpg {
    inner: LfsromGenerator,
}

impl LfsromTpg {
    /// Wraps a synthesized LFSROM.
    pub fn new(inner: LfsromGenerator) -> Self {
        LfsromTpg { inner }
    }

    /// The wrapped generator.
    pub fn inner(&self) -> &LfsromGenerator {
        &self.inner
    }

    /// Unwraps the generator.
    pub fn into_inner(self) -> LfsromGenerator {
        self.inner
    }
}

impl Tpg for LfsromTpg {
    fn architecture(&self) -> &'static str {
        Tpg::architecture(&self.inner)
    }

    fn width(&self) -> usize {
        Tpg::width(&self.inner)
    }

    fn test_length(&self) -> usize {
        Tpg::test_length(&self.inner)
    }

    fn sequence(&self) -> Vec<Pattern> {
        Tpg::sequence(&self.inner)
    }

    fn cells(&self) -> CellCount {
        Tpg::cells(&self.inner)
    }

    fn netlist(&self) -> Option<&Circuit> {
        Tpg::netlist(&self.inner)
    }

    fn replay_netlist(&self) -> Option<Vec<Pattern>> {
        Tpg::replay_netlist(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_synth::{AreaModel, CellKind};

    #[test]
    fn plain_lfsr_matches_paper_anchor() {
        let tpg = PlainLfsr::new(bist_lfsr::paper_poly(), 1, 50, 100);
        let mm2 = tpg.area_mm2(&AreaModel::es2_1um());
        assert!(
            (0.2..0.3).contains(&mm2),
            "paper charges 0.25 mm², got {mm2:.3}"
        );
        assert_eq!(tpg.sequence().len(), 100);
    }

    #[test]
    fn plain_lfsr_sequence_matches_expander() {
        let a = PlainLfsr::new(bist_lfsr::paper_poly(), 1, 23, 40).sequence();
        let b = bist_lfsr::pseudo_random_patterns(bist_lfsr::paper_poly(), 23, 40);
        assert_eq!(a, b);
    }

    #[test]
    fn lfsrom_adapter_round_trips() {
        let seq: Vec<Pattern> = ["0110", "1001", "1111", "0000"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let tpg = LfsromTpg::new(LfsromGenerator::synthesize(&seq).unwrap());
        assert_eq!(tpg.architecture(), "lfsrom");
        assert_eq!(tpg.test_length(), 4);
        assert_eq!(tpg.sequence(), seq);
        assert!(tpg.cells().get(CellKind::Dff) >= 4);
        assert_eq!(tpg.inner().width(), 4);
        // the adapter and the direct impl agree
        assert_eq!(tpg.sequence(), Tpg::sequence(tpg.inner()));
    }
}
