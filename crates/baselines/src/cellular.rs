use std::fmt;

use bist_logicsim::Pattern;
use bist_synth::{CellCount, CellKind};

use bist_tpg::Tpg;

/// The update rule of one cell in a hybrid one-dimensional cellular
/// automaton (\[Ser90\], \[Van91\]; the paper's §1/§2.2 "cellular automata"
/// alternative to the LFSR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaRule {
    /// Wolfram rule 90: `next = left XOR right`.
    Rule90,
    /// Wolfram rule 150: `next = left XOR self XOR right`.
    Rule150,
}

impl fmt::Display for CaRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CaRule::Rule90 => "90",
            CaRule::Rule150 => "150",
        })
    }
}

/// A hybrid rule-90/150 one-dimensional cellular automaton register with
/// null boundary conditions, plus its BIST pattern-expansion harness.
///
/// CA registers were proposed as LFSR replacements because their patterns
/// carry less cross-bit correlation (no pure shift between neighbouring
/// cells); the price is one or two extra XOR2 per cell. With the right
/// rule vector a hybrid 90/150 CA is *maximum length* — its state walks
/// all `2^n − 1` non-zero values — which [`CaRegister::find_max_length`]
/// searches for by direct period measurement.
///
/// # Example
///
/// ```
/// use bist_baselines::{CaRegister, CaRule};
///
/// // the classic <90,150,90,150> hybrid of length 4 is maximum-length
/// let rules = vec![CaRule::Rule90, CaRule::Rule150, CaRule::Rule90, CaRule::Rule150];
/// let ca = CaRegister::new(rules, 0b0001);
/// assert_eq!(ca.period(), 15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaRegister {
    rules: Vec<CaRule>,
    state: u64,
    seed: u64,
}

impl CaRegister {
    /// Creates a CA with one rule per cell and the given non-zero seed.
    ///
    /// # Panics
    ///
    /// Panics if `rules` is empty or longer than 63 cells, or if `seed` is
    /// zero (the all-zero state is a fixed point) or wider than the
    /// register.
    pub fn new(rules: Vec<CaRule>, seed: u64) -> Self {
        let n = rules.len();
        assert!((1..=63).contains(&n), "unsupported CA length {n}");
        assert_ne!(seed, 0, "all-zero seed is a fixed point");
        assert!(seed < (1u64 << n), "seed 0x{seed:x} wider than {n} cells");
        CaRegister {
            rules,
            state: seed,
            seed,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Always false — a CA has at least one cell.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The per-cell rule vector.
    pub fn rules(&self) -> &[CaRule] {
        &self.rules
    }

    /// The current state (bit `i` = cell `i`).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Returns to the seed state.
    pub fn reset(&mut self) {
        self.state = self.seed;
    }

    /// Advances one clock; returns the new value of cell 0 (the cell BIST
    /// harnesses tap as the serial stream).
    pub fn step(&mut self) -> bool {
        let n = self.rules.len();
        let s = self.state;
        let mut next = 0u64;
        for (i, rule) in self.rules.iter().enumerate() {
            let left = if i == 0 {
                false
            } else {
                (s >> (i - 1)) & 1 == 1
            };
            let right = if i + 1 == n {
                false
            } else {
                (s >> (i + 1)) & 1 == 1
            };
            let own = (s >> i) & 1 == 1;
            let v = match rule {
                CaRule::Rule90 => left ^ right,
                CaRule::Rule150 => left ^ own ^ right,
            };
            if v {
                next |= 1 << i;
            }
        }
        self.state = next;
        next & 1 == 1
    }

    /// Measures the state period by stepping until the seed recurs —
    /// `O(period)`, intended for construction-time checks at modest sizes.
    pub fn period(&self) -> u64 {
        let mut probe = self.clone();
        probe.reset();
        let mut count = 0u64;
        loop {
            probe.step();
            count += 1;
            if probe.state == probe.seed {
                return count;
            }
            if count > (1u64 << (self.len() as u32 + 1)) {
                // longer than any cycle through 2^n states: the seed left
                // its own cycle (possible for non-maximal rule vectors that
                // are not permutations... which 90/150 hybrids always are,
                // but keep the probe total anyway)
                return count;
            }
        }
    }

    /// The characteristic polynomial of the CA's (tridiagonal) transition
    /// matrix over GF(2), computed with the classical continuant
    /// recurrence `Δ_k = (x + d_k)·Δ_{k-1} + Δ_{k-2}` where `d_k` is 1 for
    /// a rule-150 cell. The CA is maximum-length exactly when this
    /// polynomial is primitive — the same criterion as for an LFSR, which
    /// is why hybrid 90/150 registers are drop-in LFSR replacements.
    pub fn characteristic_poly(&self) -> bist_lfsr::Polynomial {
        let mut prev = 1u64; // Δ_0
        let mut cur = 2u64 | u64::from(self.rules[0] == CaRule::Rule150); // Δ_1 = x + d_1
        for rule in &self.rules[1..] {
            let d = u64::from(*rule == CaRule::Rule150);
            let next = (cur << 1) ^ (cur * d) ^ prev;
            prev = cur;
            cur = next;
        }
        bist_lfsr::Polynomial::from_mask(cur)
    }

    /// Searches rule vectors (by enumeration) for a maximum-length hybrid
    /// of `n` cells — one whose state walks all `2^n − 1` non-zero values.
    /// Maximality is decided by primitivity of the characteristic
    /// polynomial, so the search is fast even for wide registers. Returns
    /// `None` when `tries` vectors were tested without success — for most
    /// register lengths a maximum-length 90/150 hybrid exists and is found
    /// within a few dozen tries.
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside `1..=63`.
    pub fn find_max_length(n: usize, tries: usize) -> Option<CaRegister> {
        assert!((1..=63).contains(&n), "register length out of range");
        let cap = if n >= 63 {
            usize::MAX
        } else {
            tries.min(1 << n)
        };
        for code in 0..cap.min(tries) {
            let rules: Vec<CaRule> = (0..n)
                .map(|i| {
                    if (code >> i) & 1 == 1 {
                        CaRule::Rule150
                    } else {
                        CaRule::Rule90
                    }
                })
                .collect();
            let ca = CaRegister::new(rules, 1);
            if ca.characteristic_poly().is_primitive() {
                return Some(ca);
            }
        }
        None
    }
}

/// A cellular-automaton BIST pattern generator: a [`CaRegister`] whose
/// cell-0 stream is shifted through a `width`-bit scan chain, one pattern
/// per `width` clocks — the same shared-register arrangement the paper
/// assumes for its wide-circuit LFSR (\[Hel92\] note, §4.2).
#[derive(Debug, Clone)]
pub struct CaTpg {
    ca: CaRegister,
    chain: Vec<bool>,
    width: usize,
    test_length: usize,
}

impl CaTpg {
    /// Creates a generator emitting `test_length` patterns of `width` bits
    /// from `ca`'s serial stream.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `test_length` is 0.
    pub fn new(ca: CaRegister, width: usize, test_length: usize) -> Self {
        assert!(width > 0, "pattern width must be positive");
        assert!(test_length > 0, "test length must be positive");
        CaTpg {
            ca,
            chain: vec![false; width],
            width,
            test_length,
        }
    }

    /// The underlying CA register.
    pub fn ca(&self) -> &CaRegister {
        &self.ca
    }

    /// Advances `width` clocks and returns the resulting pattern.
    pub fn next_pattern(&mut self) -> Pattern {
        for _ in 0..self.width {
            let bit = self.ca.step();
            self.chain.rotate_right(1);
            self.chain[0] = bit;
        }
        Pattern::from_fn(self.width, |i| self.chain[self.width - 1 - i])
    }
}

impl Tpg for CaTpg {
    fn architecture(&self) -> &'static str {
        "cellular-automaton"
    }

    fn width(&self) -> usize {
        self.width
    }

    fn test_length(&self) -> usize {
        self.test_length
    }

    fn sequence(&self) -> Vec<Pattern> {
        let mut probe = CaTpg {
            ca: {
                let mut ca = self.ca.clone();
                ca.reset();
                ca
            },
            chain: vec![false; self.width],
            width: self.width,
            test_length: self.test_length,
        };
        (0..self.test_length)
            .map(|_| probe.next_pattern())
            .collect()
    }

    /// CA cells (DFF + one XOR2 for rule 90, two for rule 150; boundary
    /// cells save one XOR2) plus the scan-chain flip-flops beyond the CA
    /// register.
    fn cells(&self) -> CellCount {
        let n = self.ca.len();
        let mut cells = CellCount::new();
        cells.add(CellKind::Dff, n.max(self.width));
        for (i, rule) in self.ca.rules().iter().enumerate() {
            let boundary = i == 0 || i + 1 == n;
            let xors = match rule {
                CaRule::Rule90 => usize::from(!boundary),
                CaRule::Rule150 => 2 - usize::from(boundary),
            };
            cells.add(CellKind::Xor2, xors);
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_synth::AreaModel;

    #[test]
    fn rule_semantics_hand_checked() {
        // 3 cells, all rule 90, state 010 -> left/right neighbours of the
        // middle are 0... cell0 = right(=1), cell1 = left^right = 0^0,
        // cell2 = left(=1)
        let mut ca = CaRegister::new(vec![CaRule::Rule90; 3], 0b010);
        ca.step();
        assert_eq!(ca.state(), 0b101);
    }

    #[test]
    fn max_length_hybrids_exist_for_small_sizes() {
        for n in [3usize, 4, 5, 6, 8, 10, 12] {
            let ca = CaRegister::find_max_length(n, 4096)
                .unwrap_or_else(|| panic!("no max-length hybrid of {n} cells found"));
            assert_eq!(ca.period(), (1u64 << n) - 1, "n={n}");
        }
    }

    #[test]
    fn characteristic_poly_criterion_matches_measured_period() {
        // exhaustively over all 5-cell hybrids: primitivity of the
        // characteristic polynomial <=> measured period 2^5 - 1
        for code in 0..32u64 {
            let rules: Vec<CaRule> = (0..5)
                .map(|i| {
                    if (code >> i) & 1 == 1 {
                        CaRule::Rule150
                    } else {
                        CaRule::Rule90
                    }
                })
                .collect();
            let ca = CaRegister::new(rules, 1);
            let by_poly = ca.characteristic_poly().is_primitive();
            let by_period = ca.period() == 31;
            assert_eq!(by_poly, by_period, "rule code {code:05b}");
        }
    }

    #[test]
    fn pure_rule90_is_not_maximal_for_4_cells() {
        let ca = CaRegister::new(vec![CaRule::Rule90; 4], 1);
        assert_ne!(ca.period(), 15);
    }

    #[test]
    fn patterns_look_random() {
        let ca = CaRegister::find_max_length(16, 4096).unwrap();
        let mut tpg = CaTpg::new(ca, 40, 500);
        let ones: usize = (0..500).map(|_| tpg.next_pattern().count_ones()).sum();
        let density = ones as f64 / (500.0 * 40.0);
        assert!((0.45..0.55).contains(&density), "density {density}");
    }

    #[test]
    fn sequence_is_reproducible_and_sized() {
        let ca = CaRegister::find_max_length(8, 1024).unwrap();
        let tpg = CaTpg::new(ca, 12, 30);
        let a = tpg.sequence();
        let b = tpg.sequence();
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        assert!(a.iter().all(|p| p.len() == 12));
    }

    #[test]
    fn ca_costs_slightly_more_than_an_lfsr() {
        // same register length: the CA pays more XOR2 than the 3-tap LFSR
        let ca = CaRegister::find_max_length(16, 4096).unwrap();
        let tpg = CaTpg::new(ca, 16, 100);
        let ca_cells = tpg.cells();
        assert_eq!(ca_cells.get(CellKind::Dff), 16);
        assert!(
            ca_cells.get(CellKind::Xor2) > 3,
            "hybrid CA needs more XOR than the paper's LFSR-16: {ca_cells}"
        );
        let model = AreaModel::es2_1um();
        let mm2 = model.area_mm2(&ca_cells);
        assert!((0.2..0.5).contains(&mm2), "CA-16 area {mm2:.3} mm²");
    }

    #[test]
    fn reset_and_state_accessors() {
        let mut ca = CaRegister::new(vec![CaRule::Rule150; 5], 0b10011);
        let s0 = ca.state();
        ca.step();
        assert_ne!(ca.state(), s0);
        ca.reset();
        assert_eq!(ca.state(), s0);
        assert_eq!(ca.len(), 5);
        assert_eq!(ca.rules().len(), 5);
    }

    #[test]
    #[should_panic(expected = "all-zero seed")]
    fn zero_seed_rejected() {
        CaRegister::new(vec![CaRule::Rule90; 4], 0);
    }
}
