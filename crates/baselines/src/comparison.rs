use std::fmt;

use bist_atpg::{AtpgOptions, TestGenerator};
use bist_fault::FaultList;
use bist_faultsim::FaultSim;
use bist_lfsrom::LfsromGenerator;
use bist_logicsim::Pattern;
use bist_netlist::Circuit;
use bist_synth::AreaModel;

use bist_tpg::{PlainLfsr, Tpg};

use crate::cellular::{CaRegister, CaTpg};
use crate::counter_pla::CounterPla;
use crate::reseed::Reseeding;
use crate::rom_counter::RomCounter;
use crate::weighted::{weights_from_structure, WeightedLfsr};

/// Configuration for [`bakeoff`].
#[derive(Debug, Clone)]
pub struct BakeoffConfig {
    /// Length granted to the pseudo-random architectures (the paper's
    /// `p`); deterministic architectures use their own encoded length.
    pub random_length: usize,
    /// Area model for all rows.
    pub model: AreaModel,
    /// Pool width for the internal fault simulation and ATPG (`0` =
    /// automatic: `BIST_THREADS` or the machine width; `1` = fully
    /// serial). Results are bit-identical at every width.
    pub threads: usize,
}

impl Default for BakeoffConfig {
    fn default() -> Self {
        BakeoffConfig {
            random_length: 1000,
            model: AreaModel::es2_1um(),
            threads: 0,
        }
    }
}

/// One architecture's result in the bake-off.
#[derive(Debug, Clone)]
pub struct BakeoffRow {
    /// Architecture name.
    pub architecture: &'static str,
    /// Patterns applied per test session.
    pub test_length: usize,
    /// Generator silicon area, mm².
    pub area_mm2: f64,
    /// Graded fault coverage of the emitted sequence, %.
    pub coverage_pct: f64,
    /// True for architectures that encode the deterministic ATPG set.
    pub deterministic: bool,
}

impl fmt::Display for BakeoffRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<20} {:>8} {:>9.3} {:>8.2}%",
            self.architecture, self.test_length, self.area_mm2, self.coverage_pct
        )
    }
}

/// The full bake-off outcome.
#[derive(Debug, Clone)]
pub struct Bakeoff {
    /// One row per architecture.
    pub rows: Vec<BakeoffRow>,
    /// The redundancy-adjusted coverage ceiling, % — what a perfect test
    /// reaches.
    pub achievable_pct: f64,
    /// Coverage of the ATPG's own (software) sequence, % — the level every
    /// faithful deterministic encoder must reproduce. Below
    /// [`Bakeoff::achievable_pct`] when some searches aborted.
    pub atpg_coverage_pct: f64,
    /// Number of deterministic ATPG patterns the encoders store.
    pub deterministic_patterns: usize,
}

impl Bakeoff {
    /// The row for `architecture`, if present.
    pub fn row(&self, architecture: &str) -> Option<&BakeoffRow> {
        self.rows.iter().find(|r| r.architecture == architecture)
    }
}

/// Grades `sequence` against a fresh copy of `faults` and returns the
/// coverage percentage.
fn grade(circuit: &Circuit, faults: &FaultList, sequence: &[Pattern], threads: usize) -> f64 {
    let mut sim = FaultSim::new(circuit, faults.clone()).with_threads(threads);
    sim.simulate(sequence);
    sim.report().coverage_pct()
}

/// Runs every architecture in this crate (plus the paper's LFSROM) over
/// one circuit, on equal terms: the deterministic encoders all embed the
/// same ATPG test set (stuck-at + stuck-open, collapsed), the
/// pseudo-random generators all get `config.random_length` patterns, and
/// every row's sequence is re-graded by the fault simulator — so an
/// encoder that perturbs don't-care bits (reseeding) is judged by what its
/// *hardware* actually emits, not by the ATPG's fill.
///
/// This extends the paper's Table 1 (which covers only the two extremes,
/// full-deterministic LFSROM vs plain LFSR) to the full architecture
/// space its §1 surveys.
///
/// # Example
///
/// ```no_run
/// use bist_baselines::{bakeoff, BakeoffConfig};
///
/// let c432 = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
/// let result = bakeoff(&c432, &BakeoffConfig::default());
/// for row in &result.rows {
///     println!("{row}");
/// }
/// ```
pub fn bakeoff(circuit: &Circuit, config: &BakeoffConfig) -> Bakeoff {
    let width = circuit.inputs().len();
    let faults = FaultList::mixed_model(circuit);
    let atpg_options = AtpgOptions {
        threads: config.threads,
        ..AtpgOptions::default()
    };
    let run = TestGenerator::new(circuit, faults.clone(), atpg_options).run();
    let det_patterns = run.sequence();
    let det_cubes: Vec<bist_atpg::TestCube> = run
        .units
        .iter()
        .flat_map(|u| u.cubes.iter().cloned())
        .collect();
    let achievable_pct = run.report.achievable_pct();
    let atpg_coverage_pct = run.report.coverage_pct();

    let mut rows = Vec::new();
    let mut push = |tpg: &dyn Tpg, deterministic: bool| {
        let sequence = tpg.sequence();
        rows.push(BakeoffRow {
            architecture: tpg.architecture(),
            test_length: sequence.len(),
            area_mm2: tpg.area_mm2(&config.model),
            coverage_pct: grade(circuit, &faults, &sequence, config.threads),
            deterministic,
        });
    };

    // --- deterministic encoders over the same ATPG set ---
    // (the LFSROM needs no adapter: it implements `Tpg` directly)
    if let Ok(lfsrom) = LfsromGenerator::synthesize(&det_patterns) {
        push(&lfsrom, true);
    }
    if let Ok(rom) = RomCounter::new(&det_patterns) {
        push(&rom, true);
    }
    if let Ok(pla) = CounterPla::synthesize(&det_patterns) {
        push(&pla, true);
    }
    if let Ok(reseed) = Reseeding::encode(&det_cubes) {
        push(&reseed, true);
    }

    // --- pseudo-random generators at the granted length ---
    let lfsr = PlainLfsr::new(bist_lfsr::paper_poly(), 1, width, config.random_length);
    push(&lfsr, false);
    if let Some(ca) = CaRegister::find_max_length(16, 1 << 16) {
        push(&CaTpg::new(ca, width, config.random_length), false);
    }
    let weighted = WeightedLfsr::new(
        bist_lfsr::paper_poly(),
        1,
        weights_from_structure(circuit),
        config.random_length,
    );
    push(&weighted, false);

    Bakeoff {
        rows,
        achievable_pct,
        atpg_coverage_pct,
        deterministic_patterns: det_patterns.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_bakeoff_has_all_architectures() {
        let c17 = bist_netlist::iscas85::c17();
        let result = bakeoff(
            &c17,
            &BakeoffConfig {
                random_length: 64,
                ..BakeoffConfig::default()
            },
        );
        for name in [
            "lfsrom",
            "rom-counter",
            "counter-pla",
            "lfsr-reseeding",
            "lfsr",
            "cellular-automaton",
            "weighted-random",
        ] {
            assert!(result.row(name).is_some(), "missing {name}");
        }
        // c17 is fully testable: the deterministic encoders that replay
        // the ATPG patterns verbatim must reach the ceiling
        for name in ["lfsrom", "rom-counter", "counter-pla"] {
            let row = result.row(name).unwrap();
            assert!(
                (row.coverage_pct - result.achievable_pct).abs() < 1e-9,
                "{name}: {:.2}% vs ceiling {:.2}%",
                row.coverage_pct,
                result.achievable_pct
            );
        }
    }

    #[test]
    fn c432_extremes_behave_like_the_papers() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let result = bakeoff(
            &c,
            &BakeoffConfig {
                random_length: 256,
                ..BakeoffConfig::default()
            },
        );
        let lfsrom = result.row("lfsrom").unwrap();
        let lfsr = result.row("lfsr").unwrap();
        // the LFSR is the cheapest architecture on the board — the paper's
        // p-min extreme — while every deterministic encoder pays real area
        for row in &result.rows {
            if row.architecture != "lfsr" {
                assert!(
                    lfsr.area_mm2 <= row.area_mm2,
                    "{} ({:.3} mm²) undercuts the plain LFSR ({:.3} mm²)",
                    row.architecture,
                    row.area_mm2,
                    lfsr.area_mm2
                );
            }
        }
        // deterministic rows reproduce the ATPG's own coverage (the
        // ceiling minus aborts); the plain LFSR at 256 patterns does not
        assert!(lfsrom.coverage_pct >= result.atpg_coverage_pct - 1e-9);
        assert!(lfsr.coverage_pct < result.atpg_coverage_pct);
        // the relative ordering of the deterministic encoders is an
        // empirical output (printed by the ext_tpg_bakeoff experiment),
        // but all of them must store the full set's information: none may
        // be free
        for name in ["lfsrom", "rom-counter", "counter-pla", "lfsr-reseeding"] {
            let row = result.row(name).unwrap();
            assert!(
                row.area_mm2 > 2.0 * lfsr.area_mm2,
                "{name} suspiciously cheap"
            );
        }
    }

    #[test]
    fn reseeding_coverage_counts_its_own_fill() {
        // reseeding re-grades its own expansion; coverage may differ from
        // the ATPG's, but the targeted faults guarantee a floor well above
        // random at the same length
        let c17 = bist_netlist::iscas85::c17();
        let result = bakeoff(
            &c17,
            &BakeoffConfig {
                random_length: 4,
                ..BakeoffConfig::default()
            },
        );
        let reseed = result.row("lfsr-reseeding").unwrap();
        let lfsr = result.row("lfsr").unwrap();
        assert!(reseed.coverage_pct > lfsr.coverage_pct);
    }
}
