use std::fmt;

use bist_logicsim::{Pattern, SeqSim};
use bist_netlist::{Circuit, CircuitBuilder, GateKind, NodeId};
use bist_synth::{
    count_cells, synthesize_pla_with, CellCount, OutputSpec, SynthesisOptions, TwoLevelNetwork,
};

use bist_tpg::Tpg;

use crate::tpg::address_bits;

/// Error returned by [`CounterPla::synthesize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildCounterPlaError {
    /// The test set holds no patterns.
    EmptySequence,
    /// Pattern `index` has a different width than pattern 0.
    WidthMismatch {
        /// Offending pattern position.
        index: usize,
        /// Width of pattern 0.
        expected: usize,
        /// Width found.
        got: usize,
    },
}

impl fmt::Display for BuildCounterPlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCounterPlaError::EmptySequence => write!(f, "empty test sequence"),
            BuildCounterPlaError::WidthMismatch {
                index,
                expected,
                got,
            } => write!(f, "pattern {index} is {got} bits wide, expected {expected}"),
        }
    }
}

impl std::error::Error for BuildCounterPlaError {}

/// The *test-set-embedding* baseline (\[Ake89\]; the paper's "Counters and
/// Decoders" family): a binary counter walks addresses `0..d` and a
/// two-level decoding network maps each count to its test pattern.
///
/// Structurally this is the LFSROM with the state register swapped: the
/// LFSROM's register holds the *pattern itself* (`w` flip-flops, next-state
/// logic from pattern to pattern), while the counter-PLA holds only a
/// ⌈log₂ d⌉-bit count and pays for a full `count → pattern` decode of every
/// output bit. Comparing the two isolates the paper's key architectural
/// choice — it is the `pattern-as-state` trick, not two-level minimization
/// alone, that makes the LFSROM cheap.
///
/// # Example
///
/// ```
/// use bist_baselines::{CounterPla, Tpg};
/// use bist_logicsim::Pattern;
///
/// let patterns: Vec<Pattern> =
///     ["00101", "11010", "00011"].iter().map(|s| s.parse()).collect::<Result<_, _>>()?;
/// let tpg = CounterPla::synthesize(&patterns)?;
/// assert_eq!(tpg.sequence(), patterns); // replayed from the netlist
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CounterPla {
    patterns: Vec<Pattern>,
    width: usize,
    addr_bits: usize,
    network: TwoLevelNetwork,
    netlist: Circuit,
}

impl CounterPla {
    /// Synthesizes a counter-addressed decoder replaying `patterns`, with
    /// default minimizer options.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCounterPlaError`] for empty sequences or
    /// inconsistent widths.
    pub fn synthesize(patterns: &[Pattern]) -> Result<Self, BuildCounterPlaError> {
        Self::synthesize_with(patterns, SynthesisOptions::default())
    }

    /// Synthesizes with explicit minimizer options.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCounterPlaError`] for empty sequences or
    /// inconsistent widths.
    pub fn synthesize_with(
        patterns: &[Pattern],
        options: SynthesisOptions,
    ) -> Result<Self, BuildCounterPlaError> {
        if patterns.is_empty() {
            return Err(BuildCounterPlaError::EmptySequence);
        }
        let width = patterns[0].len();
        for (index, p) in patterns.iter().enumerate() {
            if p.len() != width {
                return Err(BuildCounterPlaError::WidthMismatch {
                    index,
                    expected: width,
                    got: p.len(),
                });
            }
        }
        let addr_bits = address_bits(patterns.len());

        // one spec per pattern bit: on/off sets over the counter codes;
        // codes >= d are don't-cares (never reached before BIST stop)
        let mut specs = vec![OutputSpec::default(); width];
        for (i, p) in patterns.iter().enumerate() {
            let code = Pattern::from_fn(addr_bits, |b| (i >> b) & 1 == 1);
            for (b, spec) in specs.iter_mut().enumerate() {
                if p.get(b) {
                    spec.on.push(code.clone());
                } else {
                    spec.off.push(code.clone());
                }
            }
        }
        let network = synthesize_pla_with(addr_bits, &specs, options);
        let netlist = build_netlist(addr_bits, &network);
        Ok(CounterPla {
            patterns: patterns.to_vec(),
            width,
            addr_bits,
            network,
            netlist,
        })
    }

    /// Width of the address counter in flip-flops.
    pub fn addr_bits(&self) -> usize {
        self.addr_bits
    }

    /// The synthesized decode network.
    pub fn network(&self) -> &TwoLevelNetwork {
        &self.network
    }

    /// The structural hardware netlist (counter + decode gates).
    pub fn netlist(&self) -> &Circuit {
        &self.netlist
    }

    /// Clocks the hardware netlist for `cycles` cycles and returns the
    /// emitted patterns (wrapping past `test_length` re-enters the counter
    /// range, where outputs follow the minimizer's don't-care choices).
    pub fn replay(&self, cycles: usize) -> Vec<Pattern> {
        let mut sim = SeqSim::new(&self.netlist);
        let watch: Vec<NodeId> = (0..self.width)
            .map(|b| {
                self.netlist
                    .find(&format!("pla_y{b}"))
                    .expect("output exists by construction")
            })
            .collect();
        sim.trace(&[false], &watch, cycles)
    }
}

fn build_netlist(addr_bits: usize, network: &TwoLevelNetwork) -> Circuit {
    let mut b = CircuitBuilder::new("counter_pla");
    b.add_input("bist_en").expect("fresh name");
    let ff_names: Vec<String> = (0..addr_bits).map(|i| format!("q{i}")).collect();
    // ripple increment: inc0 = NOT q0; inc_i = q_i XOR carry_i with
    // carry_1 = q0, carry_i = carry_{i-1} AND q_{i-1}
    b.add_gate("inc0", GateKind::Not, &["q0"]).expect("fresh");
    let mut carry = "q0".to_string();
    for i in 1..addr_bits {
        if i > 1 {
            let c = format!("carry{i}");
            b.add_gate(&c, GateKind::And, &[&carry, &format!("q{}", i - 1)])
                .expect("fresh");
            carry = c;
        }
        b.add_gate(
            &format!("inc{i}"),
            GateKind::Xor,
            &[&format!("q{i}"), &carry],
        )
        .expect("fresh");
    }
    let ff_refs: Vec<&str> = ff_names.iter().map(String::as_str).collect();
    let out_names = network
        .emit(&mut b, &ff_refs, "pla")
        .expect("fresh namespace");
    for (i, ff) in ff_names.iter().enumerate() {
        b.add_gate(ff, GateKind::Dff, &[&format!("inc{i}")])
            .expect("fresh");
    }
    for name in &out_names {
        b.mark_output(name).expect("output exists");
    }
    b.build()
        .expect("counter-PLA netlist is structurally valid")
}

impl Tpg for CounterPla {
    fn architecture(&self) -> &'static str {
        "counter-pla"
    }

    fn width(&self) -> usize {
        self.width
    }

    fn test_length(&self) -> usize {
        self.patterns.len()
    }

    fn sequence(&self) -> Vec<Pattern> {
        self.replay(self.patterns.len())
    }

    fn cells(&self) -> CellCount {
        count_cells(&self.netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_synth::AreaModel;
    use rand::{rngs::StdRng, SeedableRng};

    fn p(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    #[test]
    fn replays_a_small_set() {
        let seq = vec![p("00101"), p("11010"), p("00011"), p("11100"), p("01110")];
        let tpg = CounterPla::synthesize(&seq).unwrap();
        assert_eq!(tpg.replay(5), seq);
        assert_eq!(tpg.sequence(), seq);
        assert_eq!(tpg.addr_bits(), 3);
    }

    #[test]
    fn duplicate_patterns_are_fine() {
        // unlike the LFSROM, the counter distinguishes repeats for free
        let seq = vec![p("0101"), p("1100"), p("0101"), p("0011")];
        let tpg = CounterPla::synthesize(&seq).unwrap();
        assert_eq!(tpg.replay(4), seq);
    }

    #[test]
    fn random_sets_replay() {
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..8 {
            let width = 4 + trial;
            let len = 3 + 3 * trial;
            let seq: Vec<Pattern> = (0..len).map(|_| Pattern::random(&mut rng, width)).collect();
            let tpg = CounterPla::synthesize(&seq).unwrap();
            assert_eq!(tpg.replay(len), seq, "trial {trial}");
        }
    }

    #[test]
    fn counter_state_is_smaller_but_decode_is_larger() {
        // the architectural trade the paper's LFSROM wins: few FFs here,
        // but every pattern bit pays a full decode
        let mut rng = StdRng::seed_from_u64(77);
        let seq: Vec<Pattern> = (0..32).map(|_| Pattern::random(&mut rng, 24)).collect();
        let tpg = CounterPla::synthesize(&seq).unwrap();
        let cells = tpg.cells();
        assert_eq!(cells.get(bist_synth::CellKind::Dff), 5, "ceil(log2 32)");
        assert!(cells.total() > 50, "decode logic dominates: {cells}");
        assert!(tpg.area_mm2(&AreaModel::es2_1um()) > 0.0);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            CounterPla::synthesize(&[]).unwrap_err(),
            BuildCounterPlaError::EmptySequence
        );
        assert!(matches!(
            CounterPla::synthesize(&[p("01"), p("011")]).unwrap_err(),
            BuildCounterPlaError::WidthMismatch { index: 1, .. }
        ));
    }
}
