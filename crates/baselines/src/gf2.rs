//! Dense GF(2) linear algebra on `u64`-packed rows, sized for LFSR
//! reseeding: systems have at most 63 unknowns (the seed bits), so one
//! word per row suffices.

/// A linear system `A·x = b` over GF(2) with `unknowns ≤ 64` variables.
/// Row `i` is the pair `(mask, rhs)`: the XOR of the seed bits selected by
/// `mask` must equal `rhs`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Gf2System {
    unknowns: u32,
    rows: Vec<(u64, bool)>,
}

impl Gf2System {
    /// An empty system over `unknowns` variables.
    ///
    /// # Panics
    ///
    /// Panics if `unknowns` exceeds 64.
    pub fn new(unknowns: u32) -> Self {
        assert!(unknowns <= 64, "at most 64 unknowns per system");
        Gf2System {
            unknowns,
            rows: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn unknowns(&self) -> u32 {
        self.unknowns
    }

    /// Number of equations added so far.
    pub fn num_equations(&self) -> usize {
        self.rows.len()
    }

    /// Adds the equation "XOR of the variables in `mask` equals `rhs`".
    pub fn add_equation(&mut self, mask: u64, rhs: bool) {
        self.rows.push((mask, rhs));
    }

    /// Solves the system by Gaussian elimination. Returns a solution
    /// vector (bit `i` = variable `i`), or `None` if the system is
    /// inconsistent. Free variables are set to 0.
    pub fn solve(&self) -> Option<u64> {
        self.solve_with_nullspace().map(|(x, _)| x)
    }

    /// Solves the system and also returns a basis of the nullspace of
    /// `A` — callers add any combination of basis vectors to the
    /// particular solution to enumerate all solutions (LFSR reseeding uses
    /// this to avoid the all-zero seed).
    pub fn solve_with_nullspace(&self) -> Option<(u64, Vec<u64>)> {
        let n = self.unknowns as usize;
        let mut rows: Vec<(u64, bool)> = self
            .rows
            .iter()
            .copied()
            .filter(|&(m, r)| m != 0 || r)
            .collect();
        let mut pivot_of_col: Vec<Option<usize>> = vec![None; n];
        let mut rank = 0usize;
        for (col, pivot) in pivot_of_col.iter_mut().enumerate() {
            let Some(pr) = (rank..rows.len()).find(|&r| rows[r].0 >> col & 1 == 1) else {
                continue;
            };
            rows.swap(rank, pr);
            let (pm, pb) = rows[rank];
            for (r, row) in rows.iter_mut().enumerate() {
                if r != rank && row.0 >> col & 1 == 1 {
                    row.0 ^= pm;
                    row.1 ^= pb;
                }
            }
            *pivot = Some(rank);
            rank += 1;
        }
        // inconsistent: a zero row with rhs 1
        if rows[rank..].iter().any(|&(m, r)| m == 0 && r) {
            return None;
        }
        // particular solution: free variables 0, pivots take their rhs
        let mut x = 0u64;
        for (col, pivot) in pivot_of_col.iter().enumerate() {
            if let Some(r) = *pivot {
                if rows[r].1 {
                    x |= 1 << col;
                }
            }
        }
        // nullspace basis: one vector per free column
        let mut basis = Vec::new();
        for free in 0..n {
            if pivot_of_col[free].is_some() {
                continue;
            }
            let mut v = 1u64 << free;
            for (col, pivot) in pivot_of_col.iter().enumerate() {
                if let Some(r) = *pivot {
                    if rows[r].0 >> free & 1 == 1 {
                        v |= 1 << col;
                    }
                }
            }
            basis.push(v);
        }
        Some((x, basis))
    }

    /// True if assignment `x` satisfies every equation.
    pub fn check(&self, x: u64) -> bool {
        self.rows
            .iter()
            .all(|&(m, r)| ((x & m).count_ones() & 1 == 1) == r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_invertible_system() {
        // x0 ^ x1 = 1, x1 = 1, x0 ^ x2 = 0
        let mut sys = Gf2System::new(3);
        sys.add_equation(0b011, true);
        sys.add_equation(0b010, true);
        sys.add_equation(0b101, false);
        let x = sys.solve().unwrap();
        assert!(sys.check(x));
        assert_eq!(x, 0b010);
    }

    #[test]
    fn detects_inconsistency() {
        let mut sys = Gf2System::new(2);
        sys.add_equation(0b11, true);
        sys.add_equation(0b11, false);
        assert_eq!(sys.solve(), None);
    }

    #[test]
    fn underdetermined_systems_expose_nullspace() {
        // one equation, three unknowns: nullspace has dimension 2
        let mut sys = Gf2System::new(3);
        sys.add_equation(0b111, true);
        let (x, basis) = sys.solve_with_nullspace().unwrap();
        assert!(sys.check(x));
        assert_eq!(basis.len(), 2);
        for combo in 1u64..4 {
            let mut y = x;
            for (i, &v) in basis.iter().enumerate() {
                if combo >> i & 1 == 1 {
                    y ^= v;
                }
            }
            assert!(sys.check(y), "nullspace shift broke the solution");
        }
    }

    #[test]
    fn homogeneous_system_solves_to_zero() {
        let mut sys = Gf2System::new(4);
        sys.add_equation(0b1010, false);
        sys.add_equation(0b0110, false);
        assert_eq!(sys.solve(), Some(0));
    }

    #[test]
    fn empty_system_is_trivially_solvable() {
        let sys = Gf2System::new(8);
        assert_eq!(sys.solve(), Some(0));
        let (_, basis) = sys.solve_with_nullspace().unwrap();
        assert_eq!(basis.len(), 8);
    }

    #[test]
    fn randomized_round_trip() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..200 {
            let n = rng.gen_range(1..=24u32);
            let truth: u64 = rng.gen::<u64>() & ((1 << n) - 1);
            let mut sys = Gf2System::new(n);
            for _ in 0..rng.gen_range(0..2 * n) {
                let mask = rng.gen::<u64>() & ((1 << n) - 1);
                let rhs = (truth & mask).count_ones() & 1 == 1;
                sys.add_equation(mask, rhs);
            }
            // built from a ground truth: always consistent
            let x = sys.solve().expect("consistent by construction");
            assert!(sys.check(x));
        }
    }
}
