//! Baseline BIST test-pattern-generator architectures for the LFSROM
//! mixed-BIST reproduction.
//!
//! The paper's §1 surveys the TPG design space the LFSROM competes in:
//! counter-addressed ROMs (\[Abo83\], \[Aga81\], \[Dan84\]), counters with
//! decoders (\[Ake89\]), cellular automata (\[Van91\], \[Ser90\]), LFSR
//! reseeding (\[Hel92\]) and plain/weighted LFSRs (\[Bar87\]). The 1995
//! evaluation compares against only the two extremes (full-deterministic
//! LFSROM vs plain LFSR); this crate implements the surveyed baselines so
//! the comparison can be *run* rather than cited:
//!
//! * [`RomCounter`] — store-and-generate: counter + `d·w`-bit ROM.
//! * [`CounterPla`] — test-set embedding: counter + minimized two-level
//!   decode (the LFSROM with the "pattern-as-state" trick removed).
//! * [`CaRegister`] / [`CaTpg`] — maximum-length hybrid rule-90/150
//!   cellular automata, with a characteristic-polynomial primitivity
//!   search.
//! * [`WeightedLfsr`] — weighted pseudo-random patterns with
//!   structure-derived weights ([`weights_from_structure`]).
//! * [`Reseeding`] — multiple-polynomial LFSR reseeding over ATPG test
//!   cubes, seeds solved by GF(2) elimination ([`Gf2System`]).
//! * [`bakeoff`] — the whole field over one circuit, equal terms, graded
//!   by fault simulation.
//!
//! Every architecture implements the workspace-level [`Tpg`] trait
//! (re-exported here, with [`TestPatternGenerator`] as the historical
//! alias), which is also how the paper's own two architectures join the
//! board: [`bist_lfsrom::LfsromGenerator`] implements it directly and
//! [`PlainLfsr`] (now in [`bist_tpg`]) covers the bare LFSR.
//!
//! # Example
//!
//! ```
//! use bist_baselines::{RomCounter, Tpg};
//! use bist_logicsim::Pattern;
//! use bist_synth::AreaModel;
//!
//! let patterns: Vec<Pattern> =
//!     ["00101", "11010", "00011"].iter().map(|s| s.parse()).collect::<Result<_, _>>()?;
//! let rom = RomCounter::new(&patterns)?;
//! println!("{:.3} mm²", rom.area_mm2(&AreaModel::es2_1um()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapters;
mod cellular;
mod comparison;
mod counter_pla;
mod gf2;
mod reseed;
mod rom_counter;
mod tpg;
mod weighted;

pub use adapters::{LfsromTpg, PlainLfsr};
pub use cellular::{CaRegister, CaRule, CaTpg};
pub use comparison::{bakeoff, Bakeoff, BakeoffConfig, BakeoffRow};
pub use counter_pla::{BuildCounterPlaError, CounterPla};
pub use gf2::Gf2System;
pub use reseed::{EncodeSeedsError, Reseeding, SeedWord};
pub use rom_counter::{BuildRomCounterError, RomCounter};
pub use tpg::{TestPatternGenerator, Tpg};
pub use weighted::{weights_from_structure, Weight, WeightedLfsr};
