use std::fmt;

use bist_atpg::TestCube;
use bist_lfsr::{Lfsr, Polynomial, ScanExpander};
use bist_logicsim::Pattern;
use bist_synth::{CellCount, CellKind};

use crate::gf2::Gf2System;
use bist_tpg::Tpg;

use crate::tpg::{address_bits, counter_cells};

/// Error returned by [`Reseeding::encode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeSeedsError {
    /// No cubes were given.
    EmptyCubeSet,
    /// Cube `index` has a different width than cube 0.
    WidthMismatch {
        /// Offending cube position.
        index: usize,
        /// Width of cube 0.
        expected: usize,
        /// Width found.
        got: usize,
    },
}

impl fmt::Display for EncodeSeedsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeSeedsError::EmptyCubeSet => write!(f, "empty cube set"),
            EncodeSeedsError::WidthMismatch {
                index,
                expected,
                got,
            } => write!(f, "cube {index} is {got} bits wide, expected {expected}"),
        }
    }
}

impl std::error::Error for EncodeSeedsError {}

/// One encoded test: either a `(polynomial, seed)` pair whose expansion
/// realizes the cube, or — for cubes too dense for any tabulated degree —
/// the pattern stored verbatim in a side ROM (the "top-off" patterns of
/// practical reseeding flows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedWord {
    /// Expand a seed through the selected polynomial.
    Seed {
        /// Index into [`Reseeding::polys`].
        poly: usize,
        /// The seed value (within the selected polynomial's degree).
        seed: u64,
    },
    /// Shift this pattern in directly from the side ROM.
    Stored(Pattern),
}

/// The *multiple-polynomial LFSR reseeding* baseline (\[Hel92\], which the
/// paper cites for shifting patterns into wide circuits): instead of
/// storing each deterministic pattern (`w` bits), store one LFSR *seed*
/// whose `w`-clock expansion through the scan register matches the
/// pattern's test cube on every specified bit.
///
/// The expansion is linear over GF(2), so a seed for a cube with `s`
/// specified bits solves an `s × k` linear system; this encoder walks a
/// degree ladder per cube and keeps the smallest solvable degree, exactly
/// the "multiple-polynomial" refinement \[Hel92\] introduces for cubes that
/// defeat a single short LFSR. Each ROM word stores the seed (at the
/// largest degree used) plus a polynomial-select field.
///
/// Storage drops from `d·w` ROM bits (the [`RomCounter`](crate::RomCounter))
/// to roughly `d·(s_max + log₂ #polys)` — the trade being that don't-care
/// bits become LFSR noise rather than shared logic, so (unlike the
/// LFSROM) reseeding cannot exploit *cross-pattern* structure.
///
/// # Example
///
/// ```
/// use bist_atpg::TestCube;
/// use bist_baselines::{Reseeding, Tpg};
///
/// let cubes: Vec<TestCube> = ["1XXX0XXX", "XX01XXXX", "XXXXXX11"]
///     .iter()
///     .map(|s| s.parse())
///     .collect::<Result<_, _>>()?;
/// let tpg = Reseeding::encode(&cubes)?;
/// let patterns = tpg.sequence();
/// for (cube, pattern) in cubes.iter().zip(&patterns) {
///     assert!(cube.matches(pattern));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Reseeding {
    /// Distinct polynomials actually used, ordered by degree.
    polys: Vec<Polynomial>,
    words: Vec<SeedWord>,
    cubes: Vec<TestCube>,
    width: usize,
}

impl Reseeding {
    /// Encodes `cubes` into per-cube `(polynomial, seed)` words, choosing
    /// the smallest solvable degree per cube.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeSeedsError`] for empty input, inconsistent widths,
    /// or cubes that stay unsolvable at every tabulated degree.
    pub fn encode(cubes: &[TestCube]) -> Result<Self, EncodeSeedsError> {
        if cubes.is_empty() {
            return Err(EncodeSeedsError::EmptyCubeSet);
        }
        let width = cubes[0].len();
        for (index, c) in cubes.iter().enumerate() {
            if c.len() != width {
                return Err(EncodeSeedsError::WidthMismatch {
                    index,
                    expected: width,
                    got: c.len(),
                });
            }
        }

        // precompute expansion rows lazily per degree
        let mut rows_cache: Vec<Option<Vec<u64>>> = vec![None; 33];
        let mut chosen: Vec<Option<(u32, u64)>> = Vec::with_capacity(cubes.len());
        for cube in cubes {
            let start = (cube.num_specified() as u32).clamp(2, 32);
            let mut found = None;
            if start <= 32 && cube.num_specified() <= 32 {
                for degree in start..=32 {
                    let poly = bist_lfsr::primitive_poly(degree);
                    let rows = rows_cache[degree as usize]
                        .get_or_insert_with(|| expansion_rows(poly, width));
                    if let Some(seed) = solve_cube(cube, rows, degree) {
                        found = Some((degree, seed));
                        break;
                    }
                }
            }
            chosen.push(found);
        }

        let mut degrees: Vec<u32> = chosen.iter().flatten().map(|&(d, _)| d).collect();
        degrees.sort_unstable();
        degrees.dedup();
        let polys: Vec<Polynomial> = degrees
            .iter()
            .map(|&d| bist_lfsr::primitive_poly(d))
            .collect();
        let words = chosen
            .iter()
            .zip(cubes)
            .map(|(hit, cube)| match hit {
                Some((d, seed)) => SeedWord::Seed {
                    poly: degrees.binary_search(d).expect("degree recorded"),
                    seed: *seed,
                },
                None => SeedWord::Stored(cube.fill_with(false)),
            })
            .collect();
        Ok(Reseeding {
            polys,
            words,
            cubes: cubes.to_vec(),
            width,
        })
    }

    /// The polynomial set of the generator (ordered by degree).
    pub fn polys(&self) -> &[Polynomial] {
        &self.polys
    }

    /// The per-cube seed words, parallel to the input cubes.
    pub fn words(&self) -> &[SeedWord] {
        &self.words
    }

    /// The encoded cubes.
    pub fn cubes(&self) -> &[TestCube] {
        &self.cubes
    }

    /// The largest LFSR degree in use (the stored seed width).
    pub fn max_degree(&self) -> u32 {
        self.polys.last().map_or(0, |p| p.degree())
    }

    /// Number of cubes that fell back to verbatim pattern storage.
    pub fn num_stored(&self) -> usize {
        self.words
            .iter()
            .filter(|w| matches!(w, SeedWord::Stored(_)))
            .count()
    }

    /// Bits needed per seed-ROM word: seed at the widest degree plus the
    /// polynomial-select field.
    pub fn word_bits(&self) -> usize {
        let select = if self.polys.len() > 1 {
            address_bits(self.polys.len())
        } else {
            0
        };
        self.max_degree() as usize + select
    }

    /// Total ROM bits: seed words plus the side ROM of verbatim patterns.
    pub fn rom_bits(&self) -> usize {
        let seeds = self.words.len() - self.num_stored();
        seeds * self.word_bits() + self.num_stored() * self.width
    }
}

/// Solves one cube at one degree; returns a non-zero satisfying seed.
fn solve_cube(cube: &TestCube, rows: &[u64], degree: u32) -> Option<u64> {
    let mut sys = Gf2System::new(degree);
    for (bit, value) in cube.specified_bits() {
        sys.add_equation(rows[bit], value);
    }
    let (x, basis) = sys.solve_with_nullspace()?;
    let seed = if x != 0 {
        x
    } else {
        x ^ basis.first()? // avoid the LFSR lock-up seed
    };
    debug_assert!(sys.check(seed));
    Some(seed)
}

/// The linear map from seed bits to pattern bits: `rows[i]` is the mask of
/// seed bits whose XOR gives pattern bit `i` after `width` clocks of the
/// shared scan register. Computed by symbolic simulation of
/// [`ScanExpander`]'s exact clocking.
fn expansion_rows(poly: Polynomial, width: usize) -> Vec<u64> {
    let k = poly.degree() as usize;
    let taps = poly.taps();
    // reg[i] = mask over seed bits; seed bit i starts in cell i
    let mut reg: Vec<u64> = vec![0; width.max(k)];
    for (i, cell) in reg.iter_mut().enumerate().take(k) {
        *cell = 1 << i;
    }
    for _ in 0..width {
        let fb = taps
            .iter()
            .fold(0u64, |acc, &t| acc ^ reg[(t - 1) as usize]);
        reg.rotate_right(1);
        reg[0] = fb;
    }
    // pattern bit i = cell (width-1-i)
    (0..width).map(|i| reg[width - 1 - i]).collect()
}

impl Tpg for Reseeding {
    fn architecture(&self) -> &'static str {
        "lfsr-reseeding"
    }

    fn width(&self) -> usize {
        self.width
    }

    fn test_length(&self) -> usize {
        self.words.len()
    }

    fn sequence(&self) -> Vec<Pattern> {
        self.words
            .iter()
            .map(|w| match w {
                SeedWord::Seed { poly, seed } => {
                    let lfsr = Lfsr::fibonacci(self.polys[*poly], *seed);
                    ScanExpander::new(lfsr, self.width).next_pattern()
                }
                SeedWord::Stored(p) => p.clone(),
            })
            .collect()
    }

    /// Shared scan register (`max(w, k)` flip-flops), per-polynomial
    /// feedback XOR trees with a select MUX, parallel seed-load MUXes,
    /// seed ROM and its address counter/decoder.
    fn cells(&self) -> CellCount {
        let k = self.max_degree() as usize;
        let mut cells = CellCount::new();
        cells.add(CellKind::Dff, self.width.max(k));
        for p in &self.polys {
            cells.add(CellKind::Xor2, p.taps().len().saturating_sub(1));
        }
        cells.add(CellKind::Mux2, self.polys.len().saturating_sub(1)); // feedback select
        cells.add(CellKind::Mux2, k); // parallel seed load
        let words = self.words.len();
        let addr = address_bits(words);
        cells.merge(&counter_cells(addr));
        cells.add(CellKind::Inv, addr);
        cells.add(CellKind::And2, words * addr.saturating_sub(1));
        cells.add(CellKind::RomBit, self.rom_bits());
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn cube(s: &str) -> TestCube {
        s.parse().unwrap()
    }

    #[test]
    fn expansion_rows_match_concrete_expansion() {
        let poly = bist_lfsr::primitive_poly(12);
        let width = 30;
        let rows = expansion_rows(poly, width);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let seed = rng.gen_range(1u64..(1 << 12));
            let lfsr = Lfsr::fibonacci(poly, seed);
            let pattern = ScanExpander::new(lfsr, width).next_pattern();
            for (i, &mask) in rows.iter().enumerate() {
                let predicted = (seed & mask).count_ones() & 1 == 1;
                assert_eq!(pattern.get(i), predicted, "bit {i}, seed {seed:#x}");
            }
        }
    }

    #[test]
    fn every_expanded_pattern_matches_its_cube() {
        let cubes = vec![
            cube("1XXXXXXX0XXXXXXX"),
            cube("XX01XXXXXXXX1XXX"),
            cube("XXXXXX11XXXXXXX0"),
            cube("0101XXXXXXXXXXXX"),
        ];
        let tpg = Reseeding::encode(&cubes).unwrap();
        let seq = tpg.sequence();
        assert_eq!(seq.len(), cubes.len());
        for (c, p) in cubes.iter().zip(&seq) {
            assert!(c.matches(p), "cube {c} vs pattern {p}");
        }
    }

    #[test]
    fn random_cube_sets_encode_and_verify() {
        let mut rng = StdRng::seed_from_u64(4242);
        for trial in 0..20 {
            let width = rng.gen_range(8..60usize);
            let n = rng.gen_range(1..12);
            let cubes: Vec<TestCube> = (0..n)
                .map(|_| {
                    let specified = rng.gen_range(1..=width.min(20));
                    let mut c = TestCube::unspecified(width);
                    for _ in 0..specified {
                        let pos = rng.gen_range(0..width);
                        c.set(pos, Some(rng.gen()));
                    }
                    c
                })
                .collect();
            let tpg = Reseeding::encode(&cubes).unwrap();
            for (c, p) in cubes.iter().zip(tpg.sequence().iter()) {
                assert!(c.matches(p), "trial {trial}");
            }
        }
    }

    #[test]
    fn seed_storage_beats_pattern_storage_for_sparse_cubes() {
        // 100-bit-wide cubes with <= 10 specified bits: the degree ladder
        // stays low, so d·k << d·w
        let mut rng = StdRng::seed_from_u64(1);
        let cubes: Vec<TestCube> = (0..16)
            .map(|_| {
                let mut c = TestCube::unspecified(100);
                for _ in 0..10 {
                    let pos = rng.gen_range(0..100);
                    c.set(pos, Some(rng.gen()));
                }
                c
            })
            .collect();
        let tpg = Reseeding::encode(&cubes).unwrap();
        assert!(
            tpg.rom_bits() <= 16 * 24,
            "seed ROM unexpectedly large: {} bits (max degree {})",
            tpg.rom_bits(),
            tpg.max_degree()
        );
        assert!(tpg.rom_bits() < 16 * 100 / 2, "no storage win");
    }

    #[test]
    fn mixed_sparsity_uses_multiple_polynomials() {
        let mut dense = TestCube::unspecified(40);
        for i in 0..28 {
            dense.set(i, Some(i % 3 == 0));
        }
        let cubes = vec![cube(&format!("1X0{}", "X".repeat(37))), dense];
        let tpg = Reseeding::encode(&cubes).unwrap();
        for (c, p) in cubes.iter().zip(tpg.sequence().iter()) {
            assert!(c.matches(p));
        }
        // the sparse cube must not pay the dense cube's degree
        assert!(tpg.polys().len() >= 2, "expected a polynomial ladder");
        assert!(tpg.word_bits() > tpg.max_degree() as usize, "select field");
    }

    #[test]
    fn fully_specified_cubes_need_full_degree() {
        let cubes = vec![cube("10110100"), cube("01101001")];
        let tpg = Reseeding::encode(&cubes).unwrap();
        assert!(tpg.max_degree() >= 8);
        for (c, p) in cubes.iter().zip(tpg.sequence().iter()) {
            assert!(c.matches(p));
        }
    }

    #[test]
    fn all_zero_cube_avoids_the_lockup_seed() {
        // requires pattern bits to be 0 — solvable by seed 0, which must
        // be rejected in favour of a nullspace shift
        let cubes = vec![cube("00XXXXXXXXXXXXXX")];
        let tpg = Reseeding::encode(&cubes).unwrap();
        match &tpg.words()[0] {
            SeedWord::Seed { seed, .. } => assert_ne!(*seed, 0),
            SeedWord::Stored(_) => panic!("sparse cube must encode as a seed"),
        }
        assert!(cubes[0].matches(&tpg.sequence()[0]));
    }

    #[test]
    fn over_dense_cubes_fall_back_to_stored_patterns() {
        // 40 specified bits cannot fit any tabulated degree: stored word
        let mut dense = TestCube::unspecified(48);
        for i in 0..40 {
            dense.set(i, Some(i % 2 == 0));
        }
        let sparse = cube(&format!("10{}", "X".repeat(46)));
        let cubes = vec![sparse.clone(), dense.clone()];
        let tpg = Reseeding::encode(&cubes).unwrap();
        assert_eq!(tpg.num_stored(), 1);
        let seq = tpg.sequence();
        assert!(sparse.matches(&seq[0]));
        assert!(dense.matches(&seq[1]));
        // the side ROM charges full width for the stored word
        assert!(tpg.rom_bits() >= 48);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            Reseeding::encode(&[]).unwrap_err(),
            EncodeSeedsError::EmptyCubeSet
        );
        let err = Reseeding::encode(&[cube("1X"), cube("1XX")]).unwrap_err();
        assert!(matches!(
            err,
            EncodeSeedsError::WidthMismatch { index: 1, .. }
        ));
    }
}
