use std::fmt;

use bist_logicsim::Pattern;
use bist_synth::{CellCount, CellKind};

use bist_tpg::Tpg;

use crate::tpg::{address_bits, counter_cells};

/// Error returned by [`RomCounter::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildRomCounterError {
    /// The test set holds no patterns.
    EmptySequence,
    /// Pattern `index` has a different width than pattern 0.
    WidthMismatch {
        /// Offending pattern position.
        index: usize,
        /// Width of pattern 0.
        expected: usize,
        /// Width found.
        got: usize,
    },
}

impl fmt::Display for BuildRomCounterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildRomCounterError::EmptySequence => write!(f, "empty test sequence"),
            BuildRomCounterError::WidthMismatch {
                index,
                expected,
                got,
            } => write!(f, "pattern {index} is {got} bits wide, expected {expected}"),
        }
    }
}

impl std::error::Error for BuildRomCounterError {}

/// The *store-and-generate* baseline (\[Aga81\], \[Abo83\], \[Dan84\]; the
/// paper's §1): a binary counter addressing a mask-programmed ROM that
/// stores the deterministic test set verbatim.
///
/// The paper calls this "the most efficient of the TPG architectures since
/// it produces only the necessary deterministic test patterns,
/// unfortunately, it requires too much hardware": the array grows as
/// `d·w` ROM bits plus a `d`-word row decoder, with no opportunity for the
/// don't-care-driven logic sharing the LFSROM exploits.
///
/// # Example
///
/// ```
/// use bist_baselines::{RomCounter, Tpg};
/// use bist_logicsim::Pattern;
///
/// let patterns: Vec<Pattern> =
///     ["00101", "11010", "00011"].iter().map(|s| s.parse()).collect::<Result<_, _>>()?;
/// let rom = RomCounter::new(&patterns)?;
/// assert_eq!(rom.sequence(), patterns);
/// assert_eq!(rom.rom_bits(), 3 * 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct RomCounter {
    patterns: Vec<Pattern>,
    width: usize,
    addr_bits: usize,
}

impl RomCounter {
    /// Builds a generator storing `patterns` verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`BuildRomCounterError`] for empty sequences or
    /// inconsistent widths.
    pub fn new(patterns: &[Pattern]) -> Result<Self, BuildRomCounterError> {
        if patterns.is_empty() {
            return Err(BuildRomCounterError::EmptySequence);
        }
        let width = patterns[0].len();
        for (index, p) in patterns.iter().enumerate() {
            if p.len() != width {
                return Err(BuildRomCounterError::WidthMismatch {
                    index,
                    expected: width,
                    got: p.len(),
                });
            }
        }
        Ok(RomCounter {
            addr_bits: address_bits(patterns.len()),
            width,
            patterns: patterns.to_vec(),
        })
    }

    /// Size of the ROM array in bits (`d · w`).
    pub fn rom_bits(&self) -> usize {
        self.patterns.len() * self.width
    }

    /// Width of the address counter in flip-flops.
    pub fn addr_bits(&self) -> usize {
        self.addr_bits
    }
}

impl Tpg for RomCounter {
    fn architecture(&self) -> &'static str {
        "rom-counter"
    }

    fn width(&self) -> usize {
        self.width
    }

    fn test_length(&self) -> usize {
        self.patterns.len()
    }

    fn sequence(&self) -> Vec<Pattern> {
        self.patterns.clone()
    }

    /// Counter + row decoder + ROM array. The decoder is one AND tree per
    /// word over the (complemented) address lines: `a−1` AND2 per word
    /// plus `a` shared inverters.
    fn cells(&self) -> CellCount {
        let mut cells = counter_cells(self.addr_bits);
        cells.add(CellKind::Inv, self.addr_bits);
        cells.add(
            CellKind::And2,
            self.patterns.len() * self.addr_bits.saturating_sub(1),
        );
        cells.add(CellKind::RomBit, self.rom_bits());
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_synth::AreaModel;

    fn p(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    #[test]
    fn sequence_is_stored_verbatim() {
        let seq = vec![p("1100"), p("0011"), p("1010"), p("0101"), p("1111")];
        let rom = RomCounter::new(&seq).unwrap();
        assert_eq!(rom.sequence(), seq);
        assert_eq!(rom.test_length(), 5);
        assert_eq!(rom.width(), 4);
        assert_eq!(rom.addr_bits(), 3);
    }

    #[test]
    fn cells_scale_linearly_with_the_test_set() {
        let short = RomCounter::new(&vec![p("10101010"); 16]).unwrap();
        let long = RomCounter::new(&vec![p("10101010"); 128]).unwrap();
        assert_eq!(short.cells().get(CellKind::RomBit), 16 * 8);
        assert_eq!(long.cells().get(CellKind::RomBit), 128 * 8);
        let model = AreaModel::es2_1um();
        assert!(long.area_mm2(&model) > 4.0 * short.area_mm2(&model));
    }

    #[test]
    fn paper_scale_rom_for_c3540_is_expensive() {
        // 144 patterns × 50 bits — the paper's full deterministic set for
        // C3540. The ROM must land above the LFSR's 0.25 mm² by a wide
        // margin (the "requires too much hardware" claim).
        let seq: Vec<Pattern> = (0..144)
            .map(|i| Pattern::from_fn(50, |b| (i * 7 + b) % 3 == 0))
            .collect();
        let rom = RomCounter::new(&seq).unwrap();
        let mm2 = rom.area_mm2(&AreaModel::es2_1um());
        assert!(mm2 > 1.5, "ROM area {mm2:.2} mm² suspiciously small");
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            RomCounter::new(&[]).unwrap_err(),
            BuildRomCounterError::EmptySequence
        );
        let err = RomCounter::new(&[p("01"), p("011")]).unwrap_err();
        assert!(matches!(
            err,
            BuildRomCounterError::WidthMismatch { index: 1, .. }
        ));
        assert!(err.to_string().contains("pattern 1"));
    }
}
