use bist_logicsim::Pattern;
use bist_synth::{AreaModel, CellCount};

/// The common face of every BIST test-pattern-generator architecture in
/// this crate (and of the paper's LFSROM, adapted via
/// [`LfsromTpg`](crate::LfsromTpg)): a pattern sequence plus a silicon
/// cost, so architectures can be compared on the paper's two axes — test
/// length and area overhead.
pub trait TestPatternGenerator {
    /// Architecture name for reports (e.g. `"rom-counter"`).
    fn architecture(&self) -> &'static str;

    /// Width of the emitted patterns (number of CUT primary inputs).
    fn width(&self) -> usize;

    /// Number of patterns the generator is designed to emit per test
    /// session.
    fn test_length(&self) -> usize;

    /// The emitted pattern sequence, in order.
    fn sequence(&self) -> Vec<Pattern>;

    /// The generator's standard-cell inventory (flip-flops, gates, ROM
    /// bits).
    fn cells(&self) -> CellCount;

    /// Silicon area in mm² under `model`, routing included.
    fn area_mm2(&self, model: &AreaModel) -> f64 {
        model.area_mm2(&self.cells())
    }
}

/// Standard-cell inventory of a ripple binary counter with `bits`
/// flip-flops: bit 0 toggles (one inverter), every further bit is
/// `q XOR carry` with `carry AND q` chaining (one XOR2 + one AND2 each).
pub(crate) fn counter_cells(bits: usize) -> CellCount {
    use bist_synth::CellKind;
    let mut cells = CellCount::new();
    if bits == 0 {
        return cells;
    }
    cells.add(CellKind::Dff, bits);
    cells.add(CellKind::Inv, 1);
    cells.add(CellKind::Xor2, bits - 1);
    cells.add(CellKind::And2, bits - 1);
    cells
}

/// `ceil(log2(n))` with a floor of 1 — the counter width needed to address
/// `n` words.
pub(crate) fn address_bits(n: usize) -> usize {
    debug_assert!(n > 0);
    (usize::BITS - (n - 1).leading_zeros()).max(1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_synth::CellKind;

    #[test]
    fn address_bit_math() {
        assert_eq!(address_bits(1), 1);
        assert_eq!(address_bits(2), 1);
        assert_eq!(address_bits(3), 2);
        assert_eq!(address_bits(4), 2);
        assert_eq!(address_bits(5), 3);
        assert_eq!(address_bits(144), 8);
        assert_eq!(address_bits(256), 8);
        assert_eq!(address_bits(257), 9);
    }

    #[test]
    fn counter_inventory() {
        let cells = counter_cells(8);
        assert_eq!(cells.get(CellKind::Dff), 8);
        assert_eq!(cells.get(CellKind::Xor2), 7);
        assert_eq!(cells.get(CellKind::And2), 7);
        assert_eq!(cells.get(CellKind::Inv), 1);
        assert_eq!(counter_cells(0).total(), 0);
        assert_eq!(counter_cells(1).total(), 2); // DFF + INV
    }
}
