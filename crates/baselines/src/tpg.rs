//! Trait re-exports and shared cost helpers.
//!
//! The [`TestPatternGenerator`] trait this module used to define was
//! promoted to the workspace-level [`bist_tpg::Tpg`] trait so *every*
//! generator in the workspace — including the mixed generator and the
//! paper's LFSROM, which live outside this crate — presents one face.
//! The old name stays re-exported here for compatibility.

/// The unified TPG trait (promoted to [`bist_tpg`]).
pub use bist_tpg::Tpg;

/// Back-compat alias for [`Tpg`], the name this crate exported before
/// the trait was promoted to `bist-tpg`.
pub use bist_tpg::Tpg as TestPatternGenerator;

use bist_synth::CellCount;

/// Standard-cell inventory of a ripple binary counter with `bits`
/// flip-flops: bit 0 toggles (one inverter), every further bit is
/// `q XOR carry` with `carry AND q` chaining (one XOR2 + one AND2 each).
pub(crate) fn counter_cells(bits: usize) -> CellCount {
    use bist_synth::CellKind;
    let mut cells = CellCount::new();
    if bits == 0 {
        return cells;
    }
    cells.add(CellKind::Dff, bits);
    cells.add(CellKind::Inv, 1);
    cells.add(CellKind::Xor2, bits - 1);
    cells.add(CellKind::And2, bits - 1);
    cells
}

/// `ceil(log2(n))` with a floor of 1 — the counter width needed to address
/// `n` words.
pub(crate) fn address_bits(n: usize) -> usize {
    debug_assert!(n > 0);
    (usize::BITS - (n - 1).leading_zeros()).max(1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_synth::CellKind;

    #[test]
    fn address_bit_math() {
        assert_eq!(address_bits(1), 1);
        assert_eq!(address_bits(2), 1);
        assert_eq!(address_bits(3), 2);
        assert_eq!(address_bits(4), 2);
        assert_eq!(address_bits(5), 3);
        assert_eq!(address_bits(144), 8);
        assert_eq!(address_bits(256), 8);
        assert_eq!(address_bits(257), 9);
    }

    #[test]
    fn counter_inventory() {
        let cells = counter_cells(8);
        assert_eq!(cells.get(CellKind::Dff), 8);
        assert_eq!(cells.get(CellKind::Xor2), 7);
        assert_eq!(cells.get(CellKind::And2), 7);
        assert_eq!(cells.get(CellKind::Inv), 1);
        assert_eq!(counter_cells(0).total(), 0);
        assert_eq!(counter_cells(1).total(), 2); // DFF + INV
    }
}
