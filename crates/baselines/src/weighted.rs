use std::fmt;

use bist_lfsr::{Lfsr, Polynomial};
use bist_logicsim::Pattern;
use bist_netlist::{Circuit, GateKind};
use bist_synth::{CellCount, CellKind};

use bist_tpg::Tpg;

/// The one-probability a weighted-random generator imposes on one CUT
/// input. Weights are the dyadic values cheap weighting logic can realize:
/// AND of `k` equiprobable bits gives `2^-k`, OR gives `1 − 2^-k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Weight {
    /// Probability 1/2 — the raw LFSR bit, no gate.
    #[default]
    Half,
    /// Probability 1/4 — AND of two raw bits.
    Quarter,
    /// Probability 1/8 — AND of three raw bits.
    Eighth,
    /// Probability 3/4 — OR of two raw bits.
    ThreeQuarters,
    /// Probability 7/8 — OR of three raw bits.
    SevenEighths,
}

impl Weight {
    /// All weights, for iteration.
    pub const ALL: [Weight; 5] = [
        Weight::Half,
        Weight::Quarter,
        Weight::Eighth,
        Weight::ThreeQuarters,
        Weight::SevenEighths,
    ];

    /// Raw LFSR bits consumed per output bit.
    pub fn raw_bits(self) -> usize {
        match self {
            Weight::Half => 1,
            Weight::Quarter | Weight::ThreeQuarters => 2,
            Weight::Eighth | Weight::SevenEighths => 3,
        }
    }

    /// The imposed one-probability.
    pub fn probability(self) -> f64 {
        match self {
            Weight::Half => 0.5,
            Weight::Quarter => 0.25,
            Weight::Eighth => 0.125,
            Weight::ThreeQuarters => 0.75,
            Weight::SevenEighths => 0.875,
        }
    }

    /// Combines `bits` (length [`Weight::raw_bits`]) into the weighted bit.
    fn combine(self, bits: &[bool]) -> bool {
        match self {
            Weight::Half => bits[0],
            Weight::Quarter | Weight::Eighth => bits.iter().all(|&b| b),
            Weight::ThreeQuarters | Weight::SevenEighths => bits.iter().any(|&b| b),
        }
    }

    /// The nearest realizable weight below/above a target probability.
    pub fn nearest(p: f64) -> Weight {
        Weight::ALL
            .into_iter()
            .min_by(|a, b| {
                (a.probability() - p)
                    .abs()
                    .partial_cmp(&(b.probability() - p).abs())
                    .expect("probabilities are finite")
            })
            .expect("ALL is non-empty")
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Weight::Half => "1/2",
            Weight::Quarter => "1/4",
            Weight::Eighth => "1/8",
            Weight::ThreeQuarters => "3/4",
            Weight::SevenEighths => "7/8",
        };
        f.write_str(s)
    }
}

/// A *weighted pseudo-random* generator: the paper's plain LFSR with a
/// per-input weighting network biasing each CUT input's one-probability.
///
/// Weighted patterns were the classic industrial answer to random-pattern-
/// resistant faults *before* mixed/deterministic schemes: keep the cheap
/// LFSR, spend a few AND/OR gates to skew inputs toward the values that
/// sensitize deep gate trees. The weights here come from a structural
/// heuristic ([`weights_from_structure`]) — inputs feeding mostly
/// AND-family logic are biased high (non-controlling), OR-family low.
///
/// # Example
///
/// ```
/// use bist_baselines::{Tpg, WeightedLfsr};
///
/// let c880 = bist_netlist::iscas85::circuit("c880").expect("known benchmark");
/// let weights = bist_baselines::weights_from_structure(&c880);
/// let tpg = WeightedLfsr::new(bist_lfsr::paper_poly(), 1, weights, 256);
/// assert_eq!(tpg.sequence().len(), 256);
/// ```
#[derive(Debug, Clone)]
pub struct WeightedLfsr {
    poly: Polynomial,
    seed: u64,
    weights: Vec<Weight>,
    test_length: usize,
}

impl WeightedLfsr {
    /// Creates a generator with one weight per CUT input.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, `test_length` is 0, or the seed is
    /// invalid for the polynomial (see [`Lfsr::fibonacci`]).
    pub fn new(poly: Polynomial, seed: u64, weights: Vec<Weight>, test_length: usize) -> Self {
        assert!(!weights.is_empty(), "at least one output weight");
        assert!(test_length > 0, "test length must be positive");
        let _check = Lfsr::fibonacci(poly, seed);
        WeightedLfsr {
            poly,
            seed,
            weights,
            test_length,
        }
    }

    /// The per-input weights.
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }
}

impl Tpg for WeightedLfsr {
    fn architecture(&self) -> &'static str {
        "weighted-random"
    }

    fn width(&self) -> usize {
        self.weights.len()
    }

    fn test_length(&self) -> usize {
        self.test_length
    }

    fn sequence(&self) -> Vec<Pattern> {
        let mut lfsr = Lfsr::fibonacci(self.poly, self.seed);
        let mut patterns = Vec::with_capacity(self.test_length);
        let mut raw = Vec::with_capacity(3);
        for _ in 0..self.test_length {
            let p = Pattern::from_fn(self.weights.len(), |i| {
                let w = self.weights[i];
                raw.clear();
                raw.extend((0..w.raw_bits()).map(|_| lfsr.step()));
                w.combine(&raw)
            });
            patterns.push(p);
        }
        patterns
    }

    /// LFSR core + one scan cell per raw bit + the weighting gates.
    fn cells(&self) -> CellCount {
        let mut cells = CellCount::new();
        let k = self.poly.degree() as usize;
        cells.add(CellKind::Dff, k);
        cells.add(CellKind::Xor2, self.poly.taps().len().saturating_sub(1));
        let raw_total: usize = self.weights.iter().map(|w| w.raw_bits()).sum();
        cells.add(CellKind::Dff, raw_total.saturating_sub(k));
        for w in &self.weights {
            match w {
                Weight::Half => {}
                Weight::Quarter => cells.add(CellKind::And2, 1),
                Weight::Eighth => cells.add(CellKind::And2, 2),
                Weight::ThreeQuarters => cells.add(CellKind::Or2, 1),
                Weight::SevenEighths => cells.add(CellKind::Or2, 2),
            }
        }
        cells
    }
}

/// Derives a weight per primary input from the CUT's structure: an input
/// whose fan-out feeds mostly AND/NAND gates wants to sit at the
/// non-controlling 1 (weight above 1/2) so deep conjunctions get
/// exercised; mostly OR/NOR fan-out wants 0. Balanced inputs stay at 1/2.
pub fn weights_from_structure(circuit: &Circuit) -> Vec<Weight> {
    circuit
        .inputs()
        .iter()
        .map(|&pi| {
            let mut pull_high = 0i64;
            let mut total = 0i64;
            for &g in circuit.fanout(pi) {
                total += 1;
                match circuit.node(g).kind() {
                    GateKind::And | GateKind::Nand => pull_high += 1,
                    GateKind::Or | GateKind::Nor => pull_high -= 1,
                    _ => {}
                }
            }
            if total == 0 {
                return Weight::Half;
            }
            let bias = pull_high as f64 / total as f64;
            if bias > 0.6 {
                Weight::ThreeQuarters
            } else if bias < -0.6 {
                Weight::Quarter
            } else {
                Weight::Half
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_lfsr::{paper_poly, primitive_poly};

    #[test]
    fn weight_arithmetic() {
        assert_eq!(Weight::nearest(0.5), Weight::Half);
        assert_eq!(Weight::nearest(0.2), Weight::Quarter);
        assert_eq!(Weight::nearest(0.9), Weight::SevenEighths);
        assert_eq!(Weight::Eighth.raw_bits(), 3);
        assert_eq!(Weight::Half.to_string(), "1/2");
    }

    #[test]
    fn empirical_densities_track_weights() {
        let weights = vec![
            Weight::Half,
            Weight::Quarter,
            Weight::Eighth,
            Weight::ThreeQuarters,
            Weight::SevenEighths,
        ];
        let tpg = WeightedLfsr::new(primitive_poly(20), 1, weights.clone(), 4000);
        let seq = tpg.sequence();
        for (i, w) in weights.iter().enumerate() {
            let ones = seq.iter().filter(|p| p.get(i)).count();
            let density = ones as f64 / seq.len() as f64;
            assert!(
                (density - w.probability()).abs() < 0.05,
                "bit {i}: density {density:.3} vs weight {w}"
            );
        }
    }

    #[test]
    fn all_half_matches_unweighted_cost_shape() {
        let tpg = WeightedLfsr::new(paper_poly(), 1, vec![Weight::Half; 30], 10);
        let cells = tpg.cells();
        assert_eq!(cells.get(CellKind::And2) + cells.get(CellKind::Or2), 0);
        assert_eq!(cells.get(CellKind::Dff), 30, "16 LFSR cells + 14 chain");
    }

    #[test]
    fn weighting_gates_are_counted() {
        let tpg = WeightedLfsr::new(
            paper_poly(),
            1,
            vec![Weight::Quarter, Weight::SevenEighths, Weight::Half],
            10,
        );
        let cells = tpg.cells();
        assert_eq!(cells.get(CellKind::And2), 1);
        assert_eq!(cells.get(CellKind::Or2), 2);
    }

    #[test]
    fn structural_weights_bias_and_heavy_inputs_high() {
        use bist_netlist::CircuitBuilder;
        let mut b = CircuitBuilder::new("w");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_input("c").unwrap();
        b.add_gate("g1", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("g2", GateKind::Nand, &["a", "c"]).unwrap();
        b.add_gate("g3", GateKind::Nor, &["b", "c"]).unwrap();
        b.add_gate("y", GateKind::Or, &["g1", "g2", "g3"]).unwrap();
        b.mark_output("y").unwrap();
        let c = b.build().unwrap();
        let weights = weights_from_structure(&c);
        // input a feeds AND+NAND only -> biased high
        assert_eq!(weights[0], Weight::ThreeQuarters);
        // input b feeds AND and NOR -> balanced
        assert_eq!(weights[1], Weight::Half);
    }

    #[test]
    fn sequence_is_deterministic() {
        let w = vec![Weight::Quarter; 8];
        let a = WeightedLfsr::new(paper_poly(), 1, w.clone(), 50).sequence();
        let b = WeightedLfsr::new(paper_poly(), 1, w, 50).sequence();
        assert_eq!(a, b);
    }
}
