//! Ablation benches for the design choices `DESIGN.md` calls out:
//!
//! * **term sharing** — the PLA-style cross-output term reuse inside the
//!   LFSROM next-state network (on vs off),
//! * **ATPG compaction** — reverse-order compaction of the deterministic
//!   sequence (on vs off) and its knock-on effect on generator area,
//! * **fault-model weight** — grading cost of stuck-at-only vs the full
//!   mixed model.
//!
//! Each ablation prints its effect once (the numbers quoted in
//! `EXPERIMENTS.md`), then benchmarks both arms.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bist_core::prelude::*;
use bist_lfsrom::LfsromOptions;
use bist_synth::SynthesisOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn deterministic_set(circuit: &Circuit, compact: bool) -> Vec<Pattern> {
    let faults = FaultList::mixed_model(circuit);
    let options = AtpgOptions {
        no_compaction: !compact,
        ..AtpgOptions::default()
    };
    TestGenerator::new(circuit, faults, options)
        .run()
        .sequence()
}

fn ablation_report() {
    let model = AreaModel::es2_1um();
    let circuit = iscas85::circuit("c432").expect("known benchmark");

    // --- compaction ---
    let compacted = deterministic_set(&circuit, true);
    let uncompacted = deterministic_set(&circuit, false);
    let g_compacted = LfsromGenerator::synthesize(&compacted).expect("synthesis");
    let g_uncompacted = LfsromGenerator::synthesize(&uncompacted).expect("synthesis");
    println!("\n[ablation] ATPG compaction on c432:");
    println!(
        "  with    : {:>4} patterns -> {:.3} mm²",
        compacted.len(),
        g_compacted.area_mm2(&model)
    );
    println!(
        "  without : {:>4} patterns -> {:.3} mm²",
        uncompacted.len(),
        g_uncompacted.area_mm2(&model)
    );

    // --- term sharing ---
    let shared = LfsromGenerator::synthesize_with(
        &compacted,
        LfsromOptions {
            synthesis: SynthesisOptions { share_terms: true },
        },
    )
    .expect("synthesis");
    let unshared = LfsromGenerator::synthesize_with(
        &compacted,
        LfsromOptions {
            synthesis: SynthesisOptions { share_terms: false },
        },
    )
    .expect("synthesis");
    println!("[ablation] PLA term sharing on the same sequence:");
    println!(
        "  shared  : {:>4} terms, {:>5} literals -> {:.3} mm²",
        shared.network().num_terms(),
        shared.network().num_literals(),
        shared.area_mm2(&model)
    );
    println!(
        "  split   : {:>4} terms, {:>5} literals -> {:.3} mm²",
        unshared.network().num_terms(),
        unshared.network().num_literals(),
        unshared.area_mm2(&model)
    );

    // --- fault model ---
    let mut rng = StdRng::seed_from_u64(1);
    let patterns: Vec<Pattern> = (0..256)
        .map(|_| Pattern::random(&mut rng, circuit.inputs().len()))
        .collect();
    let mut sa = FaultSim::new(&circuit, FaultList::stuck_at_collapsed(&circuit));
    sa.simulate(&patterns);
    let mut mixed = FaultSim::new(&circuit, FaultList::mixed_model(&circuit));
    mixed.simulate(&patterns);
    println!("[ablation] fault model on c432, 256 random patterns:");
    println!("  stuck-at only: {}", sa.report());
    println!("  mixed model  : {}", mixed.report());
}

fn bench(c: &mut Criterion) {
    ablation_report();
    let circuit = iscas85::circuit("c432").expect("known benchmark");
    let sequence = deterministic_set(&circuit, true);
    let patterns = pseudo_random_patterns(paper_poly(), circuit.inputs().len(), 256);

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("lfsrom_synthesis_shared_terms", |b| {
        b.iter(|| {
            LfsromGenerator::synthesize_with(
                &sequence,
                LfsromOptions {
                    synthesis: SynthesisOptions { share_terms: true },
                },
            )
            .expect("synthesis")
        })
    });
    group.bench_function("lfsrom_synthesis_split_terms", |b| {
        b.iter(|| {
            LfsromGenerator::synthesize_with(
                &sequence,
                LfsromOptions {
                    synthesis: SynthesisOptions { share_terms: false },
                },
            )
            .expect("synthesis")
        })
    });
    group.bench_function("faultsim_stuck_at_only", |b| {
        let faults = FaultList::stuck_at_collapsed(&circuit);
        b.iter_batched(
            || FaultSim::new(&circuit, faults.clone()),
            |mut sim| sim.simulate(&patterns),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("faultsim_mixed_model", |b| {
        let faults = FaultList::mixed_model(&circuit);
        b.iter_batched(
            || FaultSim::new(&circuit, faults.clone()),
            |mut sim| sim.simulate(&patterns),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
