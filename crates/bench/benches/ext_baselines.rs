//! Criterion bench for the **Extension B** kernels: the baseline TPG
//! encoders. Prints the bake-off once, then measures each encoder's
//! construction cost — the CAD-runtime axis the paper's §3.1 mentions
//! ("practical case studies can be preserved").

use criterion::{criterion_group, criterion_main, Criterion};

use bist_atpg::{AtpgOptions, TestCube, TestGenerator};
use bist_baselines::{
    bakeoff, BakeoffConfig, CaRegister, CounterPla, Reseeding, RomCounter, TestPatternGenerator,
};
use bist_fault::FaultList;

fn series() {
    let c = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
    let result = bakeoff(
        &c,
        &BakeoffConfig {
            random_length: 200,
            ..BakeoffConfig::default()
        },
    );
    println!("\n[ext_baselines] c432 bake-off:");
    for row in &result.rows {
        println!("  {row}");
    }
}

fn bench(c: &mut Criterion) {
    series();
    let circuit = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
    let faults = FaultList::mixed_model(&circuit);
    let run = TestGenerator::new(&circuit, faults, AtpgOptions::default()).run();
    let patterns = run.sequence();
    let cubes: Vec<TestCube> = run
        .units
        .iter()
        .flat_map(|u| u.cubes.iter().cloned())
        .collect();

    let mut group = c.benchmark_group("ext_baselines");
    group.sample_size(10);
    group.bench_function("rom_counter_encode_c432", |b| {
        b.iter(|| RomCounter::new(&patterns).expect("valid set").rom_bits())
    });
    group.bench_function("counter_pla_synthesize_c432", |b| {
        b.iter(|| {
            CounterPla::synthesize(&patterns)
                .expect("valid set")
                .cells()
                .total()
        })
    });
    group.bench_function("reseeding_encode_c432", |b| {
        b.iter(|| Reseeding::encode(&cubes).expect("encodable").rom_bits())
    });
    group.bench_function("ca_max_length_search_16", |b| {
        b.iter(|| {
            CaRegister::find_max_length(16, 1 << 16)
                .expect("exists")
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
