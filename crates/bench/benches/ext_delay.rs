//! Criterion bench for the **Extension D** kernels: packed transition-
//! fault simulation and two-pattern delay ATPG. Prints the reproduced
//! trade-off series once, then measures the engines it rests on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bist_delay::{DelayAtpgOptions, DelayTestGenerator, TransitionFaultList, TransitionSim};
use bist_lfsr::{paper_poly, pseudo_random_patterns};

fn series() {
    let c = bist_netlist::iscas85::circuit("c880").expect("known benchmark");
    let faults = TransitionFaultList::universe(&c);
    println!("\n[ext_delay] c880 transition-fault mixed trade-off:");
    for p in [0usize, 256] {
        let prefix = pseudo_random_patterns(paper_poly(), c.inputs().len(), p);
        let run = DelayTestGenerator::new(
            &c,
            faults.clone(),
            DelayAtpgOptions {
                prefix,
                ..DelayAtpgOptions::default()
            },
        )
        .run();
        println!(
            "  p={p:>4}  d={:>4}  final {:.2} %",
            run.num_patterns(),
            run.report.coverage_pct()
        );
    }
}

fn bench(c: &mut Criterion) {
    series();
    let circuit = bist_netlist::iscas85::circuit("c880").expect("known benchmark");
    let faults = TransitionFaultList::universe(&circuit);
    let patterns = pseudo_random_patterns(paper_poly(), circuit.inputs().len(), 256);

    let mut group = c.benchmark_group("ext_delay");
    group.sample_size(10);
    group.bench_function("transition_sim_c880_256_patterns", |b| {
        b.iter_batched(
            || TransitionSim::new(&circuit, faults.clone()),
            |mut sim| sim.simulate(&patterns),
            BatchSize::LargeInput,
        )
    });
    let c432 = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
    let c432_faults = TransitionFaultList::universe(&c432);
    group.bench_function("delay_atpg_c432_full", |b| {
        b.iter(|| {
            DelayTestGenerator::new(&c432, c432_faults.clone(), DelayAtpgOptions::default())
                .run()
                .num_patterns()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
