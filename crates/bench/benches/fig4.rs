//! Criterion bench for the **Figure 4** kernel: PPSFP fault simulation of
//! pseudo-random patterns under the mixed (stuck-at + stuck-open) fault
//! model. Prints the reproduced coverage series once, then measures the
//! grading throughput that the figure's x-axis sweep rests on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bist_core::prelude::*;

fn series() {
    let c = iscas85::circuit("c3540").expect("known benchmark");
    let mut session = BistSession::new(&c, MixedSchemeConfig::default());
    let curve = session.random_coverage_curve(&[0, 100, 200, 500, 1000]);
    println!("\n[fig4] c3540 coverage vs pseudo-random length (paper: 88.4 % @ 200):");
    print!("{curve}");
}

fn bench(c: &mut Criterion) {
    series();
    let circuit = iscas85::circuit("c3540").expect("known benchmark");
    let patterns = pseudo_random_patterns(paper_poly(), circuit.inputs().len(), 256);
    let faults = FaultList::mixed_model(&circuit);

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("ppsfp_c3540_256_random_patterns", |b| {
        b.iter_batched(
            || FaultSim::new(&circuit, faults.clone()),
            |mut sim| sim.simulate(&patterns),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("lfsr_scan_expansion_1000x50", |b| {
        b.iter(|| pseudo_random_patterns(paper_poly(), 50, 1000))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
