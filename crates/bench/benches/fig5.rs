//! Criterion bench for the **Figure 5** kernel: one mixed-scheme solve —
//! pseudo-random prefix grading plus the ATPG top-up that determines
//! `d(p)`. Prints the reproduced (p, d, coverage) rows once on the c432
//! profile (the full c3540 sweep lives in the `fig5_mixed_coverage`
//! binary), then measures the solve latency.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bist_core::prelude::*;

fn series() {
    let c = iscas85::circuit("c432").expect("known benchmark");
    let mut session = BistSession::new(&c, MixedSchemeConfig::default());
    println!("\n[fig5] c432 mixed tuples (every tuple reaches maximal coverage):");
    for p in [0usize, 100, 400] {
        let s = session.solve_at(p).expect("flow succeeds");
        println!(
            "  p={:>4} d={:>4}  prefix {:>6.2} %  final {:>6.2} %",
            s.prefix_len,
            s.det_len,
            s.prefix_coverage.coverage_pct(),
            s.coverage.coverage_pct()
        );
    }
}

fn bench(c: &mut Criterion) {
    series();
    let circuit = iscas85::circuit("c432").expect("known benchmark");
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("mixed_solve_c432_p100", |b| {
        b.iter_batched(
            || BistSession::new(&circuit, MixedSchemeConfig::default()),
            |mut session| session.solve_at(100).expect("flow succeeds"),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
