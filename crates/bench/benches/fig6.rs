//! Criterion bench for the **Figure 6** kernel: LFSROM synthesis of a full
//! deterministic test set (the per-circuit bars of the figure). Prints the
//! reproduced per-circuit areas once for the small benchmarks, then
//! measures synthesis latency on a c432-profile test set.

use criterion::{criterion_group, criterion_main, Criterion};

use bist_core::prelude::*;

fn series() {
    println!("\n[fig6] full deterministic LFSROM areas (paper overheads: c17 560 %, c432 217 %):");
    let model = AreaModel::es2_1um();
    for name in ["c17", "c432", "c880"] {
        let c = iscas85::circuit(name).expect("known benchmark");
        let mut session = BistSession::new(&c, MixedSchemeConfig::default());
        let s = session.solve_at(0).expect("deterministic flow");
        let chip = model.circuit_area_mm2(&c);
        println!(
            "  {name:>6}: {:>4} patterns, generator {:.3} mm², chip {:.3} mm², overhead {:.0} %",
            s.det_len,
            s.generator_area_mm2,
            chip,
            s.overhead_pct()
        );
    }
}

fn deterministic_set(circuit: &Circuit) -> Vec<Pattern> {
    let faults = FaultList::mixed_model(circuit);
    TestGenerator::new(circuit, faults, AtpgOptions::default())
        .run()
        .sequence()
}

fn bench(c: &mut Criterion) {
    series();
    let circuit = iscas85::circuit("c432").expect("known benchmark");
    let sequence = deterministic_set(&circuit);
    println!(
        "benchmarking LFSROM synthesis of {} x {} bits",
        sequence.len(),
        circuit.inputs().len()
    );
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("lfsrom_synthesis_c432_full_set", |b| {
        b.iter(|| LfsromGenerator::synthesize(&sequence).expect("synthesis succeeds"))
    });
    group.bench_function("atpg_full_deterministic_c17", |b| {
        let c17 = iscas85::c17();
        let faults = FaultList::mixed_model(&c17);
        b.iter(|| TestGenerator::new(&c17, faults.clone(), AtpgOptions::default()).run())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
