//! Criterion bench for the **Figure 7** kernel: building (and verifying)
//! the shared-register mixed hardware generator whose cost the figure
//! plots against the mixed sequence length.

use criterion::{criterion_group, criterion_main, Criterion};

use bist_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn series() {
    let c = iscas85::circuit("c432").expect("known benchmark");
    let mut session = BistSession::new(&c, MixedSchemeConfig::default());
    println!("\n[fig7] c432 generator cost vs mixed length (paper shape: monotone fall):");
    for p in [0usize, 100, 400] {
        let s = session.solve_at(p).expect("flow succeeds");
        println!(
            "  p={:>4} d={:>4} -> {:.3} mm²",
            s.prefix_len, s.det_len, s.generator_area_mm2
        );
    }
}

fn bench(c: &mut Criterion) {
    series();
    let mut rng = StdRng::seed_from_u64(7);
    let det: Vec<Pattern> = (0..24).map(|_| Pattern::random(&mut rng, 36)).collect();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("mixed_generator_build_w36_p200_d24", |b| {
        b.iter(|| MixedGenerator::build(36, paper_poly(), 200, &det).expect("builds"))
    });
    group.bench_function("mixed_generator_replay_verify", |b| {
        let generator = MixedGenerator::build(36, paper_poly(), 200, &det).expect("builds");
        b.iter(|| assert!(generator.verify()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
