//! Criterion bench for the **Figure 8** kernel: the area model — cell
//! counting and pricing of generator and CUT netlists, which normalizes
//! Figure 7's curve into "% of nominal chip size".

use criterion::{criterion_group, criterion_main, Criterion};

use bist_core::prelude::*;

fn series() {
    let c = iscas85::circuit("c432").expect("known benchmark");
    let mut session = BistSession::new(&c, MixedSchemeConfig::default());
    println!("\n[fig8] c432 overhead vs mixed length (paper c3540 shape: 68 % -> 7.5 %):");
    for p in [0usize, 100, 400] {
        let s = session.solve_at(p).expect("flow succeeds");
        println!(
            "  p={:>4} d={:>4} -> {:.1} % of chip",
            s.prefix_len,
            s.det_len,
            s.overhead_pct()
        );
    }
}

fn bench(c: &mut Criterion) {
    series();
    let model = AreaModel::es2_1um();
    let c3540 = iscas85::circuit("c3540").expect("known benchmark");
    let lfsr = lfsr_netlist(paper_poly());
    let mut group = c.benchmark_group("fig8");
    group.sample_size(20);
    group.bench_function("area_model_c3540_nominal", |b| {
        b.iter(|| model.circuit_area_mm2(&c3540))
    });
    group.bench_function("area_model_lfsr16", |b| {
        b.iter(|| model.circuit_area_mm2(&lfsr))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
