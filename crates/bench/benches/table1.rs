//! Criterion bench for the **Table 1** kernel: the two extremes per
//! circuit. Prints the c17/c432 rows once, then measures the full
//! deterministic flow (the expensive column of the table).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bist_core::prelude::*;

fn series() {
    println!(
        "\n[table1] extremes (paper c3540 row: 144 patterns, 2.5 mm² / 68 % vs 0.25 mm² / 7.5 %):"
    );
    for name in ["c17", "c432"] {
        let c = iscas85::circuit(name).expect("known benchmark");
        let mut session = BistSession::new(&c, MixedSchemeConfig::default());
        let det = session.solve_at(0).expect("deterministic flow");
        let lfsr = lfsr_netlist(session.config().poly);
        let lfsr_mm2 = session.config().area.circuit_area_mm2(&lfsr);
        println!(
            "  {name:>6}: deterministic {:>4} patterns {:.3} mm² ({:.0} %) | LFSR {:.3} mm² ({:.1} %)",
            det.det_len,
            det.generator_area_mm2,
            det.overhead_pct(),
            lfsr_mm2,
            100.0 * lfsr_mm2 / det.chip_area_mm2
        );
    }
}

fn bench(c: &mut Criterion) {
    series();
    let circuit = iscas85::circuit("c432").expect("known benchmark");
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("full_deterministic_extreme_c432", |b| {
        b.iter_batched(
            || BistSession::new(&circuit, MixedSchemeConfig::default()),
            |mut session| session.solve_at(0).expect("deterministic flow"),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
