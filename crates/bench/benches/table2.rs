//! Criterion bench for the **Table 2** kernel: the per-circuit trade-off
//! sweep. Prints one reproduced mini-table, then measures a three-point
//! explorer sweep end to end.

use criterion::{criterion_group, criterion_main, Criterion};

use bist_core::prelude::*;

fn series() {
    let c = iscas85::circuit("c432").expect("known benchmark");
    let explorer = TradeoffExplorer::new(&c, MixedSchemeConfig::default());
    let summary = explorer.sweep(&[0, 100, 400]).expect("sweep succeeds");
    println!("\n[table2] c432 mixed solutions:");
    print!("{summary}");
}

fn bench(c: &mut Criterion) {
    series();
    let c17 = iscas85::c17();
    let explorer = TradeoffExplorer::new(&c17, MixedSchemeConfig::default());
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("explorer_sweep_c17_3_points", |b| {
        b.iter(|| explorer.sweep(&[0, 8, 32]).expect("sweep succeeds"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
