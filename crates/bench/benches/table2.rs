//! Criterion bench for the **Table 2** kernel: the per-circuit trade-off
//! sweep. Prints one reproduced mini-table, then measures a three-point
//! session sweep end to end (cold session per sample).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bist_core::prelude::*;

fn series() {
    let c = iscas85::circuit("c432").expect("known benchmark");
    let mut session = BistSession::new(&c, MixedSchemeConfig::default());
    let summary = session.sweep(&[0, 100, 400]).expect("sweep succeeds");
    println!("\n[table2] c432 mixed solutions:");
    print!("{summary}");
}

fn bench(c: &mut Criterion) {
    series();
    let c17 = iscas85::c17();
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("session_sweep_c17_3_points", |b| {
        b.iter_batched(
            || BistSession::new(&c17, MixedSchemeConfig::default()),
            |mut session| session.sweep(&[0, 8, 32]).expect("sweep succeeds"),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
