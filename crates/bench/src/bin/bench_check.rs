//! **bench_check** — gates CI on a committed `BENCH_sweep.json` baseline.
//!
//! ```text
//! cargo run --release -p bist-bench --bin bench_check -- BENCH_sweep.json ci/bench_baseline.json
//! cargo run --release -p bist-bench --bin bench_check -- BENCH_sweep.json ci/bench_baseline.json 20
//! ```
//!
//! Four gates — a schema gate on each file, then three per circuit:
//!
//! 0. **Schema** — both files must declare `"schema_version"` equal to
//!    the version this checker understands; a missing or mismatched
//!    version aborts with a clear message instead of silently comparing
//!    incompatible layouts.
//! 1. **Correctness** — the solved `(p, d)` points and the
//!    `patterns_simulated` counter must match the baseline exactly; the
//!    flow is deterministic, so any drift is a real behaviour change.
//! 2. **Performance** — the session-vs-one-shot `speedup` may not fall
//!    more than the tolerance (default 20 %) below the baseline's.
//!    Absolute seconds are meaningless across runner generations; the
//!    one-shot path measured in the same process is the calibration that
//!    makes the ratio transferable.
//! 3. **Cache efficacy** — on multi-point sweeps `atpg_cache_hits` must
//!    stay positive: a sweep that stops reusing deterministic searches
//!    has silently lost its main optimization.
//!
//! Exits non-zero listing every violated gate. The parser handles exactly
//! the fixed format `bench_sweep` emits — not general JSON.

use std::process::ExitCode;

use bist_bench::schema::{check_schema, circuit_blocks, num_field, points_of};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (measured_path, baseline_path) = match (args.first(), args.get(1)) {
        (Some(m), Some(b)) => (m.clone(), b.clone()),
        _ => {
            eprintln!("usage: bench_check <measured.json> <baseline.json> [tolerance_pct]");
            return ExitCode::FAILURE;
        }
    };
    let tolerance_pct: f64 = match args.get(2).map(|t| t.parse()) {
        None => 20.0,
        Some(Ok(t)) => t,
        Some(Err(_)) => {
            eprintln!("bench_check: tolerance must be a number, got `{}`", args[2]);
            return ExitCode::FAILURE;
        }
    };

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            None
        }
    };
    let (Some(measured), Some(baseline)) = (read(&measured_path), read(&baseline_path)) else {
        return ExitCode::FAILURE;
    };

    // gate 0: never compare files of different layouts
    for schema in [
        check_schema(&measured_path, &measured),
        check_schema(&baseline_path, &baseline),
    ] {
        if let Err(message) = schema {
            eprintln!("bench_check FAILURE: {message}");
            return ExitCode::FAILURE;
        }
    }

    let mut failures: Vec<String> = Vec::new();
    let baseline_circuits = circuit_blocks(&baseline);
    if baseline_circuits.is_empty() {
        failures.push(format!("baseline {baseline_path} lists no circuits"));
    }
    for (name, base_block) in &baseline_circuits {
        let Some(meas_block) = circuit_blocks(&measured)
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b)
        else {
            failures.push(format!("{name}: missing from {measured_path}"));
            continue;
        };

        // gate 1: deterministic outputs
        match (points_of(base_block), points_of(&meas_block)) {
            (Some(want), Some(got)) if want == got => {}
            (want, got) => failures.push(format!(
                "{name}: solved points drifted from baseline\n  baseline: {want:?}\n  measured: {got:?}"
            )),
        }
        let want_patterns = num_field(base_block, "patterns_simulated");
        let got_patterns = num_field(&meas_block, "patterns_simulated");
        if want_patterns != got_patterns {
            failures.push(format!(
                "{name}: patterns_simulated {got_patterns:?} != baseline {want_patterns:?}"
            ));
        }

        // gate 2: relative performance
        let (Some(base_speedup), Some(meas_speedup)) = (
            num_field(base_block, "speedup"),
            num_field(&meas_block, "speedup"),
        ) else {
            failures.push(format!(
                "{name}: speedup field missing from one of the files"
            ));
            continue;
        };
        let floor = base_speedup * (1.0 - tolerance_pct / 100.0);
        if meas_speedup < floor {
            failures.push(format!(
                "{name}: speedup {meas_speedup:.3} fell below {floor:.3} \
                 (baseline {base_speedup:.3} - {tolerance_pct}%)"
            ));
        } else {
            println!("{name}: speedup {meas_speedup:.3} (baseline {base_speedup:.3}, floor {floor:.3}) ok");
        }

        // gate 3: the sweep keeps reusing deterministic searches
        let points = points_of(&meas_block).map_or(0, |p| p.len());
        let hits = num_field(&meas_block, "atpg_cache_hits").unwrap_or(0.0);
        if points > 1 && hits <= 0.0 {
            failures.push(format!(
                "{name}: multi-point sweep reports no ATPG cache reuse (atpg_cache_hits = {hits})"
            ));
        }
    }

    if failures.is_empty() {
        println!("bench_check: all gates passed (tolerance {tolerance_pct}%)");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_check FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
