//! **BENCH_collapse** — what fault collapsing and sampled estimation
//! buy, recorded machine-readably so the universe cuts and the
//! representative-grading speedup are tracked over time.
//!
//! ```text
//! cargo run --release -p bist-bench --bin bench_collapse
//! cargo run --release -p bist-bench --bin bench_collapse -- --quick
//! cargo run --release -p bist-bench --bin bench_collapse -- --circuits c880 --patterns 2048
//! ```
//!
//! Three measurements per circuit, all over the same LFSR pseudo-random
//! sequence:
//!
//! 1. **universe cut** — [`CollapsedUniverse`] sizes: full stuck-at
//!    faults, equivalence-class representatives, dominance-prime
//!    targets, and the cut percentage;
//! 2. **grading speedup** — one full-universe [`FaultSim`] pass versus
//!    one representatives-only pass projected back through the class
//!    map; the projected report is asserted equal to the full one, so
//!    the timing comparison is also an identity check;
//! 3. **estimation shortcut** — [`estimate_coverage`] with the default
//!    sample budget against the exact full pass, as a wall-clock ratio
//!    (`estimate_seconds / full_sim_seconds`);
//! 4. **collapsed session** — one `BistSession::solve_at` in
//!    `CollapseMode::InFlow` (representative-only grading and ATPG, the
//!    default everywhere) versus one in `CollapseMode::FullUniverse`:
//!    the end-to-end win of collapsing *inside* the exact flow, with
//!    the full-universe projections of both legs asserted identical and
//!    their shared FNV digest written out.
//!
//! The sizes, coverage and interval fields are deterministic; only the
//! `*_seconds` and ratio fields move between machines. Writes
//! `BENCH_collapse.json` into the current directory.

use std::fmt::Write as _;
use std::time::Instant;

use bist_bench::schema::{Fnv, SCHEMA_VERSION};
use bist_bench::{banner, ExperimentArgs};
use bist_core::prelude::*;
use bist_fault::CollapsedUniverse;
use bist_faultmodel::{estimate_coverage, CoverageEstimate};
use bist_par::Pool;

struct CircuitResult {
    name: String,
    patterns: usize,
    stats: bist_fault::CollapseStats,
    coverage_pct: f64,
    full_seconds: f64,
    collapsed_seconds: f64,
    estimate: CoverageEstimate,
    estimate_seconds: f64,
    session_prefix: usize,
    session_collapsed_seconds: f64,
    session_full_seconds: f64,
    session_digest: u64,
}

fn main() {
    banner(
        "BENCH collapse",
        "universe cuts, representative-grading speedup, estimate-vs-exact cost",
    );
    let args = ExperimentArgs::parse(&["c432", "c3540"]);
    args.warn_fixed_format("bench_collapse");
    let patterns_budget = match args
        .extra
        .iter()
        .position(|a| a == "--patterns")
        .and_then(|i| args.extra.get(i + 1))
    {
        Some(v) => v.parse().expect("--patterns takes a pattern count"),
        None if args.quick => 512,
        None => 4_096,
    };
    let config = MixedSchemeConfig::default();
    println!("pattern budget: {patterns_budget}\n");

    let mut results = Vec::new();
    for circuit in args.load_circuits() {
        let name = circuit.name().to_owned();
        let universe = CollapsedUniverse::build(&circuit);
        let stats = universe.stats();
        let patterns = pseudo_random_patterns(config.poly, circuit.inputs().len(), patterns_budget);

        // --- full-universe grading: the baseline cost and the oracle ---
        let mut full = FaultSim::new(&circuit, universe.full().clone()).with_threads(args.threads);
        let t = Instant::now();
        full.simulate(&patterns);
        let full_seconds = t.elapsed().as_secs_f64();
        let full_report = full.report();

        // --- representatives only, projected back: must be identical ---
        let mut reps =
            FaultSim::new(&circuit, universe.representatives().clone()).with_threads(args.threads);
        let t = Instant::now();
        reps.simulate(&patterns);
        let collapsed_seconds = t.elapsed().as_secs_f64();
        assert_eq!(
            reps.report_projected(&universe),
            full_report,
            "{name}: projected report must match full-universe grading"
        );

        // --- the sampling shortcut at the same prefix ---
        let t = Instant::now();
        let estimate = estimate_coverage(&circuit, &config, patterns_budget, 256, 95, 0xb157);
        let estimate_seconds = t.elapsed().as_secs_f64();
        let exact_pct = full_report.coverage_pct();
        assert!(
            estimate.lo_pct <= exact_pct && exact_pct <= estimate.hi_pct,
            "{name}: exact coverage {exact_pct:.3} outside the pinned interval \
             [{:.3}, {:.3}]",
            estimate.lo_pct,
            estimate.hi_pct
        );

        // --- the same cut inside the exact flow: a full solve (prefix
        // grading + ATPG top-up + synthesis) per collapse mode ---
        let session_config = MixedSchemeConfig {
            threads: args.threads,
            ..MixedSchemeConfig::default()
        };
        let session_prefix = patterns_budget / 4;
        let t = Instant::now();
        let mut collapsed_session =
            BistSession::with_mode(&circuit, session_config.clone(), CollapseMode::InFlow);
        collapsed_session
            .solve_at(session_prefix)
            .expect("collapsed solve succeeds");
        let session_collapsed_seconds = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let mut full_session =
            BistSession::with_mode(&circuit, session_config, CollapseMode::FullUniverse);
        full_session
            .solve_at(session_prefix)
            .expect("full-universe solve succeeds");
        let session_full_seconds = t.elapsed().as_secs_f64();

        // identical full-universe statuses, or the timings don't count
        let a = collapsed_session.full_universe_statuses_at(session_prefix);
        let b = full_session.full_universe_statuses_at(session_prefix);
        assert_eq!(a, b, "{name}: session projection diverges");
        let mut digest = Fnv::new();
        for s in &a {
            for byte in format!("{s:?}").bytes() {
                digest.push(byte);
            }
        }
        let session_digest = digest.finish();

        println!(
            "{:>6}: {} faults -> {} reps ({:.1} % cut, {} prime) | grading {:.3}s -> {:.3}s \
             | estimate {:.2} % [{:.2}, {:.2}] in {:.0} % of exact time",
            name,
            stats.full,
            stats.representatives,
            stats.cut_pct,
            stats.prime,
            full_seconds,
            collapsed_seconds,
            estimate.estimate_pct,
            estimate.lo_pct,
            estimate.hi_pct,
            100.0 * estimate_seconds / full_seconds,
        );
        println!(
            "        session solve at p={session_prefix}: collapsed {:.3}s vs full universe \
             {:.3}s ({:.2}x), digest {session_digest:016x}",
            session_collapsed_seconds,
            session_full_seconds,
            session_full_seconds / session_collapsed_seconds,
        );
        results.push(CircuitResult {
            name,
            patterns: patterns_budget,
            stats,
            coverage_pct: exact_pct,
            full_seconds,
            collapsed_seconds,
            estimate,
            estimate_seconds,
            session_prefix,
            session_collapsed_seconds,
            session_full_seconds,
            session_digest,
        });
    }

    let json = render_json(args.threads, &results);
    std::fs::write("BENCH_collapse.json", &json).expect("writable working directory");
    println!("\nwrote BENCH_collapse.json ({} bytes)", json.len());
}

fn render_json(threads: usize, results: &[CircuitResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"collapse\",\n");
    let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"threads\": {},", Pool::resolve(threads).threads());
    out.push_str("  \"circuits\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"circuit\": \"{}\",\n      \"patterns\": {},\n      \
             \"full_universe\": {},\n      \"representatives\": {},\n      \
             \"prime\": {},\n      \"cut_pct\": {:.2},\n      \
             \"coverage_pct\": {:.4},\n      \"full_sim_seconds\": {:.6},\n      \
             \"collapsed_sim_seconds\": {:.6},\n      \"grading_speedup\": {:.3},\n      \
             \"estimate_samples\": {},\n      \"estimate_pct\": {:.4},\n      \
             \"estimate_lo_pct\": {:.4},\n      \"estimate_hi_pct\": {:.4},\n      \
             \"estimate_seconds\": {:.6},\n      \"estimate_vs_exact_pct\": {:.2},\n      \
             \"session_prefix\": {},\n      \
             \"session_collapsed_seconds\": {:.6},\n      \
             \"session_full_seconds\": {:.6},\n      \
             \"session_speedup\": {:.3},\n      \
             \"session_digest\": \"{:016x}\"\n    }}",
            r.name,
            r.patterns,
            r.stats.full,
            r.stats.representatives,
            r.stats.prime,
            r.stats.cut_pct,
            r.coverage_pct,
            r.full_seconds,
            r.collapsed_seconds,
            r.full_seconds / r.collapsed_seconds,
            r.estimate.samples,
            r.estimate.estimate_pct,
            r.estimate.lo_pct,
            r.estimate.hi_pct,
            r.estimate_seconds,
            100.0 * r.estimate_seconds / r.full_seconds,
            r.session_prefix,
            r.session_collapsed_seconds,
            r.session_full_seconds,
            r.session_full_seconds / r.session_collapsed_seconds,
            r.session_digest,
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
