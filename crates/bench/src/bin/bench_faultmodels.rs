//! **BENCH_faultmodels** — wall-time and coverage of the mixed-scheme
//! sweep under every fault model, recorded machine-readably so the cost
//! of the model-generic engine is tracked over time.
//!
//! ```text
//! cargo run --release -p bist-bench --bin bench_faultmodels
//! cargo run --release -p bist-bench --bin bench_faultmodels -- --quick
//! cargo run --release -p bist-bench --bin bench_faultmodels -- --circuits c432 --threads 4
//! ```
//!
//! One `JobSpec::Sweep` per circuit × model (stuck-at, transition,
//! bridging) through the `bist-engine` job API — the exact code path
//! `bist sweep <c> --fault-model <m>` runs. Writes
//! `BENCH_faultmodels.json` into the current directory: per circuit and
//! model the universe size, the end-to-end sweep wall-time, the solved
//! `(p, d)` frontier and the final coverage. The JSON carries the shared
//! `schema_version`; the pool width moves wall-clock only — solved
//! results are bit-identical at every width, so compare timings between
//! runs of the same width only.

use std::fmt::Write as _;
use std::time::Instant;

use bist_bench::schema::SCHEMA_VERSION;
use bist_bench::{banner, ExperimentArgs};
use bist_core::prelude::*;
use bist_engine::{CircuitSource, Engine, FaultModel, JobSpec, SweepSpec};

struct ModelResult {
    model: FaultModel,
    universe: usize,
    seconds: f64,
    final_coverage_pct: f64,
    points: Vec<(usize, usize)>,
}

struct CircuitResult {
    name: String,
    models: Vec<ModelResult>,
}

fn main() {
    banner(
        "BENCH faultmodels",
        "mixed-scheme sweep wall-time per fault model",
    );
    let args = ExperimentArgs::parse(&["c432", "c880"]);
    args.warn_fixed_format("bench_faultmodels");
    let prefixes: Vec<usize> = if args.quick {
        vec![0, 50, 100]
    } else {
        vec![0, 100, 200, 500]
    };
    let models = [
        FaultModel::StuckAt,
        FaultModel::Transition,
        FaultModel::bridging(),
    ];
    let config = MixedSchemeConfig {
        threads: args.threads,
        ..MixedSchemeConfig::default()
    };
    let engine = Engine::with_threads(args.threads);
    let threads = engine.threads();
    println!("prefix checkpoints: {prefixes:?}  ({threads} threads)\n");

    let mut results: Vec<CircuitResult> = Vec::new();
    for named_source in args.sources() {
        let name = named_source.label().to_owned();
        // realize once, outside every timed region: no model pays
        // netlist synthesis, so the times compare only the flows
        let circuit = named_source.realize().unwrap_or_else(|e| {
            eprintln!("cannot load circuit: {e}");
            std::process::exit(2);
        });
        let source = CircuitSource::Inline(circuit);
        let mut rows = Vec::with_capacity(models.len());
        for model in models {
            let t = Instant::now();
            let outcome = engine
                .run(JobSpec::Sweep(SweepSpec {
                    circuit: source.clone(),
                    config: config.clone(),
                    prefix_lengths: prefixes.clone(),
                    fault_model: model,
                    estimate_first: false,
                }))
                .expect("sweep job succeeds");
            let seconds = t.elapsed().as_secs_f64();
            let sweep = outcome.as_sweep().expect("sweep outcome");
            let last = sweep
                .summary
                .solutions()
                .last()
                .expect("at least one checkpoint");
            let row = ModelResult {
                model,
                universe: last.coverage.total(),
                seconds,
                final_coverage_pct: last.coverage.coverage_pct(),
                points: sweep
                    .summary
                    .solutions()
                    .iter()
                    .map(|s| (s.prefix_len, s.det_len))
                    .collect(),
            };
            println!(
                "{:>6} {:<12} {:>7} faults  {:>8.2}s  final {:>6.2}%  d(last) {}",
                name,
                row.model.name(),
                row.universe,
                row.seconds,
                row.final_coverage_pct,
                last.det_len
            );
            rows.push(row);
        }
        results.push(CircuitResult { name, models: rows });
    }

    let json = render_json(&prefixes, threads, &results);
    std::fs::write("BENCH_faultmodels.json", &json).expect("writable working directory");
    println!("\nwrote BENCH_faultmodels.json ({} bytes)", json.len());
}

fn render_json(prefixes: &[usize], threads: usize, results: &[CircuitResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"faultmodels\",\n");
    let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(
        out,
        "  \"prefix_lengths\": [{}],",
        prefixes
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    out.push_str("  \"circuits\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(out, "    {{\n      \"circuit\": \"{}\",", r.name);
        out.push_str("      \"models\": [\n");
        for (j, m) in r.models.iter().enumerate() {
            let points = m
                .points
                .iter()
                .map(|(p, d)| format!("{{\"p\": {p}, \"d\": {d}}}"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                out,
                "        {{\"model\": \"{}\", \"universe\": {}, \"seconds\": {:.4}, \
                 \"final_coverage_pct\": {:.4}, \"points\": [{}]}}",
                m.model, m.universe, m.seconds, m.final_coverage_pct, points
            );
            out.push_str(if j + 1 < r.models.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n    }");
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
