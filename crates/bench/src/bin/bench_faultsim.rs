//! **BENCH_faultsim** — raw throughput of the flattened simulation core,
//! recorded machine-readably so the hot-loop trajectory is tracked over
//! time independently of the end-to-end sweep numbers.
//!
//! ```text
//! cargo run --release -p bist-bench --bin bench_faultsim
//! cargo run --release -p bist-bench --bin bench_faultsim -- --quick
//! cargo run --release -p bist-bench --bin bench_faultsim -- --circuits c432 --patterns 2048
//! ```
//!
//! Two phases per circuit, both over the same LFSR pseudo-random
//! sequence:
//!
//! 1. **good-machine simulation** — [`PackedSim`] over every 64-pattern
//!    block, isolating the CSR gate-evaluation loop
//!    (`good_gate_evals_per_sec`);
//! 2. **PPSFP fault grading** — a full [`FaultSim`] run over the mixed
//!    fault universe, reporting the engine's own work counters
//!    ([`FaultSim::counters`]): blocks, good-sim gate evaluations and
//!    cone-propagation events, with derived per-second rates
//!    (`cone_events_per_sec`, `blocks_per_sec`).
//!
//! The *work counters* (blocks, gate evals, cone events, detections) are
//! deterministic — identical at every thread width and across machines
//! for a given circuit and pattern budget; only the `*_seconds` and
//! `*_per_sec` fields move. A change in the counters at a fixed budget
//! means the engine's work changed, not just its speed. Writes
//! `BENCH_faultsim.json` into the current directory.

use std::fmt::Write as _;
use std::time::Instant;

use bist_bench::schema::SCHEMA_VERSION;
use bist_bench::{banner, ExperimentArgs};
use bist_core::prelude::*;
use bist_logicsim::PatternBlock;
use bist_par::Pool;

struct CircuitResult {
    name: String,
    patterns: usize,
    faults: usize,
    detected: usize,
    good_seconds: f64,
    good_gate_evals: u64,
    sim_seconds: f64,
    counters: SimCounters,
}

fn main() {
    banner(
        "BENCH faultsim",
        "flattened-core throughput: good-machine gate evals, cone events, blocks",
    );
    let args = ExperimentArgs::parse(&["c432"]);
    args.warn_fixed_format("bench_faultsim");
    let patterns_budget = match args
        .extra
        .iter()
        .position(|a| a == "--patterns")
        .and_then(|i| args.extra.get(i + 1))
    {
        Some(v) => v.parse().expect("--patterns takes a pattern count"),
        None if args.quick => 1_024,
        None => 8_192,
    };
    let config = MixedSchemeConfig::default();
    println!("pattern budget: {patterns_budget}\n");

    let mut results = Vec::new();
    for circuit in args.load_circuits() {
        let name = circuit.name().to_owned();
        let width = circuit.inputs().len();
        let patterns = pseudo_random_patterns(config.poly, width, patterns_budget);

        // --- phase 1: good-machine throughput in isolation ---
        let blocks: Vec<PatternBlock> = patterns
            .chunks(64)
            .map(|chunk| PatternBlock::pack(&circuit, chunk))
            .collect();
        let mut packed = PackedSim::new(&circuit);
        let t = Instant::now();
        let mut sink = 0u64;
        for block in &blocks {
            for word in packed.run(block) {
                sink ^= word;
            }
        }
        let good_seconds = t.elapsed().as_secs_f64();
        let good_gate_evals = circuit.num_gates() as u64 * blocks.len() as u64;
        std::hint::black_box(sink);

        // --- phase 2: full PPSFP grading over the mixed universe ---
        let faults = FaultList::mixed_model(&circuit);
        let universe = faults.len();
        let mut sim = FaultSim::new(&circuit, faults).with_threads(args.threads);
        let t = Instant::now();
        let detected = sim.simulate(&patterns);
        let sim_seconds = t.elapsed().as_secs_f64();
        let counters = sim.counters();
        assert_eq!(
            counters.blocks as usize,
            patterns_budget.div_ceil(64),
            "every 64-pattern chunk is one block"
        );

        println!(
            "{:>6}: good sim {:>7.0}k gate-evals/s | grading {:>7.0}k cone-events/s, \
             {:>6.1} blocks/s | {}/{} faults detected",
            name,
            good_gate_evals as f64 / good_seconds / 1e3,
            counters.cone_events as f64 / sim_seconds / 1e3,
            counters.blocks as f64 / sim_seconds,
            detected,
            universe,
        );
        results.push(CircuitResult {
            name,
            patterns: patterns_budget,
            faults: universe,
            detected,
            good_seconds,
            good_gate_evals,
            sim_seconds,
            counters,
        });
    }

    let json = render_json(args.threads, &results);
    std::fs::write("BENCH_faultsim.json", &json).expect("writable working directory");
    println!("\nwrote BENCH_faultsim.json ({} bytes)", json.len());
}

fn render_json(threads: usize, results: &[CircuitResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"faultsim\",\n");
    let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"threads\": {},", Pool::resolve(threads).threads());
    out.push_str("  \"circuits\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"circuit\": \"{}\",\n      \"patterns\": {},\n      \
             \"faults\": {},\n      \"detected\": {},\n      \
             \"good_sim_seconds\": {:.6},\n      \"good_gate_evals\": {},\n      \
             \"good_gate_evals_per_sec\": {:.0},\n      \"sim_seconds\": {:.6},\n      \
             \"blocks\": {},\n      \"blocks_per_sec\": {:.1},\n      \
             \"cone_events\": {},\n      \"cone_events_per_sec\": {:.0}\n    }}",
            r.name,
            r.patterns,
            r.faults,
            r.detected,
            r.good_seconds,
            r.good_gate_evals,
            r.good_gate_evals as f64 / r.good_seconds,
            r.sim_seconds,
            r.counters.blocks,
            r.counters.blocks as f64 / r.sim_seconds,
            r.counters.cone_events,
            r.counters.cone_events as f64 / r.sim_seconds,
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
