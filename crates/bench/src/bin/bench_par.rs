//! **BENCH_par** — scaling of the parallel PPSFP fault-simulation engine
//! across pool widths, with the bit-identity contract enforced on every
//! measurement.
//!
//! ```text
//! cargo run --release -p bist-bench --bin bench_par
//! cargo run --release -p bist-bench --bin bench_par -- --quick
//! cargo run --release -p bist-bench --bin bench_par -- --circuits c3540 --threads 8
//! ```
//!
//! For each circuit one `JobSpec::CoverageCurve` (full mixed fault
//! universe, the pattern budget as its single checkpoint) runs per pool
//! width (1, 2, … up to `--threads` or the machine width), through an
//! `Engine` pinned to that width. Each width is timed as the best of
//! several repetitions — the first repetition doubles as the warm-up,
//! and the minimum is the stable estimate on a noisy container. After
//! every timed run the curve is compared against the one-thread
//! reference, and an *untimed* direct `FaultSim` pass at the same width
//! re-asserts the full bit-identity contract — per-fault statuses and
//! first-detection indices, not just the coverage percentage. Writes
//! `BENCH_par.json` with per-width wall-times and speedups (each timed
//! measurement includes the fault-list build, identically at every
//! width). On a machine narrower than the pool the per-worker sharding
//! threshold grades inline at every width (see DESIGN.md §13) — the
//! JSON then documents the overhead-free fallback rather than the
//! scaling.

use std::fmt::Write as _;
use std::time::Instant;

use bist_bench::{banner, ExperimentArgs};
use bist_core::prelude::*;
use bist_engine::{CoverageCurveSpec, Engine, JobSpec};

struct CircuitScaling {
    name: String,
    patterns: usize,
    faults: usize,
    /// `(threads, seconds)` per measured width.
    times: Vec<(usize, f64)>,
}

fn main() {
    banner(
        "BENCH par",
        "PPSFP fault-simulation scaling across pool widths",
    );
    let args = ExperimentArgs::parse(&["c432", "c3540"]);
    args.warn_fixed_format("bench_par");
    let budget = if args.quick { 500 } else { 2000 };
    let max_threads = if args.threads > 0 {
        args.threads
    } else {
        bist_par::num_threads().max(4)
    };
    let widths: Vec<usize> = (0..)
        .map(|e| 1usize << e)
        .take_while(|&w| w <= max_threads)
        .collect();
    println!("pattern budget {budget}, pool widths {widths:?}\n");

    let poly = MixedSchemeConfig::default().poly;
    let mut results: Vec<CircuitScaling> = Vec::new();
    for source in args.sources() {
        let circuit = source.realize().unwrap_or_else(|e| {
            eprintln!("cannot load circuit: {e}");
            std::process::exit(2);
        });
        let fault_list = FaultList::mixed_model(&circuit);
        let patterns = pseudo_random_patterns(poly, circuit.inputs().len(), budget);

        let mut reference: Option<(f64, usize)> = None;
        let mut bit_reference: Option<FaultSim> = None;
        let mut times: Vec<(usize, f64)> = Vec::new();
        for &w in &widths {
            let engine = Engine::with_threads(w);
            let config = MixedSchemeConfig {
                threads: w,
                ..MixedSchemeConfig::default()
            };
            let spec = || {
                JobSpec::CoverageCurve(CoverageCurveSpec {
                    circuit: source.clone(),
                    config: config.clone(),
                    checkpoints: vec![budget],
                    fault_model: Default::default(),
                })
            };
            // best-of-N: repetition one is the warm-up, the minimum is
            // the measurement
            let reps = if args.quick { 3 } else { 5 };
            let mut seconds = f64::INFINITY;
            let mut result = None;
            for _ in 0..reps {
                let t = Instant::now();
                let r = engine.run(spec()).unwrap_or_else(|e| {
                    eprintln!("coverage job failed: {e}");
                    std::process::exit(2);
                });
                seconds = seconds.min(t.elapsed().as_secs_f64());
                result = Some(r);
            }
            let result = result.expect("at least one repetition");
            let outcome = result.as_coverage_curve().expect("curve outcome");
            let pct = outcome.curve.points()[0].1;
            times.push((w, seconds));
            match &reference {
                None => reference = Some((pct, outcome.fault_universe)),
                Some((serial_pct, universe)) => {
                    assert_eq!(
                        *serial_pct,
                        pct,
                        "{}: width {w} diverged from serial",
                        source.label()
                    );
                    assert_eq!(*universe, outcome.fault_universe);
                }
            }

            // the full contract, untimed: per-fault statuses and
            // first-detection indices must match the one-thread
            // reference bit for bit (coverage_pct alone could mask a
            // same-count-different-faults merge regression)
            let mut sim = FaultSim::new(&circuit, fault_list.clone()).with_threads(w);
            sim.simulate(&patterns);
            match &bit_reference {
                None => bit_reference = Some(sim),
                Some(serial) => {
                    assert_eq!(
                        serial.statuses(),
                        sim.statuses(),
                        "{}: width {w} statuses diverged from serial",
                        source.label()
                    );
                    for i in 0..fault_list.len() {
                        assert_eq!(
                            serial.first_detection(i),
                            sim.first_detection(i),
                            "{}: width {w}, fault {i}",
                            source.label()
                        );
                    }
                }
            }
        }
        let (_, faults) = reference.expect("at least one width measured");
        let serial_s = times[0].1;
        let line: Vec<String> = times
            .iter()
            .map(|&(w, s)| format!("{w}t {s:.3}s ({:.2}x)", serial_s / s))
            .collect();
        println!(
            "{:>6}: {} faults, {} patterns | {}",
            source.label(),
            faults,
            budget,
            line.join(" | ")
        );
        results.push(CircuitScaling {
            name: source.label().to_owned(),
            patterns: budget,
            faults,
            times,
        });
    }

    let json = render_json(budget, &results);
    std::fs::write("BENCH_par.json", &json).expect("writable working directory");
    println!("\nwrote BENCH_par.json ({} bytes)", json.len());
}

fn render_json(budget: usize, results: &[CircuitScaling]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"par_scaling\",\n");
    let _ = writeln!(out, "  \"pattern_budget\": {budget},");
    out.push_str("  \"circuits\": [\n");
    for (i, r) in results.iter().enumerate() {
        let serial_s = r.times[0].1;
        let runs = r
            .times
            .iter()
            .map(|&(w, s)| {
                format!(
                    "{{\"threads\": {w}, \"seconds\": {s:.4}, \"speedup\": {:.3}}}",
                    serial_s / s
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            out,
            "    {{\n      \"circuit\": \"{}\",\n      \"faults\": {},\n      \
             \"patterns\": {},\n      \"runs\": [{}]\n    }}",
            r.name, r.faults, r.patterns, runs
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
