//! **BENCH_par** — scaling of the parallel PPSFP fault-simulation engine
//! across pool widths, with the bit-identity contract enforced on every
//! measurement.
//!
//! ```text
//! cargo run --release -p bist-bench --bin bench_par
//! cargo run --release -p bist-bench --bin bench_par -- --quick
//! cargo run --release -p bist-bench --bin bench_par -- --circuits c3540 --threads 8
//! ```
//!
//! For each circuit the full mixed fault universe is graded against a
//! pseudo-random sequence once per pool width (1, 2, … up to `--threads`
//! or the machine width), asserting after every run that statuses and
//! first-detection indices match the one-thread reference bit for bit.
//! Writes `BENCH_par.json` with per-width wall-times and speedups. On a
//! single-core container every width measures the same engine — the JSON
//! then documents the (absent) parallelism rather than the scaling.

use std::fmt::Write as _;
use std::time::Instant;

use bist_bench::{banner, ExperimentArgs};
use bist_core::prelude::*;

struct CircuitScaling {
    name: String,
    patterns: usize,
    faults: usize,
    /// `(threads, seconds)` per measured width.
    times: Vec<(usize, f64)>,
}

fn main() {
    banner(
        "BENCH par",
        "PPSFP fault-simulation scaling across pool widths",
    );
    let args = ExperimentArgs::parse(&["c432", "c3540"]);
    let budget = if args.quick { 500 } else { 2000 };
    let max_threads = if args.threads > 0 {
        args.threads
    } else {
        bist_par::num_threads().max(4)
    };
    let widths: Vec<usize> = (0..)
        .map(|e| 1usize << e)
        .take_while(|&w| w <= max_threads)
        .collect();
    println!("pattern budget {budget}, pool widths {widths:?}\n");

    let poly = MixedSchemeConfig::default().poly;
    let mut results: Vec<CircuitScaling> = Vec::new();
    for circuit in args.load_circuits() {
        let faults = FaultList::mixed_model(&circuit);
        let patterns = pseudo_random_patterns(poly, circuit.inputs().len(), budget);

        let mut reference: Option<FaultSim> = None;
        let mut times: Vec<(usize, f64)> = Vec::new();
        for &w in &widths {
            let mut sim = FaultSim::new(&circuit, faults.clone()).with_threads(w);
            let t = Instant::now();
            sim.simulate(&patterns);
            let seconds = t.elapsed().as_secs_f64();
            times.push((w, seconds));
            match &reference {
                None => reference = Some(sim),
                Some(serial) => {
                    assert_eq!(
                        serial.statuses(),
                        sim.statuses(),
                        "{}: width {w} diverged from serial",
                        circuit.name()
                    );
                    for i in 0..faults.len() {
                        assert_eq!(
                            serial.first_detection(i),
                            sim.first_detection(i),
                            "{}: width {w}, fault {i}",
                            circuit.name()
                        );
                    }
                }
            }
        }
        let serial_s = times[0].1;
        let line: Vec<String> = times
            .iter()
            .map(|&(w, s)| format!("{w}t {s:.3}s ({:.2}x)", serial_s / s))
            .collect();
        println!(
            "{:>6}: {} faults, {} patterns | {}",
            circuit.name(),
            faults.len(),
            patterns.len(),
            line.join(" | ")
        );
        results.push(CircuitScaling {
            name: circuit.name().to_owned(),
            patterns: patterns.len(),
            faults: faults.len(),
            times,
        });
    }

    let json = render_json(budget, &results);
    std::fs::write("BENCH_par.json", &json).expect("writable working directory");
    println!("\nwrote BENCH_par.json ({} bytes)", json.len());
}

fn render_json(budget: usize, results: &[CircuitScaling]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"par_scaling\",\n");
    let _ = writeln!(out, "  \"pattern_budget\": {budget},");
    out.push_str("  \"circuits\": [\n");
    for (i, r) in results.iter().enumerate() {
        let serial_s = r.times[0].1;
        let runs = r
            .times
            .iter()
            .map(|&(w, s)| {
                format!(
                    "{{\"threads\": {w}, \"seconds\": {s:.4}, \"speedup\": {:.3}}}",
                    serial_s / s
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            out,
            "    {{\n      \"circuit\": \"{}\",\n      \"faults\": {},\n      \
             \"patterns\": {},\n      \"runs\": [{}]\n    }}",
            r.name, r.faults, r.patterns, runs
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
