//! **BENCH_sweep** — wall-time of the trade-off sweep, old one-shot path
//! versus the incremental `BistSession` path, recorded machine-readably
//! so the perf trajectory of the workspace is tracked over time.
//!
//! ```text
//! cargo run --release -p bist-bench --bin bench_sweep
//! cargo run --release -p bist-bench --bin bench_sweep -- --quick
//! cargo run --release -p bist-bench --bin bench_sweep -- --circuits c432
//! cargo run --release -p bist-bench --bin bench_sweep -- --threads 4
//! ```
//!
//! Both paths run through the `bist-engine` job API: the session path is
//! one `JobSpec::Sweep` (a single incremental session), the historical
//! one-shot path is one `JobSpec::SolveAt` per point (a fresh session
//! each, exactly the pre-session behaviour). Writes `BENCH_sweep.json`
//! into the current directory: per circuit the end-to-end sweep
//! wall-times of both paths, the isolated *prefix-grading* wall-times
//! (fault-list construction + pseudo-random fault simulation — the
//! component the session de-quadratifies), the session's work counters
//! and the solved `(p, d)` frontier. Both paths must produce
//! bit-identical solutions — enforced here before the numbers are
//! written. A third pair of legs runs the same sweep on a direct
//! `BistSession` in `CollapseMode::InFlow` (representative-only
//! grading, the default everywhere) versus `CollapseMode::FullUniverse`
//! (the counterfactual): `collapsed_session_speedup` is what collapsing
//! buys inside the exact flow, and the shared `projected_digest` proves
//! both legs commit the same full-universe statuses at every
//! checkpoint.
//!
//! The JSON carries a `schema_version` (currently 2); `bench_check`
//! refuses to compare files of different versions. The emitted
//! `atpg_cache_hits` is the total deterministic-search reuse of the
//! session path: whole top-ups answered for an already-seen frontier
//! (`atpg_frontier_hits`) plus individual PODEM searches answered from
//! the per-fault cube cache (`podem_cache_hits`). The pool width
//! (`--threads`, default `BIST_THREADS`/machine) moves wall-clock only —
//! the *solved results* are bit-identical at every width; compare
//! timings and counters only between runs of the same width.

use std::fmt::Write as _;
use std::time::Instant;

use bist_bench::schema::{Fnv, SCHEMA_VERSION};
use bist_bench::{banner, ExperimentArgs};
use bist_core::prelude::*;
use bist_engine::{CircuitSource, Engine, FaultModel, JobSpec, SolveAtSpec, SweepSpec};

struct CircuitResult {
    name: String,
    session_s: f64,
    oneshot_s: f64,
    grading_session_s: f64,
    grading_oneshot_s: f64,
    collapsed_session_s: f64,
    full_universe_session_s: f64,
    projected_digest: u64,
    stats: SessionStats,
    points: Vec<(usize, usize)>,
}

/// FNV-1a over the full-universe status vector — the cross-leg
/// fingerprint written into the JSON.
fn absorb_statuses(digest: &mut Fnv, statuses: &[FaultStatus]) {
    for s in statuses {
        for byte in format!("{s:?}").bytes() {
            digest.push(byte);
        }
    }
}

fn main() {
    banner(
        "BENCH sweep",
        "incremental JobSpec::Sweep vs point-wise one-shot JobSpec::SolveAt",
    );
    let args = ExperimentArgs::parse(&["c432", "c3540"]);
    args.warn_fixed_format("bench_sweep");
    let prefixes: Vec<usize> = if args.quick {
        vec![0, 50, 100]
    } else {
        vec![0, 100, 200, 500, 1000]
    };
    let config = MixedSchemeConfig {
        threads: args.threads,
        ..MixedSchemeConfig::default()
    };
    let engine = Engine::with_threads(args.threads);
    let threads = engine.threads();
    println!("prefix checkpoints: {prefixes:?}  ({threads} threads)\n");

    let mut results: Vec<CircuitResult> = Vec::new();
    for named_source in args.sources() {
        let name = named_source.label().to_owned();
        // realize once, outside every timed region, and hand all timed
        // jobs the same inline circuit: neither path pays netlist
        // synthesis, so the ratio compares only the flows themselves
        let circuit = named_source.realize().unwrap_or_else(|e| {
            eprintln!("cannot load circuit: {e}");
            std::process::exit(2);
        });
        let source = CircuitSource::Inline(circuit.clone());

        // --- new path: one sweep job = one incremental session ---
        let t = Instant::now();
        let sweep = engine
            .run(JobSpec::Sweep(SweepSpec {
                circuit: source.clone(),
                config: config.clone(),
                prefix_lengths: prefixes.clone(),
                fault_model: FaultModel::default(),
                estimate_first: false,
            }))
            .expect("sweep job succeeds");
        let session_s = t.elapsed().as_secs_f64();
        let sweep = sweep.as_sweep().expect("sweep outcome");
        let stats = sweep.stats;

        // --- old path: a fresh session per point (the historical
        // one-shot behaviour), as individual solve-at jobs ---
        let t = Instant::now();
        let mut oneshot = Vec::with_capacity(prefixes.len());
        for &p in &prefixes {
            let solved = engine
                .run(JobSpec::SolveAt(SolveAtSpec {
                    circuit: source.clone(),
                    config: config.clone(),
                    prefix_len: p,
                    fault_model: FaultModel::default(),
                    estimate_first: false,
                }))
                .expect("solve job succeeds");
            oneshot.push(
                solved
                    .as_solve_at()
                    .expect("solve outcome")
                    .solution
                    .clone(),
            );
        }
        let oneshot_s = t.elapsed().as_secs_f64();

        // both paths must agree bit-for-bit before the numbers count
        for (a, b) in sweep.summary.solutions().iter().zip(&oneshot) {
            assert_eq!(a.det_len, b.det_len, "paths diverge at p={}", a.prefix_len);
            assert_eq!(
                a.generator.deterministic(),
                b.generator.deterministic(),
                "paths diverge at p={}",
                a.prefix_len
            );
        }

        // --- the component the session de-quadratifies, in isolation:
        // fault-list construction + pseudo-random prefix grading ---
        let t = Instant::now();
        let curve = engine
            .run(JobSpec::CoverageCurve(bist_engine::CoverageCurveSpec {
                circuit: source.clone(),
                config: config.clone(),
                checkpoints: prefixes.clone(),
                fault_model: FaultModel::default(),
            }))
            .expect("curve job succeeds");
        let grading_session_s = t.elapsed().as_secs_f64();
        let curve = curve.as_coverage_curve().expect("curve outcome");

        let width = circuit.inputs().len();
        let poly = config.poly;
        let t = Instant::now();
        let mut oneshot_curve = Vec::with_capacity(prefixes.len());
        for &p in &prefixes {
            // the historical per-point restart: rebuild the universe,
            // regenerate and re-grade the whole prefix
            let mut sim = FaultSim::new(&circuit, FaultList::mixed_model(&circuit))
                .with_threads(config.threads);
            sim.simulate(&pseudo_random_patterns(poly, width, p));
            oneshot_curve.push((p, sim.report().coverage_pct()));
        }
        let grading_oneshot_s = t.elapsed().as_secs_f64();
        assert_eq!(
            curve.curve.points(),
            &oneshot_curve[..],
            "grading paths diverge"
        );

        // --- representative-only grading in the exact flow vs the
        // full-universe counterfactual: the same sweep on one direct
        // `BistSession` per collapse mode. The projection at every
        // checkpoint ties the two legs bit-for-bit, so the timing ratio
        // is also an identity check. Each leg is timed twice on a fresh
        // session and the minimum kept: the legs are deterministic, so
        // min-of-N isolates the leg's true cost from scheduler and
        // allocator jitter, which on shared boxes reaches double digits. ---
        let t = Instant::now();
        let mut collapsed_session =
            BistSession::with_mode(&circuit, config.clone(), CollapseMode::InFlow);
        let collapsed_summary = collapsed_session
            .sweep(&prefixes)
            .expect("collapsed sweep succeeds");
        let mut collapsed_session_s = t.elapsed().as_secs_f64();
        {
            let mut retry = BistSession::with_mode(&circuit, config.clone(), CollapseMode::InFlow);
            let t = Instant::now();
            retry.sweep(&prefixes).expect("collapsed sweep succeeds");
            collapsed_session_s = collapsed_session_s.min(t.elapsed().as_secs_f64());
        }
        // the default mode IS the engine path above: the committed
        // solutions must be bit-identical
        for (a, b) in sweep
            .summary
            .solutions()
            .iter()
            .zip(collapsed_summary.solutions())
        {
            assert_eq!(
                a.det_len, b.det_len,
                "collapsed session diverges from the engine sweep at p={}",
                a.prefix_len
            );
            assert_eq!(
                a.generator.deterministic(),
                b.generator.deterministic(),
                "collapsed session diverges from the engine sweep at p={}",
                a.prefix_len
            );
        }

        let t = Instant::now();
        let mut full_session =
            BistSession::with_mode(&circuit, config.clone(), CollapseMode::FullUniverse);
        full_session
            .sweep(&prefixes)
            .expect("full-universe sweep succeeds");
        let mut full_universe_session_s = t.elapsed().as_secs_f64();
        {
            let mut retry =
                BistSession::with_mode(&circuit, config.clone(), CollapseMode::FullUniverse);
            let t = Instant::now();
            retry
                .sweep(&prefixes)
                .expect("full-universe sweep succeeds");
            full_universe_session_s = full_universe_session_s.min(t.elapsed().as_secs_f64());
        }

        // both legs must agree on the full-universe statuses at every
        // checkpoint; the digest lands in the JSON so any drift is
        // visible across runs and machines
        let mut digest = Fnv::new();
        for &p in &prefixes {
            let a = collapsed_session.full_universe_statuses_at(p);
            let b = full_session.full_universe_statuses_at(p);
            assert_eq!(a, b, "full-universe projection diverges at p={p}");
            absorb_statuses(&mut digest, &a);
        }
        let projected_digest = digest.finish();

        println!(
            "{:>6}: collapsed session {collapsed_session_s:6.2}s vs full universe \
             {full_universe_session_s:6.2}s ({:4.2}x), digest {projected_digest:016x}",
            name,
            full_universe_session_s / collapsed_session_s,
        );
        println!(
            "{:>6}: sweep {session_s:8.2}s vs {oneshot_s:8.2}s ({:4.2}x) | prefix grading \
             {grading_session_s:6.2}s vs {grading_oneshot_s:6.2}s ({:4.2}x) | patterns {} \
             once vs {} re-graded | ATPG {} runs, {} frontier hits, {} cube hits",
            name,
            oneshot_s / session_s,
            grading_oneshot_s / grading_session_s,
            stats.patterns_simulated,
            prefixes.iter().sum::<usize>(),
            stats.atpg_runs,
            stats.atpg_cache_hits,
            stats.podem_cache_hits,
        );
        results.push(CircuitResult {
            name,
            session_s,
            oneshot_s,
            grading_session_s,
            grading_oneshot_s,
            collapsed_session_s,
            full_universe_session_s,
            projected_digest,
            stats,
            points: sweep
                .summary
                .solutions()
                .iter()
                .map(|s| (s.prefix_len, s.det_len))
                .collect(),
        });
    }

    let json = render_json(&prefixes, threads, &results);
    std::fs::write("BENCH_sweep.json", &json).expect("writable working directory");
    println!("\nwrote BENCH_sweep.json ({} bytes)", json.len());
}

fn render_json(prefixes: &[usize], threads: usize, results: &[CircuitResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"sweep\",\n");
    let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(
        out,
        "  \"prefix_lengths\": [{}],",
        prefixes
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    out.push_str("  \"circuits\": [\n");
    for (i, r) in results.iter().enumerate() {
        let points = r
            .points
            .iter()
            .map(|(p, d)| format!("{{\"p\": {p}, \"d\": {d}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            out,
            "    {{\n      \"circuit\": \"{}\",\n      \"session_seconds\": {:.4},\n      \
             \"oneshot_seconds\": {:.4},\n      \"speedup\": {:.3},\n      \
             \"prefix_grading_session_seconds\": {:.4},\n      \
             \"prefix_grading_oneshot_seconds\": {:.4},\n      \
             \"prefix_grading_speedup\": {:.3},\n      \
             \"collapsed_session_seconds\": {:.4},\n      \
             \"full_universe_session_seconds\": {:.4},\n      \
             \"collapsed_session_speedup\": {:.3},\n      \
             \"projected_digest\": \"{:016x}\",\n      \
             \"patterns_simulated\": {},\n      \"patterns_resimulated\": {},\n      \
             \"atpg_runs\": {},\n      \"atpg_cache_hits\": {},\n      \
             \"atpg_frontier_hits\": {},\n      \"podem_cache_hits\": {},\n      \
             \"snapshots_taken\": {},\n      \"snapshots_skipped\": {},\n      \
             \"points\": [{}]\n    }}",
            r.name,
            r.session_s,
            r.oneshot_s,
            r.oneshot_s / r.session_s,
            r.grading_session_s,
            r.grading_oneshot_s,
            r.grading_oneshot_s / r.grading_session_s,
            r.collapsed_session_s,
            r.full_universe_session_s,
            r.full_universe_session_s / r.collapsed_session_s,
            r.projected_digest,
            r.stats.patterns_simulated,
            r.stats.patterns_resimulated,
            r.stats.atpg_runs,
            r.stats.atpg_cache_hits + r.stats.podem_cache_hits,
            r.stats.atpg_cache_hits,
            r.stats.podem_cache_hits,
            r.stats.snapshots_taken,
            r.stats.snapshots_skipped,
            points
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
