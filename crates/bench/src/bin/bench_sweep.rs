//! **BENCH_sweep** — wall-time of the trade-off sweep, old one-shot path
//! versus the incremental `BistSession` path, recorded machine-readably
//! so the perf trajectory of the workspace is tracked over time.
//!
//! ```text
//! cargo run --release -p bist-bench --bin bench_sweep
//! cargo run --release -p bist-bench --bin bench_sweep -- --quick
//! cargo run --release -p bist-bench --bin bench_sweep -- --circuits c432
//! cargo run --release -p bist-bench --bin bench_sweep -- --threads 4
//! ```
//!
//! Writes `BENCH_sweep.json` into the current directory: per circuit the
//! end-to-end sweep wall-times of both paths, the isolated
//! *prefix-grading* wall-times (fault-list construction + pseudo-random
//! fault simulation — the component the session de-quadratifies; the
//! end-to-end sweep on these ladders is dominated by the per-frontier
//! ATPG top-ups), the session's work counters (patterns simulated once
//! vs. re-graded per point, ATPG runs vs. cached answers) and the solved
//! `(p, d)` frontier. Both paths produce bit-identical solutions —
//! enforced here before the numbers are written.
//!
//! The emitted `atpg_cache_hits` is the total deterministic-search reuse
//! of the session path: whole top-ups answered for an already-seen
//! frontier (`atpg_frontier_hits`) plus individual PODEM searches
//! answered from the per-fault cube cache inside freshly generated
//! top-ups (`podem_cache_hits`). The pool width (`--threads`, default
//! `BIST_THREADS`/machine) moves wall-clock only — the *solved results*
//! (points, coverage, sequences) are bit-identical at every width. The
//! work counters are not part of that contract: cache-hit counts measure
//! realized reuse, and a wider pool's speculative searches can seed the
//! cache with extra entries that later score as hits (e.g. 400 hits at 4
//! threads vs 397 at 1 for the same c432 sweep). Compare timings and
//! counters only between runs of the same width; `sweep_digest` is the
//! width-independent fingerprint.

use std::fmt::Write as _;
use std::time::Instant;

use bist_bench::{banner, ExperimentArgs};
use bist_core::prelude::*;

struct CircuitResult {
    name: String,
    session_s: f64,
    oneshot_s: f64,
    grading_session_s: f64,
    grading_oneshot_s: f64,
    stats: SessionStats,
    points: Vec<(usize, usize)>,
}

fn main() {
    banner(
        "BENCH sweep",
        "incremental BistSession::sweep vs point-wise one-shot solves",
    );
    let args = ExperimentArgs::parse(&["c432", "c3540"]);
    let prefixes: Vec<usize> = if args.quick {
        vec![0, 50, 100]
    } else {
        vec![0, 100, 200, 500, 1000]
    };
    let config = MixedSchemeConfig {
        threads: args.threads,
        ..MixedSchemeConfig::default()
    };
    let threads = bist_par::Pool::resolve(config.threads).threads();
    println!("prefix checkpoints: {prefixes:?}  ({threads} threads)\n");

    let mut results: Vec<CircuitResult> = Vec::new();
    for circuit in args.load_circuits() {
        // --- new path: one session, one incremental pass ---
        let t = Instant::now();
        let mut session = BistSession::new(&circuit, config.clone());
        let summary = session.sweep(&prefixes).expect("sweep succeeds");
        let session_s = t.elapsed().as_secs_f64();
        let stats = session.stats();

        // --- old path: the historical MixedScheme::solve(p) per point ---
        #[allow(deprecated)]
        let scheme = MixedScheme::new(&circuit, config.clone());
        let t = Instant::now();
        let mut oneshot = Vec::with_capacity(prefixes.len());
        for &p in &prefixes {
            #[allow(deprecated)]
            let s = scheme.solve(p).expect("solve succeeds");
            oneshot.push(s);
        }
        let oneshot_s = t.elapsed().as_secs_f64();

        // both paths must agree bit-for-bit before the numbers count
        for (a, b) in summary.solutions().iter().zip(&oneshot) {
            assert_eq!(a.det_len, b.det_len, "paths diverge at p={}", a.prefix_len);
            assert_eq!(
                a.generator.deterministic(),
                b.generator.deterministic(),
                "paths diverge at p={}",
                a.prefix_len
            );
        }

        // --- the component the session de-quadratifies, in isolation:
        // fault-list construction + pseudo-random prefix grading ---
        let t = Instant::now();
        let mut grading = BistSession::new(&circuit, config.clone());
        let curve = grading.random_coverage_curve(&prefixes);
        let grading_session_s = t.elapsed().as_secs_f64();

        let width = circuit.inputs().len();
        let poly = config.poly;
        let t = Instant::now();
        let mut oneshot_curve = Vec::with_capacity(prefixes.len());
        for &p in &prefixes {
            // the historical per-point restart: rebuild the universe,
            // regenerate and re-grade the whole prefix
            let mut sim = FaultSim::new(&circuit, FaultList::mixed_model(&circuit))
                .with_threads(config.threads);
            sim.simulate(&pseudo_random_patterns(poly, width, p));
            oneshot_curve.push((p, sim.report().coverage_pct()));
        }
        let grading_oneshot_s = t.elapsed().as_secs_f64();
        assert_eq!(curve.points(), &oneshot_curve[..], "grading paths diverge");

        println!(
            "{:>6}: sweep {session_s:8.2}s vs {oneshot_s:8.2}s ({:4.2}x) | prefix grading \
             {grading_session_s:6.2}s vs {grading_oneshot_s:6.2}s ({:4.2}x) | patterns {} \
             once vs {} re-graded | ATPG {} runs, {} frontier hits, {} cube hits",
            circuit.name(),
            oneshot_s / session_s,
            grading_oneshot_s / grading_session_s,
            stats.patterns_simulated,
            prefixes.iter().sum::<usize>(),
            stats.atpg_runs,
            stats.atpg_cache_hits,
            stats.podem_cache_hits,
        );
        results.push(CircuitResult {
            name: circuit.name().to_owned(),
            session_s,
            oneshot_s,
            grading_session_s,
            grading_oneshot_s,
            stats,
            points: summary
                .solutions()
                .iter()
                .map(|s| (s.prefix_len, s.det_len))
                .collect(),
        });
    }

    let json = render_json(&prefixes, threads, &results);
    std::fs::write("BENCH_sweep.json", &json).expect("writable working directory");
    println!("\nwrote BENCH_sweep.json ({} bytes)", json.len());
}

fn render_json(prefixes: &[usize], threads: usize, results: &[CircuitResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"sweep\",\n");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(
        out,
        "  \"prefix_lengths\": [{}],",
        prefixes
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    out.push_str("  \"circuits\": [\n");
    for (i, r) in results.iter().enumerate() {
        let points = r
            .points
            .iter()
            .map(|(p, d)| format!("{{\"p\": {p}, \"d\": {d}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            out,
            "    {{\n      \"circuit\": \"{}\",\n      \"session_seconds\": {:.4},\n      \
             \"oneshot_seconds\": {:.4},\n      \"speedup\": {:.3},\n      \
             \"prefix_grading_session_seconds\": {:.4},\n      \
             \"prefix_grading_oneshot_seconds\": {:.4},\n      \
             \"prefix_grading_speedup\": {:.3},\n      \
             \"patterns_simulated\": {},\n      \"patterns_resimulated\": {},\n      \
             \"atpg_runs\": {},\n      \"atpg_cache_hits\": {},\n      \
             \"atpg_frontier_hits\": {},\n      \"podem_cache_hits\": {},\n      \
             \"snapshots_taken\": {},\n      \"snapshots_skipped\": {},\n      \
             \"points\": [{}]\n    }}",
            r.name,
            r.session_s,
            r.oneshot_s,
            r.oneshot_s / r.session_s,
            r.grading_session_s,
            r.grading_oneshot_s,
            r.grading_oneshot_s / r.grading_session_s,
            r.stats.patterns_simulated,
            r.stats.patterns_resimulated,
            r.stats.atpg_runs,
            r.stats.atpg_cache_hits + r.stats.podem_cache_hits,
            r.stats.atpg_cache_hits,
            r.stats.podem_cache_hits,
            r.stats.snapshots_taken,
            r.stats.snapshots_skipped,
            points
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
