//! **Extension I** — the \[Hwa93\] cross-check: how well do the paper's
//! stuck-at/stuck-open-derived BIST sequences detect *bridging* defects?
//!
//! The paper's coverage ceiling cites \[Hwa93\] and its §3 lists Iddq
//! merging among BIST's advantages. This experiment samples a
//! non-feedback wired-AND/wired-OR short universe per circuit and grades
//! the pure-random and mixed sequences against it, under both detection
//! criteria: voltage-sense (propagate to an output) and Iddq (merely
//! excite the short).
//!
//! ```text
//! cargo run --release -p bist-bench --bin ext_bridging_coverage
//! cargo run --release -p bist-bench --bin ext_bridging_coverage -- --circuits c432 --quick
//! ```

use bist_bench::{banner, ExperimentArgs};
use bist_bridging::{BridgingFaultList, BridgingSim};
use bist_core::prelude::*;

fn main() {
    banner(
        "Extension I",
        "bridging-fault coverage of stuck-at-derived BIST sequences ([Hwa93] cross-check)",
    );
    let args = ExperimentArgs::parse(&["c432", "c880"]);
    args.warn_fixed_format("ext_bridging_coverage");
    let samples = if args.quick { 150 } else { 400 };
    for circuit in args.load_circuits() {
        let bridges = BridgingFaultList::sample(&circuit, samples, 0x1dd9);
        let mut session = BistSession::new(&circuit, MixedSchemeConfig::default());
        println!(
            "\n{} — {} sampled non-feedback bridges",
            circuit.name(),
            bridges.len()
        );
        println!(
            "{:<26} {:>9} {:>12} {:>10}",
            "sequence", "patterns", "voltage %", "Iddq %"
        );

        let p = if args.quick { 128 } else { 512 };
        let random_only = session.pseudo_random_patterns(p);
        let mut sim = BridgingSim::new(&circuit, bridges.clone());
        sim.simulate(&random_only);
        let (rand_v, rand_q) = (sim.report().coverage_pct(), sim.iddq_coverage_pct());
        println!(
            "{:<26} {:>9} {:>11.2}% {:>9.2}%",
            format!("pseudo-random (p={p})"),
            p,
            rand_v,
            rand_q
        );

        let solution = session.solve_at(p).expect("solvable");
        let (prefix, suffix) = solution.generator.replay();
        let mixed: Vec<Pattern> = prefix.into_iter().chain(suffix).collect();
        let mixed_len = mixed.len();
        let mut sim = BridgingSim::new(&circuit, bridges.clone());
        sim.simulate(&mixed);
        let (mix_v, mix_q) = (sim.report().coverage_pct(), sim.iddq_coverage_pct());
        println!(
            "{:<26} {:>9} {:>11.2}% {:>9.2}%",
            format!("mixed (p={p}, d={})", solution.det_len),
            mixed_len,
            mix_v,
            mix_q
        );

        assert!(
            mix_v >= rand_v - 1e-9,
            "the mixed sequence extends the random prefix, so bridge coverage \
             cannot drop: {mix_v:.2} vs {rand_v:.2}"
        );
        assert!(mix_q >= mix_v, "Iddq (excitation) dominates voltage-sense");
    }
    println!("\nShape claim ([Hwa93]): stuck-at-derived sequences detect a large");
    println!("fraction of realistic shorts, and the Iddq criterion — excitation");
    println!("without propagation — always reads higher than voltage-sense, which");
    println!("is exactly why the paper lists Iddq merging among BIST's advantages.");
}
