//! **Extension I** — the \[Hwa93\] cross-check: how well do the paper's
//! stuck-at/stuck-open-derived BIST sequences detect *bridging* defects?
//!
//! The paper's coverage ceiling cites \[Hwa93\] and its §3 lists Iddq
//! merging among BIST's advantages. This experiment samples a
//! non-feedback wired-AND/wired-OR short universe per circuit and grades
//! the pure-random and mixed sequences against it, under both detection
//! criteria: voltage-sense (propagate to an output) and Iddq (merely
//! excite the short).
//!
//! The voltage numbers come straight from engine jobs —
//! `JobSpec::CoverageCurve` and `JobSpec::SolveAt` with
//! `fault_model: bridging` — the exact path `bist curve/solve <c>
//! --fault-model bridging:N` runs. Only the Iddq column (a criterion
//! the engine's voltage-sense outcomes don't carry) is re-graded here,
//! with [`bist_faultmodel::ModelSim`] over the same sequences.
//!
//! ```text
//! cargo run --release -p bist-bench --bin ext_bridging_coverage
//! cargo run --release -p bist-bench --bin ext_bridging_coverage -- --circuits c432 --quick
//! ```

use bist_bench::{banner, ExperimentArgs};
use bist_core::prelude::*;
use bist_engine::{CircuitSource, CoverageCurveSpec, Engine, FaultModel, JobSpec, SolveAtSpec};
use bist_faultmodel::ModelSim;

/// Grades `patterns` under the Iddq criterion: a short counts as soon
/// as it is excited, whether or not the discrepancy reaches an output.
fn iddq_pct(circuit: &Circuit, model: FaultModel, patterns: &[Pattern]) -> f64 {
    let mut sim = ModelSim::new(circuit, model);
    sim.simulate(patterns);
    sim.iddq_coverage_pct()
        .expect("the bridging model defines an Iddq criterion")
}

fn main() {
    banner(
        "Extension I",
        "bridging-fault coverage of stuck-at-derived BIST sequences ([Hwa93] cross-check)",
    );
    let args = ExperimentArgs::parse(&["c432", "c880"]);
    args.warn_fixed_format("ext_bridging_coverage");
    let samples: u32 = if args.quick { 150 } else { 400 };
    let model = FaultModel::Bridging {
        pairs: samples,
        seed: 0x1dd9,
    };
    let p = if args.quick { 128 } else { 512 };
    let engine = Engine::with_threads(args.threads);
    let config = MixedSchemeConfig {
        threads: args.threads,
        ..MixedSchemeConfig::default()
    };
    for circuit in args.load_circuits() {
        let source = CircuitSource::Inline(circuit.clone());
        println!(
            "\n{} — {} sampled non-feedback bridges",
            circuit.name(),
            model.universe_len(&circuit)
        );
        println!(
            "{:<26} {:>9} {:>12} {:>10}",
            "sequence", "patterns", "voltage %", "Iddq %"
        );

        let curve = engine
            .run(JobSpec::CoverageCurve(CoverageCurveSpec {
                circuit: source.clone(),
                config: config.clone(),
                checkpoints: vec![p],
                fault_model: model,
            }))
            .expect("curve job succeeds");
        let curve = curve.as_coverage_curve().expect("curve outcome");
        let (_, rand_v) = curve.curve.points()[0];
        let width = circuit.inputs().len();
        let random_only = pseudo_random_patterns(config.poly, width, p);
        let rand_q = iddq_pct(&circuit, model, &random_only);
        println!(
            "{:<26} {:>9} {:>11.2}% {:>9.2}%",
            format!("pseudo-random (p={p})"),
            p,
            rand_v,
            rand_q
        );

        let solved = engine
            .run(JobSpec::SolveAt(SolveAtSpec {
                circuit: source,
                config: config.clone(),
                prefix_len: p,
                fault_model: model,
                estimate_first: false,
            }))
            .expect("solve job succeeds");
        let solution = &solved.as_solve_at().expect("solve outcome").solution;
        let (prefix, suffix) = solution.generator.replay();
        let mixed: Vec<Pattern> = prefix.into_iter().chain(suffix).collect();
        let (mix_v, mix_q) = (
            solution.coverage.coverage_pct(),
            iddq_pct(&circuit, model, &mixed),
        );
        println!(
            "{:<26} {:>9} {:>11.2}% {:>9.2}%",
            format!("mixed (p={p}, d={})", solution.det_len),
            mixed.len(),
            mix_v,
            mix_q
        );

        assert!(
            mix_v >= rand_v - 1e-9,
            "the mixed sequence extends the random prefix, so bridge coverage \
             cannot drop: {mix_v:.2} vs {rand_v:.2}"
        );
        assert!(mix_q >= mix_v, "Iddq (excitation) dominates voltage-sense");
    }
    println!("\nShape claim ([Hwa93]): stuck-at-derived sequences detect a large");
    println!("fraction of realistic shorts, and the Iddq criterion — excitation");
    println!("without propagation — always reads higher than voltage-sense, which");
    println!("is exactly why the paper lists Iddq merging among BIST's advantages.");
}
