//! **Extension D** — the mixed-scheme trade-off under the transition
//! (delay) fault model.
//!
//! The paper motivates the mixed scheme with delay faults (§2.2, §3.1)
//! but evaluates only stuck-at + stuck-open. This experiment re-runs the
//! Figure 5 sweep — coverage and deterministic top-up size versus
//! pseudo-random prefix length — under the gate-level transition fault
//! model, where every deterministic test is an ordered two-pattern pair
//! that the LFSROM's order-preserving replay applies verbatim.
//!
//! ```text
//! cargo run --release -p bist-bench --bin ext_delay_coverage
//! cargo run --release -p bist-bench --bin ext_delay_coverage -- --circuits c432 --quick
//! ```

use bist_bench::{banner, ExperimentArgs};
use bist_delay::{DelayAtpgOptions, DelayTestGenerator, TransitionFaultList};
use bist_lfsr::{paper_poly, pseudo_random_patterns};

fn main() {
    banner(
        "Extension D",
        "transition-fault coverage vs mixed sequence composition",
    );
    let args = ExperimentArgs::parse(&["c880", "c1355"]);
    args.warn_fixed_format("ext_delay_coverage");
    let prefixes: &[usize] = if args.quick {
        &[0, 64]
    } else {
        &[0, 64, 256, 1024]
    };
    for circuit in args.load_circuits() {
        let width = circuit.inputs().len();
        let faults = TransitionFaultList::universe(&circuit);
        println!("\n{} — {} transition faults", circuit.name(), faults.len());
        println!(
            "{:>6}  {:>12}  {:>12}  {:>12}  {:>12}",
            "p", "prefix cov %", "top-up d", "final cov %", "redundant"
        );
        let mut last_d = usize::MAX;
        for &p in prefixes {
            let prefix = pseudo_random_patterns(paper_poly(), width, p);
            let run = DelayTestGenerator::new(
                &circuit,
                faults.clone(),
                DelayAtpgOptions {
                    prefix,
                    ..DelayAtpgOptions::default()
                },
            )
            .run();
            let prefix_cov = 100.0 * run.prefix_detected as f64 / run.report.total().max(1) as f64;
            println!(
                "{:>6}  {:>11.2}%  {:>12}  {:>11.2}%  {:>12}",
                p,
                prefix_cov,
                run.num_patterns(),
                run.report.coverage_pct(),
                run.report.redundant
            );
            assert!(
                run.num_patterns() <= last_d.saturating_add(6),
                "top-up must shrink as the prefix grows (compaction jitter aside)"
            );
            last_d = run.num_patterns();
        }
    }
    println!("\nShape claim: like the paper's Figure 5, every prefix length reaches");
    println!("(essentially) the same final coverage; the deterministic pair count d");
    println!("falls monotonically with p.");
}
