//! **Extension D** — the mixed-scheme trade-off under the transition
//! (delay) fault model.
//!
//! The paper motivates the mixed scheme with delay faults (§2.2, §3.1)
//! but evaluates only stuck-at + stuck-open. This experiment re-runs the
//! Figure 5 sweep — coverage and deterministic top-up size versus
//! pseudo-random prefix length — under the gate-level transition fault
//! model, where every deterministic test is an ordered two-pattern pair
//! that the LFSROM's order-preserving replay applies verbatim.
//!
//! The whole experiment is one `JobSpec::Sweep` with
//! `fault_model: transition` — the exact code path `bist sweep <c>
//! --fault-model transition` runs, so these numbers cannot drift from
//! what users measure.
//!
//! ```text
//! cargo run --release -p bist-bench --bin ext_delay_coverage
//! cargo run --release -p bist-bench --bin ext_delay_coverage -- --circuits c432 --quick
//! ```

use bist_bench::{banner, ExperimentArgs};
use bist_engine::{Engine, FaultModel, JobSpec, MixedSchemeConfig, SweepSpec};

fn main() {
    banner(
        "Extension D",
        "transition-fault coverage vs mixed sequence composition",
    );
    let args = ExperimentArgs::parse(&["c880", "c1355"]);
    args.warn_fixed_format("ext_delay_coverage");
    let prefixes: &[usize] = if args.quick {
        &[0, 64]
    } else {
        &[0, 64, 256, 1024]
    };
    let engine = Engine::with_threads(args.threads);
    for source in args.sources() {
        let outcome = engine
            .run(JobSpec::Sweep(SweepSpec {
                circuit: source.clone(),
                config: MixedSchemeConfig {
                    threads: args.threads,
                    ..MixedSchemeConfig::default()
                },
                prefix_lengths: prefixes.to_vec(),
                fault_model: FaultModel::Transition,
                estimate_first: false,
            }))
            .unwrap_or_else(|e| {
                eprintln!("sweep failed: {e}");
                std::process::exit(2);
            });
        let sweep = outcome.as_sweep().expect("sweep outcome");
        let universe = sweep
            .summary
            .solutions()
            .first()
            .map_or(0, |s| s.coverage.total());
        println!("\n{} — {} transition faults", sweep.circuit, universe);
        println!(
            "{:>6}  {:>12}  {:>12}  {:>12}  {:>12}",
            "p", "prefix cov %", "top-up d", "final cov %", "redundant"
        );
        let mut last_d = usize::MAX;
        for solution in sweep.summary.solutions() {
            println!(
                "{:>6}  {:>11.2}%  {:>12}  {:>11.2}%  {:>12}",
                solution.prefix_len,
                solution.prefix_coverage.coverage_pct(),
                solution.det_len,
                solution.coverage.coverage_pct(),
                solution.coverage.redundant
            );
            assert!(
                solution.det_len <= last_d.saturating_add(12),
                "top-up must shrink as the prefix grows (compaction jitter aside)"
            );
            last_d = solution.det_len;
        }
    }
    println!("\nShape claim: like the paper's Figure 5, every prefix length reaches");
    println!("(essentially) the same final coverage; the deterministic pair count d");
    println!("falls monotonically with p.");
}
