//! **Extension S** — the mixed scheme on scan-wrapped sequential
//! circuits, reported in tester clocks.
//!
//! The paper's introduction motivates BIST through scan chains but
//! evaluates only combinational ISCAS-85 circuits. This experiment runs
//! the complete flow on sequential ISCAS-89-profile circuits: full-scan
//! insertion (`bist-scan`), cycle-accurate test-view equivalence, the
//! mixed scheme on the view, and the chain-multiplied test time.
//!
//! ```text
//! cargo run --release -p bist-bench --bin ext_scan_flow
//! cargo run --release -p bist-bench --bin ext_scan_flow -- --quick
//! ```

use bist_bench::banner;
use bist_core::prelude::*;
use bist_scan::ScanDesign;

fn main() {
    banner(
        "Extension S",
        "mixed BIST on scan-wrapped sequential circuits (ISCAS-89 profiles)",
    );
    let quick = std::env::args().any(|a| a == "--quick");
    let names: &[&str] = if quick {
        &["s27", "s298"]
    } else {
        &["s27", "s298", "s344", "s641"]
    };
    for name in names {
        let sequential =
            bist_netlist::iscas89::circuit(name).unwrap_or_else(|| panic!("unknown `{name}`"));
        let scan = ScanDesign::insert(&sequential).expect("sequential circuit");
        assert_eq!(
            scan.verify(100, 1995),
            None,
            "{name}: test view must be cycle-accurate"
        );
        let mut session = BistSession::new(scan.test_view(), MixedSchemeConfig::default());
        println!(
            "\n{name}: {} flip-flops, {} gates, chain overhead {:.4} mm²",
            sequential.num_dffs(),
            sequential.num_gates(),
            scan.scan_overhead_mm2(&AreaModel::es2_1um())
        );
        println!(
            "{:>6}  {:>6}  {:>12}  {:>10}  {:>14}",
            "p", "d", "coverage %", "gen mm²", "tester clocks"
        );
        let mut last_area = f64::INFINITY;
        let mut coverages: Vec<f64> = Vec::new();
        for p in [0usize, 128, 512] {
            let solution = session.solve_at(p).expect("solvable");
            assert!(solution.generator.verify(), "{name}: replay must hold");
            println!(
                "{:>6}  {:>6}  {:>11.2}%  {:>10.3}  {:>14}",
                solution.prefix_len,
                solution.det_len,
                solution.coverage.coverage_pct(),
                solution.generator_area_mm2,
                scan.clocks_for(solution.total_len())
            );
            // tiny circuits invert the trade-off (the LFSR dominates the
            // whole generator; see EXPERIMENTS.md finding 4), so monotone
            // shrink is only a claim for CUTs wider than the LFSR
            if scan.pattern_width() > 16 {
                assert!(
                    solution.generator_area_mm2 <= last_area + 1e-9,
                    "{name}: generator must shrink with the prefix"
                );
            }
            last_area = solution.generator_area_mm2;
            coverages.push(solution.coverage.coverage_pct());
        }
        let spread = coverages.iter().cloned().fold(f64::MIN, f64::max)
            - coverages.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread < 1.5,
            "{name}: all compositions reach the same coverage"
        );
    }
    println!("\nShape claim: the paper's Figure 7 cost fall carries over unchanged to");
    println!("scan designs; the chain converts patterns to clocks at a fixed rate, so");
    println!("the (p, d) trade-off is also a tester-time trade-off.");
}
