//! **Extension B** — bake-off of the TPG architectures the paper's §1
//! surveys, on equal terms.
//!
//! The paper's Table 1 prices only the two extremes (full-deterministic
//! LFSROM vs plain LFSR). This experiment adds the surveyed baselines —
//! store-and-generate ROM, counter-addressed PLA embedding, hybrid
//! 90/150 cellular automaton, weighted random, multiple-polynomial LFSR
//! reseeding — each encoding the *same* ATPG test set or spending the
//! *same* random pattern budget, and re-grades every row by fault
//! simulation of the hardware's actual output. One `JobSpec::Bakeoff`
//! per circuit, batched across the engine pool.
//!
//! ```text
//! cargo run --release -p bist-bench --bin ext_tpg_bakeoff
//! cargo run --release -p bist-bench --bin ext_tpg_bakeoff -- --circuits c880 --quick
//! ```

use bist_bench::{banner, ExperimentArgs};
use bist_engine::{Engine, JobSpec};

fn main() {
    banner(
        "Extension B",
        "TPG architecture bake-off (area vs test length vs coverage)",
    );
    let args = ExperimentArgs::parse(&["c432", "c880", "c1355"]);
    args.warn_fixed_format("ext_tpg_bakeoff");
    let random_length = if args.quick { 200 } else { 1000 };
    let engine = Engine::with_threads(args.threads);
    let jobs: Vec<JobSpec> = args
        .sources()
        .into_iter()
        .map(|source| JobSpec::bakeoff(source, random_length))
        .collect();
    for result in engine.run_batch(jobs) {
        let result = result.unwrap_or_else(|e| {
            eprintln!("bakeoff job failed: {e}");
            std::process::exit(2);
        });
        let outcome = result.as_bakeoff().expect("bakeoff outcome");
        let bakeoff = &outcome.bakeoff;
        println!(
            "\n{} — {} deterministic patterns, ceiling {:.2} %, ATPG {:.2} %",
            outcome.circuit,
            bakeoff.deterministic_patterns,
            bakeoff.achievable_pct,
            bakeoff.atpg_coverage_pct
        );
        println!(
            "{:<20} {:>8} {:>10} {:>10}   kind",
            "architecture", "patterns", "area mm²", "coverage"
        );
        for row in &bakeoff.rows {
            println!(
                "{:<20} {:>8} {:>10.3} {:>9.2}%   {}",
                row.architecture,
                row.test_length,
                row.area_mm2,
                row.coverage_pct,
                if row.deterministic {
                    "deterministic"
                } else {
                    "pseudo-random"
                }
            );
        }
        // the paper's two extreme claims, re-checked per circuit
        let lfsr = bakeoff.row("lfsr").expect("always present");
        for row in &bakeoff.rows {
            assert!(
                row.area_mm2 >= lfsr.area_mm2,
                "{} undercuts the plain LFSR",
                row.architecture
            );
        }
    }
    println!("\nShape claim: the LFSR is always the cheapest and never reaches the");
    println!("ceiling; all deterministic encoders reproduce the ATPG coverage at a");
    println!("silicon price that tracks how much test-set structure they can share.");
}
