//! **Figure 4** — C3540 fault coverage versus pseudo-random sequence
//! length.
//!
//! The paper applies an LFSR sequence (degree-16 primitive polynomial,
//! scan expansion) to C3540 under the stuck-at + stuck-open model and
//! plots coverage against length: a fast rise (≈88.4 % at 200 patterns),
//! then a long flat tail limited by random-pattern-resistant and redundant
//! faults (ceiling 96.7 %).
//!
//! ```text
//! cargo run --release -p bist-bench --bin fig4_random_coverage
//! cargo run --release -p bist-bench --bin fig4_random_coverage -- --circuits c432,c880 --quick
//! ```

use bist_bench::{banner, format_curve, paper, ExperimentArgs, LENGTH_CHECKPOINTS};
use bist_core::prelude::*;

fn main() {
    banner(
        "Figure 4",
        "fault coverage vs pseudo-random sequence length (stuck-at + stuck-open)",
    );
    let args = ExperimentArgs::parse(&["c3540"]);
    let checkpoints: Vec<usize> = if args.quick {
        vec![0, 50, 200]
    } else {
        LENGTH_CHECKPOINTS.to_vec()
    };
    for circuit in args.load_circuits() {
        let mut session = BistSession::new(&circuit, MixedSchemeConfig::default());
        let curve = session.random_coverage_curve(&checkpoints);
        println!("\n{circuit}");
        let reference: &[(usize, f64)] = if circuit.name() == "c3540" {
            &paper::FIG4_C3540
        } else {
            &[]
        };
        print!("{}", format_curve(&curve, reference));
        assert!(curve.is_monotone(), "coverage must be monotone in length");
        if let Some(final_cov) = curve.final_coverage() {
            println!("final coverage: {final_cov:.2} %");
            if circuit.name() == "c3540" {
                println!(
                    "paper ceiling : {:.1} % (135 redundant faults)",
                    paper::C3540_MAX_COVERAGE_PCT
                );
            }
        }
    }
}
