//! **Figure 4** — C3540 fault coverage versus pseudo-random sequence
//! length.
//!
//! The paper applies an LFSR sequence (degree-16 primitive polynomial,
//! scan expansion) to C3540 under the stuck-at + stuck-open model and
//! plots coverage against length: a fast rise (≈88.4 % at 200 patterns),
//! then a long flat tail limited by random-pattern-resistant and redundant
//! faults (ceiling 96.7 %). One `JobSpec::CoverageCurve` per circuit,
//! batched across the engine pool.
//!
//! ```text
//! cargo run --release -p bist-bench --bin fig4_random_coverage
//! cargo run --release -p bist-bench --bin fig4_random_coverage -- --circuits c432,c880 --quick
//! ```

use bist_bench::{banner, format_curve, paper, ExperimentArgs, LENGTH_CHECKPOINTS};
use bist_engine::{Engine, JobSpec};

fn main() {
    banner(
        "Figure 4",
        "fault coverage vs pseudo-random sequence length (stuck-at + stuck-open)",
    );
    let args = ExperimentArgs::parse(&["c3540"]);
    let checkpoints: Vec<usize> = if args.quick {
        vec![0, 50, 200]
    } else {
        LENGTH_CHECKPOINTS.to_vec()
    };
    let engine = Engine::with_threads(args.threads);
    let jobs: Vec<JobSpec> = args
        .sources()
        .into_iter()
        .map(|source| JobSpec::coverage_curve(source, checkpoints.clone()))
        .collect();
    for result in engine.run_batch(jobs) {
        let result = result.unwrap_or_else(|e| {
            eprintln!("coverage job failed: {e}");
            std::process::exit(2);
        });
        let outcome = result.as_coverage_curve().expect("curve outcome");
        println!("\n{} ({} faults)", outcome.circuit, outcome.fault_universe);
        let reference: &[(usize, f64)] = if outcome.circuit == "c3540" {
            &paper::FIG4_C3540
        } else {
            &[]
        };
        print!("{}", format_curve(&outcome.curve, reference));
        assert!(
            outcome.curve.is_monotone(),
            "coverage must be monotone in length"
        );
        if let Some(final_cov) = outcome.curve.final_coverage() {
            println!("final coverage: {final_cov:.2} %");
            if outcome.circuit == "c3540" {
                println!(
                    "paper ceiling : {:.1} % (135 redundant faults)",
                    paper::C3540_MAX_COVERAGE_PCT
                );
            }
        }
    }
}
