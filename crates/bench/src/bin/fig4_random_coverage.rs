//! **Figure 4** — C3540 fault coverage versus pseudo-random sequence
//! length.
//!
//! The paper applies an LFSR sequence (degree-16 primitive polynomial,
//! scan expansion) to C3540 under the stuck-at + stuck-open model and
//! plots coverage against length: a fast rise (≈88.4 % at 200 patterns),
//! then a long flat tail limited by random-pattern-resistant and redundant
//! faults (ceiling 96.7 %). One `JobSpec::CoverageCurve` per circuit,
//! batched across the engine pool.
//!
//! ```text
//! cargo run --release -p bist-bench --bin fig4_random_coverage
//! cargo run --release -p bist-bench --bin fig4_random_coverage -- --circuits c432,c880 --quick
//! cargo run --release -p bist-bench --bin fig4_random_coverage -- --format json
//! ```

use bist_bench::output::{Cell, Report, Section, TableData};
use bist_bench::{paper, ExperimentArgs, LENGTH_CHECKPOINTS};
use bist_engine::json::Json;
use bist_engine::{Engine, JobSpec};

fn main() {
    let args = ExperimentArgs::parse(&["c3540"]);
    let checkpoints: Vec<usize> = if args.quick {
        vec![0, 50, 200]
    } else {
        LENGTH_CHECKPOINTS.to_vec()
    };
    let engine = Engine::with_threads(args.threads);
    let jobs: Vec<JobSpec> = args
        .sources()
        .into_iter()
        .map(|source| JobSpec::coverage_curve(source, checkpoints.clone()))
        .collect();

    let mut report = Report::new(
        "Figure 4",
        "fault coverage vs pseudo-random sequence length (stuck-at + stuck-open)",
    );
    for result in engine.run_batch(jobs) {
        let result = result.unwrap_or_else(|e| {
            eprintln!("coverage job failed: {e}");
            std::process::exit(2);
        });
        let outcome = result.as_coverage_curve().expect("curve outcome");
        let reference: &[(usize, f64)] = if outcome.circuit == "c3540" {
            &paper::FIG4_C3540
        } else {
            &[]
        };

        let mut section = Section::new(&outcome.circuit);
        section.fact("fault_universe", Json::uint(outcome.fault_universe));
        let mut table = TableData::new(&[
            ("length", "length"),
            ("coverage_pct", "coverage %"),
            ("paper_ref_pct", "paper (ref)"),
        ]);
        for &(len, cov) in outcome.curve.points() {
            let reference_cell = reference
                .iter()
                .find(|(l, _)| *l == len)
                .map(|&(_, c)| Cell::float(c, 1))
                .unwrap_or_else(|| Cell::text("-"));
            table.row(vec![Cell::uint(len), Cell::float(cov, 2), reference_cell]);
        }
        section.table(table);
        assert!(
            outcome.curve.is_monotone(),
            "coverage must be monotone in length"
        );
        if let Some(final_cov) = outcome.curve.final_coverage() {
            section.note(format!("final coverage: {final_cov:.2} %"));
            if outcome.circuit == "c3540" {
                section.note(format!(
                    "paper ceiling: {:.1} % (135 redundant faults)",
                    paper::C3540_MAX_COVERAGE_PCT
                ));
            }
        }
        report.section(section);
    }
    report.emit(args.format);
}
