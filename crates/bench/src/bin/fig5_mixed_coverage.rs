//! **Figure 5** — C3540 fault coverage versus *mixed* sequence length for
//! tuples `(p_i, d_i)`.
//!
//! Each curve point solves the whole mixed flow: `p` pseudo-random
//! patterns, fault simulation, ATPG top-up of length `d`, final coverage.
//! The paper's reading: every tuple reaches the maximal (ATPG-limited)
//! coverage, and a longer prefix buys a shorter deterministic suffix —
//! e.g. its `(p₇=200, d₇=64)` and `(p=1000, d=26)` examples.
//!
//! ```text
//! cargo run --release -p bist-bench --bin fig5_mixed_coverage
//! ```

use bist_bench::{banner, ExperimentArgs};
use bist_core::prelude::*;

fn main() {
    banner(
        "Figure 5",
        "fault coverage vs mixed sequence length for (p, d) tuples",
    );
    let args = ExperimentArgs::parse(&["c3540"]);
    let prefixes: Vec<usize> = if args.quick {
        vec![0, 100]
    } else {
        vec![0, 100, 200, 500, 1000]
    };
    for circuit in args.load_circuits() {
        println!("\n{circuit}");
        let mut session = BistSession::new(&circuit, MixedSchemeConfig::default());
        let summary = session.sweep(&prefixes).expect("flow succeeds");
        println!(
            "{:>8} {:>8} {:>8} {:>16} {:>16}",
            "p", "d", "p+d", "prefix cov (%)", "final cov (%)"
        );
        let mut final_covs = Vec::new();
        for s in summary.solutions() {
            println!(
                "{:>8} {:>8} {:>8} {:>16.2} {:>16.2}",
                s.prefix_len,
                s.det_len,
                s.total_len(),
                s.prefix_coverage.coverage_pct(),
                s.coverage.coverage_pct()
            );
            final_covs.push(s.coverage.coverage_pct());
        }
        // the paper's claim: all tuples reach the same maximal coverage
        // (small spread allowed: longer prefixes may catch faults the
        // ATPG aborted on)
        let max = final_covs.iter().copied().fold(0.0f64, f64::max);
        assert!(
            final_covs.iter().all(|c| (c - max).abs() < 2.0),
            "all mixed tuples should converge to the maximal coverage"
        );
        println!("all tuples reach the maximal coverage: {max:.2} % (spread < 2 %)");
    }
}
