//! **Figure 5** — C3540 fault coverage versus *mixed* sequence length for
//! tuples `(p_i, d_i)`.
//!
//! Each curve point solves the whole mixed flow: `p` pseudo-random
//! patterns, fault simulation, ATPG top-up of length `d`, final coverage.
//! The paper's reading: every tuple reaches the maximal (ATPG-limited)
//! coverage, and a longer prefix buys a shorter deterministic suffix —
//! e.g. its `(p₇=200, d₇=64)` and `(p=1000, d=26)` examples. One
//! `JobSpec::Sweep` per circuit, batched across the engine pool.
//!
//! ```text
//! cargo run --release -p bist-bench --bin fig5_mixed_coverage
//! ```

use bist_bench::{banner, ExperimentArgs};
use bist_engine::{Engine, JobSpec};

fn main() {
    banner(
        "Figure 5",
        "fault coverage vs mixed sequence length for (p, d) tuples",
    );
    let args = ExperimentArgs::parse(&["c3540"]);
    let prefixes: Vec<usize> = if args.quick {
        vec![0, 100]
    } else {
        vec![0, 100, 200, 500, 1000]
    };
    let engine = Engine::with_threads(args.threads);
    let jobs: Vec<JobSpec> = args
        .sources()
        .into_iter()
        .map(|source| JobSpec::sweep(source, prefixes.clone()))
        .collect();
    for result in engine.run_batch(jobs) {
        let result = result.unwrap_or_else(|e| {
            eprintln!("sweep job failed: {e}");
            std::process::exit(2);
        });
        let outcome = result.as_sweep().expect("sweep outcome");
        println!("\n{}", outcome.circuit);
        println!(
            "{:>8} {:>8} {:>8} {:>16} {:>16}",
            "p", "d", "p+d", "prefix cov (%)", "final cov (%)"
        );
        let mut final_covs = Vec::new();
        for s in outcome.summary.solutions() {
            println!(
                "{:>8} {:>8} {:>8} {:>16.2} {:>16.2}",
                s.prefix_len,
                s.det_len,
                s.total_len(),
                s.prefix_coverage.coverage_pct(),
                s.coverage.coverage_pct()
            );
            final_covs.push(s.coverage.coverage_pct());
        }
        // the paper's claim: all tuples reach the same maximal coverage
        // (small spread allowed: longer prefixes may catch faults the
        // ATPG aborted on)
        let max = final_covs.iter().copied().fold(0.0f64, f64::max);
        assert!(
            final_covs.iter().all(|c| (c - max).abs() < 2.0),
            "all mixed tuples should converge to the maximal coverage"
        );
        println!("all tuples reach the maximal coverage: {max:.2} % (spread < 2 %)");
    }
}
