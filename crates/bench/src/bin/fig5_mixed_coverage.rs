//! **Figure 5** — C3540 fault coverage versus *mixed* sequence length for
//! tuples `(p_i, d_i)`.
//!
//! Each curve point solves the whole mixed flow: `p` pseudo-random
//! patterns, fault simulation, ATPG top-up of length `d`, final coverage.
//! The paper's reading: every tuple reaches the maximal (ATPG-limited)
//! coverage, and a longer prefix buys a shorter deterministic suffix —
//! e.g. its `(p₇=200, d₇=64)` and `(p=1000, d=26)` examples. One
//! `JobSpec::Sweep` per circuit, batched across the engine pool.
//!
//! ```text
//! cargo run --release -p bist-bench --bin fig5_mixed_coverage
//! cargo run --release -p bist-bench --bin fig5_mixed_coverage -- --format json
//! ```

use bist_bench::output::{Cell, Report, Section, TableData};
use bist_bench::ExperimentArgs;
use bist_engine::{Engine, JobSpec};

fn main() {
    let args = ExperimentArgs::parse(&["c3540"]);
    let prefixes: Vec<usize> = if args.quick {
        vec![0, 100]
    } else {
        vec![0, 100, 200, 500, 1000]
    };
    let engine = Engine::with_threads(args.threads);
    let jobs: Vec<JobSpec> = args
        .sources()
        .into_iter()
        .map(|source| JobSpec::sweep(source, prefixes.clone()))
        .collect();

    let mut report = Report::new(
        "Figure 5",
        "fault coverage vs mixed sequence length for (p, d) tuples",
    );
    for result in engine.run_batch(jobs) {
        let result = result.unwrap_or_else(|e| {
            eprintln!("sweep job failed: {e}");
            std::process::exit(2);
        });
        let outcome = result.as_sweep().expect("sweep outcome");
        let mut section = Section::new(&outcome.circuit);
        let mut table = TableData::new(&[
            ("p", "p"),
            ("d", "d"),
            ("total", "p+d"),
            ("prefix_coverage_pct", "prefix cov (%)"),
            ("coverage_pct", "final cov (%)"),
        ]);
        let mut final_covs = Vec::new();
        for s in outcome.summary.solutions() {
            table.row(vec![
                Cell::uint(s.prefix_len),
                Cell::uint(s.det_len),
                Cell::uint(s.total_len()),
                Cell::float(s.prefix_coverage.coverage_pct(), 2),
                Cell::float(s.coverage.coverage_pct(), 2),
            ]);
            final_covs.push(s.coverage.coverage_pct());
        }
        section.table(table);
        // the paper's claim: all tuples reach the same maximal coverage
        // (small spread allowed: longer prefixes may catch faults the
        // ATPG aborted on)
        let max = final_covs.iter().copied().fold(0.0f64, f64::max);
        assert!(
            final_covs.iter().all(|c| (c - max).abs() < 2.0),
            "all mixed tuples should converge to the maximal coverage"
        );
        section.note(format!(
            "all tuples reach the maximal coverage: {max:.2} % (spread < 2 %)"
        ));
        report.section(section);
    }
    report.emit(args.format);
}
