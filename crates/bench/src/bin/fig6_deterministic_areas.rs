//! **Figure 6** — silicon areas of the full-deterministic LFSROM hardware
//! generators for the ISCAS-85 family.
//!
//! Per circuit one `JobSpec::AreaReport`: ATPG computes the full
//! deterministic test set (stuck-at + stuck-open), the LFSROM synthesizer
//! turns it into hardware, and the calibrated ES2-1µm-style model prices
//! both the generator and the nominal chip. The paper annotates the
//! figure with the overhead percentages (560 % for c17 down to ≈12 % for
//! c6288) — the shape claim is that full-deterministic BIST is
//! prohibitively expensive for small and mid-size circuits.
//!
//! ```text
//! cargo run --release -p bist-bench --bin fig6_deterministic_areas
//! cargo run --release -p bist-bench --bin fig6_deterministic_areas -- --circuits c17,c432,c880
//! cargo run --release -p bist-bench --bin fig6_deterministic_areas -- --format json
//! ```

use bist_bench::output::{Cell, Report, Section, TableData};
use bist_bench::{paper, ExperimentArgs};
use bist_engine::{Engine, JobSpec};

fn main() {
    let args = ExperimentArgs::parse(&[
        "c17", "c432", "c499", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288",
        "c7552",
    ]);
    let engine = Engine::with_threads(args.threads);
    let jobs: Vec<JobSpec> = args
        .sources()
        .into_iter()
        .map(JobSpec::area_report)
        .collect();

    let mut report = Report::new(
        "Figure 6",
        "full deterministic LFSROM generator areas across ISCAS-85",
    );
    let mut section = Section::new("");
    let mut table = TableData::new(&[
        ("circuit", "circuit"),
        ("inputs", "#I"),
        ("patterns", "#patterns"),
        ("chip_mm2", "chip mm2"),
        ("lfsrom_mm2", "LFSROM mm2"),
        ("overhead_pct", "overhead %"),
        ("paper_pct", "paper %"),
    ]);
    for result in engine.run_batch(jobs) {
        let result = result.unwrap_or_else(|e| {
            eprintln!("area job failed: {e}");
            std::process::exit(2);
        });
        let r = result.as_area_report().expect("area outcome");
        let reference = paper::FIG6_OVERHEAD_PCT
            .iter()
            .find(|(n, _)| *n == r.circuit)
            .map(|&(_, v)| Cell::float(v, 0))
            .unwrap_or_else(|| Cell::text("-"));
        table.row(vec![
            Cell::text(&r.circuit),
            Cell::uint(r.inputs),
            Cell::uint(r.det_len),
            Cell::float(r.chip_mm2, 2),
            Cell::float(r.generator_mm2, 2),
            Cell::float(r.overhead_pct, 1),
            reference,
        ]);
    }
    section.table(table);
    section.note("shape check: overhead decreases as circuits grow (c17 >> c3540 > c6288)");
    report.section(section);
    report.emit(args.format);
}
