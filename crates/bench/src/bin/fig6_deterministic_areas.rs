//! **Figure 6** — silicon areas of the full-deterministic LFSROM hardware
//! generators for the ISCAS-85 family.
//!
//! Per circuit: ATPG computes the full deterministic test set (stuck-at +
//! stuck-open), the LFSROM synthesizer turns it into hardware, and the
//! calibrated ES2-1µm-style model prices both the generator and the
//! nominal chip. The paper annotates the figure with the overhead
//! percentages (560 % for c17 down to ≈12 % for c6288) — the shape claim
//! is that full-deterministic BIST is prohibitively expensive for small
//! and mid-size circuits.
//!
//! ```text
//! cargo run --release -p bist-bench --bin fig6_deterministic_areas
//! cargo run --release -p bist-bench --bin fig6_deterministic_areas -- --circuits c17,c432,c880
//! ```

use bist_bench::{banner, paper, ExperimentArgs};
use bist_core::prelude::*;

fn main() {
    banner(
        "Figure 6",
        "full deterministic LFSROM generator areas across ISCAS-85",
    );
    let args = ExperimentArgs::parse(&[
        "c17", "c432", "c499", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288",
        "c7552",
    ]);
    println!(
        "{:>7} {:>6} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "circuit", "#I", "#patterns", "chip mm2", "LFSROM mm2", "overhead %", "paper %"
    );
    for circuit in args.load_circuits() {
        let mut session = BistSession::new(&circuit, MixedSchemeConfig::default());
        let solution = session.solve_at(0).expect("pure deterministic flow");
        let chip = solution.chip_area_mm2;
        let generator = solution.generator_area_mm2;
        let overhead = solution.overhead_pct();
        let reference = paper::FIG6_OVERHEAD_PCT
            .iter()
            .find(|(n, _)| *n == circuit.name())
            .map(|(_, v)| format!("{v:10.0}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>7} {:>6} {:>10} {:>10.2} {:>12.2} {:>12.1} {:>12}",
            circuit.name(),
            circuit.inputs().len(),
            solution.det_len,
            chip,
            generator,
            overhead,
            reference
        );
    }
    println!("\nshape check: overhead decreases as circuits grow (c17 >> c3540 > c6288)");
}
