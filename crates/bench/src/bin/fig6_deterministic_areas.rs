//! **Figure 6** — silicon areas of the full-deterministic LFSROM hardware
//! generators for the ISCAS-85 family.
//!
//! Per circuit one `JobSpec::AreaReport`: ATPG computes the full
//! deterministic test set (stuck-at + stuck-open), the LFSROM synthesizer
//! turns it into hardware, and the calibrated ES2-1µm-style model prices
//! both the generator and the nominal chip. The paper annotates the
//! figure with the overhead percentages (560 % for c17 down to ≈12 % for
//! c6288) — the shape claim is that full-deterministic BIST is
//! prohibitively expensive for small and mid-size circuits.
//!
//! ```text
//! cargo run --release -p bist-bench --bin fig6_deterministic_areas
//! cargo run --release -p bist-bench --bin fig6_deterministic_areas -- --circuits c17,c432,c880
//! ```

use bist_bench::{banner, paper, ExperimentArgs};
use bist_engine::{Engine, JobSpec};

fn main() {
    banner(
        "Figure 6",
        "full deterministic LFSROM generator areas across ISCAS-85",
    );
    let args = ExperimentArgs::parse(&[
        "c17", "c432", "c499", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288",
        "c7552",
    ]);
    let engine = Engine::with_threads(args.threads);
    let jobs: Vec<JobSpec> = args
        .sources()
        .into_iter()
        .map(JobSpec::area_report)
        .collect();
    println!(
        "{:>7} {:>6} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "circuit", "#I", "#patterns", "chip mm2", "LFSROM mm2", "overhead %", "paper %"
    );
    for result in engine.run_batch(jobs) {
        let result = result.unwrap_or_else(|e| {
            eprintln!("area job failed: {e}");
            std::process::exit(2);
        });
        let r = result.as_area_report().expect("area outcome");
        let reference = paper::FIG6_OVERHEAD_PCT
            .iter()
            .find(|(n, _)| *n == r.circuit)
            .map(|(_, v)| format!("{v:10.0}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>7} {:>6} {:>10} {:>10.2} {:>12.2} {:>12.1} {:>12}",
            r.circuit, r.inputs, r.det_len, r.chip_mm2, r.generator_mm2, r.overhead_pct, reference
        );
    }
    println!("\nshape check: overhead decreases as circuits grow (c17 >> c3540 > c6288)");
}
