//! **Figure 7** — C3540 mixed hardware generator cost versus mixed
//! sequence length.
//!
//! The frontier runs from the pure-deterministic extreme (the paper:
//! `d_max = 2.5 mm²`) down towards the bare-LFSR asymptote
//! (`p_min = 0.25 mm²`): the longer the pseudo-random prefix, the fewer
//! deterministic patterns remain to encode, the cheaper the generator.
//! One `JobSpec::Sweep` per circuit; the asymptote is the bare LFSR
//! netlist priced by the same area model.
//!
//! ```text
//! cargo run --release -p bist-bench --bin fig7_mixed_cost
//! cargo run --release -p bist-bench --bin fig7_mixed_cost -- --format json
//! ```

use bist_bench::output::{Cell, Report, Section, TableData};
use bist_bench::{paper, ExperimentArgs};
use bist_core::prelude::*;
use bist_engine::json::Json;
use bist_engine::{Engine, JobSpec};

fn main() {
    let args = ExperimentArgs::parse(&["c3540"]);
    let prefixes: Vec<usize> = if args.quick {
        vec![0, 200]
    } else {
        vec![0, 100, 200, 500, 1000, 2000]
    };
    let config = MixedSchemeConfig::default();
    let lfsr_mm2 = config.area.circuit_area_mm2(&lfsr_netlist(config.poly));
    let engine = Engine::with_threads(args.threads);
    let jobs: Vec<JobSpec> = args
        .sources()
        .into_iter()
        .map(|source| JobSpec::sweep(source, prefixes.clone()))
        .collect();

    let mut report = Report::new("Figure 7", "mixed generator cost vs mixed sequence length");
    for result in engine.run_batch(jobs) {
        let result = result.unwrap_or_else(|e| {
            eprintln!("sweep job failed: {e}");
            std::process::exit(2);
        });
        let outcome = result.as_sweep().expect("sweep outcome");
        let mut section = Section::new(&outcome.circuit);
        section.fact("lfsr_asymptote_mm2", Json::Float(lfsr_mm2));
        let mut table = TableData::new(&[
            ("p", "p"),
            ("d", "d"),
            ("total", "p+d"),
            ("cost_mm2", "cost (mm2)"),
        ]);
        for s in outcome.summary.solutions() {
            table.row(vec![
                Cell::uint(s.prefix_len),
                Cell::uint(s.det_len),
                Cell::uint(s.total_len()),
                Cell::float(s.generator_area_mm2, 3),
            ]);
        }
        section.table(table);
        section.note(format!(
            "bare LFSR asymptote: {:.3} mm² (paper p-min: {:.2} mm²)",
            lfsr_mm2,
            paper::c3540::LFSR_MM2
        ));
        if outcome.circuit == "c3540" {
            section.note(format!(
                "paper d-max: {:.1} mm² (full deterministic LFSROM)",
                paper::c3540::LFSROM_MM2
            ));
        }
        let areas: Vec<f64> = outcome
            .summary
            .solutions()
            .iter()
            .map(|s| s.generator_area_mm2)
            .collect();
        assert!(
            areas.first() > areas.last(),
            "cost must fall as the mixed sequence grows"
        );
        report.section(section);
    }
    report.emit(args.format);
}
