//! **Figure 7** — C3540 mixed hardware generator cost versus mixed
//! sequence length.
//!
//! The frontier runs from the pure-deterministic extreme (the paper:
//! `d_max = 2.5 mm²`) down towards the bare-LFSR asymptote
//! (`p_min = 0.25 mm²`): the longer the pseudo-random prefix, the fewer
//! deterministic patterns remain to encode, the cheaper the generator.
//! One `JobSpec::Sweep` per circuit; the asymptote is the bare LFSR
//! netlist priced by the same area model.
//!
//! ```text
//! cargo run --release -p bist-bench --bin fig7_mixed_cost
//! ```

use bist_bench::{banner, paper, ExperimentArgs};
use bist_core::prelude::*;
use bist_engine::{Engine, JobSpec};

fn main() {
    banner("Figure 7", "mixed generator cost vs mixed sequence length");
    let args = ExperimentArgs::parse(&["c3540"]);
    let prefixes: Vec<usize> = if args.quick {
        vec![0, 200]
    } else {
        vec![0, 100, 200, 500, 1000, 2000]
    };
    let config = MixedSchemeConfig::default();
    let lfsr_mm2 = config.area.circuit_area_mm2(&lfsr_netlist(config.poly));
    let engine = Engine::with_threads(args.threads);
    let jobs: Vec<JobSpec> = args
        .sources()
        .into_iter()
        .map(|source| JobSpec::sweep(source, prefixes.clone()))
        .collect();
    for result in engine.run_batch(jobs) {
        let result = result.unwrap_or_else(|e| {
            eprintln!("sweep job failed: {e}");
            std::process::exit(2);
        });
        let outcome = result.as_sweep().expect("sweep outcome");
        println!("\n{}", outcome.circuit);
        println!("{:>8} {:>8} {:>8} {:>14}", "p", "d", "p+d", "cost (mm2)");
        for s in outcome.summary.solutions() {
            println!(
                "{:>8} {:>8} {:>8} {:>14.3}",
                s.prefix_len,
                s.det_len,
                s.total_len(),
                s.generator_area_mm2
            );
        }
        println!(
            "bare LFSR asymptote: {:.3} mm² (paper p-min: {:.2} mm²)",
            lfsr_mm2,
            paper::c3540::LFSR_MM2
        );
        if outcome.circuit == "c3540" {
            println!(
                "paper d-max: {:.1} mm² (full deterministic LFSROM)",
                paper::c3540::LFSROM_MM2
            );
        }
        let areas: Vec<f64> = outcome
            .summary
            .solutions()
            .iter()
            .map(|s| s.generator_area_mm2)
            .collect();
        assert!(
            areas.first() > areas.last(),
            "cost must fall as the mixed sequence grows"
        );
    }
}
