//! **Figure 7** — C3540 mixed hardware generator cost versus mixed
//! sequence length.
//!
//! The frontier runs from the pure-deterministic extreme (the paper:
//! `d_max = 2.5 mm²`) down towards the bare-LFSR asymptote
//! (`p_min = 0.25 mm²`): the longer the pseudo-random prefix, the fewer
//! deterministic patterns remain to encode, the cheaper the generator.
//!
//! ```text
//! cargo run --release -p bist-bench --bin fig7_mixed_cost
//! ```

use bist_bench::{banner, paper, ExperimentArgs};
use bist_core::prelude::*;

fn main() {
    banner("Figure 7", "mixed generator cost vs mixed sequence length");
    let args = ExperimentArgs::parse(&["c3540"]);
    let prefixes: Vec<usize> = if args.quick {
        vec![0, 200]
    } else {
        vec![0, 100, 200, 500, 1000, 2000]
    };
    for circuit in args.load_circuits() {
        println!("\n{circuit}");
        let mut session = BistSession::new(&circuit, MixedSchemeConfig::default());
        let summary = session.sweep(&prefixes).expect("flow succeeds");
        println!("{:>8} {:>8} {:>8} {:>14}", "p", "d", "p+d", "cost (mm2)");
        for s in summary.solutions() {
            println!(
                "{:>8} {:>8} {:>8} {:>14.3}",
                s.prefix_len,
                s.det_len,
                s.total_len(),
                s.generator_area_mm2
            );
        }
        // asymptote: the bare LFSR (same session: the prefix grading is already done)
        let lfsr_only = session
            .pseudo_random_solution(prefixes.iter().copied().max().unwrap_or(1000).max(1))
            .expect("LFSR-only solution");
        println!(
            "bare LFSR asymptote: {:.3} mm² (paper p-min: {:.2} mm²)",
            lfsr_only.generator_area_mm2,
            paper::c3540::LFSR_MM2
        );
        if circuit.name() == "c3540" {
            println!(
                "paper d-max: {:.1} mm² (full deterministic LFSROM)",
                paper::c3540::LFSROM_MM2
            );
        }
        let areas: Vec<f64> = summary
            .solutions()
            .iter()
            .map(|s| s.generator_area_mm2)
            .collect();
        assert!(
            areas.first() > areas.last(),
            "cost must fall as the mixed sequence grows"
        );
    }
}
