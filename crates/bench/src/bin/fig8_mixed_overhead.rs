//! **Figure 8** — C3540 mixed generator silicon increase as a percentage
//! of the nominal chip size, versus mixed sequence length.
//!
//! The same frontier as Figure 7 normalized to the chip: from the paper's
//! `d_max = 68 %` (pure deterministic) towards `p_min = 7.5 %` (bare
//! LFSR), with the highlighted practical point `(p = 1000, d = 26)` at
//! ≈20 %. One `JobSpec::Sweep` per circuit.
//!
//! ```text
//! cargo run --release -p bist-bench --bin fig8_mixed_overhead
//! cargo run --release -p bist-bench --bin fig8_mixed_overhead -- --format json
//! ```

use bist_bench::output::{Cell, Report, Section, TableData};
use bist_bench::{paper, ExperimentArgs};
use bist_core::prelude::*;
use bist_engine::{Engine, JobSpec};

fn main() {
    let args = ExperimentArgs::parse(&["c3540"]);
    let prefixes: Vec<usize> = if args.quick {
        vec![0, 200]
    } else {
        vec![0, 100, 200, 500, 1000, 2000]
    };
    let config = MixedSchemeConfig::default();
    let lfsr_mm2 = config.area.circuit_area_mm2(&lfsr_netlist(config.poly));
    let engine = Engine::with_threads(args.threads);
    let jobs: Vec<JobSpec> = args
        .sources()
        .into_iter()
        .map(|source| JobSpec::sweep(source, prefixes.clone()))
        .collect();

    let mut report = Report::new(
        "Figure 8",
        "mixed generator overhead (% of nominal chip) vs mixed length",
    );
    for result in engine.run_batch(jobs) {
        let result = result.unwrap_or_else(|e| {
            eprintln!("sweep job failed: {e}");
            std::process::exit(2);
        });
        let outcome = result.as_sweep().expect("sweep outcome");
        let mut section = Section::new(&outcome.circuit);
        let mut table = TableData::new(&[
            ("p", "p"),
            ("d", "d"),
            ("total", "p+d"),
            ("cost_mm2", "cost (mm2)"),
            ("overhead_pct", "% of chip"),
        ]);
        let mut chip_mm2 = 0.0;
        for s in outcome.summary.solutions() {
            table.row(vec![
                Cell::uint(s.prefix_len),
                Cell::uint(s.det_len),
                Cell::uint(s.total_len()),
                Cell::float(s.generator_area_mm2, 3),
                Cell::float(s.overhead_pct(), 1),
            ]);
            chip_mm2 = s.chip_area_mm2;
        }
        section.table(table);
        section.note(format!(
            "bare LFSR asymptote: {:.1} % of chip (paper p-min: {:.1} %)",
            100.0 * lfsr_mm2 / chip_mm2,
            paper::c3540::LFSR_OVERHEAD_PCT
        ));
        if outcome.circuit == "c3540" {
            section.note(format!(
                "paper d-max: {:.0} %; paper highlighted point (p=1000): ≈{:.0} %",
                paper::c3540::LFSROM_OVERHEAD_PCT,
                paper::c3540::MIXED_OVERHEAD_PCT
            ));
        }
        report.section(section);
    }
    report.emit(args.format);
}
