//! **Figure 8** — C3540 mixed generator silicon increase as a percentage
//! of the nominal chip size, versus mixed sequence length.
//!
//! The same frontier as Figure 7 normalized to the chip: from the paper's
//! `d_max = 68 %` (pure deterministic) towards `p_min = 7.5 %` (bare
//! LFSR), with the highlighted practical point `(p = 1000, d = 26)` at
//! ≈20 %.
//!
//! ```text
//! cargo run --release -p bist-bench --bin fig8_mixed_overhead
//! ```

use bist_bench::{banner, paper, ExperimentArgs};
use bist_core::prelude::*;

fn main() {
    banner(
        "Figure 8",
        "mixed generator overhead (% of nominal chip) vs mixed length",
    );
    let args = ExperimentArgs::parse(&["c3540"]);
    let prefixes: Vec<usize> = if args.quick {
        vec![0, 200]
    } else {
        vec![0, 100, 200, 500, 1000, 2000]
    };
    for circuit in args.load_circuits() {
        println!("\n{circuit}");
        let mut session = BistSession::new(&circuit, MixedSchemeConfig::default());
        let summary = session.sweep(&prefixes).expect("flow succeeds");
        println!(
            "{:>8} {:>8} {:>8} {:>12} {:>12}",
            "p", "d", "p+d", "cost (mm2)", "% of chip"
        );
        for s in summary.solutions() {
            println!(
                "{:>8} {:>8} {:>8} {:>12.3} {:>12.1}",
                s.prefix_len,
                s.det_len,
                s.total_len(),
                s.generator_area_mm2,
                s.overhead_pct()
            );
        }
        let lfsr_only = session.pseudo_random_solution(1000).expect("LFSR-only");
        println!(
            "bare LFSR asymptote: {:.1} % of chip (paper p-min: {:.1} %)",
            lfsr_only.overhead_pct(),
            paper::c3540::LFSR_OVERHEAD_PCT
        );
        if circuit.name() == "c3540" {
            println!(
                "paper d-max: {:.0} %; paper highlighted point (p=1000): ≈{:.0} %",
                paper::c3540::LFSROM_OVERHEAD_PCT,
                paper::c3540::MIXED_OVERHEAD_PCT
            );
        }
    }
}
