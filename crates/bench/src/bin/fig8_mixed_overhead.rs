//! **Figure 8** — C3540 mixed generator silicon increase as a percentage
//! of the nominal chip size, versus mixed sequence length.
//!
//! The same frontier as Figure 7 normalized to the chip: from the paper's
//! `d_max = 68 %` (pure deterministic) towards `p_min = 7.5 %` (bare
//! LFSR), with the highlighted practical point `(p = 1000, d = 26)` at
//! ≈20 %. One `JobSpec::Sweep` per circuit.
//!
//! ```text
//! cargo run --release -p bist-bench --bin fig8_mixed_overhead
//! ```

use bist_bench::{banner, paper, ExperimentArgs};
use bist_core::prelude::*;
use bist_engine::{Engine, JobSpec};

fn main() {
    banner(
        "Figure 8",
        "mixed generator overhead (% of nominal chip) vs mixed length",
    );
    let args = ExperimentArgs::parse(&["c3540"]);
    let prefixes: Vec<usize> = if args.quick {
        vec![0, 200]
    } else {
        vec![0, 100, 200, 500, 1000, 2000]
    };
    let config = MixedSchemeConfig::default();
    let lfsr_mm2 = config.area.circuit_area_mm2(&lfsr_netlist(config.poly));
    let engine = Engine::with_threads(args.threads);
    let jobs: Vec<JobSpec> = args
        .sources()
        .into_iter()
        .map(|source| JobSpec::sweep(source, prefixes.clone()))
        .collect();
    for result in engine.run_batch(jobs) {
        let result = result.unwrap_or_else(|e| {
            eprintln!("sweep job failed: {e}");
            std::process::exit(2);
        });
        let outcome = result.as_sweep().expect("sweep outcome");
        println!("\n{}", outcome.circuit);
        println!(
            "{:>8} {:>8} {:>8} {:>12} {:>12}",
            "p", "d", "p+d", "cost (mm2)", "% of chip"
        );
        let mut chip_mm2 = 0.0;
        for s in outcome.summary.solutions() {
            println!(
                "{:>8} {:>8} {:>8} {:>12.3} {:>12.1}",
                s.prefix_len,
                s.det_len,
                s.total_len(),
                s.generator_area_mm2,
                s.overhead_pct()
            );
            chip_mm2 = s.chip_area_mm2;
        }
        println!(
            "bare LFSR asymptote: {:.1} % of chip (paper p-min: {:.1} %)",
            100.0 * lfsr_mm2 / chip_mm2,
            paper::c3540::LFSR_OVERHEAD_PCT
        );
        if outcome.circuit == "c3540" {
            println!(
                "paper d-max: {:.0} %; paper highlighted point (p=1000): ≈{:.0} %",
                paper::c3540::LFSROM_OVERHEAD_PCT,
                paper::c3540::MIXED_OVERHEAD_PCT
            );
        }
    }
}
