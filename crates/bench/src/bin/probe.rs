//! Scratch calibration probe used while tuning the reproduction; prints
//! per-circuit full-deterministic flow results with wall-clock timings.

use bist_core::prelude::*;
use std::io::Write;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        vec!["c432", "c3540"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in names {
        let c = iscas85::circuit(name).unwrap();
        let mut session = BistSession::new(&c, MixedSchemeConfig::default());
        for p in [0usize, 1000] {
            let t1 = Instant::now();
            let run = session.solve_at(p).unwrap();
            println!(
                "{name}: solve({p}) {:.0}s  d={} cov {:.1}% ceiling {:.1}% gen {:.2}mm2 ({:.0}%) chip {:.2}mm2",
                t1.elapsed().as_secs_f64(),
                run.det_len,
                run.coverage.coverage_pct(),
                run.coverage.achievable_pct(),
                run.generator_area_mm2,
                run.overhead_pct(),
                run.chip_area_mm2
            );
            std::io::stdout().flush().ok();
        }
    }
}
