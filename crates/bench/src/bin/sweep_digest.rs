//! **sweep_digest** — a canonical, timing-free fingerprint of the mixed
//! trade-off sweep, for determinism checks in CI.
//!
//! ```text
//! cargo run --release -p bist-bench --bin sweep_digest -- --circuits c432 --quick
//! BIST_THREADS=4 cargo run --release -p bist-bench --bin sweep_digest -- --check-serial
//! ```
//!
//! Runs one `JobSpec::Sweep` per circuit through the engine and prints
//! one line per solved point — circuit, `p`, `d`, the coverage counters
//! and an FNV-1a hash of every deterministic pattern bit — plus a final
//! `total <hash>` line folding the whole sweep. Two runs agree on their
//! digests iff they solved bit-identical sweeps, whatever their pool
//! widths; CI runs this binary under several `BIST_THREADS` values and
//! diffs the output.
//!
//! `--check-serial` additionally re-solves the sweep in-process with one
//! thread and asserts both digests match, making every invocation a
//! self-contained determinism test (exit code 101 on divergence).

use bist_bench::schema::Fnv;
use bist_bench::ExperimentArgs;
use bist_core::prelude::*;
use bist_engine::{Engine, FaultModel, JobSpec, SweepSpec};

fn main() {
    let args = ExperimentArgs::parse(&["c432"]);
    args.warn_fixed_format("sweep_digest");
    let prefixes: Vec<usize> = if args.quick {
        vec![0, 50, 100]
    } else {
        vec![0, 100, 200, 500, 1000]
    };

    let digest = digest_sweep(&args, &prefixes, args.threads);
    if args.has_flag("--check-serial") {
        let serial = digest_sweep(&args, &prefixes, 1);
        assert_eq!(
            digest, serial,
            "sweep diverged from the serial reference engine"
        );
        eprintln!("digest matches the one-thread reference");
    }
    print!("{digest}");
}

fn digest_sweep(args: &ExperimentArgs, prefixes: &[usize], threads: usize) -> String {
    let engine = Engine::with_threads(threads);
    let config = MixedSchemeConfig {
        threads,
        ..MixedSchemeConfig::default()
    };
    let mut out = String::new();
    let mut total = Fnv::new();
    for source in args.sources() {
        let result = engine
            .run(JobSpec::Sweep(SweepSpec {
                circuit: source,
                config: config.clone(),
                prefix_lengths: prefixes.to_vec(),
                fault_model: FaultModel::default(),
                estimate_first: false,
            }))
            .unwrap_or_else(|e| {
                eprintln!("sweep failed: {e}");
                std::process::exit(2);
            });
        let sweep = result.as_sweep().expect("sweep outcome");
        for s in sweep.summary.solutions() {
            let mut h = Fnv::new();
            for pattern in s.generator.deterministic() {
                for bit in pattern.iter() {
                    h.push(u8::from(bit));
                }
                h.push(0xFE); // pattern separator
            }
            let line = format!(
                "{} p={} d={} detected={} redundant={} aborted={} undetected={} seq={:016x}\n",
                sweep.circuit,
                s.prefix_len,
                s.det_len,
                s.coverage.detected,
                s.coverage.redundant,
                s.coverage.aborted,
                s.coverage.undetected,
                h.finish()
            );
            for b in line.bytes() {
                total.push(b);
            }
            out.push_str(&line);
        }
    }
    out.push_str(&format!("total {:016x}\n", total.finish()));
    out
}
