//! **Table 1** — the two extremes of the trade-off for every ISCAS-85
//! circuit: the full-deterministic LFSROM generator versus the pure
//! pseudo-random LFSR.
//!
//! One `JobSpec::AreaReport` per circuit prices the deterministic
//! extreme; the pure pseudo-random column is the paper's shared 16-bit
//! LFSR (0.25 mm² for every circuit), synthesized once with the same
//! area model. The paper's reading: full-deterministic costs
//! tens-to-hundreds of percent; the LFSR costs almost nothing but cannot
//! reach deterministic coverage.
//!
//! ```text
//! cargo run --release -p bist-bench --bin table1_extremes
//! cargo run --release -p bist-bench --bin table1_extremes -- --circuits c17,c432
//! ```

use bist_bench::{banner, ExperimentArgs};
use bist_core::prelude::*;
use bist_engine::{Engine, JobSpec};

fn main() {
    banner(
        "Table 1",
        "full deterministic vs pure pseudo-random extremes, all ISCAS-85",
    );
    let args = ExperimentArgs::parse(&[
        "c17", "c432", "c499", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288",
        "c7552",
    ]);
    let config = MixedSchemeConfig::default();
    let lfsr_mm2 = config.area.circuit_area_mm2(&lfsr_netlist(config.poly));
    let engine = Engine::with_threads(args.threads);
    let jobs: Vec<JobSpec> = args
        .sources()
        .into_iter()
        .map(JobSpec::area_report)
        .collect();
    println!(
        "{:>7} {:>6} {:>10} | {:>10} {:>11} {:>10} | {:>9} {:>10}",
        "circuit", "#I", "chip mm2", "#patterns", "LFSROM mm2", "incr %", "LFSR mm2", "incr %"
    );
    for result in engine.run_batch(jobs) {
        let result = result.unwrap_or_else(|e| {
            eprintln!("area job failed: {e}");
            std::process::exit(2);
        });
        let r = result.as_area_report().expect("area outcome");
        println!(
            "{:>7} {:>6} {:>10.2} | {:>10} {:>11.2} {:>10.1} | {:>9.2} {:>10.1}",
            r.circuit,
            r.inputs,
            r.chip_mm2,
            r.det_len,
            r.generator_mm2,
            r.overhead_pct,
            lfsr_mm2,
            100.0 * lfsr_mm2 / r.chip_mm2
        );
    }
    println!(
        "\n(paper reference: C3540 row = 3.8 | 144 patterns, 2.5 mm², 68 % | 0.25 mm², 7.5 %)"
    );
}
