//! **Table 1** — the two extremes of the trade-off for every ISCAS-85
//! circuit: the full-deterministic LFSROM generator versus the pure
//! pseudo-random LFSR.
//!
//! One `JobSpec::AreaReport` per circuit prices the deterministic
//! extreme; the pure pseudo-random column is the paper's shared 16-bit
//! LFSR (0.25 mm² for every circuit), synthesized once with the same
//! area model. The paper's reading: full-deterministic costs
//! tens-to-hundreds of percent; the LFSR costs almost nothing but cannot
//! reach deterministic coverage.
//!
//! ```text
//! cargo run --release -p bist-bench --bin table1_extremes
//! cargo run --release -p bist-bench --bin table1_extremes -- --circuits c17,c432
//! cargo run --release -p bist-bench --bin table1_extremes -- --format json
//! ```

use bist_bench::output::{Cell, Report, Section, TableData};
use bist_bench::ExperimentArgs;
use bist_core::prelude::*;
use bist_engine::json::Json;
use bist_engine::{Engine, JobSpec};

fn main() {
    let args = ExperimentArgs::parse(&[
        "c17", "c432", "c499", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288",
        "c7552",
    ]);
    let config = MixedSchemeConfig::default();
    let lfsr_mm2 = config.area.circuit_area_mm2(&lfsr_netlist(config.poly));
    let engine = Engine::with_threads(args.threads);
    let jobs: Vec<JobSpec> = args
        .sources()
        .into_iter()
        .map(JobSpec::area_report)
        .collect();

    let mut report = Report::new(
        "Table 1",
        "full deterministic vs pure pseudo-random extremes, all ISCAS-85",
    );
    let mut section = Section::new("");
    section.fact("lfsr_mm2", Json::Float(lfsr_mm2));
    let mut table = TableData::new(&[
        ("circuit", "circuit"),
        ("inputs", "#I"),
        ("chip_mm2", "chip mm2"),
        ("patterns", "#patterns"),
        ("lfsrom_mm2", "LFSROM mm2"),
        ("lfsrom_incr_pct", "incr %"),
        ("lfsr_mm2", "LFSR mm2"),
        ("lfsr_incr_pct", "incr %"),
    ]);
    for result in engine.run_batch(jobs) {
        let result = result.unwrap_or_else(|e| {
            eprintln!("area job failed: {e}");
            std::process::exit(2);
        });
        let r = result.as_area_report().expect("area outcome");
        table.row(vec![
            Cell::text(&r.circuit),
            Cell::uint(r.inputs),
            Cell::float(r.chip_mm2, 2),
            Cell::uint(r.det_len),
            Cell::float(r.generator_mm2, 2),
            Cell::float(r.overhead_pct, 1),
            Cell::float(lfsr_mm2, 2),
            Cell::float(100.0 * lfsr_mm2 / r.chip_mm2, 1),
        ]);
    }
    section.table(table);
    section
        .note("(paper reference: C3540 row = 3.8 | 144 patterns, 2.5 mm², 68 % | 0.25 mm², 7.5 %)");
    report.section(section);
    report.emit(args.format);
}
