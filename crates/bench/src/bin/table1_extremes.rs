//! **Table 1** — the two extremes of the trade-off for every ISCAS-85
//! circuit: the full-deterministic LFSROM generator versus the pure
//! pseudo-random LFSR.
//!
//! Columns mirror the paper: circuit, I/O, nominal chip area, full
//! deterministic test set size and generator cost (with % increase), and
//! the shared 16-bit LFSR cost (with % increase). The paper's reading:
//! full-deterministic costs tens-to-hundreds of percent; the LFSR costs
//! almost nothing but cannot reach deterministic coverage.
//!
//! ```text
//! cargo run --release -p bist-bench --bin table1_extremes
//! cargo run --release -p bist-bench --bin table1_extremes -- --circuits c17,c432
//! ```

use bist_bench::{banner, ExperimentArgs};
use bist_core::prelude::*;

fn main() {
    banner(
        "Table 1",
        "full deterministic vs pure pseudo-random extremes, all ISCAS-85",
    );
    let args = ExperimentArgs::parse(&[
        "c17", "c432", "c499", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288",
        "c7552",
    ]);
    println!(
        "{:>7} {:>9} {:>10} | {:>10} {:>11} {:>10} | {:>9} {:>10}",
        "circuit", "#I/#O", "chip mm2", "#patterns", "LFSROM mm2", "incr %", "LFSR mm2", "incr %"
    );
    for circuit in args.load_circuits() {
        let mut session = BistSession::new(&circuit, MixedSchemeConfig::default());
        let deterministic = session.solve_at(0).expect("deterministic flow");
        // The pure pseudo-random column: the paper prices the same 16-bit
        // LFSR (0.25 mm²) for every circuit; we synthesize it with the
        // same area model.
        let lfsr_hw = lfsr_netlist(session.config().poly);
        let lfsr_mm2 = session.config().area.circuit_area_mm2(&lfsr_hw);
        let chip = deterministic.chip_area_mm2;
        println!(
            "{:>7} {:>9} {:>10.2} | {:>10} {:>11.2} {:>10.1} | {:>9.2} {:>10.1}",
            circuit.name(),
            format!("{}/{}", circuit.inputs().len(), circuit.outputs().len()),
            chip,
            deterministic.det_len,
            deterministic.generator_area_mm2,
            deterministic.overhead_pct(),
            lfsr_mm2,
            100.0 * lfsr_mm2 / chip
        );
    }
    println!(
        "\n(paper reference: C3540 row = 3.8 | 144 patterns, 2.5 mm², 68 % | 0.25 mm², 7.5 %)"
    );
}
