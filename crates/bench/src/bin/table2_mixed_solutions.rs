//! **Table 2** — mixed test solutions for the larger ISCAS-85 circuits:
//! the `(p, d)` composition of each mixed sequence with the corresponding
//! generator cost and overhead.
//!
//! The paper sweeps prefix lengths per circuit (its rows run up to the
//! pure pseudo-random `∞` row); the reproduction sweeps the same ladder
//! and prints the same columns. The reading: every circuit exhibits the
//! inverse length/cost relationship, and a `p ≈ 1000` point cuts the
//! overhead by a factor of a few versus the deterministic extreme.
//!
//! ```text
//! cargo run --release -p bist-bench --bin table2_mixed_solutions
//! cargo run --release -p bist-bench --bin table2_mixed_solutions -- --circuits c3540 --quick
//! ```

use bist_bench::{banner, paper, ExperimentArgs};
use bist_core::prelude::*;

fn main() {
    banner(
        "Table 2",
        "mixed test solutions for the larger ISCAS-85 circuits",
    );
    let args = ExperimentArgs::parse(&paper::TABLE2_CIRCUITS);
    let prefixes: Vec<usize> = if args.quick {
        vec![0, 200]
    } else {
        vec![0, 100, 500, 1000, 2000]
    };
    for circuit in args.load_circuits() {
        println!("\n=== {circuit} ===");
        let mut session = BistSession::new(&circuit, MixedSchemeConfig::default());
        let summary = session.sweep(&prefixes).expect("flow succeeds");
        println!(
            "{:>8} {:>8} {:>8} {:>12} {:>12} {:>12}",
            "p", "d", "p+d", "cost (mm2)", "incr %", "coverage %"
        );
        for s in summary.solutions() {
            println!(
                "{:>8} {:>8} {:>8} {:>12.3} {:>12.1} {:>12.2}",
                s.prefix_len,
                s.det_len,
                s.total_len(),
                s.generator_area_mm2,
                s.overhead_pct(),
                s.coverage.coverage_pct()
            );
        }
        // the ∞ row: pure pseudo-random, on the same session
        let inf = session.pseudo_random_solution(5000).expect("LFSR-only");
        println!(
            "{:>8} {:>8} {:>8} {:>12.3} {:>12.1} {:>12.2}   (pure pseudo-random)",
            "inf",
            0,
            "inf",
            inf.generator_area_mm2,
            inf.overhead_pct(),
            inf.coverage.coverage_pct()
        );
    }
}
