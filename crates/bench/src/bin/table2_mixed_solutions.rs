//! **Table 2** — mixed test solutions for the larger ISCAS-85 circuits:
//! the `(p, d)` composition of each mixed sequence with the corresponding
//! generator cost and overhead.
//!
//! The paper sweeps prefix lengths per circuit (its rows run up to the
//! pure pseudo-random `∞` row); the reproduction runs one
//! `JobSpec::Sweep` per circuit plus one `JobSpec::CoverageCurve` point
//! for the `∞` row's coverage, with the bare LFSR priced by the shared
//! area model. (The `∞` row's grading is a separate job with its own
//! fault universe — slightly more total work than extending the sweep's
//! session, traded for the two jobs running concurrently on a parallel
//! pool.) The reading: every circuit exhibits the inverse
//! length/cost relationship, and a `p ≈ 1000` point cuts the overhead by
//! a factor of a few versus the deterministic extreme.
//!
//! ```text
//! cargo run --release -p bist-bench --bin table2_mixed_solutions
//! cargo run --release -p bist-bench --bin table2_mixed_solutions -- --circuits c3540 --quick
//! ```

use bist_bench::{banner, paper, ExperimentArgs};
use bist_core::prelude::*;
use bist_engine::{Engine, JobSpec};

fn main() {
    banner(
        "Table 2",
        "mixed test solutions for the larger ISCAS-85 circuits",
    );
    let args = ExperimentArgs::parse(&paper::TABLE2_CIRCUITS);
    let (prefixes, inf_len): (Vec<usize>, usize) = if args.quick {
        (vec![0, 200], 1000)
    } else {
        (vec![0, 100, 500, 1000, 2000], 5000)
    };
    let config = MixedSchemeConfig::default();
    let lfsr_mm2 = config.area.circuit_area_mm2(&lfsr_netlist(config.poly));
    let engine = Engine::with_threads(args.threads);
    for source in args.sources() {
        let jobs = vec![
            JobSpec::sweep(source.clone(), prefixes.clone()),
            JobSpec::coverage_curve(source, [inf_len]),
        ];
        let mut results = engine.run_batch(jobs).into_iter();
        let sweep = results.next().expect("two jobs").unwrap_or_else(|e| {
            eprintln!("sweep job failed: {e}");
            std::process::exit(2);
        });
        let curve = results.next().expect("two jobs").unwrap_or_else(|e| {
            eprintln!("coverage job failed: {e}");
            std::process::exit(2);
        });
        let outcome = sweep.as_sweep().expect("sweep outcome");
        println!("\n=== {} ===", outcome.circuit);
        println!(
            "{:>8} {:>8} {:>8} {:>12} {:>12} {:>12}",
            "p", "d", "p+d", "cost (mm2)", "incr %", "coverage %"
        );
        let mut chip_mm2 = 1.0;
        for s in outcome.summary.solutions() {
            println!(
                "{:>8} {:>8} {:>8} {:>12.3} {:>12.1} {:>12.2}",
                s.prefix_len,
                s.det_len,
                s.total_len(),
                s.generator_area_mm2,
                s.overhead_pct(),
                s.coverage.coverage_pct()
            );
            chip_mm2 = s.chip_area_mm2;
        }
        // the ∞ row: pure pseudo-random, coverage from the curve job
        let inf_cov = curve
            .as_coverage_curve()
            .expect("curve outcome")
            .curve
            .final_coverage()
            .unwrap_or(0.0);
        println!(
            "{:>8} {:>8} {:>8} {:>12.3} {:>12.1} {:>12.2}   (pure pseudo-random, p={inf_len})",
            "inf",
            0,
            "inf",
            lfsr_mm2,
            100.0 * lfsr_mm2 / chip_mm2,
            inf_cov
        );
    }
}
