//! **Table 2** — mixed test solutions for the larger ISCAS-85 circuits:
//! the `(p, d)` composition of each mixed sequence with the corresponding
//! generator cost and overhead.
//!
//! The paper sweeps prefix lengths per circuit (its rows run up to the
//! pure pseudo-random `∞` row); the reproduction runs one
//! `JobSpec::Sweep` per circuit plus one `JobSpec::CoverageCurve` point
//! for the `∞` row's coverage, with the bare LFSR priced by the shared
//! area model. (The `∞` row's grading is a separate job with its own
//! fault universe — slightly more total work than extending the sweep's
//! session, traded for the two jobs running concurrently on a parallel
//! pool.) The reading: every circuit exhibits the inverse
//! length/cost relationship, and a `p ≈ 1000` point cuts the overhead by
//! a factor of a few versus the deterministic extreme.
//!
//! ```text
//! cargo run --release -p bist-bench --bin table2_mixed_solutions
//! cargo run --release -p bist-bench --bin table2_mixed_solutions -- --circuits c3540 --quick
//! cargo run --release -p bist-bench --bin table2_mixed_solutions -- --format json
//! ```

use bist_bench::output::{Cell, Report, Section, TableData};
use bist_bench::{paper, ExperimentArgs};
use bist_core::prelude::*;
use bist_engine::{Engine, JobSpec};

fn main() {
    let args = ExperimentArgs::parse(&paper::TABLE2_CIRCUITS);
    let (prefixes, inf_len): (Vec<usize>, usize) = if args.quick {
        (vec![0, 200], 1000)
    } else {
        (vec![0, 100, 500, 1000, 2000], 5000)
    };
    let config = MixedSchemeConfig::default();
    let lfsr_mm2 = config.area.circuit_area_mm2(&lfsr_netlist(config.poly));
    let engine = Engine::with_threads(args.threads);

    let mut report = Report::new(
        "Table 2",
        "mixed test solutions for the larger ISCAS-85 circuits",
    );
    for source in args.sources() {
        let jobs = vec![
            JobSpec::sweep(source.clone(), prefixes.clone()),
            JobSpec::coverage_curve(source, [inf_len]),
        ];
        let mut results = engine.run_batch(jobs).into_iter();
        let sweep = results.next().expect("two jobs").unwrap_or_else(|e| {
            eprintln!("sweep job failed: {e}");
            std::process::exit(2);
        });
        let curve = results.next().expect("two jobs").unwrap_or_else(|e| {
            eprintln!("coverage job failed: {e}");
            std::process::exit(2);
        });
        let outcome = sweep.as_sweep().expect("sweep outcome");
        let mut section = Section::new(&outcome.circuit);
        let mut table = TableData::new(&[
            ("p", "p"),
            ("d", "d"),
            ("total", "p+d"),
            ("cost_mm2", "cost (mm2)"),
            ("incr_pct", "incr %"),
            ("coverage_pct", "coverage %"),
        ]);
        let mut chip_mm2 = 1.0;
        for s in outcome.summary.solutions() {
            table.row(vec![
                Cell::uint(s.prefix_len),
                Cell::uint(s.det_len),
                Cell::uint(s.total_len()),
                Cell::float(s.generator_area_mm2, 3),
                Cell::float(s.overhead_pct(), 1),
                Cell::float(s.coverage.coverage_pct(), 2),
            ]);
            chip_mm2 = s.chip_area_mm2;
        }
        // the ∞ row: pure pseudo-random, coverage from the curve job
        let inf_cov = curve
            .as_coverage_curve()
            .expect("curve outcome")
            .curve
            .final_coverage()
            .unwrap_or(0.0);
        table.row(vec![
            Cell::text("inf"),
            Cell::uint(0),
            Cell::text("inf"),
            Cell::float(lfsr_mm2, 3),
            Cell::float(100.0 * lfsr_mm2 / chip_mm2, 1),
            Cell::float(inf_cov, 2),
        ]);
        section.table(table);
        section.note(format!(
            "(the `inf` row is the pure pseudo-random extreme, graded at p={inf_len})"
        ));
        report.section(section);
    }
    report.emit(args.format);
}
