//! Experiment harness for the LFSROM mixed-BIST reproduction.
//!
//! One binary per table/figure of the paper regenerates the corresponding
//! data (`src/bin/fig4_random_coverage.rs` … `table2_mixed_solutions.rs`),
//! and one Criterion bench per experiment measures the underlying kernels
//! (`benches/`). This library holds the pieces they share: the paper's
//! reference numbers, result formatting, and experiment configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod output;
pub mod paper;
pub mod schema;

use bist_core::prelude::*;
use bist_engine::CircuitSource;

use crate::output::OutputFormat;

/// The default sequence-length checkpoints of the paper's Figures 4/5
/// (its x-axis runs 0..1000).
pub const LENGTH_CHECKPOINTS: [usize; 11] = [0, 25, 50, 100, 200, 300, 400, 500, 700, 900, 1000];

/// The prefix lengths the paper sweeps for the mixed trade-off
/// (Figures 5/7/8, Table 2).
pub const PREFIX_SWEEP: [usize; 6] = [0, 100, 200, 500, 1000, 5000];

/// Parses `--circuits a,b,c` and `--quick` style command-line arguments
/// shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// Benchmark circuits to run on.
    pub circuits: Vec<String>,
    /// Reduced parameter ranges for smoke runs.
    pub quick: bool,
    /// Pool width for the parallel engines (`0` = automatic:
    /// `BIST_THREADS` or the machine width).
    pub threads: usize,
    /// Output format (`--format text|json`).
    pub format: OutputFormat,
    /// Extra flags the shared parser did not recognize, for binaries with
    /// private switches.
    pub extra: Vec<String>,
}

impl ExperimentArgs {
    /// Parses `std::env::args`, with `default_circuits` when none are
    /// requested.
    pub fn parse(default_circuits: &[&str]) -> Self {
        let mut circuits: Vec<String> = Vec::new();
        let mut quick = false;
        let mut threads = 0usize;
        let mut format = OutputFormat::Text;
        let mut extra: Vec<String> = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--circuits" => {
                    if let Some(list) = args.next() {
                        circuits = list.split(',').map(str::to_owned).collect();
                    }
                }
                "--threads" => {
                    threads = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads takes a thread count");
                }
                "--format" => {
                    format = match args.next().as_deref() {
                        Some("text") => OutputFormat::Text,
                        Some("json") => OutputFormat::Json,
                        other => panic!("--format takes text or json, got {other:?}"),
                    };
                }
                other => {
                    // binaries with private switches consume these via
                    // `has_flag`; the note keeps typos diagnosable
                    eprintln!("note: passing `{other}` through to the binary");
                    extra.push(other.to_owned());
                }
            }
        }
        if circuits.is_empty() {
            circuits = default_circuits.iter().map(|s| (*s).to_owned()).collect();
        }
        ExperimentArgs {
            circuits,
            quick,
            threads,
            format,
            extra,
        }
    }

    /// True when flag `name` appeared among the unrecognized arguments.
    pub fn has_flag(&self, name: &str) -> bool {
        self.extra.iter().any(|a| a == name)
    }

    /// For binaries whose output format is fixed (perf harness, digest
    /// fingerprints): warns when the shared `--format` flag asked for
    /// anything else, instead of silently ignoring it.
    pub fn warn_fixed_format(&self, binary: &str) {
        if self.format != OutputFormat::Text {
            eprintln!("note: {binary} emits a fixed output format; --format json is ignored");
        }
    }

    /// The requested circuits as engine [`CircuitSource`]s (ISCAS-85 by
    /// name); unknown names surface as typed job failures instead of
    /// panics.
    pub fn sources(&self) -> Vec<CircuitSource> {
        self.circuits.iter().map(CircuitSource::iscas85).collect()
    }

    /// Loads the requested circuits eagerly, exiting with a clear message
    /// on unknown names (for harness binaries that drive the substrate
    /// crates directly rather than through the engine).
    pub fn load_circuits(&self) -> Vec<Circuit> {
        self.circuits
            .iter()
            .map(|n| {
                iscas85::circuit(n).unwrap_or_else(|| {
                    eprintln!("unknown ISCAS-85 circuit `{n}`");
                    std::process::exit(2);
                })
            })
            .collect()
    }
}

/// A standard banner so every experiment binary's output is self-dating
/// and self-describing.
pub fn banner(experiment: &str, what: &str) {
    println!("================================================================");
    println!("{experiment} — {what}");
    println!("reproduction of Dufaza/Viallon/Chevalier, ED&TC 1995");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_circuits_load() {
        let args = ExperimentArgs {
            circuits: vec!["c17".into()],
            quick: true,
            threads: 0,
            format: OutputFormat::Text,
            extra: Vec::new(),
        };
        assert_eq!(args.load_circuits().len(), 1);
        assert!(!args.has_flag("--check-serial"));
    }
}
