//! Shared output plumbing for the experiment binaries.
//!
//! Every figure/table binary builds a [`Report`] — sections of
//! key/value facts, one aligned table each, free-form notes — and emits
//! it once, in the format `--format` selected. The binaries keep their
//! scientific content (which jobs to run, which assertions must hold);
//! how results reach stdout lives here, in one place, for all of them.

use std::fmt::Write as _;

use bist_engine::json::Json;

/// Output format of the experiment binaries (`--format text|json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Banner + aligned tables (the historical output).
    #[default]
    Text,
    /// One deterministic JSON document on stdout, nothing else.
    Json,
}

/// One cell of a report table.
#[derive(Debug, Clone)]
pub enum Cell {
    /// Free text.
    Text(String),
    /// An integer count.
    Int(i64),
    /// A float, rendered with the given precision in text mode (JSON
    /// keeps the full value).
    Float(f64, usize),
}

impl Cell {
    /// A text cell.
    pub fn text(s: impl Into<String>) -> Cell {
        Cell::Text(s.into())
    }

    /// An integer cell from any unsigned counter.
    pub fn uint(v: usize) -> Cell {
        Cell::Int(i64::try_from(v).expect("counter fits i64"))
    }

    /// A float cell shown with `precision` decimals in text mode.
    pub fn float(v: f64, precision: usize) -> Cell {
        Cell::Float(v, precision)
    }

    fn render_text(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v, precision) => format!("{v:.precision$}"),
        }
    }

    fn render_json(&self) -> Json {
        match self {
            Cell::Text(s) => Json::str(s.clone()),
            Cell::Int(v) => Json::Int(*v),
            Cell::Float(v, _) => Json::Float(*v),
        }
    }
}

/// A table: `(json_key, text_heading)` columns plus rows of cells.
#[derive(Debug, Clone, Default)]
pub struct TableData {
    columns: Vec<(&'static str, &'static str)>,
    rows: Vec<Vec<Cell>>,
}

impl TableData {
    /// A table with the given `(json_key, text_heading)` columns.
    pub fn new(columns: &[(&'static str, &'static str)]) -> Self {
        TableData {
            columns: columns.to_vec(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics when the row width does not match the column count — a
    /// binary bug, not a data condition.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    fn render_text(&self, out: &mut String) {
        let mut widths: Vec<usize> = self.columns.iter().map(|(_, h)| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, cell)| {
                        let text = cell.render_text();
                        widths[i] = widths[i].max(text.len());
                        text
                    })
                    .collect()
            })
            .collect();
        for (i, (_, heading)) in self.columns.iter().enumerate() {
            let _ = write!(out, "{}{:>width$}", sep(i), heading, width = widths[i]);
        }
        out.push('\n');
        for row in rendered {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{}{:>width$}", sep(i), cell, width = widths[i]);
            }
            out.push('\n');
        }
    }

    fn render_json(&self) -> Json {
        Json::Array(
            self.rows
                .iter()
                .map(|row| {
                    let mut doc = Json::object();
                    for ((key, _), cell) in self.columns.iter().zip(row) {
                        doc.push(*key, cell.render_json());
                    }
                    doc
                })
                .collect(),
        )
    }
}

fn sep(column: usize) -> &'static str {
    if column == 0 {
        ""
    } else {
        "  "
    }
}

/// One section of a report — typically one circuit.
#[derive(Debug, Clone, Default)]
pub struct Section {
    title: String,
    facts: Vec<(&'static str, Json)>,
    table: Option<TableData>,
    notes: Vec<String>,
}

impl Section {
    /// A section titled `title` (usually the circuit name).
    pub fn new(title: impl Into<String>) -> Self {
        Section {
            title: title.into(),
            ..Section::default()
        }
    }

    /// Records a scalar fact (`fault_universe`, `lfsr_mm2`, …).
    pub fn fact(&mut self, key: &'static str, value: Json) -> &mut Self {
        self.facts.push((key, value));
        self
    }

    /// Attaches the section's table.
    pub fn table(&mut self, table: TableData) -> &mut Self {
        self.table = Some(table);
        self
    }

    /// Appends a free-form annotation (text mode prints it verbatim;
    /// JSON carries it in a `notes` array).
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }
}

/// A whole experiment report.
#[derive(Debug, Clone)]
pub struct Report {
    experiment: &'static str,
    title: &'static str,
    sections: Vec<Section>,
}

impl Report {
    /// A report for `experiment` (`"fig4"`, `"table2"`, …) described by
    /// `title`.
    pub fn new(experiment: &'static str, title: &'static str) -> Self {
        Report {
            experiment,
            title,
            sections: Vec::new(),
        }
    }

    /// Appends a section.
    pub fn section(&mut self, section: Section) -> &mut Self {
        self.sections.push(section);
        self
    }

    /// Renders the report in `format`.
    pub fn render(&self, format: OutputFormat) -> String {
        match format {
            OutputFormat::Text => self.render_text(),
            OutputFormat::Json => self.render_json().render_pretty(),
        }
    }

    /// Prints the report to stdout.
    pub fn emit(&self, format: OutputFormat) {
        print!("{}", self.render(format));
    }

    fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "================================================================"
        );
        let _ = writeln!(out, "{} — {}", self.experiment, self.title);
        let _ = writeln!(out, "reproduction of Dufaza/Viallon/Chevalier, ED&TC 1995");
        let _ = writeln!(
            out,
            "================================================================"
        );
        for section in &self.sections {
            out.push('\n');
            if !section.title.is_empty() {
                let _ = writeln!(out, "=== {} ===", section.title);
            }
            for (key, value) in &section.facts {
                let _ = writeln!(out, "{key}: {}", fact_text(value));
            }
            if let Some(table) = &section.table {
                table.render_text(&mut out);
            }
            for note in &section.notes {
                let _ = writeln!(out, "{note}");
            }
        }
        out
    }

    fn render_json(&self) -> Json {
        let mut doc = Json::object();
        doc.push("experiment", Json::str(self.experiment));
        doc.push("title", Json::str(self.title));
        doc.push(
            "sections",
            Json::Array(
                self.sections
                    .iter()
                    .map(|section| {
                        let mut s = Json::object();
                        s.push("title", Json::str(section.title.clone()));
                        for (key, value) in &section.facts {
                            s.push(*key, value.clone());
                        }
                        if let Some(table) = &section.table {
                            s.push("rows", table.render_json());
                        }
                        if !section.notes.is_empty() {
                            s.push(
                                "notes",
                                Json::Array(section.notes.iter().map(Json::str).collect()),
                            );
                        }
                        s
                    })
                    .collect(),
            ),
        );
        doc
    }
}

fn fact_text(value: &Json) -> String {
    match value {
        Json::Str(s) => s.clone(),
        other => other.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut report = Report::new("figX", "a sample experiment");
        let mut section = Section::new("c17");
        section.fact("fault_universe", Json::Int(62));
        let mut table = TableData::new(&[("length", "length"), ("coverage_pct", "coverage %")]);
        table.row(vec![Cell::uint(0), Cell::float(0.0, 2)]);
        table.row(vec![Cell::uint(200), Cell::float(88.4, 2)]);
        section.table(table);
        section.note("ceiling: 96.7 %");
        report.section(section);
        report
    }

    #[test]
    fn text_mode_aligns_columns_under_headings() {
        let text = sample().render(OutputFormat::Text);
        assert!(text.contains("figX — a sample experiment"));
        assert!(text.contains("=== c17 ==="));
        assert!(text.contains("fault_universe: 62"));
        assert!(text.contains("length  coverage %"));
        assert!(text.contains("   200       88.40"));
        assert!(text.contains("ceiling: 96.7 %"));
    }

    #[test]
    fn json_mode_is_structured_and_parses() {
        let text = sample().render(OutputFormat::Json);
        let doc = bist_engine::json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("figX"));
        let sections = doc.get("sections").and_then(Json::as_array).expect("array");
        let rows = sections[0]
            .get("rows")
            .and_then(Json::as_array)
            .expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("length").and_then(Json::as_usize), Some(200));
        assert_eq!(
            rows[1].get("coverage_pct").and_then(Json::as_f64),
            Some(88.4)
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_are_a_bug() {
        let mut table = TableData::new(&[("a", "a"), ("b", "b")]);
        table.row(vec![Cell::uint(1)]);
    }
}
