//! The paper's published reference numbers, transcribed for side-by-side
//! comparison in every experiment's output and in `EXPERIMENTS.md`.
//!
//! Absolute values are not expected to match — the circuits here are
//! profile-matched synthetic stand-ins and the area model is calibrated to
//! only two anchors — but the *shape* claims (who wins, by what factor,
//! where the knee sits) are the reproduction targets.

/// Figure 4 reference points for C3540: fault coverage (stuck-at +
/// stuck-open, %) versus pseudo-random sequence length. The paper quotes
/// the 7th data point explicitly (200 patterns → 88.4 %) and the 96.7 %
/// ceiling from 135 redundant faults.
pub const FIG4_C3540: [(usize, f64); 3] = [(200, 88.4), (1000, 96.0), (0, 0.0)];

/// The paper's maximal achievable coverage for C3540 (96.7 % — limited by
/// 135 redundant faults).
pub const C3540_MAX_COVERAGE_PCT: f64 = 96.7;

/// Paper Figure 6 / Table 1: full-deterministic LFSROM silicon overhead as
/// a percentage of the nominal chip size, per circuit (the figure's
/// annotations; c2670's value is garbled in the scan and omitted).
pub const FIG6_OVERHEAD_PCT: [(&str, f64); 9] = [
    ("c17", 560.0),
    ("c432", 217.0),
    ("c499", 179.0),
    ("c880", 117.0),
    ("c1355", 171.0),
    ("c1908", 122.0),
    ("c3540", 68.0),
    ("c5315", 92.0),
    ("c6288", 12.0),
];

/// Table 1 headline anchors for C3540.
pub mod c3540 {
    /// Nominal chip area (ES2 1 µm), mm².
    pub const NOMINAL_MM2: f64 = 3.8;
    /// Full deterministic LFSROM generator area, mm².
    pub const LFSROM_MM2: f64 = 2.5;
    /// Full deterministic test set size (patterns) reported for the
    /// stuck-at + stuck-open model.
    pub const DETERMINISTIC_PATTERNS: usize = 144;
    /// Pattern width (primary inputs).
    pub const PATTERN_WIDTH: usize = 50;
    /// Pure pseudo-random LFSR generator area, mm².
    pub const LFSR_MM2: f64 = 0.25;
    /// Full deterministic overhead vs. nominal chip, %.
    pub const LFSROM_OVERHEAD_PCT: f64 = 68.0;
    /// LFSR-only overhead vs. nominal chip, %.
    pub const LFSR_OVERHEAD_PCT: f64 = 7.5;
    /// The paper's preferred mixed point: `(p, d)` and its cost.
    pub const MIXED_P: usize = 1000;
    /// Deterministic suffix at the preferred point.
    pub const MIXED_D: usize = 26;
    /// Mixed generator area at the preferred point, mm².
    pub const MIXED_MM2: f64 = 0.8;
    /// Mixed overhead at the preferred point, %.
    pub const MIXED_OVERHEAD_PCT: f64 = 20.0;
}

/// Table 2 circuits (the subset the paper reports mixed solutions for).
pub const TABLE2_CIRCUITS: [&str; 6] = ["c1355", "c1908", "c2670", "c3540", "c5315", "c7552"];

/// The LFSR every experiment shares: degree-16, the paper's polynomial
/// with its typo corrected (see `bist-lfsr` crate docs).
pub const LFSR_DEGREE: u32 = 16;

#[cfg(test)]
mod tests {
    #[test]
    fn anchors_are_consistent() {
        use super::c3540::*;
        // 2.5 / 3.8 ≈ 66 % ≈ the quoted 68 %
        let ratio = 100.0 * LFSROM_MM2 / NOMINAL_MM2;
        assert!((ratio - LFSROM_OVERHEAD_PCT).abs() < 3.0);
        let lfsr_ratio = 100.0 * LFSR_MM2 / NOMINAL_MM2;
        assert!((lfsr_ratio - LFSR_OVERHEAD_PCT).abs() < 1.5);
    }
}
