//! The `BENCH_sweep.json` schema contract, shared by producer and
//! consumers.
//!
//! `bench_sweep` (the writer), `bench_check` (the CI gate) and any
//! future reader must agree on the layout version and on how the fixed
//! format is picked apart. Before this module existed the version
//! constant and the field scrapers were duplicated per binary and could
//! drift silently; now there is exactly one copy, unit-tested here.

/// Version of the `BENCH_sweep.json` layout. The writer stamps it, the
/// checker refuses files that do not declare exactly this value.
pub const SCHEMA_VERSION: u64 = 2;

/// Checks one file's `schema_version` declaration against
/// [`SCHEMA_VERSION`], explaining exactly what is wrong otherwise.
///
/// # Errors
///
/// A human-readable message naming `path` and the remedy.
pub fn check_schema(path: &str, json: &str) -> Result<(), String> {
    match num_field(json, "schema_version") {
        Some(v) if v == SCHEMA_VERSION as f64 => Ok(()),
        Some(v) => Err(format!(
            "{path}: schema_version {v} does not match the supported version \
             {SCHEMA_VERSION}; regenerate the file with this tree's bench_sweep \
             (or update the committed baseline)"
        )),
        None => Err(format!(
            "{path}: no schema_version field — the file predates the versioned \
             layout; regenerate it with this tree's bench_sweep"
        )),
    }
}

/// Splits the fixed `bench_sweep` format into `(circuit_name, block)`
/// pairs, each block running up to the next circuit entry.
pub fn circuit_blocks(json: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let marker = "\"circuit\": \"";
    let mut rest = json;
    while let Some(at) = rest.find(marker) {
        let after = &rest[at + marker.len()..];
        let Some(name_end) = after.find('"') else {
            break;
        };
        let name = after[..name_end].to_owned();
        let body_end = after.find(marker).unwrap_or(after.len());
        out.push((name, after[..body_end].to_owned()));
        rest = &after[body_end..];
    }
    out
}

/// The numeric value following `"key":` in `block`.
pub fn num_field(block: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = block.find(&pat)? + pat.len();
    let rest = block[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The raw `(p, d)` list of a circuit block, order-preserving.
pub fn points_of(block: &str) -> Option<Vec<(u64, u64)>> {
    let start = block.find("\"points\":")?;
    let seg = &block[start..];
    let end = seg.find(']')?;
    let seg = &seg[..end];
    let mut points = Vec::new();
    let mut rest = seg;
    while let Some(at) = rest.find("{\"p\":") {
        let item = &rest[at..];
        let p = num_field(item, "p")? as u64;
        let d = num_field(item, "d")? as u64;
        points.push((p, d));
        rest = &item["{\"p\":".len()..];
    }
    Some(points)
}

/// FNV-1a, 64-bit: the tiny, dependency-free, platform-stable hash
/// behind `sweep_digest`'s fingerprints.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    /// Absorbs one byte.
    pub fn push(&mut self, byte: u8) {
        self.0 ^= u64::from(byte);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema_version": 2,
  "circuits": [
    {
      "circuit": "c432",
      "speedup": 2.301,
      "patterns_simulated": 100,
      "points": [{"p": 0, "d": 50}, {"p": 100, "d": 24}]
    },
    {
      "circuit": "c3540",
      "speedup": 1.5,
      "patterns_simulated": 1000,
      "points": [{"p": 0, "d": 144}]
    }
  ]
}
"#;

    #[test]
    fn schema_gate_accepts_the_current_version_only() {
        assert!(check_schema("ok.json", SAMPLE).is_ok());
        let older = SAMPLE.replace("\"schema_version\": 2", "\"schema_version\": 1");
        let message = check_schema("old.json", &older).expect_err("older layout");
        assert!(message.contains("old.json"));
        assert!(message.contains("does not match"));
        let missing = check_schema("none.json", "{}").expect_err("unversioned layout");
        assert!(missing.contains("no schema_version"));
    }

    #[test]
    fn blocks_fields_and_points_scrape_correctly() {
        let blocks = circuit_blocks(SAMPLE);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].0, "c432");
        assert_eq!(num_field(&blocks[0].1, "speedup"), Some(2.301));
        assert_eq!(num_field(&blocks[0].1, "patterns_simulated"), Some(100.0));
        assert_eq!(num_field(&blocks[0].1, "no_such_key"), None);
        assert_eq!(
            points_of(&blocks[0].1).expect("points present"),
            vec![(0, 50), (100, 24)]
        );
        assert_eq!(
            points_of(&blocks[1].1).expect("points present"),
            vec![(0, 144)]
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a 64-bit reference values
        let hash = |text: &str| {
            let mut h = Fnv::new();
            for b in text.bytes() {
                h.push(b);
            }
            h.finish()
        };
        assert_eq!(hash(""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(hash("a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(hash("foobar"), 0x8594_4171_F739_67E8);
    }
}
