//! Bridging (short) faults for the LFSROM mixed-BIST reproduction.
//!
//! The paper's coverage ceiling cites \[Hwa93\] ("Effectiveness of stuck-at
//! test set to detect bridging faults in Iddq environment") and its §3
//! lists Iddq merging among BIST's advantages — but, like delay faults,
//! bridging defects are argued about rather than measured. This crate
//! closes that gap:
//!
//! * [`BridgingFault`] / [`BridgingFaultList`] — non-feedback wired-AND /
//!   wired-OR shorts, sampled between physically plausible (level-nearby)
//!   node pairs.
//! * [`BridgingSim`] — a packed simulator grading both detection
//!   criteria at once: *voltage-sense* (the resolved value propagates to
//!   an output) and *Iddq* (the short is merely excited — opposite driven
//!   values — which a quiescent-current measurement catches without any
//!   propagation).
//!
//! The \[Hwa93\] experiment then runs directly: grade a stuck-at-derived
//! BIST sequence against a bridge universe and compare the two coverage
//! numbers (`ext_bridging_coverage`).
//!
//! # Example
//!
//! ```
//! use bist_bridging::{BridgingFaultList, BridgingSim};
//!
//! let c17 = bist_netlist::iscas85::c17();
//! let faults = BridgingFaultList::sample(&c17, 40, 7);
//! let mut sim = BridgingSim::new(&c17, faults);
//! sim.simulate(&bist_lfsr::pseudo_random_patterns(bist_lfsr::paper_poly(), 5, 64));
//! // Iddq needs only excitation, so it always dominates voltage-sense
//! assert!(sim.iddq_coverage_pct() >= sim.report().coverage_pct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
pub mod serial;
mod sim;

pub use model::{is_feedback_pair, BridgeKind, BridgingFault, BridgingFaultList};
pub use sim::BridgingSim;
