use std::fmt;

use bist_netlist::{Circuit, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The resolution function of a two-node short.
///
/// In CMOS a short between two drivers resolves by drive-strength; the
/// two classical gate-level abstractions bound the behaviour: wired-AND
/// (0 wins, the usual NMOS-dominant case) and wired-OR (1 wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BridgeKind {
    /// Both nodes read as the AND of their driven values (0-dominant).
    WiredAnd,
    /// Both nodes read as the OR of their driven values (1-dominant).
    WiredOr,
}

impl BridgeKind {
    /// Both resolution functions, for iteration.
    pub const BOTH: [BridgeKind; 2] = [BridgeKind::WiredAnd, BridgeKind::WiredOr];

    /// Resolves two driven words into the shorted value.
    pub fn resolve_word(self, a: u64, b: u64) -> u64 {
        match self {
            BridgeKind::WiredAnd => a & b,
            BridgeKind::WiredOr => a | b,
        }
    }

    /// Boolean form of [`BridgeKind::resolve_word`].
    pub fn resolve(self, a: bool, b: bool) -> bool {
        match self {
            BridgeKind::WiredAnd => a && b,
            BridgeKind::WiredOr => a || b,
        }
    }
}

impl fmt::Display for BridgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BridgeKind::WiredAnd => "wired-AND",
            BridgeKind::WiredOr => "wired-OR",
        })
    }
}

/// A non-feedback bridging (short) fault between two circuit nodes.
///
/// The paper's coverage ceiling leans on \[Hwa93\] — "Effectiveness of
/// stuck-at test set to detect bridging faults in Iddq environment" — and
/// its §3 lists Iddq merging among BIST's advantages. This type is the
/// voltage-sense half of that story: a short makes *both* nodes read the
/// wired resolution of their driven values, and a test detects it when
/// the resolved value propagates a difference to a primary output.
///
/// Feedback bridges (one node in the other's fan-out cone) would turn
/// combinational logic into an oscillator or a latch; like classical
/// bridging-fault tools, [`BridgingFaultList`] excludes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BridgingFault {
    /// First shorted node (the smaller `NodeId` by convention).
    pub a: NodeId,
    /// Second shorted node.
    pub b: NodeId,
    /// Resolution function.
    pub kind: BridgeKind,
}

impl BridgingFault {
    /// Human-readable description using node names.
    pub fn describe(&self, circuit: &Circuit) -> String {
        format!(
            "{} ~ {} ({})",
            circuit.node(self.a).name(),
            circuit.node(self.b).name(),
            self.kind
        )
    }
}

/// An ordered universe of bridging faults over one circuit.
///
/// # Example
///
/// ```
/// use bist_bridging::BridgingFaultList;
///
/// let c17 = bist_netlist::iscas85::c17();
/// let faults = BridgingFaultList::sample(&c17, 40, 7);
/// assert!(!faults.is_empty());
/// assert!(faults.len() <= 40);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BridgingFaultList {
    faults: Vec<BridgingFault>,
}

impl BridgingFaultList {
    /// An empty list.
    pub fn new() -> Self {
        BridgingFaultList { faults: Vec::new() }
    }

    /// Samples up to `target` non-feedback bridge sites (each in both
    /// resolutions), reproducibly from `seed`.
    ///
    /// Real extraction would read capacitance/adjacency from layout; at
    /// gate level the standard proxy is sampling node pairs biased toward
    /// *nearby* logic — here, pairs whose logic levels differ by at most
    /// two, which models the physical reality that shorts happen between
    /// wires routed in the same neighbourhood.
    pub fn sample(circuit: &Circuit, target: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = circuit.num_nodes();
        let mut faults = Vec::with_capacity(target);
        let mut attempts = 0usize;
        let max_attempts = target.saturating_mul(60).max(1_000);
        while faults.len() < target && attempts < max_attempts {
            attempts += 1;
            let ai = rng.gen_range(0..n);
            let bi = rng.gen_range(0..n);
            if ai == bi {
                continue;
            }
            let (ai, bi) = (ai.min(bi), ai.max(bi));
            let a = NodeId::from_index(ai);
            let b = NodeId::from_index(bi);
            let (la, lb) = (circuit.level(a), circuit.level(b));
            if la.abs_diff(lb) > 2 {
                continue;
            }
            if is_feedback_pair(circuit, a, b) {
                continue;
            }
            let kind = if rng.gen() {
                BridgeKind::WiredAnd
            } else {
                BridgeKind::WiredOr
            };
            let fault = BridgingFault { a, b, kind };
            if !faults.contains(&fault) {
                faults.push(fault);
            }
        }
        BridgingFaultList { faults }
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if the list holds no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault at `index`.
    pub fn get(&self, index: usize) -> Option<&BridgingFault> {
        self.faults.get(index)
    }

    /// Iterates over the faults in order.
    pub fn iter(&self) -> std::slice::Iter<'_, BridgingFault> {
        self.faults.iter()
    }

    /// The faults as a slice.
    pub fn faults(&self) -> &[BridgingFault] {
        &self.faults
    }

    /// Appends a fault.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the pair is a feedback bridge — the
    /// simulator's combinational semantics would be unsound for it.
    pub fn push(&mut self, circuit: &Circuit, fault: BridgingFault) {
        debug_assert!(
            !is_feedback_pair(circuit, fault.a, fault.b),
            "feedback bridge {}",
            fault.describe(circuit)
        );
        self.faults.push(fault);
    }
}

impl<'a> IntoIterator for &'a BridgingFaultList {
    type Item = &'a BridgingFault;
    type IntoIter = std::slice::Iter<'a, BridgingFault>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// True if either node lies in the other's fan-out cone (shorting them
/// would create a combinational loop).
pub fn is_feedback_pair(circuit: &Circuit, a: NodeId, b: NodeId) -> bool {
    circuit.fanout_cone(a).contains(&b) || circuit.fanout_cone(b).contains(&a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_semantics() {
        assert_eq!(BridgeKind::WiredAnd.resolve_word(0b1100, 0b1010), 0b1000);
        assert_eq!(BridgeKind::WiredOr.resolve_word(0b1100, 0b1010), 0b1110);
    }

    #[test]
    fn sampled_pairs_are_nearby_and_feedback_free() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = BridgingFaultList::sample(&c, 100, 42);
        assert!(faults.len() >= 50, "sampler starved: {}", faults.len());
        for f in &faults {
            assert!(!is_feedback_pair(&c, f.a, f.b), "{}", f.describe(&c));
            assert!(c.level(f.a).abs_diff(c.level(f.b)) <= 2);
            assert!(f.a < f.b, "canonical order");
        }
    }

    #[test]
    fn sampling_is_reproducible() {
        let c17 = bist_netlist::iscas85::c17();
        let a = BridgingFaultList::sample(&c17, 30, 5);
        let b = BridgingFaultList::sample(&c17, 30, 5);
        assert_eq!(a, b);
        let c = BridgingFaultList::sample(&c17, 30, 6);
        assert_ne!(a, c, "different seeds sample different pairs");
    }

    #[test]
    fn describe_names_both_nodes() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = BridgingFaultList::sample(&c17, 5, 1);
        let text = faults.get(0).unwrap().describe(&c17);
        assert!(text.contains('~') && text.contains("wired"));
    }
}
