//! Naive pattern-at-a-time reference bridging simulator.
//!
//! An independent, deliberately simple implementation of the same
//! bridging semantics as the packed [`crate::BridgingSim`], used as the
//! oracle in property tests: the faulty machine is evaluated node by node
//! with plain booleans, one pattern at a time, with both shorted nodes
//! overridden to the resolved value.
//!
//! For a *non-feedback* pair the driven values of the two nodes are their
//! good-machine values (neither node lies in the other's fan-out cone, so
//! the short cannot influence its own drivers) — which is exactly the
//! assumption [`crate::BridgingFaultList`] enforces.

use bist_logicsim::{naive_eval, Pattern};
use bist_netlist::{Circuit, GateKind};

use crate::model::BridgingFault;

/// True if `pattern` *excites* `fault`: the two shorted nodes carry
/// opposite good-machine values (the Iddq detection criterion).
pub fn excited(circuit: &Circuit, fault: BridgingFault, pattern: &Pattern) -> bool {
    let good = naive_eval(circuit, &pattern.to_bits());
    good[fault.a.index()] != good[fault.b.index()]
}

/// Evaluates the faulty machine for `pattern`: both shorted nodes read
/// the resolution of their driven (good) values. Returns the faulty value
/// of every node, or `None` when the bridge is not excited — the machine
/// then behaves like the good one.
pub fn faulty_eval(
    circuit: &Circuit,
    fault: BridgingFault,
    pattern: &Pattern,
) -> Option<Vec<bool>> {
    let good = naive_eval(circuit, &pattern.to_bits());
    let (ga, gb) = (good[fault.a.index()], good[fault.b.index()]);
    if ga == gb {
        return None;
    }
    let resolved = fault.kind.resolve(ga, gb);

    let g = circuit.sim_graph();
    let mut values = vec![false; circuit.num_nodes()];
    for (i, &pi) in g.inputs().iter().enumerate() {
        values[pi as usize] = pattern.get(i);
    }
    for &id in g.topo() {
        let id = id as usize;
        let mut v = match g.kind(id) {
            GateKind::Input => values[id],
            GateKind::Dff => false,
            kind => kind.eval_bool_iter(g.fanin(id).iter().map(|&f| values[f as usize])),
        };
        if id == fault.a.index() || id == fault.b.index() {
            v = resolved;
        }
        values[id] = v;
    }
    Some(values)
}

/// True if `fault` is detected at a primary output by `pattern`
/// (voltage-sense detection).
pub fn detects(circuit: &Circuit, fault: BridgingFault, pattern: &Pattern) -> bool {
    let Some(faulty) = faulty_eval(circuit, fault, pattern) else {
        return false;
    };
    let good = naive_eval(circuit, &pattern.to_bits());
    circuit
        .outputs()
        .iter()
        .any(|o| faulty[o.index()] != good[o.index()])
}

/// Grades a whole sequence serially; returns, for each fault of `faults`,
/// the index of the first (voltage-)detecting pattern, or `None`.
pub fn grade_sequence(
    circuit: &Circuit,
    faults: &[BridgingFault],
    patterns: &[Pattern],
) -> Vec<Option<u32>> {
    faults
        .iter()
        .map(|&fault| {
            patterns
                .iter()
                .position(|p| detects(circuit, fault, p))
                .map(|t| t as u32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BridgingFaultList, BridgingSim};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn packed_matches_serial_on_c17_exhaustive() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = BridgingFaultList::sample(&c17, 40, 7);
        let patterns: Vec<Pattern> = (0u32..32)
            .map(|v| Pattern::from_fn(5, |i| (v >> i) & 1 == 1))
            .collect();
        let serial = grade_sequence(&c17, faults.faults(), &patterns);
        let mut packed = BridgingSim::new(&c17, faults);
        packed.simulate(&patterns);
        for (i, &graded) in serial.iter().enumerate() {
            assert_eq!(
                graded,
                packed.first_detection(i),
                "fault {} disagrees",
                packed.faults().get(i).unwrap().describe(&c17)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn packed_matches_serial_on_c432_random(seed in any::<u64>()) {
            let c = bist_netlist::iscas85::circuit("c432").unwrap();
            let faults = BridgingFaultList::sample(&c, 30, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xb1d6);
            let patterns: Vec<Pattern> = (0..80)
                .map(|_| Pattern::random(&mut rng, c.inputs().len()))
                .collect();
            let serial = grade_sequence(&c, faults.faults(), &patterns);

            let mut packed = BridgingSim::new(&c, faults);
            packed.simulate(&patterns);
            for (i, &graded) in serial.iter().enumerate() {
                prop_assert_eq!(
                    graded,
                    packed.first_detection(i),
                    "fault {} disagrees",
                    packed.faults().get(i).unwrap().describe(&c)
                );
                // the Iddq flag must agree with any-pattern excitation
                let any_excited = patterns.iter().any(|p| {
                    excited(&c, *packed.faults().get(i).unwrap(), p)
                });
                prop_assert_eq!(any_excited, packed.iddq_detected(i));
            }
        }
    }
}
