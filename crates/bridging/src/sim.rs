use bist_fault::FaultStatus;
use bist_faultsim::{BlockCtx, CoverageReport, Seeds, SimCounters, WordFault, WordSim};
use bist_logicsim::Pattern;
use bist_netlist::Circuit;

use crate::model::{BridgingFault, BridgingFaultList};

/// Parallel-pattern bridging-fault simulator with fault dropping — the
/// measurement side of the \[Hwa93\] question the paper leans on: *how much
/// of a realistic short universe does a stuck-at-derived sequence
/// detect?*
///
/// A bridge is detected by a pattern that drives the two shorted nodes to
/// opposite values (excitation — the same condition Iddq testing senses
/// as elevated quiescent current) *and* propagates the resolved value's
/// difference to a primary output (voltage-sense detection, the stricter
/// criterion graded by [`BridgingSim::report`]).
///
/// This is the bridging instantiation of the model-generic [`WordSim`]
/// engine shared with [`bist_faultsim::FaultSim`]: the model contributes
/// the *two* resolved-value seeds (a short drives both nodes), so cone
/// propagation starts from the union of both fan-outs, and opts into the
/// engine's per-fault excitation tracking for the Iddq criterion. The
/// good machine, levelized cone walk, fault dropping and `bist-par`
/// sharding (bit-identical at every thread count) come from the engine.
///
/// # Example
///
/// ```
/// use bist_bridging::{BridgingFaultList, BridgingSim};
/// use bist_logicsim::Pattern;
///
/// let c17 = bist_netlist::iscas85::c17();
/// let faults = BridgingFaultList::sample(&c17, 30, 17);
/// let mut sim = BridgingSim::new(&c17, faults);
/// let patterns: Vec<Pattern> = (0u32..32)
///     .map(|v| Pattern::from_fn(5, |i| (v >> i) & 1 == 1))
///     .collect();
/// sim.simulate(&patterns);
/// assert!(sim.report().coverage_pct() > 50.0); // exhaustive input space
/// ```
#[derive(Debug)]
pub struct BridgingSim<'c> {
    /// The universe, kept in list form for [`BridgingSim::faults`] (the
    /// engine holds its own flat copy).
    list: BridgingFaultList,
    inner: WordSim<'c, BridgingFault>,
}

impl<'c> BridgingSim<'c> {
    /// Creates a simulator grading `faults` on `circuit`, with the pool
    /// width taken from `BIST_THREADS` / the machine.
    pub fn new(circuit: &'c Circuit, faults: BridgingFaultList) -> Self {
        let flat: Vec<BridgingFault> = faults.iter().copied().collect();
        BridgingSim {
            list: faults,
            inner: WordSim::new(circuit, flat),
        }
    }

    /// Sets the pool width for subsequent [`BridgingSim::simulate`] calls
    /// (`0` = automatic). Grading results never depend on this knob.
    pub fn set_threads(&mut self, threads: usize) {
        self.inner.set_threads(threads);
    }

    /// Builder form of [`BridgingSim::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// The pool width grading currently uses.
    pub fn threads(&self) -> usize {
        self.inner.threads()
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &'c Circuit {
        self.inner.circuit()
    }

    /// The fault universe being graded.
    pub fn faults(&self) -> &BridgingFaultList {
        &self.list
    }

    /// Status of fault `index` (voltage-sense detection).
    pub fn status_of(&self, index: usize) -> FaultStatus {
        self.inner.status_of(index)
    }

    /// All statuses, parallel to [`BridgingSim::faults`].
    pub fn statuses(&self) -> &[FaultStatus] {
        self.inner.statuses()
    }

    /// Overrides the status of fault `index`.
    pub fn set_status(&mut self, index: usize, status: FaultStatus) {
        self.inner.set_status(index, status);
    }

    /// True if some pattern so far *excited* fault `index` (opposite
    /// driven values) — the Iddq criterion, which needs no propagation.
    pub fn iddq_detected(&self, index: usize) -> bool {
        self.inner.excited(index)
    }

    /// Fraction of the universe the sequence excites (Iddq coverage), %.
    pub fn iddq_coverage_pct(&self) -> f64 {
        if self.list.is_empty() {
            return 0.0;
        }
        100.0 * self.inner.excited_count() as f64 / self.list.len() as f64
    }

    /// Global index of the first pattern that detected fault `index` at
    /// an output.
    pub fn first_detection(&self, index: usize) -> Option<u32> {
        self.inner.first_detection(index)
    }

    /// Number of patterns consumed so far.
    pub fn patterns_seen(&self) -> u32 {
        self.inner.patterns_seen()
    }

    /// The work performed so far. Deterministic at every thread width.
    pub fn counters(&self) -> SimCounters {
        self.inner.counters()
    }

    /// Forgets all grading results (voltage and Iddq) and the sequence
    /// position.
    pub fn reset(&mut self) {
        self.inner.reset();
    }

    /// Coverage summary (voltage-sense).
    pub fn report(&self) -> CoverageReport {
        self.inner.report()
    }

    /// Grades `patterns` (continuing any previously fed sequence).
    /// Returns the number of newly (voltage-)detected faults.
    pub fn simulate(&mut self, patterns: &[Pattern]) -> usize {
        self.inner.simulate(patterns)
    }
}

impl WordFault for BridgingFault {
    /// Excitation every block keeps the Iddq mask current for the whole
    /// universe, detected bridges included.
    const TRACKS_EXCITATION: bool = true;

    /// Where excited, the short drives *both* nodes to the resolved value
    /// (elsewhere the resolution of two equal values is the value itself,
    /// so the seed words degrade to the good machine).
    fn seeds(&self, ctx: &BlockCtx<'_>) -> Seeds {
        let ga = ctx.good[self.a.index()];
        let gb = ctx.good[self.b.index()];
        if (ga ^ gb) & ctx.valid == 0 {
            return Seeds::NONE;
        }
        let resolved = self.kind.resolve_word(ga, gb);
        Seeds::two(
            self.a.index() as u32,
            resolved,
            self.b.index() as u32,
            resolved,
        )
    }

    fn excitation(&self, ctx: &BlockCtx<'_>) -> u64 {
        (ctx.good[self.a.index()] ^ ctx.good[self.b.index()]) & ctx.valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BridgeKind;
    use bist_netlist::{CircuitBuilder, GateKind};

    fn exhaustive(width: usize) -> Vec<Pattern> {
        (0u32..(1 << width))
            .map(|v| Pattern::from_fn(width, |i| (v >> i) & 1 == 1))
            .collect()
    }

    #[test]
    fn hand_checked_two_input_bridge() {
        // y1 = BUF(a), y2 = BUF(b): a~b wired-AND is detected whenever
        // a != b (the 0 wins and flips whichever output carried the 1)
        let mut b = CircuitBuilder::new("pair");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("y1", GateKind::Buf, &["a"]).unwrap();
        b.add_gate("y2", GateKind::Buf, &["b"]).unwrap();
        b.mark_output("y1").unwrap();
        b.mark_output("y2").unwrap();
        let c = b.build().unwrap();
        let (a, bb) = (c.find("a").unwrap(), c.find("b").unwrap());
        let mut faults = BridgingFaultList::new();
        faults.push(
            &c,
            BridgingFault {
                a,
                b: bb,
                kind: BridgeKind::WiredAnd,
            },
        );
        let mut sim = BridgingSim::new(&c, faults);
        // equal values: no excitation, no detection
        assert_eq!(sim.simulate(&[Pattern::from_bits(&[true, true])]), 0);
        assert!(!sim.iddq_detected(0));
        // opposite values: excitation and voltage detection
        assert_eq!(sim.simulate(&[Pattern::from_bits(&[true, false])]), 1);
        assert!(sim.iddq_detected(0));
        assert_eq!(sim.first_detection(0), Some(1));
    }

    #[test]
    fn wired_or_requires_the_dual_excitation() {
        // single output y = BUF(a): bridge a ~ b (b unobserved) wired-OR
        // flips y only when a=0, b=1
        let mut builder = CircuitBuilder::new("dual");
        builder.add_input("a").unwrap();
        builder.add_input("b").unwrap();
        builder.add_gate("y", GateKind::Buf, &["a"]).unwrap();
        builder.add_gate("z", GateKind::Buf, &["b"]).unwrap();
        builder.mark_output("y").unwrap();
        let c = builder.build().unwrap();
        let (a, b) = (c.find("a").unwrap(), c.find("b").unwrap());
        let mut faults = BridgingFaultList::new();
        faults.push(
            &c,
            BridgingFault {
                a,
                b,
                kind: BridgeKind::WiredOr,
            },
        );
        let mut sim = BridgingSim::new(&c, faults);
        // a=1, b=0: excited (opposite) but y=a already 1 = resolved -> no flip
        assert_eq!(sim.simulate(&[Pattern::from_bits(&[true, false])]), 0);
        assert!(sim.iddq_detected(0), "Iddq sees any opposite drive");
        // a=0, b=1: resolved 1 flips y
        assert_eq!(sim.simulate(&[Pattern::from_bits(&[false, true])]), 1);
    }

    #[test]
    fn exhaustive_c17_detects_most_sampled_bridges() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = BridgingFaultList::sample(&c17, 60, 3);
        let total = faults.len();
        let mut sim = BridgingSim::new(&c17, faults);
        sim.simulate(&exhaustive(5));
        let report = sim.report();
        assert!(
            report.detected as f64 >= 0.7 * total as f64,
            "exhaustive voltage coverage too low: {}/{}",
            report.detected,
            total
        );
        // Iddq (excitation-only) coverage dominates voltage coverage
        assert!(sim.iddq_coverage_pct() >= report.coverage_pct());
    }

    #[test]
    fn chunked_equals_monolithic() {
        use rand::{rngs::StdRng, SeedableRng};
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = BridgingFaultList::sample(&c, 150, 9);
        let mut rng = StdRng::seed_from_u64(11);
        let patterns: Vec<Pattern> = (0..200)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut mono = BridgingSim::new(&c, faults.clone());
        mono.simulate(&patterns);
        let mut chunked = BridgingSim::new(&c, faults);
        for chunk in patterns.chunks(23) {
            chunked.simulate(chunk);
        }
        assert_eq!(mono.statuses(), chunked.statuses());
        assert_eq!(mono.iddq_coverage_pct(), chunked.iddq_coverage_pct());
    }

    #[test]
    fn parallel_grading_is_bit_identical_to_serial() {
        use rand::{rngs::StdRng, SeedableRng};
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = BridgingFaultList::sample(&c, 200, 5);
        let mut rng = StdRng::seed_from_u64(31);
        let patterns: Vec<Pattern> = (0..300)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut serial = BridgingSim::new(&c, faults.clone()).with_threads(1);
        serial.simulate(&patterns);

        for threads in [2, 4] {
            let mut par = BridgingSim::new(&c, faults.clone()).with_threads(threads);
            par.simulate(&patterns);
            assert_eq!(serial.statuses(), par.statuses(), "threads={threads}");
            for i in 0..serial.faults().len() {
                assert_eq!(
                    serial.first_detection(i),
                    par.first_detection(i),
                    "threads={threads}, fault {i}"
                );
                assert_eq!(
                    serial.iddq_detected(i),
                    par.iddq_detected(i),
                    "threads={threads}, fault {i} iddq"
                );
            }
            assert_eq!(serial.counters(), par.counters(), "threads={threads}");
        }
    }
}
