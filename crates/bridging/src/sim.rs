use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bist_fault::FaultStatus;
use bist_faultsim::CoverageReport;
use bist_logicsim::{Pattern, PatternBlock};
use bist_netlist::{Circuit, GateKind, NodeId};

use crate::model::{BridgingFault, BridgingFaultList};

/// Parallel-pattern bridging-fault simulator with fault dropping — the
/// measurement side of the \[Hwa93\] question the paper leans on: *how much
/// of a realistic short universe does a stuck-at-derived sequence
/// detect?*
///
/// A bridge is detected by a pattern that drives the two shorted nodes to
/// opposite values (excitation — the same condition Iddq testing senses
/// as elevated quiescent current) *and* propagates the resolved value's
/// difference to a primary output (voltage-sense detection, the stricter
/// criterion graded here).
///
/// # Example
///
/// ```
/// use bist_bridging::{BridgingFaultList, BridgingSim};
/// use bist_logicsim::Pattern;
///
/// let c17 = bist_netlist::iscas85::c17();
/// let faults = BridgingFaultList::sample(&c17, 30, 17);
/// let mut sim = BridgingSim::new(&c17, faults);
/// let patterns: Vec<Pattern> = (0u32..32)
///     .map(|v| Pattern::from_fn(5, |i| (v >> i) & 1 == 1))
///     .collect();
/// sim.simulate(&patterns);
/// assert!(sim.report().coverage_pct() > 50.0); // exhaustive input space
/// ```
#[derive(Debug)]
pub struct BridgingSim<'c> {
    circuit: &'c Circuit,
    faults: BridgingFaultList,
    status: Vec<FaultStatus>,
    first_detection: Vec<Option<u32>>,
    patterns_seen: u32,
    /// Word of patterns (per fault) where the bridge was *excited*
    /// (opposite driven values) regardless of propagation — the Iddq
    /// detectability mask, accumulated as an any-pattern flag.
    iddq_detected: Vec<bool>,
    // --- scratch buffers ---
    good: Vec<u64>,
    fval: Vec<u64>,
    stamp: Vec<u32>,
    epoch: u32,
    topo_pos: Vec<u32>,
}

impl<'c> BridgingSim<'c> {
    /// Creates a simulator grading `faults` on `circuit`.
    pub fn new(circuit: &'c Circuit, faults: BridgingFaultList) -> Self {
        let n = circuit.num_nodes();
        let mut topo_pos = vec![0u32; n];
        for (pos, &id) in circuit.topo_order().iter().enumerate() {
            topo_pos[id.index()] = pos as u32;
        }
        let len = faults.len();
        BridgingSim {
            circuit,
            faults,
            status: vec![FaultStatus::Undetected; len],
            first_detection: vec![None; len],
            patterns_seen: 0,
            iddq_detected: vec![false; len],
            good: vec![0; n],
            fval: vec![0; n],
            stamp: vec![0; n],
            epoch: 0,
            topo_pos,
        }
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The fault universe being graded.
    pub fn faults(&self) -> &BridgingFaultList {
        &self.faults
    }

    /// Status of fault `index` (voltage-sense detection).
    pub fn status_of(&self, index: usize) -> FaultStatus {
        self.status[index]
    }

    /// All statuses, parallel to [`BridgingSim::faults`].
    pub fn statuses(&self) -> &[FaultStatus] {
        &self.status
    }

    /// True if some pattern so far *excited* fault `index` (opposite
    /// driven values) — the Iddq criterion, which needs no propagation.
    pub fn iddq_detected(&self, index: usize) -> bool {
        self.iddq_detected[index]
    }

    /// Fraction of the universe the sequence excites (Iddq coverage), %.
    pub fn iddq_coverage_pct(&self) -> f64 {
        if self.faults.is_empty() {
            return 0.0;
        }
        100.0 * self.iddq_detected.iter().filter(|&&d| d).count() as f64 / self.faults.len() as f64
    }

    /// Global index of the first pattern that detected fault `index` at
    /// an output.
    pub fn first_detection(&self, index: usize) -> Option<u32> {
        self.first_detection[index]
    }

    /// Number of patterns consumed so far.
    pub fn patterns_seen(&self) -> u32 {
        self.patterns_seen
    }

    /// Coverage summary (voltage-sense).
    pub fn report(&self) -> CoverageReport {
        CoverageReport::from_statuses(&self.status)
    }

    /// Grades `patterns` (continuing any previously fed sequence).
    /// Returns the number of newly (voltage-)detected faults.
    pub fn simulate(&mut self, patterns: &[Pattern]) -> usize {
        let mut newly = 0;
        for chunk in patterns.chunks(64) {
            let block = PatternBlock::pack(self.circuit, chunk);
            newly += self.simulate_block(&block);
        }
        newly
    }

    fn simulate_block(&mut self, block: &PatternBlock) -> usize {
        let valid = block.valid_mask();
        self.good_simulate(block);
        let mut newly = 0;
        for fi in 0..self.faults.len() {
            let fault = *self.faults.get(fi).expect("index in range");
            let ga = self.good[fault.a.index()];
            let gb = self.good[fault.b.index()];
            let excited = (ga ^ gb) & valid;
            if excited != 0 {
                self.iddq_detected[fi] = true;
            }
            if self.status[fi] != FaultStatus::Undetected || excited == 0 {
                continue;
            }
            if let Some(mask) = self.try_detect(fault, valid) {
                let first = mask.trailing_zeros();
                self.status[fi] = FaultStatus::Detected;
                self.first_detection[fi] = Some(self.patterns_seen + first);
                newly += 1;
            }
        }
        self.patterns_seen += block.count() as u32;
        newly
    }

    fn good_simulate(&mut self, block: &PatternBlock) {
        for (i, &pi) in self.circuit.inputs().iter().enumerate() {
            self.good[pi.index()] = block.input_word(i);
        }
        let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
        for &id in self.circuit.topo_order() {
            let node = self.circuit.node(id);
            match node.kind() {
                GateKind::Input => {}
                GateKind::Dff => self.good[id.index()] = 0,
                kind => {
                    fanin_buf.clear();
                    fanin_buf.extend(node.fanin().iter().map(|f| self.good[f.index()]));
                    self.good[id.index()] = kind.eval_word(&fanin_buf);
                }
            }
        }
    }

    /// Injects the bridge (both nodes take the resolved value) and
    /// propagates through the union of the two fan-out cones.
    fn try_detect(&mut self, fault: BridgingFault, valid: u64) -> Option<u64> {
        let ga = self.good[fault.a.index()];
        let gb = self.good[fault.b.index()];
        let resolved = fault.kind.resolve_word(ga, gb);

        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;

        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        let mut detect = 0u64;
        for (site, g) in [(fault.a, ga), (fault.b, gb)] {
            self.fval[site.index()] = resolved;
            self.stamp[site.index()] = epoch;
            if self.circuit.is_output(site) {
                detect |= (resolved ^ g) & valid;
            }
            for &s in self.circuit.fanout(site) {
                heap.push(Reverse((self.topo_pos[s.index()], s.index() as u32)));
            }
        }

        let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
        let mut last_popped = u32::MAX;
        while let Some(Reverse((pos, idx))) = heap.pop() {
            if pos == last_popped {
                continue;
            }
            last_popped = pos;
            let id = NodeId::from_index(idx as usize);
            let node = self.circuit.node(id);
            if !node.kind().is_combinational() {
                continue;
            }
            fanin_buf.clear();
            fanin_buf.extend(node.fanin().iter().map(|f| {
                if self.stamp[f.index()] == epoch {
                    self.fval[f.index()]
                } else {
                    self.good[f.index()]
                }
            }));
            let fv = node.kind().eval_word(&fanin_buf);
            if fv == self.good[id.index()] {
                continue;
            }
            self.fval[id.index()] = fv;
            self.stamp[id.index()] = epoch;
            if self.circuit.is_output(id) {
                detect |= (fv ^ self.good[id.index()]) & valid;
            }
            for &s in self.circuit.fanout(id) {
                heap.push(Reverse((self.topo_pos[s.index()], s.index() as u32)));
            }
        }
        (detect != 0).then_some(detect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BridgeKind;
    use bist_netlist::{CircuitBuilder, GateKind};

    fn exhaustive(width: usize) -> Vec<Pattern> {
        (0u32..(1 << width))
            .map(|v| Pattern::from_fn(width, |i| (v >> i) & 1 == 1))
            .collect()
    }

    #[test]
    fn hand_checked_two_input_bridge() {
        // y1 = BUF(a), y2 = BUF(b): a~b wired-AND is detected whenever
        // a != b (the 0 wins and flips whichever output carried the 1)
        let mut b = CircuitBuilder::new("pair");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("y1", GateKind::Buf, &["a"]).unwrap();
        b.add_gate("y2", GateKind::Buf, &["b"]).unwrap();
        b.mark_output("y1").unwrap();
        b.mark_output("y2").unwrap();
        let c = b.build().unwrap();
        let (a, bb) = (c.find("a").unwrap(), c.find("b").unwrap());
        let mut faults = BridgingFaultList::new();
        faults.push(
            &c,
            BridgingFault {
                a,
                b: bb,
                kind: BridgeKind::WiredAnd,
            },
        );
        let mut sim = BridgingSim::new(&c, faults);
        // equal values: no excitation, no detection
        assert_eq!(sim.simulate(&[Pattern::from_bits(&[true, true])]), 0);
        assert!(!sim.iddq_detected(0));
        // opposite values: excitation and voltage detection
        assert_eq!(sim.simulate(&[Pattern::from_bits(&[true, false])]), 1);
        assert!(sim.iddq_detected(0));
        assert_eq!(sim.first_detection(0), Some(1));
    }

    #[test]
    fn wired_or_requires_the_dual_excitation() {
        // single output y = BUF(a): bridge a ~ b (b unobserved) wired-OR
        // flips y only when a=0, b=1
        let mut builder = CircuitBuilder::new("dual");
        builder.add_input("a").unwrap();
        builder.add_input("b").unwrap();
        builder.add_gate("y", GateKind::Buf, &["a"]).unwrap();
        builder.add_gate("z", GateKind::Buf, &["b"]).unwrap();
        builder.mark_output("y").unwrap();
        let c = builder.build().unwrap();
        let (a, b) = (c.find("a").unwrap(), c.find("b").unwrap());
        let mut faults = BridgingFaultList::new();
        faults.push(
            &c,
            BridgingFault {
                a,
                b,
                kind: BridgeKind::WiredOr,
            },
        );
        let mut sim = BridgingSim::new(&c, faults);
        // a=1, b=0: excited (opposite) but y=a already 1 = resolved -> no flip
        assert_eq!(sim.simulate(&[Pattern::from_bits(&[true, false])]), 0);
        assert!(sim.iddq_detected(0), "Iddq sees any opposite drive");
        // a=0, b=1: resolved 1 flips y
        assert_eq!(sim.simulate(&[Pattern::from_bits(&[false, true])]), 1);
    }

    #[test]
    fn exhaustive_c17_detects_most_sampled_bridges() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = BridgingFaultList::sample(&c17, 60, 3);
        let total = faults.len();
        let mut sim = BridgingSim::new(&c17, faults);
        sim.simulate(&exhaustive(5));
        let report = sim.report();
        assert!(
            report.detected as f64 >= 0.7 * total as f64,
            "exhaustive voltage coverage too low: {}/{}",
            report.detected,
            total
        );
        // Iddq (excitation-only) coverage dominates voltage coverage
        assert!(sim.iddq_coverage_pct() >= report.coverage_pct());
    }

    #[test]
    fn chunked_equals_monolithic() {
        use rand::{rngs::StdRng, SeedableRng};
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = BridgingFaultList::sample(&c, 150, 9);
        let mut rng = StdRng::seed_from_u64(11);
        let patterns: Vec<Pattern> = (0..200)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let mut mono = BridgingSim::new(&c, faults.clone());
        mono.simulate(&patterns);
        let mut chunked = BridgingSim::new(&c, faults);
        for chunk in patterns.chunks(23) {
            chunked.simulate(chunk);
        }
        assert_eq!(mono.statuses(), chunked.statuses());
        assert_eq!(mono.iddq_coverage_pct(), chunked.iddq_coverage_pct());
    }
}
