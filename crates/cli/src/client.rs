//! The client side of `bist serve`: `--connect` routing for job
//! commands and the `bist server <stats|shutdown>` verbs.
//!
//! A remote run is deliberately indistinguishable from a local one at
//! the output level: progress events render through the same
//! [`event_line`] formatter on stderr, and the returned [`JobResult`]
//! feeds the same text/JSON renderers — so a served result is
//! byte-identical on stdout to the one-shot CLI run that would have
//! computed it locally.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use bist_engine::wire::{self, Request, Response, ServerStats};
use bist_engine::{JobResult, JobSpec};

use crate::commands::CommandError;
use crate::opts::UsageError;
use crate::render::event_line;

/// A parsed `--connect` target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Connect {
    /// A TCP address (`host:port`).
    Tcp(String),
    /// A unix-domain socket path (`unix:/path`), unix platforms only.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Connect {
    /// Parses a `--connect` value: `unix:/path` is a unix socket,
    /// anything else a TCP `host:port`.
    ///
    /// # Errors
    ///
    /// [`UsageError`] for `unix:` targets on non-unix platforms.
    pub fn parse(target: &str) -> Result<Connect, UsageError> {
        if let Some(path) = target.strip_prefix("unix:") {
            #[cfg(unix)]
            return Ok(Connect::Unix(PathBuf::from(path)));
            #[cfg(not(unix))]
            return Err(UsageError(format!(
                "unix socket target `{path}` needs a unix platform; use host:port"
            )));
        }
        Ok(Connect::Tcp(target.to_owned()))
    }

    fn open(&self) -> Result<Session, CommandError> {
        match self {
            Connect::Tcp(addr) => {
                let stream = TcpStream::connect(addr)
                    .map_err(|e| CommandError::Io(format!("cannot connect to {addr}: {e}")))?;
                let reader = stream
                    .try_clone()
                    .map_err(|e| CommandError::Io(format!("cannot clone socket: {e}")))?;
                Ok(Session {
                    reader: Box::new(BufReader::new(reader)),
                    writer: Box::new(stream),
                })
            }
            #[cfg(unix)]
            Connect::Unix(path) => {
                let stream = std::os::unix::net::UnixStream::connect(path).map_err(|e| {
                    CommandError::Io(format!("cannot connect to {}: {e}", path.display()))
                })?;
                let reader = stream
                    .try_clone()
                    .map_err(|e| CommandError::Io(format!("cannot clone socket: {e}")))?;
                Ok(Session {
                    reader: Box::new(BufReader::new(reader)),
                    writer: Box::new(stream),
                })
            }
        }
    }
}

/// One open connection: a line-buffered read half and a write half.
struct Session {
    reader: Box<dyn BufRead>,
    writer: Box<dyn Write>,
}

impl Session {
    fn send(&mut self, request: &Request) -> Result<(), CommandError> {
        let line = wire::encode_request(request);
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| CommandError::Io(format!("cannot send request: {e}")))
    }

    fn next(&mut self) -> Result<Response, CommandError> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| CommandError::Io(format!("connection lost: {e}")))?;
            if n == 0 {
                return Err(CommandError::Io("server closed the connection".to_owned()));
            }
            if line.trim().is_empty() {
                continue;
            }
            return wire::decode_response(line.trim_end())
                .map_err(|e| CommandError::Io(e.to_string()));
        }
    }
}

/// Submits one job to a running `bist serve`, streams its progress to
/// stderr (unless `quiet`) and returns the result.
///
/// # Errors
///
/// [`CommandError::Io`] when the server is unreachable, rejects the
/// submission (admission control or draining) or reports the job
/// failed; the rendered reason goes to the user verbatim.
pub fn run_remote(
    connect: &Connect,
    spec: JobSpec,
    quiet: bool,
) -> Result<JobResult, CommandError> {
    let mut session = connect.open()?;
    session.send(&Request::Submit {
        spec: Box::new(spec),
    })?;
    loop {
        match session.next()? {
            Response::Accepted { .. } => {}
            Response::Event { event } => {
                if !quiet {
                    eprintln!("{}", event_line(&event));
                }
            }
            Response::Result { result, cached, .. } => {
                if !quiet && cached {
                    eprintln!("bist: served from the result cache");
                }
                return Ok(*result);
            }
            Response::Failed { error, .. } => {
                return Err(CommandError::Io(format!("remote job failed: {error}")))
            }
            Response::Rejected {
                reason,
                retry_after_ms,
            } => {
                let hint =
                    retry_after_ms.map_or(String::new(), |ms| format!(" (retry after {ms} ms)"));
                return Err(CommandError::Io(format!(
                    "server rejected the job: {reason}{hint}"
                )));
            }
            Response::Stats { .. } | Response::Stopping { .. } => {
                return Err(CommandError::Io(
                    "unexpected control response to a submission".to_owned(),
                ))
            }
        }
    }
}

/// Fetches a running server's lifetime statistics.
///
/// # Errors
///
/// [`CommandError::Io`] on connection or protocol failure.
pub fn server_stats(connect: &Connect) -> Result<ServerStats, CommandError> {
    let mut session = connect.open()?;
    session.send(&Request::Stats)?;
    match session.next()? {
        Response::Stats { stats } => Ok(stats),
        other => Err(CommandError::Io(format!(
            "expected a stats response, got {other:?}"
        ))),
    }
}

/// Asks a running server to drain and exit; returns the `(queued,
/// running)` job counts it reported while stopping.
///
/// # Errors
///
/// [`CommandError::Io`] on connection or protocol failure.
pub fn server_shutdown(connect: &Connect) -> Result<(u64, u64), CommandError> {
    let mut session = connect.open()?;
    session.send(&Request::Shutdown)?;
    match session.next()? {
        Response::Stopping { queued, running } => Ok((queued, running)),
        other => Err(CommandError::Io(format!(
            "expected a stopping response, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_parse_by_scheme() {
        assert_eq!(
            Connect::parse("127.0.0.1:7117").expect("tcp"),
            Connect::Tcp("127.0.0.1:7117".to_owned())
        );
        #[cfg(unix)]
        assert_eq!(
            Connect::parse("unix:/tmp/bist.sock").expect("unix"),
            Connect::Unix(PathBuf::from("/tmp/bist.sock"))
        );
    }

    #[test]
    fn connecting_nowhere_is_an_io_error() {
        let connect = Connect::Tcp("127.0.0.1:1".to_owned());
        assert!(matches!(
            run_remote(
                &connect,
                JobSpec::lint(bist_engine::CircuitSource::iscas85("c17")),
                true
            ),
            Err(CommandError::Io(_))
        ));
    }
}
