//! One function per subcommand, plus the dispatcher the binary calls.

use std::time::Duration;

use bist_engine::json::Json;
use bist_engine::{
    AreaReportSpec, BakeoffSpec, BistError, CoverageCurveSpec, EmitHdlSpec, Engine, EstimateSpec,
    FaultModel, HdlLanguage, JobHandle, JobResult, JobSpec, LintSpec, ResultCache, SolveAtSpec,
    SweepSpec, DEFAULT_ESTIMATE_CONFIDENCE, DEFAULT_ESTIMATE_SAMPLES, DEFAULT_ESTIMATE_SEED,
};

use crate::client::{self, Connect};
use crate::opts::{
    parse_lengths, resolve_circuit, split_common, take_flag, take_value, CommonOpts, Format,
    UsageError,
};
use crate::render::{event_line, result_json, result_text};
use crate::serve::{ServeConfig, Server};
use crate::{help, manifest, EXIT_JOB_FAILED, EXIT_USAGE};

/// Runs the command line (everything after the program name) and
/// returns the process exit code.
pub fn dispatch(args: &[String]) -> u8 {
    let Some((command, rest)) = args.split_first() else {
        print!("{}", help::TOP);
        return 0;
    };
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        print!("{}", help::TOP);
        return 0;
    }
    let (opts, mut rest) = match split_common(rest) {
        Ok(split) => split,
        Err(e) => return usage_error(&e),
    };
    if opts.help {
        let text = match command.as_str() {
            "solve" => help::SOLVE,
            "sweep" => help::SWEEP,
            "curve" => help::CURVE,
            "bakeoff" => help::BAKEOFF,
            "emit-hdl" => help::EMIT_HDL,
            "area" => help::AREA,
            "estimate" => help::ESTIMATE,
            "lint" => help::LINT,
            "batch" => help::BATCH,
            "cache" => help::CACHE,
            "serve" => help::SERVE,
            "server" => help::SERVER,
            _ => help::TOP,
        };
        print!("{text}");
        return 0;
    }
    let mut run = || -> Result<u8, CommandError> {
        match command.as_str() {
            "solve" | "sweep" | "curve" | "bakeoff" | "emit-hdl" | "area" | "estimate" => {
                job_command(command, &opts, &mut rest)
            }
            "lint" => lint_command(&opts, &mut rest),
            "batch" => batch_command(&opts, &rest),
            "cache" => cache_command(&opts, &rest),
            "serve" => serve_command(&opts, &mut rest),
            "server" => server_command(&opts, &rest),
            other => Err(UsageError(format!("unknown command `{other}` (try `bist help`)")).into()),
        }
    };
    match run() {
        Ok(code) => code,
        Err(CommandError::Usage(e)) => usage_error(&e),
        Err(CommandError::Job(e)) => {
            eprintln!("bist: {e}");
            EXIT_JOB_FAILED
        }
        Err(CommandError::Io(message)) => {
            eprintln!("bist: {message}");
            EXIT_JOB_FAILED
        }
    }
}

/// Either kind of failure a subcommand can produce.
#[derive(Debug)]
pub enum CommandError {
    /// Malformed command line, rejected before any work (exit 2).
    Usage(UsageError),
    /// The engine rejected or failed the job (exit 1).
    Job(BistError),
    /// Work succeeded or partially ran but an I/O step failed — writing
    /// HDL artefacts, clearing the cache (exit 1, never 2: the command
    /// line was fine).
    Io(String),
}

impl From<UsageError> for CommandError {
    fn from(e: UsageError) -> Self {
        CommandError::Usage(e)
    }
}

impl From<BistError> for CommandError {
    fn from(e: BistError) -> Self {
        CommandError::Job(e)
    }
}

fn usage_error(e: &UsageError) -> u8 {
    eprintln!("bist: {e} (try `bist help`)");
    EXIT_USAGE
}

/// The one circuit positional every job command takes.
fn the_circuit(command: &str, rest: &[String]) -> Result<String, UsageError> {
    match rest {
        [one] => Ok(one.clone()),
        [] => Err(UsageError(format!("{command} needs a circuit argument"))),
        many => Err(UsageError(format!(
            "{command} takes one circuit, got `{}`",
            many.join(" ")
        ))),
    }
}

fn job_command(
    command: &str,
    opts: &CommonOpts,
    rest: &mut Vec<String>,
) -> Result<u8, CommandError> {
    let mut out_dir: Option<String> = None;
    let spec = match command {
        "solve" => {
            let prefix = required_usize(rest, "--prefix", "solve")?;
            let fault_model = fault_model_flag(rest)?;
            let estimate_first = take_flag(rest, "--estimate-first");
            JobSpec::SolveAt(SolveAtSpec {
                circuit: resolve_circuit(&the_circuit(command, rest)?)?,
                config: Default::default(),
                prefix_len: prefix,
                fault_model,
                estimate_first,
            })
        }
        "sweep" => {
            let points = required_lengths(rest, "--points", "sweep")?;
            let fault_model = fault_model_flag(rest)?;
            let estimate_first = take_flag(rest, "--estimate-first");
            JobSpec::Sweep(SweepSpec {
                circuit: resolve_circuit(&the_circuit(command, rest)?)?,
                config: Default::default(),
                prefix_lengths: points,
                fault_model,
                estimate_first,
            })
        }
        "curve" => {
            let points = required_lengths(rest, "--points", "curve")?;
            let fault_model = fault_model_flag(rest)?;
            JobSpec::CoverageCurve(CoverageCurveSpec {
                circuit: resolve_circuit(&the_circuit(command, rest)?)?,
                config: Default::default(),
                checkpoints: points,
                fault_model,
            })
        }
        "bakeoff" => {
            let random_length = match take_value(rest, "--random-length")? {
                None => 1000,
                Some(v) => v
                    .parse()
                    .map_err(|_| UsageError(format!("--random-length: `{v}` is not a length")))?,
            };
            JobSpec::Bakeoff(BakeoffSpec {
                circuit: resolve_circuit(&the_circuit(command, rest)?)?,
                config: Default::default(),
                random_length,
            })
        }
        "emit-hdl" => {
            let prefix = required_usize(rest, "--prefix", "emit-hdl")?;
            let language = match take_value(rest, "--lang")?.as_deref() {
                None | Some("both") => HdlLanguage::Both,
                Some("verilog") => HdlLanguage::Verilog,
                Some("vhdl") => HdlLanguage::Vhdl,
                Some(other) => {
                    return Err(UsageError(format!(
                        "--lang takes verilog | vhdl | both, got `{other}`"
                    ))
                    .into())
                }
            };
            let module_name = take_value(rest, "--module")?;
            let testbench = take_flag(rest, "--testbench");
            out_dir = take_value(rest, "--out")?;
            JobSpec::EmitHdl(EmitHdlSpec {
                circuit: resolve_circuit(&the_circuit(command, rest)?)?,
                config: Default::default(),
                prefix_len: prefix,
                language,
                module_name,
                testbench,
            })
        }
        "area" => JobSpec::AreaReport(AreaReportSpec {
            circuit: resolve_circuit(&the_circuit(command, rest)?)?,
            config: Default::default(),
        }),
        "estimate" => {
            let prefix = required_usize(rest, "--prefix", "estimate")?;
            let samples = match take_value(rest, "--samples")? {
                None => DEFAULT_ESTIMATE_SAMPLES,
                Some(v) => v
                    .parse()
                    .map_err(|_| UsageError(format!("--samples: `{v}` is not a count")))?,
            };
            let confidence = match take_value(rest, "--confidence")? {
                None => DEFAULT_ESTIMATE_CONFIDENCE,
                Some(v) => v
                    .parse()
                    .map_err(|_| UsageError(format!("--confidence: `{v}` is not a percentage")))?,
            };
            let seed = match take_value(rest, "--seed")? {
                None => DEFAULT_ESTIMATE_SEED,
                Some(v) => parse_seed(&v)?,
            };
            JobSpec::CoverageEstimate(EstimateSpec {
                circuit: resolve_circuit(&the_circuit(command, rest)?)?,
                config: Default::default(),
                prefix_len: prefix,
                samples,
                confidence,
                seed,
            })
        }
        _ => unreachable!("caller matched the command"),
    };

    let result = run_one(opts, spec)?;

    if let (Some(dir), JobResult::EmitHdl(hdl)) = (&out_dir, &result) {
        write_artefacts(dir, hdl)?;
        if opts.format == Format::Text {
            println!("{}: module {} — {}", hdl.circuit, hdl.module, hdl.solution);
            return Ok(0);
        }
    }
    match opts.format {
        Format::Text => print!("{}", result_text(&result)),
        Format::Json => print!("{}", result_json(&result).render_pretty()),
    }
    Ok(0)
}

/// `--fault-model stuck-at | transition | bridging[:PAIRS[:SEED]]`;
/// absent means stuck-at, the paper's model.
fn fault_model_flag(rest: &mut Vec<String>) -> Result<FaultModel, UsageError> {
    match take_value(rest, "--fault-model")? {
        None => Ok(FaultModel::default()),
        Some(v) => v
            .parse()
            .map_err(|e| UsageError(format!("--fault-model: {e}"))),
    }
}

/// `--seed` accepts a decimal or `0x`-prefixed hexadecimal 64-bit word.
fn parse_seed(value: &str) -> Result<u64, UsageError> {
    let parsed = match value
        .strip_prefix("0x")
        .or_else(|| value.strip_prefix("0X"))
    {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => value.parse(),
    };
    parsed.map_err(|_| UsageError(format!("--seed: `{value}` is not a 64-bit seed")))
}

fn required_usize(rest: &mut Vec<String>, flag: &str, command: &str) -> Result<usize, UsageError> {
    let value = take_value(rest, flag)?
        .ok_or_else(|| UsageError(format!("{command} needs `{flag} <n>`")))?;
    value
        .parse()
        .map_err(|_| UsageError(format!("{flag}: `{value}` is not a length")))
}

fn required_lengths(
    rest: &mut Vec<String>,
    flag: &str,
    command: &str,
) -> Result<Vec<usize>, UsageError> {
    let value = take_value(rest, flag)?
        .ok_or_else(|| UsageError(format!("{command} needs `{flag} <n,n,..>`")))?;
    parse_lengths(flag, &value)
}

/// `bist lint` has its own driver because — unlike every other job
/// command — its exit code depends on the report's content: errors (or,
/// under `--deny warnings`, warnings) fail the process even though the
/// job itself succeeded.
fn lint_command(opts: &CommonOpts, rest: &mut Vec<String>) -> Result<u8, CommandError> {
    let deny_warnings = match take_value(rest, "--deny")?.as_deref() {
        None => false,
        Some("warnings") => true,
        Some(other) => {
            return Err(UsageError(format!("--deny takes `warnings`, got `{other}`")).into())
        }
    };
    let spec = JobSpec::Lint(LintSpec {
        circuit: resolve_circuit(&the_circuit("lint", rest)?)?,
        config: Default::default(),
    });

    let result = run_one(opts, spec)?;
    match opts.format {
        Format::Text => print!("{}", result_text(&result)),
        Format::Json => print!("{}", result_json(&result).render_pretty()),
    }

    let report = &result
        .as_lint()
        .expect("lint jobs yield lint outcomes")
        .report;
    let failing = report.has_errors() || (deny_warnings && report.has_warnings());
    Ok(if failing { EXIT_JOB_FAILED } else { 0 })
}

fn batch_command(opts: &CommonOpts, rest: &[String]) -> Result<u8, CommandError> {
    if opts.connect.is_some() {
        return Err(UsageError(
            "batch runs locally; submit jobs one at a time with --connect".to_owned(),
        )
        .into());
    }
    let path = match rest {
        [one] => one.clone(),
        _ => return Err(UsageError("batch takes one manifest path".to_owned()).into()),
    };
    let manifest = manifest::load(&path)?;
    // precedence: --threads flag > [defaults] threads > automatic
    let threads = if opts.threads != 0 {
        opts.threads
    } else {
        manifest.threads.unwrap_or(0)
    };
    let (engine, cache) = build_engine(opts, threads);
    let results = run_with_progress(&engine, manifest.jobs, opts.quiet);
    report_cache(&cache, opts.quiet);

    let mut failed = 0usize;
    match opts.format {
        Format::Text => {
            for (index, result) in results.iter().enumerate() {
                if index > 0 {
                    println!();
                }
                match result {
                    Ok(result) => print!("{}", result_text(result)),
                    Err(e) => {
                        failed += 1;
                        eprintln!("bist: job {} failed: {e}", index + 1);
                    }
                }
            }
        }
        Format::Json => {
            let docs: Vec<Json> = results
                .iter()
                .map(|result| match result {
                    Ok(result) => result_json(result),
                    Err(e) => {
                        failed += 1;
                        let mut doc = Json::object();
                        doc.push("job", Json::str("error"));
                        doc.push("error", Json::str(e.to_string()));
                        doc
                    }
                })
                .collect();
            for result in &results {
                if let Err(e) = result {
                    eprintln!("bist: {e}");
                }
            }
            print!("{}", Json::Array(docs).render_pretty());
        }
    }
    Ok(if failed == 0 { 0 } else { EXIT_JOB_FAILED })
}

fn cache_command(opts: &CommonOpts, rest: &[String]) -> Result<u8, CommandError> {
    let action = match rest {
        [one] => one.as_str(),
        _ => return Err(UsageError("cache takes `stats` or `clear`".to_owned()).into()),
    };
    let cache = opts.cache().ok_or_else(|| {
        UsageError("no cache directory configured (use --cache-dir or $BIST_CACHE_DIR)".to_owned())
    })?;
    match action {
        "stats" => {
            let stats = cache.disk_stats();
            match opts.format {
                Format::Text => println!(
                    "{}: {} entries, {} bytes, {} evicted",
                    cache.dir().display(),
                    stats.entries,
                    stats.bytes,
                    stats.evictions
                ),
                Format::Json => {
                    let mut doc = Json::object();
                    doc.push("dir", Json::str(cache.dir().display().to_string()));
                    doc.push("entries", Json::uint(stats.entries));
                    doc.push("bytes", Json::uint(stats.bytes as usize));
                    doc.push("evictions", Json::uint(stats.evictions as usize));
                    print!("{}", doc.render_pretty());
                }
            }
            Ok(0)
        }
        "clear" => {
            let removed = cache.clear().map_err(|e| {
                CommandError::Io(format!("cannot clear {}: {e}", cache.dir().display()))
            })?;
            println!("removed {removed} entries from {}", cache.dir().display());
            Ok(0)
        }
        other => Err(UsageError(format!("cache takes `stats` or `clear`, got `{other}`")).into()),
    }
}

/// Runs one job spec — on a `bist serve` daemon when `--connect` is
/// given, in-process otherwise. The two paths feed the same renderers,
/// so a served result is byte-identical on stdout to a local run.
fn run_one(opts: &CommonOpts, spec: JobSpec) -> Result<JobResult, CommandError> {
    if let Some(target) = &opts.connect {
        let connect = Connect::parse(target)?;
        return client::run_remote(&connect, spec, opts.quiet);
    }
    let (engine, cache) = build_engine(opts, opts.threads);
    let result = run_with_progress(&engine, vec![spec], opts.quiet)
        .pop()
        .expect("one job in, one result out");
    report_cache(&cache, opts.quiet);
    Ok(result?)
}

/// `bist serve`: bind the configured listeners and run until a
/// `shutdown` request drains the queue.
fn serve_command(opts: &CommonOpts, rest: &mut Vec<String>) -> Result<u8, CommandError> {
    let listen = take_value(rest, "--listen")?;
    let socket = take_value(rest, "--socket")?.map(std::path::PathBuf::from);
    let jobs = match take_value(rest, "--jobs")? {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| UsageError(format!("--jobs: `{v}` is not a worker count")))?,
    };
    let queue_capacity = match take_value(rest, "--queue")? {
        None => 64,
        Some(v) => v
            .parse()
            .map_err(|_| UsageError(format!("--queue: `{v}` is not a queue depth")))?,
    };
    let cache_capacity: Option<u64> = match take_value(rest, "--cache-capacity")? {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| UsageError(format!("--cache-capacity: `{v}` is not a byte count")))?,
        ),
    };
    if !rest.is_empty() {
        return Err(UsageError(format!("serve does not take `{}`", rest.join(" "))).into());
    }
    // default to loopback TCP so a bare `bist serve` works out of the box
    let listen = match (&listen, &socket) {
        (None, None) => Some("127.0.0.1:7117".to_owned()),
        _ => listen,
    };
    let cache = match (opts.cache(), cache_capacity) {
        (Some(c), Some(bytes)) => Some(c.with_capacity(bytes)),
        (c, _) => c,
    };
    let server = Server::bind(ServeConfig {
        listen,
        socket,
        jobs,
        queue_capacity,
        retry_after_ms: 500,
        cache,
    })?;
    if !opts.quiet {
        if let Some(addr) = server.tcp_addr() {
            eprintln!("bist serve: listening on {addr}");
        }
        if let Some(path) = server.socket_path() {
            eprintln!("bist serve: listening on unix:{}", path.display());
        }
    }
    server.serve()?;
    if !opts.quiet {
        eprintln!("bist serve: drained, shutting down");
    }
    Ok(0)
}

/// `bist server <stats|shutdown> --connect <target>`: control verbs
/// against a running daemon.
fn server_command(opts: &CommonOpts, rest: &[String]) -> Result<u8, CommandError> {
    let action = match rest {
        [one] => one.as_str(),
        _ => return Err(UsageError("server takes `stats` or `shutdown`".to_owned()).into()),
    };
    let target = opts.connect.as_deref().ok_or_else(|| {
        UsageError("server needs `--connect <host:port | unix:/path>`".to_owned())
    })?;
    let connect = Connect::parse(target)?;
    match action {
        "stats" => {
            let stats = client::server_stats(&connect)?;
            match opts.format {
                Format::Text => {
                    println!(
                        "uptime: {} ms\njobs: submitted={} completed={} failed={} rejected={} queued={} running={}",
                        stats.uptime_ms,
                        stats.submitted,
                        stats.completed,
                        stats.failed,
                        stats.rejected,
                        stats.queued,
                        stats.running
                    );
                    match stats.cache {
                        Some(c) => println!(
                            "cache: hits={} misses={} stores={} evictions={} entries={} bytes={} capacity={}",
                            c.hits,
                            c.misses,
                            c.stores,
                            c.evictions,
                            c.entries,
                            c.bytes,
                            c.capacity_bytes
                                .map_or("none".to_owned(), |b| b.to_string())
                        ),
                        None => println!("cache: off"),
                    }
                }
                Format::Json => {
                    let mut doc = Json::object();
                    doc.push("uptime_ms", Json::uint(stats.uptime_ms as usize));
                    doc.push("submitted", Json::uint(stats.submitted as usize));
                    doc.push("completed", Json::uint(stats.completed as usize));
                    doc.push("failed", Json::uint(stats.failed as usize));
                    doc.push("rejected", Json::uint(stats.rejected as usize));
                    doc.push("queued", Json::uint(stats.queued as usize));
                    doc.push("running", Json::uint(stats.running as usize));
                    doc.push(
                        "cache",
                        stats.cache.map_or(Json::Null, |c| {
                            let mut j = Json::object();
                            j.push("hits", Json::uint(c.hits as usize));
                            j.push("misses", Json::uint(c.misses as usize));
                            j.push("stores", Json::uint(c.stores as usize));
                            j.push("evictions", Json::uint(c.evictions as usize));
                            j.push("entries", Json::uint(c.entries as usize));
                            j.push("bytes", Json::uint(c.bytes as usize));
                            j.push(
                                "capacity_bytes",
                                c.capacity_bytes
                                    .map_or(Json::Null, |b| Json::uint(b as usize)),
                            );
                            j
                        }),
                    );
                    print!("{}", doc.render_pretty());
                }
            }
            Ok(0)
        }
        "shutdown" => {
            let (queued, running) = client::server_shutdown(&connect)?;
            println!("server stopping: {queued} queued, {running} running jobs draining");
            Ok(0)
        }
        other => {
            Err(UsageError(format!("server takes `stats` or `shutdown`, got `{other}`")).into())
        }
    }
}

fn build_engine(opts: &CommonOpts, threads: usize) -> (Engine, Option<ResultCache>) {
    let cache = opts.cache();
    let mut engine = Engine::with_threads(threads);
    if let Some(cache) = cache.clone() {
        engine = engine.with_result_cache(cache);
    }
    (engine, cache)
}

/// Submits a batch asynchronously and streams progress events to
/// stderr from the per-job handle feeds while the jobs run — blocking
/// on [`ProgressFeed`](bist_engine::ProgressFeed)`::poll_timeout`
/// between events rather than busy-polling.
fn run_with_progress(
    engine: &Engine,
    specs: Vec<JobSpec>,
    quiet: bool,
) -> Vec<Result<JobResult, BistError>> {
    let handles = engine.submit_batch(specs);
    if quiet {
        return handles.into_iter().map(JobHandle::wait).collect();
    }
    let feeds: Vec<_> = handles.iter().map(|h| h.progress().clone()).collect();
    loop {
        let mut printed = false;
        for feed in &feeds {
            for event in feed.drain() {
                eprintln!("{}", event_line(&event));
                printed = true;
            }
        }
        if handles.iter().all(JobHandle::is_finished) {
            break;
        }
        if !printed {
            // nothing pending anywhere: park on the first unfinished
            // job's feed until an event (or its completion) wakes us
            if let Some(handle) = handles.iter().find(|h| !h.is_finished()) {
                if let Some(event) = handle.progress().poll_timeout(Duration::from_millis(50)) {
                    eprintln!("{}", event_line(&event));
                }
            }
        }
    }
    for feed in &feeds {
        for event in feed.drain() {
            eprintln!("{}", event_line(&event));
        }
    }
    handles.into_iter().map(JobHandle::wait).collect()
}

/// The greppable cache summary CI asserts on (stderr, one line).
fn report_cache(cache: &Option<ResultCache>, quiet: bool) {
    if let (Some(cache), false) = (cache, quiet) {
        eprintln!(
            "cache: hits={} misses={} stores={} dir={}",
            cache.hits(),
            cache.misses(),
            cache.stores(),
            cache.dir().display()
        );
    }
}

fn write_artefacts(dir: &str, hdl: &bist_engine::HdlOutcome) -> Result<(), CommandError> {
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir)
        .map_err(|e| CommandError::Io(format!("cannot create {}: {e}", dir.display())))?;
    for (suffix, text) in [
        (".v", &hdl.verilog),
        (".vhd", &hdl.vhdl),
        ("_tb.v", &hdl.testbench),
    ] {
        if let Some(text) = text {
            let path = dir.join(format!("{}{suffix}", hdl.module));
            std::fs::write(&path, text)
                .map_err(|e| CommandError::Io(format!("cannot write {}: {e}", path.display())))?;
            eprintln!("wrote {} ({} lines)", path.display(), text.lines().count());
        }
    }
    Ok(())
}
