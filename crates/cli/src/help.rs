//! Help texts.
//!
//! These strings are the contract between the CLI, `docs/GUIDE.md` and
//! the snapshot test in `tests/cli.rs`: the top-level text must match
//! `tests/snapshots/help.txt` byte for byte, so flags cannot drift from
//! their documentation unnoticed.

/// Top-level overview (`bist`, `bist help`, `bist --help`).
pub const TOP: &str = "\
bist — mixed-BIST job runner (Dufaza/Viallon/Chevalier, ED&TC 1995 reproduction)

USAGE
    bist <command> [arguments] [options]

COMMANDS
    solve <circuit> --prefix <p>      solve the mixed scheme at one prefix length
    sweep <circuit> --points <p,p,..> sweep the (p, d) trade-off incrementally
    curve <circuit> --points <l,l,..> grade the pure pseudo-random coverage curve
    bakeoff <circuit>                 run every TPG architecture on equal terms
    emit-hdl <circuit> --prefix <p>   solve and render the generator as HDL
    area <circuit>                    price the full-deterministic extreme
    estimate <circuit> --prefix <p>   sampled coverage estimate with a confidence interval
    lint <circuit>                    static netlist analysis + SCOAP testability
    batch <manifest.toml>             run a declarative job list
    cache <stats|clear>               inspect or empty the result cache
    serve                             run the jobs-over-a-socket test service
    server <stats|shutdown>           control a running service (--connect)
    help                              print this overview

CIRCUITS
    c17 .. c7552        ISCAS-85 benchmark by name
    s27 ..              ISCAS-89 benchmark by name
    path/to/file.bench  a .bench netlist (parse errors report file:line)

FAULT MODELS (solve, sweep, curve)
    --fault-model <m>   stuck-at (default) | transition | bridging[:PAIRS[:SEED]]

OPTIONS (every job command)
    --format <text|json>  stdout format                  [default: text]
    --threads <n>         pool width                     [default: BIST_THREADS or machine]
    --cache-dir <dir>     result cache directory         [default: BIST_CACHE_DIR, unset = off]
    --no-cache            run without the result cache
    --connect <target>    run on a `bist serve` daemon (host:port | unix:/path)
    --quiet, -q           no progress/cache lines on stderr
    --help, -h            command help

EXIT CODES
    0  success      1  a job failed (diagnostic on stderr)      2  usage error

See docs/GUIDE.md for a task-oriented cookbook, batch-manifest authoring
and the result-cache story.
";

/// `bist solve --help`.
pub const SOLVE: &str = "\
bist solve <circuit> --prefix <p> [options]

Solves the mixed scheme at one pseudo-random prefix length p: fault
simulation of the prefix, ATPG top-up of length d, generator synthesis
and replay verification. Prints the solved (p, d) point, its coverage,
silicon cost and the session work counters.

--fault-model selects the graded universe: stuck-at (default, the
paper's model), transition (launch-on-capture pattern pairs, with a
delay-aware ATPG top-up), or bridging[:PAIRS[:SEED]] (a reproducibly
sampled wired-AND/OR short universe graded over the stuck-at hardware).

--estimate-first streams a sampled coverage preview (Wilson interval)
before the exact run; the flag never changes the exact result or its
cache entry, and a warm cache hit answers exactly with no preview.
";

/// `bist sweep --help`.
pub const SWEEP: &str = "\
bist sweep <circuit> --points <p,p,..> [options]

Sweeps the (p, d) trade-off over the given prefix lengths on one
incremental session (each pseudo-random pattern graded at most once).
Results come back in request order; the cache makes repeated sweeps of
the same circuit/budgets milliseconds. --fault-model sweeps the same
trade-off against the transition or bridging universe instead of
stuck-at (see `bist solve --help`); --estimate-first streams a sampled
coverage preview at the longest prefix before the exact points arrive.
";

/// `bist curve --help`.
pub const CURVE: &str = "\
bist curve <circuit> --points <l,l,..> [options]

Grades the pure pseudo-random sequence at the given lengths — the
paper's Figure 4 coverage-versus-length curve. --fault-model grades the
transition or bridging universe instead of stuck-at (see `bist solve
--help`).
";

/// `bist bakeoff --help`.
pub const BAKEOFF: &str = "\
bist bakeoff <circuit> [--random-length <n>] [options]

Runs every surveyed TPG architecture on one circuit, on equal terms:
deterministic encoders embed the same ATPG set, pseudo-random
generators get --random-length patterns (default 1000), and every row
is re-graded by the fault simulator.
";

/// `bist emit-hdl --help`.
pub const EMIT_HDL: &str = "\
bist emit-hdl <circuit> --prefix <p> [--lang <verilog|vhdl|both>]
              [--module <name>] [--testbench] [--out <dir>] [options]

Solves the scheme at prefix length p and renders the mixed generator as
lint-clean structural HDL (default: both languages). --testbench adds
the self-checking Verilog testbench (Verilog-producing --lang only).
--out writes the artefacts as files into <dir> instead of dumping them
to stdout.
";

/// `bist area --help`.
pub const AREA: &str = "\
bist area <circuit> [options]

Prices the full-deterministic extreme: the LFSROM generator encoding
the complete ATPG test set versus the nominal chip area — one row of
the paper's Figure 6 / Table 1.
";

/// `bist estimate --help`.
pub const ESTIMATE: &str = "\
bist estimate <circuit> --prefix <p> [--samples <n>] [--confidence <90|95|99>]
              [--seed <word>] [options]

Estimates the coverage the first p pseudo-random patterns reach by
grading a seed-pinned stratified sample of the stuck-at universe
(default 256 faults) through its collapsed-universe representatives,
and reports a Wilson confidence interval (default 95 %). The sample is
a pure function of the spec: the same circuit, prefix, sample budget,
confidence and --seed (decimal or 0x-hex) always return the same
interval, bit for bit, at every pool width — and the result caches
like any other job.
";

/// `bist lint --help`.
pub const LINT: &str = "\
bist lint <circuit> [--deny warnings] [options]

Statically analyzes the netlist — no simulation: structural rules
(undriven nets, dangling gates, floating inputs, constant drivers,
excessive fan-out, sequential feedback loops) plus SCOAP testability
(CC0/CC1/CO) with a random-resistance ranking of the hardest nodes.
Diagnostics carry stable BLxxx codes and point at .bench source lines;
--format json emits the machine-readable report CI keys on. A netlist
that fails to parse is reported as a diagnostic, not a job failure.

Exit code 0 when the report has no errors; 1 when it has errors, or —
under --deny warnings — any warnings.
";

/// `bist batch --help`.
pub const BATCH: &str = "\
bist batch <manifest.toml> [options]

Runs a declarative job list through the engine's batch scheduler (jobs
shard across the pool; results are bit-identical to running each job
alone). Per-job failures are reported and do not stop the batch; the
exit code is 1 if any job failed.

MANIFEST
    [defaults]                 # optional
    circuit = \"c432\"           # for jobs that name none
    threads = 2                # pool width (the --threads flag overrides)

    [[job]]                    # one table per job, run in file order
    kind = \"sweep\"             # solve | sweep | curve | bakeoff | emit-hdl | area
                               # | estimate | lint
    points = [0, 100, 1000]    # sweep/curve budgets
    # solve/emit-hdl:    prefix = <p>
    # solve/sweep/curve: fault-model = \"transition\"  (default \"stuck-at\")
    # bakeoff:           random-length = <n>        (default 1000)
    # emit-hdl:          language = \"verilog\"       (| \"vhdl\" | \"both\")
    #                    module = \"name\"  testbench = true
    # estimate:          prefix = <p>  samples = <n>  confidence = <90|95|99>
    #                    seed = <int or \"0x…\" string>
";

/// `bist serve --help`.
pub const SERVE: &str = "\
bist serve [--listen <host:port>] [--socket <path>] [--jobs <n>]
           [--queue <n>] [--cache-capacity <bytes>] [options]

Runs the multi-tenant test service: clients submit jobs over the
versioned NDJSON wire protocol (docs/PROTOCOL.md) and stream progress
back. Defaults to --listen 127.0.0.1:7117 when no listener is given;
--socket adds (or replaces it with) a unix-domain socket.

Concurrent sessions multiplex onto --jobs worker threads (default: the
machine width) with fair FIFO-per-client scheduling. Admission is
bounded at --queue waiting jobs (default 64): beyond it submissions
are rejected with a retry hint, never parked. The server-lifetime
result cache (--cache-dir / $BIST_CACHE_DIR) answers repeated
submissions bit-identically without re-simulation; --cache-capacity
caps it with least-recently-used eviction.

A `shutdown` request (`bist server shutdown`) stops admission, drains
every queued and in-flight job, then exits 0.
";

/// `bist server --help`.
pub const SERVER: &str = "\
bist server <stats|shutdown> --connect <host:port | unix:/path> [options]

Control verbs against a running `bist serve`: `stats` prints lifetime
counters (jobs submitted/completed/failed/rejected, queue depth, cache
hit rates and eviction counts, honouring --format json); `shutdown`
asks it to drain in-flight jobs and exit.
";

/// `bist cache --help`.
pub const CACHE: &str = "\
bist cache <stats|clear> [--cache-dir <dir>] [options]

Inspects (stats) or empties (clear) the content-addressed result cache
under --cache-dir / $BIST_CACHE_DIR. Entries are keyed by a SHA-256 of
the realized circuit, the flow configuration and the job budgets — the
pool width deliberately excluded, since results are bit-identical at
every width.
";
