//! Library behind the `bist` binary.
//!
//! The binary itself (`src/main.rs`) is a thin dispatcher; everything
//! testable lives here:
//!
//! * [`opts`] — shared flag parsing (`--format`, `--threads`,
//!   `--cache-dir`/`BIST_CACHE_DIR`, `--no-cache`, `--quiet`) and
//!   circuit-argument resolution (benchmark names and `.bench` paths);
//! * [`manifest`] — the declarative TOML job list behind `bist batch`,
//!   parsed with source-located errors (`file:line: message`);
//! * [`render`] — text and JSON rendering of every
//!   [`JobResult`](bist_engine::JobResult) variant plus progress-event
//!   formatting;
//! * [`commands`] — one function per subcommand, returning the process
//!   exit code;
//! * [`serve`] — the `bist serve` daemon: NDJSON wire sessions over
//!   TCP/unix sockets, fair per-client scheduling, admission control
//!   and graceful drain;
//! * [`client`] — the `--connect` side: submit to a running daemon and
//!   stream its events as if the job ran locally.
//!
//! Layering rule: this crate speaks **only** to `bist-engine` — specs
//! in, results and typed errors out. No substrate crate (fault
//! simulation, ATPG, synthesis) is named here, so the CLI surface grows
//! with [`JobSpec`](bist_engine::JobSpec) and nothing else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod commands;
pub mod help;
pub mod manifest;
pub mod opts;
pub mod render;
pub mod serve;

/// Exit code for a failed job (the `BistError` diagnostic goes to
/// stderr).
pub const EXIT_JOB_FAILED: u8 = 1;

/// Exit code for a usage error (unknown command, malformed flag).
pub const EXIT_USAGE: u8 = 2;
