//! The `bist` binary: a thin shell around [`bist_cli::commands`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(bist_cli::commands::dispatch(&args))
}
