//! Declarative batch manifests for `bist batch`.
//!
//! A manifest is a TOML file with one `[[job]]` table per job and an
//! optional `[defaults]` table:
//!
//! ```toml
//! [defaults]
//! circuit = "c432"      # used by jobs that name none
//! threads = 2           # pool width for the whole batch
//!
//! [[job]]
//! kind = "sweep"        # solve | sweep | curve | bakeoff | emit-hdl | area | estimate | lint
//! points = [0, 100, 1000]
//! fault-model = "transition"  # stuck-at (default) | transition | bridging[:PAIRS[:SEED]]
//! estimate-first = true # default false: sampled preview before the exact run
//!
//! [[job]]
//! kind = "solve"
//! circuit = "c17"       # benchmark name or path/to/netlist.bench
//! prefix = 8
//!
//! [[job]]
//! kind = "emit-hdl"
//! circuit = "c17"
//! prefix = 4
//! language = "verilog"  # verilog | vhdl | both (default)
//! module = "c17_bist"   # optional module/entity name
//! testbench = true      # default false
//! ```
//!
//! The parser covers exactly the TOML subset above — tables,
//! array-of-tables headers, string/integer/boolean/array values,
//! comments — and reports every defect as a source-located
//! [`BistError::Parse`], so a bad manifest prints `file:line: message`
//! like any other parse failure in the workspace.

use bist_engine::{
    AreaReportSpec, BakeoffSpec, BistError, CoverageCurveSpec, EmitHdlSpec, EstimateSpec,
    FaultModel, HdlLanguage, JobSpec, LintSpec, SolveAtSpec, SweepSpec,
    DEFAULT_ESTIMATE_CONFIDENCE, DEFAULT_ESTIMATE_SAMPLES, DEFAULT_ESTIMATE_SEED,
};

use crate::opts::resolve_circuit;

/// A parsed manifest: the job list plus batch-wide settings.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// The jobs, in file order.
    pub jobs: Vec<JobSpec>,
    /// `[defaults] threads`, when present (the CLI `--threads` flag
    /// overrides it).
    pub threads: Option<usize>,
}

/// Reads and parses a manifest file.
///
/// # Errors
///
/// [`BistError::Parse`] — unreadable file (line 0) or any syntax/shape
/// defect (its line).
pub fn load(path: &str) -> Result<Manifest, BistError> {
    let text = std::fs::read_to_string(path).map_err(|e| BistError::Parse {
        source_name: path.to_owned(),
        line: 0,
        message: format!("cannot read: {e}"),
    })?;
    parse(path, &text)
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    Array(Vec<Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "a string",
            Value::Int(_) => "an integer",
            Value::Bool(_) => "a boolean",
            Value::Array(_) => "an array",
        }
    }
}

/// One `key = value` binding with its source line.
type Binding = (String, Value, usize);

#[derive(Debug, Default)]
struct Table {
    header_line: usize,
    bindings: Vec<Binding>,
}

impl Table {
    fn take(&mut self, key: &str) -> Option<(Value, usize)> {
        let at = self.bindings.iter().position(|(k, _, _)| k == key)?;
        let (_, value, line) = self.bindings.remove(at);
        Some((value, line))
    }
}

fn err(source_name: &str, line: usize, message: impl Into<String>) -> BistError {
    BistError::Parse {
        source_name: source_name.to_owned(),
        line,
        message: message.into(),
    }
}

/// Parses manifest text; `source_name` labels errors.
///
/// # Errors
///
/// [`BistError::Parse`] with the 1-based line of the first defect.
pub fn parse(source_name: &str, text: &str) -> Result<Manifest, BistError> {
    let mut defaults = Table::default();
    let mut jobs: Vec<Table> = Vec::new();
    // which table the cursor is in: None (preamble), defaults, or a job
    let mut in_defaults = false;

    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if line == "[defaults]" {
            in_defaults = true;
            defaults.header_line = line_no;
            continue;
        }
        if line == "[[job]]" {
            in_defaults = false;
            jobs.push(Table {
                header_line: line_no,
                bindings: Vec::new(),
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(err(
                source_name,
                line_no,
                format!("unknown table `{line}` (expected `[defaults]` or `[[job]]`)"),
            ));
        }
        let Some((key, value_text)) = line.split_once('=') else {
            return Err(err(
                source_name,
                line_no,
                format!("expected `key = value`, got `{line}`"),
            ));
        };
        let key = key.trim().to_owned();
        let value = parse_value(value_text.trim())
            .map_err(|message| err(source_name, line_no, format!("{key}: {message}")))?;
        let table = if in_defaults {
            &mut defaults
        } else {
            jobs.last_mut().ok_or_else(|| {
                err(
                    source_name,
                    line_no,
                    "a `key = value` line before the first `[[job]]` table \
                     (put batch-wide settings under `[defaults]`)",
                )
            })?
        };
        table.bindings.push((key, value, line_no));
    }

    let default_circuit = match defaults.take("circuit") {
        Some((Value::Str(name), _)) => Some(name),
        Some((other, line)) => {
            return Err(err(
                source_name,
                line,
                format!("circuit: expected a string, got {}", other.type_name()),
            ))
        }
        None => None,
    };
    let threads = match defaults.take("threads") {
        Some((Value::Int(n), line)) => Some(
            usize::try_from(n)
                .map_err(|_| err(source_name, line, "threads: must be non-negative"))?,
        ),
        Some((other, line)) => {
            return Err(err(
                source_name,
                line,
                format!("threads: expected an integer, got {}", other.type_name()),
            ))
        }
        None => None,
    };
    if let Some((key, _, line)) = defaults.bindings.first() {
        return Err(err(
            source_name,
            *line,
            format!("unknown [defaults] key `{key}` (known: circuit, threads)"),
        ));
    }
    if jobs.is_empty() {
        return Err(err(
            source_name,
            text.lines().count().max(1),
            "manifest declares no [[job]] tables",
        ));
    }

    let jobs = jobs
        .into_iter()
        .map(|job| build_job(source_name, job, default_circuit.as_deref()))
        .collect::<Result<_, _>>()?;
    Ok(Manifest { jobs, threads })
}

/// Strips a `#` comment, honouring quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (at, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..at],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Result<Value, String> {
    if let Some(body) = text.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(format!("unterminated string `{text}`"));
        };
        if body.contains('"') {
            return Err(format!("stray quote inside `{text}`"));
        }
        return Ok(Value::Str(body.to_owned()));
    }
    if let Some(body) = text.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(format!("unterminated array `{text}`"));
        };
        let body = body.trim();
        if body.is_empty() {
            return Ok(Value::Array(Vec::new()));
        }
        return body
            .split(',')
            .map(|item| {
                let item = item.trim();
                match parse_value(item)? {
                    Value::Array(_) => Err("nested arrays are not supported".to_owned()),
                    scalar => Ok(scalar),
                }
            })
            .collect::<Result<_, _>>()
            .map(Value::Array);
    }
    match text {
        "true" => Ok(Value::Bool(true)),
        "false" => Ok(Value::Bool(false)),
        _ => text
            .parse()
            .map(Value::Int)
            .map_err(|_| format!("`{text}` is not a string, integer, boolean or array")),
    }
}

fn take_usize(source_name: &str, job: &mut Table, key: &str) -> Result<Option<usize>, BistError> {
    match job.take(key) {
        None => Ok(None),
        Some((Value::Int(n), line)) => usize::try_from(n)
            .map(Some)
            .map_err(|_| err(source_name, line, format!("{key}: must be non-negative"))),
        Some((other, line)) => Err(err(
            source_name,
            line,
            format!("{key}: expected an integer, got {}", other.type_name()),
        )),
    }
}

fn take_lengths(source_name: &str, job: &mut Table, key: &str) -> Result<Vec<usize>, BistError> {
    match job.take(key) {
        None => Err(err(
            source_name,
            job.header_line,
            format!("this job needs `{key} = [ … ]`"),
        )),
        Some((Value::Array(items), line)) => items
            .into_iter()
            .map(|item| match item {
                Value::Int(n) => usize::try_from(n)
                    .map_err(|_| err(source_name, line, format!("{key}: must be non-negative"))),
                other => Err(err(
                    source_name,
                    line,
                    format!("{key}: expected integers, got {}", other.type_name()),
                )),
            })
            .collect(),
        Some((other, line)) => Err(err(
            source_name,
            line,
            format!("{key}: expected an array, got {}", other.type_name()),
        )),
    }
}

fn take_string(source_name: &str, job: &mut Table, key: &str) -> Result<Option<String>, BistError> {
    match job.take(key) {
        None => Ok(None),
        Some((Value::Str(s), _)) => Ok(Some(s)),
        Some((other, line)) => Err(err(
            source_name,
            line,
            format!("{key}: expected a string, got {}", other.type_name()),
        )),
    }
}

/// `fault-model = "transition"` (absent means stuck-at).
fn take_fault_model(source_name: &str, job: &mut Table) -> Result<FaultModel, BistError> {
    let line = job
        .bindings
        .iter()
        .find(|(k, _, _)| k == "fault-model")
        .map_or(job.header_line, |(_, _, line)| *line);
    match take_string(source_name, job, "fault-model")? {
        None => Ok(FaultModel::default()),
        Some(text) => text
            .parse()
            .map_err(|e| err(source_name, line, format!("fault-model: {e}"))),
    }
}

/// `seed = 0xB157` won't parse as TOML here (integers are decimal), so
/// estimate jobs may write the seed as a decimal integer or a
/// `"0x…"`-prefixed string — the same spellings `--seed` takes.
fn take_seed(source_name: &str, job: &mut Table) -> Result<u64, BistError> {
    match job.take("seed") {
        None => Ok(DEFAULT_ESTIMATE_SEED),
        Some((Value::Int(n), line)) => {
            u64::try_from(n).map_err(|_| err(source_name, line, "seed: must be non-negative"))
        }
        Some((Value::Str(s), line)) => {
            let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.map_err(|_| {
                err(
                    source_name,
                    line,
                    format!("seed: `{s}` is not a 64-bit seed"),
                )
            })
        }
        Some((other, line)) => Err(err(
            source_name,
            line,
            format!(
                "seed: expected an integer or a string, got {}",
                other.type_name()
            ),
        )),
    }
}

/// `estimate-first = true` (absent means off): stream a sampled
/// coverage preview before the exact solve/sweep run.
fn take_estimate_first(source_name: &str, job: &mut Table) -> Result<bool, BistError> {
    match job.take("estimate-first") {
        None => Ok(false),
        Some((Value::Bool(b), _)) => Ok(b),
        Some((other, line)) => Err(err(
            source_name,
            line,
            format!(
                "estimate-first: expected a boolean, got {}",
                other.type_name()
            ),
        )),
    }
}

fn build_job(
    source_name: &str,
    mut job: Table,
    default_circuit: Option<&str>,
) -> Result<JobSpec, BistError> {
    let header = job.header_line;
    let kind = take_string(source_name, &mut job, "kind")?.ok_or_else(|| {
        err(
            source_name,
            header,
            "this job needs `kind = \"…\"` \
             (solve | sweep | curve | bakeoff | emit-hdl | area | estimate | lint)",
        )
    })?;
    let circuit_name = match take_string(source_name, &mut job, "circuit")? {
        Some(name) => name,
        None => default_circuit
            .ok_or_else(|| {
                err(
                    source_name,
                    header,
                    "this job names no circuit and [defaults] declares none",
                )
            })?
            .to_owned(),
    };
    let circuit = resolve_circuit(&circuit_name)?;

    let spec = match kind.as_str() {
        "solve" => {
            let prefix = take_usize(source_name, &mut job, "prefix")?
                .ok_or_else(|| err(source_name, header, "a solve job needs `prefix = <p>`"))?;
            JobSpec::SolveAt(SolveAtSpec {
                circuit,
                config: Default::default(),
                prefix_len: prefix,
                fault_model: take_fault_model(source_name, &mut job)?,
                estimate_first: take_estimate_first(source_name, &mut job)?,
            })
        }
        "sweep" => JobSpec::Sweep(SweepSpec {
            circuit,
            config: Default::default(),
            prefix_lengths: take_lengths(source_name, &mut job, "points")?,
            fault_model: take_fault_model(source_name, &mut job)?,
            estimate_first: take_estimate_first(source_name, &mut job)?,
        }),
        "curve" => JobSpec::CoverageCurve(CoverageCurveSpec {
            circuit,
            config: Default::default(),
            checkpoints: take_lengths(source_name, &mut job, "points")?,
            fault_model: take_fault_model(source_name, &mut job)?,
        }),
        "bakeoff" => JobSpec::Bakeoff(BakeoffSpec {
            circuit,
            config: Default::default(),
            random_length: take_usize(source_name, &mut job, "random-length")?.unwrap_or(1000),
        }),
        "emit-hdl" => {
            let prefix = take_usize(source_name, &mut job, "prefix")?
                .ok_or_else(|| err(source_name, header, "an emit-hdl job needs `prefix = <p>`"))?;
            let language = match take_string(source_name, &mut job, "language")?.as_deref() {
                None | Some("both") => HdlLanguage::Both,
                Some("verilog") => HdlLanguage::Verilog,
                Some("vhdl") => HdlLanguage::Vhdl,
                Some(other) => {
                    return Err(err(
                        source_name,
                        header,
                        format!("language: `{other}` is not verilog | vhdl | both"),
                    ))
                }
            };
            let testbench = match job.take("testbench") {
                None => false,
                Some((Value::Bool(b), _)) => b,
                Some((other, line)) => {
                    return Err(err(
                        source_name,
                        line,
                        format!("testbench: expected a boolean, got {}", other.type_name()),
                    ))
                }
            };
            JobSpec::EmitHdl(EmitHdlSpec {
                circuit,
                config: Default::default(),
                prefix_len: prefix,
                language,
                module_name: take_string(source_name, &mut job, "module")?,
                testbench,
            })
        }
        "area" => JobSpec::AreaReport(AreaReportSpec {
            circuit,
            config: Default::default(),
        }),
        "estimate" => {
            let prefix = take_usize(source_name, &mut job, "prefix")?
                .ok_or_else(|| err(source_name, header, "an estimate job needs `prefix = <p>`"))?;
            let samples =
                take_usize(source_name, &mut job, "samples")?.unwrap_or(DEFAULT_ESTIMATE_SAMPLES);
            let confidence = match take_usize(source_name, &mut job, "confidence")? {
                None => DEFAULT_ESTIMATE_CONFIDENCE,
                Some(n) => u32::try_from(n)
                    .map_err(|_| err(source_name, header, "confidence: exceeds u32"))?,
            };
            let seed = take_seed(source_name, &mut job)?;
            JobSpec::CoverageEstimate(EstimateSpec {
                circuit,
                config: Default::default(),
                prefix_len: prefix,
                samples,
                confidence,
                seed,
            })
        }
        "lint" => JobSpec::Lint(LintSpec {
            circuit,
            config: Default::default(),
        }),
        other => {
            return Err(err(
                source_name,
                header,
                format!(
                    "kind: `{other}` is not solve | sweep | curve | bakeoff | emit-hdl | area \
                     | estimate | lint"
                ),
            ))
        }
    };
    if let Some((key, _, line)) = job.bindings.first() {
        return Err(err(
            source_name,
            *line,
            format!("unknown key `{key}` for a {kind} job"),
        ));
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# a three-job experiment
[defaults]
circuit = "c17"
threads = 2

[[job]]
kind = "sweep"
points = [0, 4, 8]   # prefix lengths

[[job]]
kind = "solve"
prefix = 6

[[job]]
kind = "emit-hdl"
prefix = 4
language = "verilog"
module = "c17_bist"
testbench = true
"#;

    #[test]
    fn parses_jobs_and_defaults() {
        let manifest = parse("test.toml", GOOD).expect("valid manifest");
        assert_eq!(manifest.threads, Some(2));
        assert_eq!(manifest.jobs.len(), 3);
        assert!(matches!(&manifest.jobs[0], JobSpec::Sweep(s) if s.prefix_lengths == [0, 4, 8]));
        assert!(matches!(&manifest.jobs[1], JobSpec::SolveAt(s) if s.prefix_len == 6));
        match &manifest.jobs[2] {
            JobSpec::EmitHdl(s) => {
                assert_eq!(s.language, HdlLanguage::Verilog);
                assert_eq!(s.module_name.as_deref(), Some("c17_bist"));
                assert!(s.testbench);
            }
            other => panic!("expected emit-hdl, got {other:?}"),
        }
    }

    #[test]
    fn every_defect_is_source_located() {
        let cases: &[(&str, usize, &str)] = &[
            ("[[job]]\nkind = \"sweep\"\npoints = [0, x]\n", 3, "points"),
            ("[[job]]\nkind = \"warp\"\ncircuit = \"c17\"\n", 1, "kind"),
            ("[[job]]\ncircuit = \"c17\"\n", 1, "kind"),
            ("prefix = 4\n", 1, "[[job]]"),
            ("[typo]\n", 1, "unknown table"),
            (
                "[[job]]\nkind = \"solve\"\ncircuit = \"c17\"\n",
                1,
                "prefix",
            ),
            (
                "[[job]]\nkind = \"solve\"\ncircuit = \"c17\"\nprefix = 4\nwat = 1\n",
                5,
                "unknown key `wat`",
            ),
            ("[defaults]\nwat = 1\n[[job]]\nkind = \"area\"\n", 2, "wat"),
        ];
        for (text, line, needle) in cases {
            let e = parse("m.toml", text).expect_err(text);
            match &e {
                BistError::Parse {
                    source_name,
                    line: at,
                    message,
                } => {
                    assert_eq!(source_name, "m.toml");
                    assert_eq!(at, line, "wrong line for {text:?}: {message}");
                    assert!(
                        message.contains(needle),
                        "message `{message}` should mention `{needle}`"
                    );
                }
                other => panic!("expected a parse error, got {other:?}"),
            }
            // and the rendered diagnostic is the standard file:line form
            assert!(e.to_string().starts_with("m.toml:"));
        }
        assert!(parse("m.toml", "").is_err(), "empty manifests are defects");
    }

    #[test]
    fn fault_models_parse_per_job() {
        let text = "[[job]]\nkind = \"sweep\"\ncircuit = \"c17\"\npoints = [0, 8]\n\
                    fault-model = \"transition\"\n\
                    [[job]]\nkind = \"solve\"\ncircuit = \"c17\"\nprefix = 4\n";
        let manifest = parse("m.toml", text).expect("valid manifest");
        assert!(
            matches!(&manifest.jobs[0], JobSpec::Sweep(s) if s.fault_model == FaultModel::Transition)
        );
        assert!(
            matches!(&manifest.jobs[1], JobSpec::SolveAt(s) if s.fault_model == FaultModel::StuckAt)
        );

        let bad = "[[job]]\nkind = \"curve\"\ncircuit = \"c17\"\npoints = [8]\n\
                   fault-model = \"warp\"\n";
        let e = parse("m.toml", bad).expect_err("unknown model");
        assert!(e.to_string().contains("m.toml:5"), "{e}");
        assert!(e.to_string().contains("warp"), "{e}");
    }

    #[test]
    fn estimate_first_parses_per_job_and_defaults_off() {
        let text = "[[job]]\nkind = \"sweep\"\ncircuit = \"c17\"\npoints = [0, 8]\n\
                    estimate-first = true\n\
                    [[job]]\nkind = \"solve\"\ncircuit = \"c17\"\nprefix = 4\n\
                    estimate-first = true\n\
                    [[job]]\nkind = \"sweep\"\ncircuit = \"c17\"\npoints = [0, 8]\n";
        let manifest = parse("m.toml", text).expect("valid manifest");
        assert!(matches!(&manifest.jobs[0], JobSpec::Sweep(s) if s.estimate_first));
        assert!(matches!(&manifest.jobs[1], JobSpec::SolveAt(s) if s.estimate_first));
        assert!(
            matches!(&manifest.jobs[2], JobSpec::Sweep(s) if !s.estimate_first),
            "absent means off"
        );

        let bad = "[[job]]\nkind = \"sweep\"\ncircuit = \"c17\"\npoints = [0, 8]\n\
                   estimate-first = 1\n";
        let e = parse("m.toml", bad).expect_err("non-boolean flag");
        assert!(e.to_string().contains("m.toml:5"), "{e}");
        assert!(e.to_string().contains("boolean"), "{e}");

        // jobs with no preview phase reject the key like any other typo
        let misplaced = "[[job]]\nkind = \"area\"\ncircuit = \"c17\"\nestimate-first = true\n";
        let e = parse("m.toml", misplaced).expect_err("area jobs have no preview");
        assert!(e.to_string().contains("estimate-first"), "{e}");
    }

    #[test]
    fn estimate_jobs_parse_with_defaults_and_seed_spellings() {
        let text = "[[job]]\nkind = \"estimate\"\ncircuit = \"c17\"\nprefix = 32\n\
                    [[job]]\nkind = \"estimate\"\ncircuit = \"c17\"\nprefix = 32\n\
                    samples = 40\nconfidence = 99\nseed = \"0xDEAD\"\n\
                    [[job]]\nkind = \"estimate\"\ncircuit = \"c17\"\nprefix = 32\nseed = 7\n";
        let manifest = parse("m.toml", text).expect("valid manifest");
        match &manifest.jobs[0] {
            JobSpec::CoverageEstimate(s) => {
                assert_eq!(s.samples, DEFAULT_ESTIMATE_SAMPLES);
                assert_eq!(s.confidence, DEFAULT_ESTIMATE_CONFIDENCE);
                assert_eq!(s.seed, DEFAULT_ESTIMATE_SEED);
            }
            other => panic!("expected estimate, got {other:?}"),
        }
        assert!(matches!(
            &manifest.jobs[1],
            JobSpec::CoverageEstimate(s)
                if s.samples == 40 && s.confidence == 99 && s.seed == 0xDEAD
        ));
        assert!(matches!(&manifest.jobs[2], JobSpec::CoverageEstimate(s) if s.seed == 7));

        let bad = "[[job]]\nkind = \"estimate\"\ncircuit = \"c17\"\nprefix = 32\nseed = \"zap\"\n";
        let e = parse("m.toml", bad).expect_err("bad seed");
        assert!(e.to_string().contains("m.toml:5"), "{e}");
    }

    #[test]
    fn lint_jobs_parse() {
        let manifest = parse("m.toml", "[[job]]\nkind = \"lint\"\ncircuit = \"c17\"\n")
            .expect("lint job parses");
        assert!(matches!(&manifest.jobs[0], JobSpec::Lint(_)));
    }

    #[test]
    fn jobs_without_circuits_need_a_default() {
        let text = "[[job]]\nkind = \"area\"\n";
        assert!(parse("m.toml", text).is_err());
        let with_default = format!("[defaults]\ncircuit = \"c17\"\n{text}");
        let manifest = parse("m.toml", &with_default).expect("default circuit applies");
        assert_eq!(manifest.jobs.len(), 1);
    }

    #[test]
    fn comments_respect_strings() {
        let text = "[[job]]\nkind = \"area\"\ncircuit = \"c#17\" # real comment\n";
        let manifest = parse("m.toml", text).expect("quoted hash is content");
        assert_eq!(manifest.jobs[0].circuit().label(), "c#17");
    }
}
