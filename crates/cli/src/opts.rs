//! Shared option parsing for every `bist` subcommand.

use std::path::PathBuf;

use bist_engine::{BistError, CircuitSource, ResultCache};

/// How results are written to stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Human-readable tables (the default).
    #[default]
    Text,
    /// One deterministic JSON document.
    Json,
}

/// Options shared by every job subcommand.
#[derive(Debug, Clone, Default)]
pub struct CommonOpts {
    /// Output format for stdout.
    pub format: Format,
    /// Pool width (`0` = automatic: `BIST_THREADS` or the machine
    /// width).
    pub threads: usize,
    /// Explicit cache directory (`--cache-dir`).
    pub cache_dir: Option<PathBuf>,
    /// `--no-cache`: run without the result cache even if a directory is
    /// configured.
    pub no_cache: bool,
    /// `--quiet`: no progress or cache lines on stderr.
    pub quiet: bool,
    /// `--connect <host:port | unix:/path>`: run the job on a `bist
    /// serve` daemon instead of in-process.
    pub connect: Option<String>,
    /// `--help` was requested.
    pub help: bool,
}

impl CommonOpts {
    /// The cache this invocation should use: `--no-cache` beats
    /// `--cache-dir`, which beats `$BIST_CACHE_DIR`; none configured
    /// means no cache.
    pub fn cache(&self) -> Option<ResultCache> {
        if self.no_cache {
            return None;
        }
        match &self.cache_dir {
            Some(dir) => Some(ResultCache::at(dir)),
            None => ResultCache::from_env(),
        }
    }
}

/// A malformed command line (maps to exit code 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Splits raw arguments into common options, leaving everything else —
/// positionals and subcommand-private flags — in order.
///
/// # Errors
///
/// [`UsageError`] on a malformed or missing option value.
pub fn split_common(args: &[String]) -> Result<(CommonOpts, Vec<String>), UsageError> {
    let mut opts = CommonOpts::default();
    let mut rest = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => {
                opts.format = match iter.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(UsageError(format!(
                            "--format takes `text` or `json`, got {}",
                            other.map_or("nothing".to_owned(), |o| format!("`{o}`"))
                        )))
                    }
                };
            }
            "--threads" => {
                opts.threads = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| UsageError("--threads takes a thread count".to_owned()))?;
            }
            "--cache-dir" => {
                opts.cache_dir =
                    Some(PathBuf::from(iter.next().ok_or_else(|| {
                        UsageError("--cache-dir takes a directory path".to_owned())
                    })?));
            }
            "--no-cache" => opts.no_cache = true,
            "--connect" => {
                opts.connect = Some(iter.next().cloned().ok_or_else(|| {
                    UsageError("--connect takes `host:port` or `unix:/path`".to_owned())
                })?);
            }
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => opts.help = true,
            _ => rest.push(arg.clone()),
        }
    }
    Ok((opts, rest))
}

/// Reads the value of a subcommand-private `--flag value` pair out of
/// `rest`, removing both tokens.
///
/// # Errors
///
/// [`UsageError`] when the flag is present without a value.
pub fn take_value(rest: &mut Vec<String>, flag: &str) -> Result<Option<String>, UsageError> {
    match rest.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(at) if at + 1 < rest.len() => {
            let value = rest.remove(at + 1);
            rest.remove(at);
            Ok(Some(value))
        }
        Some(_) => Err(UsageError(format!("{flag} takes a value"))),
    }
}

/// Removes a boolean `--flag` from `rest`, reporting whether it was
/// present.
pub fn take_flag(rest: &mut Vec<String>, flag: &str) -> bool {
    match rest.iter().position(|a| a == flag) {
        Some(at) => {
            rest.remove(at);
            true
        }
        None => false,
    }
}

/// Parses a comma-separated length list (`0,100,1000`).
///
/// # Errors
///
/// [`UsageError`] naming the offending element.
pub fn parse_lengths(flag: &str, text: &str) -> Result<Vec<usize>, UsageError> {
    text.split(',')
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| UsageError(format!("{flag}: `{part}` is not a length")))
        })
        .collect()
}

/// Resolves a circuit argument: an ISCAS benchmark name (`c…`/`s…`) or a
/// path to a `.bench` file (read eagerly so parse errors carry
/// `file:line`).
///
/// # Errors
///
/// [`BistError::Parse`] (line 0) when a `.bench` path cannot be read;
/// unknown benchmark names fail later, at realization, as
/// [`BistError::UnknownCircuit`].
pub fn resolve_circuit(arg: &str) -> Result<CircuitSource, BistError> {
    let looks_like_path =
        arg.ends_with(".bench") || arg.contains(std::path::MAIN_SEPARATOR) || arg.contains('/');
    if looks_like_path {
        let text = std::fs::read_to_string(arg).map_err(|e| BistError::Parse {
            source_name: arg.to_owned(),
            line: 0,
            message: format!("cannot read: {e}"),
        })?;
        return Ok(CircuitSource::bench(arg, text));
    }
    if arg.starts_with('s') {
        Ok(CircuitSource::iscas89(arg))
    } else {
        Ok(CircuitSource::iscas85(arg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn common_flags_are_extracted_in_any_position() {
        let (opts, rest) = split_common(&args(&[
            "c432",
            "--format",
            "json",
            "--points",
            "0,100",
            "--threads",
            "2",
            "--quiet",
        ]))
        .expect("valid");
        assert_eq!(opts.format, Format::Json);
        assert_eq!(opts.threads, 2);
        assert!(opts.quiet);
        assert_eq!(rest, args(&["c432", "--points", "0,100"]));
    }

    #[test]
    fn malformed_values_are_usage_errors() {
        assert!(split_common(&args(&["--format", "yaml"])).is_err());
        assert!(split_common(&args(&["--threads", "many"])).is_err());
        assert!(split_common(&args(&["--cache-dir"])).is_err());
    }

    #[test]
    fn private_flags_pop_cleanly() {
        let mut rest = args(&["c17", "--prefix", "8", "--testbench"]);
        assert_eq!(
            take_value(&mut rest, "--prefix").expect("valid"),
            Some("8".to_owned())
        );
        assert!(take_flag(&mut rest, "--testbench"));
        assert!(!take_flag(&mut rest, "--testbench"));
        assert_eq!(rest, args(&["c17"]));
        let mut broken = args(&["--prefix"]);
        assert!(take_value(&mut broken, "--prefix").is_err());
    }

    #[test]
    fn length_lists_parse_or_explain() {
        assert_eq!(
            parse_lengths("--points", "0, 100,1000").expect("valid"),
            vec![0, 100, 1000]
        );
        let err = parse_lengths("--points", "0,x").expect_err("invalid");
        assert!(err.0.contains("`x`"));
    }

    #[test]
    fn circuits_resolve_by_family_or_path() {
        assert!(matches!(
            resolve_circuit("c432").expect("name"),
            CircuitSource::Iscas85 { .. }
        ));
        assert!(matches!(
            resolve_circuit("s27").expect("name"),
            CircuitSource::Iscas89 { .. }
        ));
        let missing = resolve_circuit("no/such/file.bench").expect_err("unreadable path");
        assert!(matches!(missing, BistError::Parse { line: 0, .. }));
        assert!(missing.to_string().contains("no/such/file.bench"));
    }
}
