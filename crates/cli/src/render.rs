//! Text and JSON rendering of job results and progress events.
//!
//! The JSON renderer is deterministic — same result, same bytes — which
//! is what lets CI assert that a cache-served rerun is byte-identical
//! to the run that computed it.

use std::fmt::Write as _;

use bist_engine::json::Json;
use bist_engine::{
    fmt_scoap, JobResult, MixedSolution, ProgressEvent, ScoapSummary, SessionStats, Severity,
};

/// One result as a JSON document (object; `bist batch` emits an array
/// of these).
pub fn result_json(result: &JobResult) -> Json {
    let mut doc = Json::object();
    match result {
        JobResult::SolveAt(o) => {
            doc.push("job", Json::str("solve"));
            doc.push("circuit", Json::str(&o.circuit));
            doc.push("solution", solution_json(&o.solution));
            doc.push("stats", stats_json(&o.stats));
        }
        JobResult::Sweep(o) => {
            doc.push("job", Json::str("sweep"));
            doc.push("circuit", Json::str(&o.circuit));
            doc.push(
                "points",
                Json::Array(o.summary.solutions().iter().map(solution_json).collect()),
            );
            doc.push("stats", stats_json(&o.stats));
        }
        JobResult::CoverageCurve(o) => {
            doc.push("job", Json::str("curve"));
            doc.push("circuit", Json::str(&o.circuit));
            doc.push("fault_universe", Json::uint(o.fault_universe));
            doc.push(
                "points",
                Json::Array(
                    o.curve
                        .points()
                        .iter()
                        .map(|&(len, pct)| {
                            let mut p = Json::object();
                            p.push("length", Json::uint(len));
                            p.push("coverage_pct", Json::Float(pct));
                            p
                        })
                        .collect(),
                ),
            );
        }
        JobResult::Bakeoff(o) => {
            doc.push("job", Json::str("bakeoff"));
            doc.push("circuit", Json::str(&o.circuit));
            doc.push("achievable_pct", Json::Float(o.bakeoff.achievable_pct));
            doc.push(
                "atpg_coverage_pct",
                Json::Float(o.bakeoff.atpg_coverage_pct),
            );
            doc.push(
                "deterministic_patterns",
                Json::uint(o.bakeoff.deterministic_patterns),
            );
            doc.push(
                "rows",
                Json::Array(
                    o.bakeoff
                        .rows
                        .iter()
                        .map(|r| {
                            let mut row = Json::object();
                            row.push("architecture", Json::str(r.architecture));
                            row.push("test_length", Json::uint(r.test_length));
                            row.push("area_mm2", Json::Float(r.area_mm2));
                            row.push("coverage_pct", Json::Float(r.coverage_pct));
                            row.push("deterministic", Json::Bool(r.deterministic));
                            row
                        })
                        .collect(),
                ),
            );
        }
        JobResult::EmitHdl(o) => {
            doc.push("job", Json::str("emit-hdl"));
            doc.push("circuit", Json::str(&o.circuit));
            doc.push("module", Json::str(&o.module));
            doc.push("solution", solution_json(&o.solution));
            for (key, text) in [
                ("verilog", &o.verilog),
                ("vhdl", &o.vhdl),
                ("testbench", &o.testbench),
            ] {
                doc.push(
                    key,
                    text.as_ref().map_or(Json::Null, |t| Json::str(t.clone())),
                );
            }
        }
        JobResult::AreaReport(o) => {
            doc.push("job", Json::str("area"));
            doc.push("circuit", Json::str(&o.circuit));
            doc.push("inputs", Json::uint(o.inputs));
            doc.push("det_len", Json::uint(o.det_len));
            doc.push("chip_mm2", Json::Float(o.chip_mm2));
            doc.push("generator_mm2", Json::Float(o.generator_mm2));
            doc.push("overhead_pct", Json::Float(o.overhead_pct));
            doc.push("coverage_pct", Json::Float(o.coverage_pct));
        }
        JobResult::Lint(o) => {
            doc.push("job", Json::str("lint"));
            doc.push("circuit", Json::str(&o.circuit));
            doc.push("errors", Json::uint(o.report.count(Severity::Error)));
            doc.push("warnings", Json::uint(o.report.count(Severity::Warn)));
            doc.push("infos", Json::uint(o.report.count(Severity::Info)));
            doc.push(
                "diagnostics",
                Json::Array(
                    o.report
                        .diagnostics
                        .iter()
                        .map(|d| {
                            let mut j = Json::object();
                            j.push("code", Json::str(d.code.code()));
                            j.push("severity", Json::str(d.severity.label()));
                            j.push("line", Json::uint(d.span.line));
                            j.push("message", Json::str(&d.message));
                            j
                        })
                        .collect(),
                ),
            );
            doc.push(
                "scoap",
                o.report.scoap.as_ref().map_or(Json::Null, scoap_json),
            );
        }
        JobResult::CoverageEstimate(o) => {
            doc.push("job", Json::str("estimate"));
            doc.push("circuit", Json::str(&o.circuit));
            doc.push("fault_universe", Json::uint(o.fault_universe));
            doc.push("representatives", Json::uint(o.representatives));
            doc.push("prefix_len", Json::uint(o.prefix_len));
            doc.push("samples", Json::uint(o.samples));
            doc.push("detected_samples", Json::uint(o.detected_samples));
            doc.push("estimate_pct", Json::Float(o.estimate_pct));
            doc.push("lo_pct", Json::Float(o.lo_pct));
            doc.push("hi_pct", Json::Float(o.hi_pct));
            doc.push("confidence", Json::uint(o.confidence as usize));
            doc.push("seed", Json::Str(format!("{:#x}", o.seed)));
        }
    }
    doc
}

fn scoap_json(s: &ScoapSummary) -> Json {
    fn worst(value: Option<&(String, u32)>) -> Json {
        value.map_or(Json::Null, |(name, v)| {
            let mut j = Json::object();
            j.push("node", Json::str(name));
            j.push("value", Json::uint(*v as usize));
            j
        })
    }
    let mut j = Json::object();
    j.push("nodes", Json::uint(s.nodes));
    j.push("max_cc0", worst(s.max_cc0.as_ref()));
    j.push("max_cc1", worst(s.max_cc1.as_ref()));
    j.push("max_co", worst(s.max_co.as_ref()));
    j.push(
        "resistance",
        Json::Array(
            s.resistance
                .iter()
                .map(|r| {
                    let mut node = Json::object();
                    node.push("node", Json::str(&r.name));
                    node.push("cc0", Json::uint(r.cc0 as usize));
                    node.push("cc1", Json::uint(r.cc1 as usize));
                    node.push("co", Json::uint(r.co as usize));
                    node.push("score", Json::uint(r.score as usize));
                    node
                })
                .collect(),
        ),
    );
    j
}

fn solution_json(s: &MixedSolution) -> Json {
    let mut o = Json::object();
    o.push("prefix_len", Json::uint(s.prefix_len));
    o.push("det_len", Json::uint(s.det_len));
    o.push("total_len", Json::uint(s.total_len()));
    o.push("coverage_pct", Json::Float(s.coverage.coverage_pct()));
    o.push(
        "prefix_coverage_pct",
        Json::Float(s.prefix_coverage.coverage_pct()),
    );
    o.push("generator_area_mm2", Json::Float(s.generator_area_mm2));
    o.push("chip_area_mm2", Json::Float(s.chip_area_mm2));
    o.push("overhead_pct", Json::Float(s.overhead_pct()));
    o
}

fn stats_json(s: &SessionStats) -> Json {
    let mut o = Json::object();
    o.push("patterns_simulated", Json::uint(s.patterns_simulated));
    o.push("patterns_resimulated", Json::uint(s.patterns_resimulated));
    o.push("atpg_runs", Json::uint(s.atpg_runs));
    o.push("atpg_cache_hits", Json::uint(s.atpg_cache_hits));
    o.push("podem_cache_hits", Json::uint(s.podem_cache_hits));
    o.push("snapshots_taken", Json::uint(s.snapshots_taken));
    o.push("snapshots_skipped", Json::uint(s.snapshots_skipped));
    o
}

/// One result as human-readable text (what `--format text` prints).
pub fn result_text(result: &JobResult) -> String {
    let mut out = String::new();
    match result {
        JobResult::SolveAt(o) => {
            let _ = writeln!(out, "{}: {}", o.circuit, o.solution);
            let _ = writeln!(out, "{}", stats_text(&o.stats));
        }
        JobResult::Sweep(o) => {
            let _ = writeln!(out, "{}", o.circuit);
            let _ = writeln!(
                out,
                "{:>8} {:>8} {:>8} {:>12} {:>12} {:>12}",
                "p", "d", "p+d", "cost (mm2)", "overhead %", "coverage %"
            );
            for s in o.summary.solutions() {
                let _ = writeln!(
                    out,
                    "{:>8} {:>8} {:>8} {:>12.3} {:>12.1} {:>12.2}",
                    s.prefix_len,
                    s.det_len,
                    s.total_len(),
                    s.generator_area_mm2,
                    s.overhead_pct(),
                    s.coverage.coverage_pct()
                );
            }
            let _ = writeln!(out, "{}", stats_text(&o.stats));
        }
        JobResult::CoverageCurve(o) => {
            let _ = writeln!(out, "{} ({} faults)", o.circuit, o.fault_universe);
            let _ = writeln!(out, "{:>8} {:>12}", "length", "coverage %");
            for &(len, pct) in o.curve.points() {
                let _ = writeln!(out, "{len:>8} {pct:>12.2}");
            }
        }
        JobResult::Bakeoff(o) => {
            let _ = writeln!(
                out,
                "{}: {} deterministic patterns, achievable {:.2} %, ATPG sequence {:.2} %",
                o.circuit,
                o.bakeoff.deterministic_patterns,
                o.bakeoff.achievable_pct,
                o.bakeoff.atpg_coverage_pct
            );
            let _ = writeln!(
                out,
                "{:<20} {:>8} {:>11} {:>11} {:>6}",
                "architecture", "length", "area (mm2)", "coverage %", "det"
            );
            for r in &o.bakeoff.rows {
                let _ = writeln!(
                    out,
                    "{:<20} {:>8} {:>11.3} {:>11.2} {:>6}",
                    r.architecture,
                    r.test_length,
                    r.area_mm2,
                    r.coverage_pct,
                    if r.deterministic { "yes" } else { "no" }
                );
            }
        }
        JobResult::EmitHdl(o) => {
            let _ = writeln!(out, "{}: module {} — {}", o.circuit, o.module, o.solution);
            for (label, text) in [
                ("verilog", &o.verilog),
                ("vhdl", &o.vhdl),
                ("testbench", &o.testbench),
            ] {
                if let Some(text) = text {
                    let _ = writeln!(
                        out,
                        "\n// ---- {label} ({} lines) ----",
                        text.lines().count()
                    );
                    out.push_str(text);
                }
            }
        }
        JobResult::AreaReport(o) => {
            let _ = writeln!(
                out,
                "{:>8} {:>6} {:>10} {:>10} {:>12} {:>11} {:>11}",
                "circuit", "#I", "#patterns", "chip mm2", "LFSROM mm2", "overhead %", "coverage %"
            );
            let _ = writeln!(
                out,
                "{:>8} {:>6} {:>10} {:>10.2} {:>12.2} {:>11.1} {:>11.2}",
                o.circuit,
                o.inputs,
                o.det_len,
                o.chip_mm2,
                o.generator_mm2,
                o.overhead_pct,
                o.coverage_pct
            );
        }
        JobResult::Lint(o) => {
            let r = &o.report;
            let _ = writeln!(
                out,
                "{}: {} error(s), {} warning(s), {} note(s)",
                o.circuit,
                r.count(Severity::Error),
                r.count(Severity::Warn),
                r.count(Severity::Info)
            );
            for d in &r.diagnostics {
                let _ = writeln!(out, "  {d}");
            }
            if let Some(s) = &r.scoap {
                if !s.resistance.is_empty() {
                    let _ = writeln!(out, "random-resistance ranking (hardest first):");
                    let _ = writeln!(
                        out,
                        "{:>24} {:>8} {:>8} {:>8} {:>8}",
                        "node", "CC0", "CC1", "CO", "score"
                    );
                    for n in &s.resistance {
                        let _ = writeln!(
                            out,
                            "{:>24} {:>8} {:>8} {:>8} {:>8}",
                            n.name,
                            fmt_scoap(n.cc0),
                            fmt_scoap(n.cc1),
                            fmt_scoap(n.co),
                            n.score
                        );
                    }
                }
            }
        }
        JobResult::CoverageEstimate(o) => {
            let _ = writeln!(
                out,
                "{}: estimated coverage {:.2} % [{:.2}, {:.2}] at {} % confidence",
                o.circuit, o.estimate_pct, o.lo_pct, o.hi_pct, o.confidence
            );
            let _ = writeln!(
                out,
                "sample: {}/{} faults detected (universe {}, {} representatives), prefix {}, seed {:#x}",
                o.detected_samples,
                o.samples,
                o.fault_universe,
                o.representatives,
                o.prefix_len,
                o.seed
            );
        }
    }
    out
}

fn stats_text(s: &SessionStats) -> String {
    format!(
        "session: {} patterns simulated, {} ATPG runs, {} frontier hits, {} cube hits",
        s.patterns_simulated, s.atpg_runs, s.atpg_cache_hits, s.podem_cache_hits
    )
}

/// One progress event as a stderr line.
pub fn event_line(event: &ProgressEvent) -> String {
    match event {
        ProgressEvent::Queued { job, label } => format!("[{job}] queued: {label}"),
        ProgressEvent::Started { job } => format!("[{job}] started"),
        ProgressEvent::Checkpoint {
            job,
            prefix_len,
            coverage_pct,
        } => format!("[{job}] p={prefix_len} coverage={coverage_pct:.2}%"),
        ProgressEvent::Estimate {
            job,
            prefix_len,
            samples,
            estimate_pct,
            lo_pct,
            hi_pct,
            confidence,
        } => format!(
            "[{job}] estimate p={prefix_len} coverage\u{2248}{estimate_pct:.2}% \
             [{lo_pct:.2}, {hi_pct:.2}] ({confidence}% ci, {samples} samples)"
        ),
        ProgressEvent::Pass { job, name } => format!("[{job}] pass: {name}"),
        ProgressEvent::Finished { job, cache_hit } => {
            if *cache_hit {
                format!("[{job}] finished (cache hit)")
            } else {
                format!("[{job}] finished")
            }
        }
        ProgressEvent::Failed { job, message } => format!("[{job}] failed: {message}"),
        ProgressEvent::Canceled { job } => format!("[{job}] canceled"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_engine::{CircuitSource, Engine, JobSpec};

    #[test]
    fn json_rendering_is_deterministic_and_parses() {
        let engine = Engine::with_threads(1);
        let result = engine
            .run(JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]))
            .expect("c17 sweep");
        let a = result_json(&result).render_pretty();
        let b = result_json(&result).render_pretty();
        assert_eq!(a, b);
        let doc = bist_engine::json::parse(&a).expect("valid JSON");
        assert_eq!(doc.get("job").and_then(Json::as_str), Some("sweep"));
        assert_eq!(
            doc.get("points")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn text_rendering_covers_every_variant() {
        let engine = Engine::with_threads(1);
        for (spec, needle) in [
            (
                JobSpec::solve_at(CircuitSource::iscas85("c17"), 4),
                "session:",
            ),
            (
                JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 4]),
                "coverage %",
            ),
            (
                JobSpec::coverage_curve(CircuitSource::iscas85("c17"), [0, 8]),
                "length",
            ),
            (
                JobSpec::bakeoff(CircuitSource::iscas85("c17"), 8),
                "architecture",
            ),
            (
                JobSpec::emit_hdl(CircuitSource::iscas85("c17"), 4),
                "// ---- verilog",
            ),
            (
                JobSpec::area_report(CircuitSource::iscas85("c17")),
                "LFSROM mm2",
            ),
            (JobSpec::lint(CircuitSource::iscas85("c17")), "[BL013]"),
            (
                JobSpec::estimate(CircuitSource::iscas85("c17"), 32),
                "% confidence",
            ),
        ] {
            let result = engine.run(spec).expect("c17 job succeeds");
            let text = result_text(&result);
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }
}
