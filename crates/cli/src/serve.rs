//! `bist serve` — the multi-tenant test service.
//!
//! The server accepts NDJSON [`wire`] requests over
//! plain `TcpListener` (and, on unix, a unix-domain socket), multiplexes
//! any number of concurrent client sessions onto a pool of worker
//! threads, and answers repeated submissions from the engine's
//! server-lifetime [`ResultCache`]. There are no runtime dependencies:
//! the whole daemon is std threads, sockets and condvars.
//!
//! Scheduling is fair FIFO-per-client: every connection owns a private
//! queue and workers round-robin over the clients, so one tenant
//! submitting a thousand sweeps cannot starve another's single lint.
//! Admission control is a bounded global queue — when it is full the
//! submission is *rejected* with a suggested retry delay, never
//! silently parked. A [`Request::Shutdown`] stops admission and drains
//! every queued and in-flight job before [`Server::serve`] returns.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bist_engine::wire::{self, Request, Response, ServerStats, WireCacheStats};
use bist_engine::{Engine, JobId, JobSpec, ResultCache};

use crate::commands::CommandError;

/// How long the accept loops sleep between non-blocking polls, and how
/// long a worker blocks on a job's progress feed per pull.
const POLL: Duration = Duration::from_millis(25);

/// Configuration for [`Server::bind`].
#[derive(Debug, Default)]
pub struct ServeConfig {
    /// TCP listen address (`host:port`). When neither this nor
    /// `socket` is given the CLI defaults to `127.0.0.1:7117`.
    pub listen: Option<String>,
    /// Unix-domain socket path (unix platforms only).
    pub socket: Option<PathBuf>,
    /// Worker threads executing jobs (`0` = the machine width).
    pub jobs: usize,
    /// Admission-control bound: submissions beyond this many queued
    /// jobs are rejected with a retry hint.
    pub queue_capacity: usize,
    /// The retry delay suggested to rejected clients, milliseconds.
    pub retry_after_ms: u64,
    /// Server-lifetime result cache (with its LRU capacity already
    /// applied via [`ResultCache::with_capacity`]).
    pub cache: Option<ResultCache>,
}

/// One queued submission: which client it belongs to, its
/// server-assigned job number, and where to stream its events.
struct Ticket {
    job: u64,
    spec: JobSpec,
    writer: ClientWriter,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("job", &self.job)
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

/// A connection's write half, shared between its reader thread (acks,
/// stats) and whichever worker runs its jobs. Write errors are
/// swallowed: a vanished client must not take a worker down.
type ClientWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn send_line(writer: &ClientWriter, line: &str) {
    let mut w = writer.lock().expect("client writer lock never poisoned");
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}

/// The per-client queues and the round-robin order workers pull in.
#[derive(Debug, Default)]
struct Sched {
    queues: BTreeMap<u64, VecDeque<Ticket>>,
    order: VecDeque<u64>,
    queued: usize,
    running: usize,
}

impl Sched {
    fn push(&mut self, client: u64, ticket: Ticket) {
        let queue = self.queues.entry(client).or_default();
        if queue.is_empty() {
            self.order.push_back(client);
        }
        queue.push_back(ticket);
        self.queued += 1;
    }

    /// Next ticket, round-robin over clients with work.
    fn pop(&mut self) -> Option<Ticket> {
        let client = self.order.pop_front()?;
        let queue = self
            .queues
            .get_mut(&client)
            .expect("ordered client has a queue");
        let ticket = queue.pop_front().expect("ordered queue is non-empty");
        if queue.is_empty() {
            self.queues.remove(&client);
        } else {
            self.order.push_back(client);
        }
        self.queued -= 1;
        Some(ticket)
    }
}

/// State shared by acceptors, connection readers and workers.
#[derive(Debug)]
struct Shared {
    engine: Engine,
    sched: Mutex<Sched>,
    work_ready: Condvar,
    draining: AtomicBool,
    queue_capacity: usize,
    retry_after_ms: u64,
    next_client: AtomicU64,
    next_job: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    started: Instant,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let (queued, running) = {
            let sched = self.sched.lock().expect("sched lock never poisoned");
            (sched.queued as u64, sched.running as u64)
        };
        let cache = self.engine.cache().map(|cache| {
            let disk = cache.disk_stats();
            WireCacheStats {
                hits: cache.hits(),
                misses: cache.misses(),
                stores: cache.stores(),
                evictions: cache.evictions(),
                entries: disk.entries as u64,
                bytes: disk.bytes,
                capacity_bytes: cache.capacity(),
            }
        });
        ServerStats {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            submitted: self.submitted.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            failed: self.failed.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            queued,
            running,
            cache,
        }
    }
}

/// A bound-but-not-yet-serving `bist serve` daemon.
///
/// [`Server::bind`] claims the sockets (so tests can bind port `0` and
/// read the real address back); [`Server::serve`] runs until a
/// [`Request::Shutdown`] drains the queue.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    jobs: usize,
    tcp: Option<TcpListener>,
    #[cfg(unix)]
    unix: Option<std::os::unix::net::UnixListener>,
    socket_path: Option<PathBuf>,
}

impl Server {
    /// Binds the configured listeners and builds the shared engine.
    ///
    /// # Errors
    ///
    /// [`CommandError::Io`] when a socket cannot be bound, and
    /// [`CommandError::Usage`] when no listener is configured (or a
    /// unix socket is requested off-unix).
    pub fn bind(config: ServeConfig) -> Result<Self, CommandError> {
        let tcp = match &config.listen {
            Some(addr) => Some(
                TcpListener::bind(addr)
                    .map_err(|e| CommandError::Io(format!("cannot listen on {addr}: {e}")))?,
            ),
            None => None,
        };
        #[cfg(unix)]
        let unix = match &config.socket {
            Some(path) => {
                // a previous unclean shutdown leaves the socket file
                // behind; rebinding it is the expected recovery
                let _ = std::fs::remove_file(path);
                Some(std::os::unix::net::UnixListener::bind(path).map_err(|e| {
                    CommandError::Io(format!("cannot listen on {}: {e}", path.display()))
                })?)
            }
            None => None,
        };
        #[cfg(not(unix))]
        if config.socket.is_some() {
            return Err(CommandError::Io(
                "--socket needs a unix platform; use --listen".to_owned(),
            ));
        }
        let none_bound = tcp.is_none() && config.socket.is_none();
        if none_bound {
            return Err(CommandError::Io(
                "serve needs --listen or --socket".to_owned(),
            ));
        }
        // one level of parallelism: the worker pool is the concurrency,
        // each job runs serially (results are bit-identical either way)
        let mut engine = Engine::with_threads(1);
        if let Some(cache) = config.cache {
            engine = engine.with_result_cache(cache);
        }
        Ok(Server {
            shared: Arc::new(Shared {
                engine,
                sched: Mutex::new(Sched::default()),
                work_ready: Condvar::new(),
                draining: AtomicBool::new(false),
                queue_capacity: config.queue_capacity.max(1),
                retry_after_ms: config.retry_after_ms,
                next_client: AtomicU64::new(1),
                next_job: AtomicU64::new(1),
                submitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                started: Instant::now(),
            }),
            jobs: config.jobs,
            tcp,
            #[cfg(unix)]
            unix,
            socket_path: config.socket,
        })
    }

    /// The bound TCP address, when listening on TCP (`--listen
    /// 127.0.0.1:0` binds an ephemeral port; this reports which).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// The bound unix-socket path, when listening on one.
    pub fn socket_path(&self) -> Option<&PathBuf> {
        self.socket_path.as_ref()
    }

    /// Runs the service until a [`Request::Shutdown`] arrives and every
    /// queued and in-flight job has drained. Returns `Ok(())` on a
    /// graceful shutdown — the daemon's exit code 0.
    ///
    /// # Errors
    ///
    /// [`CommandError::Io`] when a service thread cannot be spawned.
    pub fn serve(self) -> Result<(), CommandError> {
        let workers = if self.jobs == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.jobs
        };
        let spawn_err = |e: std::io::Error| CommandError::Io(format!("cannot spawn: {e}"));
        let mut threads = Vec::new();
        for index in 0..workers {
            let shared = self.shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("bist-serve-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(spawn_err)?,
            );
        }
        if let Some(listener) = self.tcp {
            let shared = self.shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("bist-serve-accept-tcp".to_owned())
                    .spawn(move || accept_tcp(&shared, &listener))
                    .map_err(spawn_err)?,
            );
        }
        #[cfg(unix)]
        if let Some(listener) = self.unix {
            let shared = self.shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("bist-serve-accept-unix".to_owned())
                    .spawn(move || accept_unix(&shared, &listener))
                    .map_err(spawn_err)?,
            );
        }
        for thread in threads {
            let _ = thread.join();
        }
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

fn accept_tcp(shared: &Arc<Shared>, listener: &TcpListener) {
    let _ = listener.set_nonblocking(true);
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let Ok(reader) = stream.try_clone() else {
                    continue;
                };
                spawn_connection(shared, reader, Box::new(stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => break,
        }
    }
}

#[cfg(unix)]
fn accept_unix(shared: &Arc<Shared>, listener: &std::os::unix::net::UnixListener) {
    let _ = listener.set_nonblocking(true);
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let Ok(reader) = stream.try_clone() else {
                    continue;
                };
                spawn_connection(shared, reader, Box::new(stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => break,
        }
    }
}

fn spawn_connection(
    shared: &Arc<Shared>,
    reader: impl Read + Send + 'static,
    write_half: Box<dyn Write + Send>,
) {
    let client = shared.next_client.fetch_add(1, Ordering::SeqCst);
    let shared = shared.clone();
    let writer: ClientWriter = Arc::new(Mutex::new(write_half));
    // detached: the thread exits when the client hangs up; serve() only
    // waits for workers (job completion), never for idle connections
    let _ = std::thread::Builder::new()
        .name(format!("bist-serve-client-{client}"))
        .spawn(move || read_requests(&shared, client, reader, &writer));
}

fn read_requests(shared: &Arc<Shared>, client: u64, reader: impl Read, writer: &ClientWriter) {
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match wire::decode_request(&line) {
            Err(e) => send_line(
                writer,
                &wire::encode_response(&Response::Rejected {
                    reason: e.to_string(),
                    retry_after_ms: None,
                }),
            ),
            Ok(Request::Submit { spec }) => admit(shared, client, *spec, writer),
            Ok(Request::Stats) => send_line(
                writer,
                &wire::encode_response(&Response::Stats {
                    stats: shared.stats(),
                }),
            ),
            Ok(Request::Shutdown) => {
                let (queued, running) = begin_drain(shared);
                send_line(
                    writer,
                    &wire::encode_response(&Response::Stopping { queued, running }),
                );
            }
        }
    }
}

/// Admission control: reject when draining or when the bounded queue is
/// full; otherwise assign a job number, enqueue on the client's private
/// queue and ack with [`Response::Accepted`].
fn admit(shared: &Shared, client: u64, spec: JobSpec, writer: &ClientWriter) {
    // the draining check lives under the sched lock so a shutdown
    // cannot slip between it and the enqueue (which would strand a
    // ticket no worker will ever pop); the `Accepted` line is also sent
    // under it — before the ticket becomes visible — so a fast worker
    // cannot interleave progress events ahead of the acceptance
    let mut sched = shared.sched.lock().expect("sched lock never poisoned");
    let rejection = if shared.draining.load(Ordering::SeqCst) {
        Response::Rejected {
            reason: "server is draining for shutdown".to_owned(),
            retry_after_ms: None,
        }
    } else if sched.queued >= shared.queue_capacity {
        Response::Rejected {
            reason: format!("queue full ({} jobs waiting)", sched.queued),
            retry_after_ms: Some(shared.retry_after_ms),
        }
    } else {
        let job = shared.next_job.fetch_add(1, Ordering::SeqCst);
        send_line(writer, &wire::encode_response(&Response::Accepted { job }));
        sched.push(
            client,
            Ticket {
                job,
                spec,
                writer: writer.clone(),
            },
        );
        shared.submitted.fetch_add(1, Ordering::SeqCst);
        shared.work_ready.notify_one();
        return;
    };
    shared.rejected.fetch_add(1, Ordering::SeqCst);
    drop(sched);
    send_line(writer, &wire::encode_response(&rejection));
}

/// Stops admission and wakes everyone; queued and in-flight jobs still
/// run to completion. Returns the queue depth at the moment of the
/// request, for [`Response::Stopping`].
fn begin_drain(shared: &Shared) -> (u64, u64) {
    let sched = shared.sched.lock().expect("sched lock never poisoned");
    shared.draining.store(true, Ordering::SeqCst);
    let snapshot = (sched.queued as u64, sched.running as u64);
    drop(sched);
    shared.work_ready.notify_all();
    snapshot
}

/// One worker: pop round-robin, run, repeat; exit once draining and
/// the queue is empty.
fn worker_loop(shared: &Shared) {
    loop {
        let ticket = {
            let mut sched = shared.sched.lock().expect("sched lock never poisoned");
            loop {
                if let Some(ticket) = sched.pop() {
                    sched.running += 1;
                    break Some(ticket);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                sched = shared
                    .work_ready
                    .wait(sched)
                    .expect("sched lock never poisoned");
            }
        };
        let Some(ticket) = ticket else { return };
        run_ticket(shared, &ticket);
        let mut sched = shared.sched.lock().expect("sched lock never poisoned");
        sched.running -= 1;
    }
}

/// Runs one admitted job on the shared engine, streaming its progress
/// events (retagged with the server-assigned job number) and its
/// terminal result/failure line back to the submitting client.
fn run_ticket(shared: &Shared, ticket: &Ticket) {
    let job = ticket.job;
    let handle = shared.engine.submit(ticket.spec.clone());
    let feed = handle.progress().clone();
    let forward = |event: bist_engine::ProgressEvent| {
        send_line(
            &ticket.writer,
            &wire::encode_response(&Response::Event {
                event: event.with_job(JobId(job)),
            }),
        );
    };
    while !handle.is_finished() {
        if let Some(event) = feed.poll_timeout(POLL) {
            forward(event);
        }
    }
    for event in feed.drain() {
        forward(event);
    }
    let cached = handle.cache_hit().unwrap_or(false);
    match handle.wait() {
        Ok(result) => {
            shared.completed.fetch_add(1, Ordering::SeqCst);
            send_line(
                &ticket.writer,
                &wire::encode_response(&Response::Result {
                    job,
                    cached,
                    result: Box::new(result),
                }),
            );
        }
        Err(e) => {
            shared.failed.fetch_add(1, Ordering::SeqCst);
            send_line(
                &ticket.writer,
                &wire::encode_response(&Response::Failed {
                    job,
                    error: e.to_string(),
                }),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticket(job: u64) -> Ticket {
        Ticket {
            job,
            spec: JobSpec::lint(bist_engine::CircuitSource::iscas85("c17")),
            writer: Arc::new(Mutex::new(Box::new(std::io::sink()))),
        }
    }

    #[test]
    fn sched_round_robins_across_clients() {
        let mut sched = Sched::default();
        sched.push(1, ticket(10));
        sched.push(1, ticket(11));
        sched.push(2, ticket(20));
        let order: Vec<u64> = std::iter::from_fn(|| sched.pop()).map(|t| t.job).collect();
        assert_eq!(order, vec![10, 20, 11]);
        assert_eq!(sched.queued, 0);
    }

    #[test]
    fn sched_is_fifo_within_one_client() {
        let mut sched = Sched::default();
        for job in [1, 2, 3] {
            sched.push(7, ticket(job));
        }
        let order: Vec<u64> = std::iter::from_fn(|| sched.pop()).map(|t| t.job).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn bind_rejects_a_listenerless_config() {
        let err = Server::bind(ServeConfig {
            queue_capacity: 4,
            ..ServeConfig::default()
        });
        assert!(matches!(err, Err(CommandError::Io(_))));
    }

    #[test]
    fn bind_reports_the_ephemeral_tcp_port() {
        let server = Server::bind(ServeConfig {
            listen: Some("127.0.0.1:0".to_owned()),
            queue_capacity: 4,
            retry_after_ms: 100,
            ..ServeConfig::default()
        })
        .expect("bind 127.0.0.1:0");
        let addr = server.tcp_addr().expect("tcp listener bound");
        assert_ne!(addr.port(), 0);
    }
}
