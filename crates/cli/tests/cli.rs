//! End-to-end tests of the `bist` binary: help snapshot, cache-served
//! reruns byte-identical to computed ones, batch-vs-individual
//! bit-identity, and diagnostic exit codes.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};

use bist_engine::json::{self, Json};

fn bist(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bist"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("UTF-8 stdout")
}

fn stderr(output: &Output) -> String {
    String::from_utf8(output.stderr.clone()).expect("UTF-8 stderr")
}

fn fresh_dir(test: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "bist-cli-{test}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn help_matches_the_committed_snapshot() {
    let expected = include_str!("snapshots/help.txt");
    for args in [&["--help"][..], &["help"], &[]] {
        let output = bist(args);
        assert!(output.status.success(), "{args:?} exits 0");
        assert_eq!(
            stdout(&output),
            expected,
            "`bist {}` drifted from tests/snapshots/help.txt — update the \
             snapshot *and* docs/GUIDE.md together",
            args.join(" ")
        );
    }
    // every subcommand has its own help and exits 0
    for command in [
        "solve", "sweep", "curve", "bakeoff", "emit-hdl", "area", "lint", "batch", "cache",
    ] {
        let output = bist(&[command, "--help"]);
        assert!(output.status.success(), "{command} --help exits 0");
        assert!(
            stdout(&output).starts_with(&format!("bist {command}")),
            "{command} help names itself"
        );
    }
}

#[test]
fn warm_rerun_is_a_cache_hit_and_byte_identical() {
    let cache = fresh_dir("warm");
    let cache = cache.to_str().expect("UTF-8 path");
    let args = &[
        "sweep",
        "c17",
        "--points",
        "0,4,8",
        "--format",
        "json",
        "--cache-dir",
        cache,
    ];

    let cold = bist(args);
    assert!(cold.status.success());
    assert!(stderr(&cold).contains("cache: hits=0 misses=1 stores=1"));

    let warm = bist(args);
    assert!(warm.status.success());
    assert!(
        stderr(&warm).contains("cache: hits=1 misses=0 stores=0"),
        "second run must be served from the cache:\n{}",
        stderr(&warm)
    );
    assert_eq!(
        stdout(&cold),
        stdout(&warm),
        "cache-served JSON must be byte-identical to the computed run"
    );

    // cache stats sees the entry; clear empties it
    let stats = bist(&["cache", "stats", "--cache-dir", cache, "--format", "json"]);
    let doc = json::parse(&stdout(&stats)).expect("valid stats JSON");
    assert_eq!(doc.get("entries").and_then(Json::as_usize), Some(1));
    let clear = bist(&["cache", "clear", "--cache-dir", cache]);
    assert!(stdout(&clear).contains("removed 1 entries"));
    // --no-cache runs the job but leaves the directory alone
    let nocache = bist(&[
        "sweep",
        "c17",
        "--points",
        "0,4,8",
        "--cache-dir",
        cache,
        "--no-cache",
        "--quiet",
    ]);
    assert!(nocache.status.success());
    assert!(
        !stderr(&nocache).contains("cache:"),
        "--no-cache reports no cache line"
    );
    let stats = bist(&["cache", "stats", "--cache-dir", cache, "--format", "json"]);
    let doc = json::parse(&stdout(&stats)).expect("valid stats JSON");
    assert_eq!(doc.get("entries").and_then(Json::as_usize), Some(0));
}

#[test]
fn fault_model_runs_are_distinct_cache_entries_and_cache_cleanly() {
    let cache = fresh_dir("models");
    let cache = cache.to_str().expect("UTF-8 path");
    let args = |model: &'static str| {
        vec![
            "sweep",
            "c17",
            "--points",
            "0,8",
            "--fault-model",
            model,
            "--format",
            "json",
            "--cache-dir",
            cache,
        ]
    };

    // stuck-at, transition and bridging all run end-to-end and miss
    // each other's cache entries (three distinct digests)
    let mut outputs = Vec::new();
    for model in ["stuck-at", "transition", "bridging"] {
        let cold = bist(&args(model));
        assert!(cold.status.success(), "{model}: {}", stderr(&cold));
        assert!(
            stderr(&cold).contains("misses=1 stores=1"),
            "{model} is its own entry:\n{}",
            stderr(&cold)
        );
        let warm = bist(&args(model));
        assert!(warm.status.success());
        assert!(stderr(&warm).contains("hits=1 misses=0"));
        assert_eq!(
            stdout(&cold),
            stdout(&warm),
            "{model}: cache-served JSON must be byte-identical"
        );
        outputs.push(stdout(&cold));
    }
    assert_ne!(outputs[0], outputs[1], "models grade different universes");
    assert_ne!(outputs[0], outputs[2]);

    // the explicit default shares the implicit default's cache entry:
    // pre-existing stuck-at keys are unchanged
    let implicit = bist(&[
        "sweep",
        "c17",
        "--points",
        "0,8",
        "--format",
        "json",
        "--cache-dir",
        cache,
    ]);
    assert!(implicit.status.success());
    assert!(
        stderr(&implicit).contains("hits=1 misses=0"),
        "an unflagged sweep hits the stuck-at entry:\n{}",
        stderr(&implicit)
    );
    assert_eq!(stdout(&implicit), outputs[0]);

    // unknown models are usage errors, before any work
    let bad = bist(&["sweep", "c17", "--points", "0,8", "--fault-model", "warp"]);
    assert_eq!(bad.status.code(), Some(2));
    assert!(stderr(&bad).contains("warp"));
}

const MANIFEST: &str = r#"
[defaults]
circuit = "c17"

[[job]]
kind = "sweep"
points = [0, 4, 8]

[[job]]
kind = "solve"
prefix = 6

[[job]]
kind = "curve"
points = [0, 8]
"#;

#[test]
fn batch_is_bit_identical_to_individual_invocations_and_caches() {
    let dir = fresh_dir("batch");
    let manifest_path = dir.join("jobs.toml");
    std::fs::write(&manifest_path, MANIFEST).expect("manifest written");
    let manifest_path = manifest_path.to_str().expect("UTF-8 path");
    let cache = dir.join("cache");
    let cache = cache.to_str().expect("UTF-8 path");

    let batch = bist(&[
        "batch",
        manifest_path,
        "--format",
        "json",
        "--cache-dir",
        cache,
        "--quiet",
    ]);
    assert!(batch.status.success(), "batch fails: {}", stderr(&batch));
    let docs = json::parse(&stdout(&batch)).expect("valid batch JSON");
    let docs = docs.as_array().expect("array of results");
    assert_eq!(docs.len(), 3);

    // the same three jobs, one process each, against a *separate* cache
    // (so every result here is independently computed)
    let solo_cache = dir.join("solo-cache");
    let solo_cache = solo_cache.to_str().expect("UTF-8 path");
    let individual: Vec<Output> = [
        &["sweep", "c17", "--points", "0,4,8"][..],
        &["solve", "c17", "--prefix", "6"],
        &["curve", "c17", "--points", "0,8"],
    ]
    .iter()
    .map(|args| {
        let mut full: Vec<&str> = args.to_vec();
        full.extend_from_slice(&["--format", "json", "--cache-dir", solo_cache, "--quiet"]);
        bist(&full)
    })
    .collect();

    for (index, solo) in individual.iter().enumerate() {
        assert!(solo.status.success());
        let solo_doc = json::parse(&stdout(solo)).expect("valid solo JSON");
        assert_eq!(
            docs[index].render_pretty(),
            solo_doc.render_pretty(),
            "batch job {index} differs from its individual invocation"
        );
    }

    // warm rerun of the whole manifest: three hits, zero misses — i.e.
    // zero fault-simulation work
    let warm = bist(&[
        "batch",
        manifest_path,
        "--format",
        "json",
        "--cache-dir",
        cache,
    ]);
    assert!(warm.status.success());
    assert!(
        stderr(&warm).contains("cache: hits=3 misses=0 stores=0"),
        "warm manifest rerun must be all hits:\n{}",
        stderr(&warm)
    );
    assert_eq!(
        stdout(&batch),
        stdout(&warm),
        "warm batch JSON is byte-identical"
    );
}

#[test]
fn diagnostics_carry_sources_and_exit_codes() {
    // usage errors exit 2
    let usage = bist(&["sweep", "c17"]);
    assert_eq!(usage.status.code(), Some(2));
    assert!(stderr(&usage).contains("--points"));
    let unknown = bist(&["frobnicate"]);
    assert_eq!(unknown.status.code(), Some(2));

    // engine failures exit 1 with the typed diagnostic
    let missing = bist(&["solve", "c9999", "--prefix", "4", "--quiet"]);
    assert_eq!(missing.status.code(), Some(1));
    assert!(stderr(&missing).contains("unknown iscas85 circuit `c9999`"));

    // a malformed .bench file reports file:line: message
    let dir = fresh_dir("diag");
    let bad_bench = dir.join("broken.bench");
    std::fs::write(&bad_bench, "INPUT(a)\nOUTPUT(y)\nwat\n").expect("written");
    let bad_bench = bad_bench.to_str().expect("UTF-8 path");
    let parse = bist(&["area", bad_bench, "--quiet"]);
    assert_eq!(parse.status.code(), Some(1));
    assert!(
        stderr(&parse).contains(&format!("{bad_bench}:3:")),
        "parse diagnostics are file:line-located:\n{}",
        stderr(&parse)
    );

    // ...and so does a malformed manifest
    let bad_manifest = dir.join("bad.toml");
    std::fs::write(
        &bad_manifest,
        "[[job]]\nkind = \"sweep\"\npoints = [0, x]\n",
    )
    .expect("written");
    let bad_manifest = bad_manifest.to_str().expect("UTF-8 path");
    let manifest = bist(&["batch", bad_manifest, "--quiet"]);
    assert_eq!(manifest.status.code(), Some(1));
    assert!(stderr(&manifest).contains(&format!("{bad_manifest}:3:")));

    // a batch with one failing job still reports the others and exits 1
    let mixed = dir.join("mixed.toml");
    std::fs::write(
        &mixed,
        "[[job]]\nkind = \"solve\"\ncircuit = \"c17\"\nprefix = 4\n\n\
         [[job]]\nkind = \"solve\"\ncircuit = \"c9999\"\nprefix = 4\n",
    )
    .expect("written");
    let mixed = mixed.to_str().expect("UTF-8 path");
    let partial = bist(&["batch", mixed, "--format", "json", "--quiet"]);
    assert_eq!(partial.status.code(), Some(1));
    let docs = json::parse(&stdout(&partial)).expect("valid JSON");
    let docs = docs.as_array().expect("array");
    assert_eq!(docs[0].get("job").and_then(Json::as_str), Some("solve"));
    assert_eq!(docs[1].get("job").and_then(Json::as_str), Some("error"));
}

#[test]
fn lint_exit_codes_follow_the_report() {
    let dir = fresh_dir("lint");

    // a clean benchmark exits 0 and reports its testability summary
    let clean = bist(&["lint", "c17", "--format", "json", "--quiet"]);
    assert!(clean.status.success(), "c17 lints clean");
    let doc = json::parse(&stdout(&clean)).expect("valid lint JSON");
    assert_eq!(doc.get("job").and_then(Json::as_str), Some("lint"));
    assert_eq!(doc.get("errors").and_then(Json::as_usize), Some(0));
    assert!(doc.get("scoap").is_some_and(|s| !matches!(s, Json::Null)));

    // a warning-bearing netlist: exit 0 normally, 1 under --deny warnings
    let warny = dir.join("warny.bench");
    std::fs::write(&warny, "INPUT(a)\nINPUT(unused)\nOUTPUT(y)\ny = NOT(a)\n").expect("written");
    let warny = warny.to_str().expect("UTF-8 path");
    let lax = bist(&["lint", warny, "--quiet"]);
    assert!(lax.status.success(), "warnings alone do not fail");
    assert!(stdout(&lax).contains("[BL008]"), "floating input reported");
    let strict = bist(&["lint", warny, "--deny", "warnings", "--quiet"]);
    assert_eq!(strict.status.code(), Some(1), "--deny warnings fails");

    // an unparsable netlist is *reported* (exit 1), not a job failure —
    // stdout still carries the diagnostic with its source line
    let broken = dir.join("broken.bench");
    std::fs::write(&broken, "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n").expect("written");
    let broken = broken.to_str().expect("UTF-8 path");
    let parse = bist(&["lint", broken, "--format", "json", "--quiet"]);
    assert_eq!(parse.status.code(), Some(1));
    let doc = json::parse(&stdout(&parse)).expect("valid lint JSON");
    assert_eq!(doc.get("errors").and_then(Json::as_usize), Some(1));
    let diags = doc
        .get("diagnostics")
        .and_then(Json::as_array)
        .expect("diagnostics array");
    assert_eq!(diags[0].get("code").and_then(Json::as_str), Some("BL002"));
    assert_eq!(diags[0].get("line").and_then(Json::as_usize), Some(3));
}

#[test]
fn warm_lint_rerun_is_served_from_the_cache() {
    let cache = fresh_dir("lint-cache");
    let cache = cache.to_str().expect("UTF-8 path");
    let args = &["lint", "c432", "--format", "json", "--cache-dir", cache];

    let cold = bist(args);
    assert!(cold.status.success(), "c432 lints clean");
    assert!(stderr(&cold).contains("cache: hits=0 misses=1 stores=1"));

    let warm = bist(args);
    assert!(warm.status.success());
    assert!(
        stderr(&warm).contains("cache: hits=1 misses=0 stores=0"),
        "warm lint must be served from the cache:\n{}",
        stderr(&warm)
    );
    assert_eq!(
        stdout(&cold),
        stdout(&warm),
        "cache-served report is byte-identical"
    );
    // served from the cache means zero analysis work: no pass events
    assert!(
        !stderr(&warm).contains("pass:"),
        "warm run must not enter analysis passes:\n{}",
        stderr(&warm)
    );
}

#[test]
fn hdl_artefacts_land_on_disk_with_out() {
    let dir = fresh_dir("hdl");
    let out = dir.join("hdl");
    let out_str = out.to_str().expect("UTF-8 path");
    let output = bist(&[
        "emit-hdl",
        "c17",
        "--prefix",
        "4",
        "--lang",
        "verilog",
        "--testbench",
        "--module",
        "c17_bist",
        "--out",
        out_str,
        "--quiet",
    ]);
    assert!(
        output.status.success(),
        "emit-hdl fails: {}",
        stderr(&output)
    );
    let verilog = std::fs::read_to_string(out.join("c17_bist.v")).expect("verilog file");
    assert!(verilog.contains("module c17_bist"));
    assert!(out.join("c17_bist_tb.v").exists(), "testbench written");
    assert!(!out.join("c17_bist.vhd").exists(), "vhdl not requested");
}
