//! End-to-end contract of `bist serve`: concurrent clients over real
//! TCP sockets get results byte-identical to one-shot local runs, the
//! server-lifetime cache answers repeats without re-simulation,
//! admission control rejects (never hangs) when the queue is full, and
//! a shutdown request drains in-flight jobs before `serve()` returns.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use bist_cli::commands::CommandError;
use bist_cli::render::result_json;
use bist_cli::serve::{ServeConfig, Server};
use bist_engine::wire::{self, Request, Response};
use bist_engine::{CircuitSource, Engine, FaultModel, JobResult, JobSpec, ResultCache};

fn fresh_dir(test: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "bist-serve-{test}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Starts a server on an ephemeral loopback port; returns its address
/// and the thread `serve()` runs on (joins to its exit status).
fn start(
    config: ServeConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<Result<(), CommandError>>,
) {
    let server = Server::bind(ServeConfig {
        listen: Some("127.0.0.1:0".to_owned()),
        ..config
    })
    .expect("bind an ephemeral port");
    let addr = server.tcp_addr().expect("tcp listener bound");
    let thread = std::thread::spawn(move || server.serve());
    (addr, thread)
}

/// One raw wire session — deliberately not the [`bist_cli::client`]
/// plumbing, so the protocol itself is what's under test.
struct TestClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TestClient {
    fn connect(addr: SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).expect("connect to test server");
        let reader = BufReader::new(writer.try_clone().expect("clone socket"));
        TestClient { reader, writer }
    }

    fn send(&mut self, request: &Request) {
        let line = wire::encode_request(request);
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .expect("send request line");
    }

    fn next(&mut self) -> Response {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert_ne!(n, 0, "server closed the connection mid-session");
        wire::decode_response(line.trim_end()).expect("response line decodes")
    }

    /// Submits and pumps the session until the terminal result,
    /// asserting every event belongs to the accepted job.
    fn run(&mut self, spec: JobSpec) -> (JobResult, bool) {
        self.send(&Request::Submit {
            spec: Box::new(spec),
        });
        let mut job = None;
        loop {
            match self.next() {
                Response::Accepted { job: id } => job = Some(id),
                Response::Event { event } => {
                    assert_eq!(Some(event.job().0), job, "events carry the accepted id");
                }
                Response::Result {
                    job: id,
                    cached,
                    result,
                } => {
                    assert_eq!(Some(id), job);
                    return (*result, cached);
                }
                other => panic!("unexpected response: {other:?}"),
            }
        }
    }
}

fn sweep_spec() -> JobSpec {
    JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8])
}

fn solve_spec() -> JobSpec {
    JobSpec::solve_at(CircuitSource::iscas85("c17"), 4)
}

fn model_sweep_spec(model: FaultModel) -> JobSpec {
    let mut spec = sweep_spec();
    if let JobSpec::Sweep(s) = &mut spec {
        s.fault_model = model;
    }
    spec
}

#[test]
fn fault_model_jobs_cross_the_wire_and_hit_the_server_cache() {
    let dir = fresh_dir("models");
    let (addr, server) = start(ServeConfig {
        jobs: 1,
        queue_capacity: 16,
        retry_after_ms: 100,
        cache: Some(ResultCache::at(&dir)),
        ..ServeConfig::default()
    });

    let local = Engine::with_threads(1);
    for model in [FaultModel::Transition, FaultModel::bridging()] {
        let (served, cached) = TestClient::connect(addr).run(model_sweep_spec(model));
        assert!(!cached, "cold cache: computed");
        let reference = local.run(model_sweep_spec(model)).expect("local run");
        assert_eq!(
            result_json(&served).render_pretty(),
            result_json(&reference).render_pretty(),
            "served {model} sweep is byte-identical to a local run"
        );
        let (again, cached) = TestClient::connect(addr).run(model_sweep_spec(model));
        assert!(cached, "identical {model} resubmission is a cache hit");
        assert_eq!(
            result_json(&again).render_pretty(),
            result_json(&served).render_pretty()
        );
    }
    // the stuck-at entry is untouched by the model runs: a default
    // sweep still computes fresh
    let (_, cached) = TestClient::connect(addr).run(sweep_spec());
    assert!(!cached, "models never alias the stuck-at entry");

    let mut control = TestClient::connect(addr);
    control.send(&Request::Shutdown);
    let Response::Stopping { .. } = control.next() else {
        panic!("shutdown request answers with stopping");
    };
    server
        .join()
        .expect("serve thread")
        .expect("graceful shutdown exits cleanly");
}

#[test]
fn concurrent_clients_match_one_shot_runs_and_repeats_hit_the_cache() {
    let dir = fresh_dir("concurrent");
    let (addr, server) = start(ServeConfig {
        jobs: 2,
        queue_capacity: 16,
        retry_after_ms: 100,
        cache: Some(ResultCache::at(&dir)),
        ..ServeConfig::default()
    });

    // two tenants submit different jobs at the same time
    let sweeper = std::thread::spawn(move || TestClient::connect(addr).run(sweep_spec()));
    let solver = std::thread::spawn(move || TestClient::connect(addr).run(solve_spec()));
    let (sweep_served, sweep_cached) = sweeper.join().expect("sweep client");
    let (solve_served, solve_cached) = solver.join().expect("solve client");
    assert!(!sweep_cached && !solve_cached, "cold cache: both computed");

    // byte-identical to the one-shot CLI path (same renderer, local run)
    let local = Engine::with_threads(1);
    let sweep_local = local.run(sweep_spec()).expect("local sweep");
    let solve_local = local.run(solve_spec()).expect("local solve");
    assert_eq!(
        result_json(&sweep_served).render_pretty(),
        result_json(&sweep_local).render_pretty(),
        "served sweep is byte-identical to a one-shot run"
    );
    assert_eq!(
        result_json(&solve_served).render_pretty(),
        result_json(&solve_local).render_pretty(),
        "served solve is byte-identical to a one-shot run"
    );

    // a repeat submission is answered from the server-lifetime cache
    let (sweep_again, cached) = TestClient::connect(addr).run(sweep_spec());
    assert!(cached, "identical resubmission is a cache hit");
    assert_eq!(
        result_json(&sweep_again).render_pretty(),
        result_json(&sweep_served).render_pretty(),
        "cached result is byte-identical to the computed one"
    );

    // lifetime stats see the traffic and the hit
    let mut control = TestClient::connect(addr);
    control.send(&Request::Stats);
    let Response::Stats { stats } = control.next() else {
        panic!("stats request answers with stats");
    };
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.completed, 3);
    let cache = stats.cache.expect("server runs with a cache");
    assert_eq!(cache.hits, 1);
    assert_eq!(cache.stores, 2);

    // graceful shutdown: serve() returns Ok (the daemon's exit 0)
    control.send(&Request::Shutdown);
    let Response::Stopping { .. } = control.next() else {
        panic!("shutdown request answers with stopping");
    };
    server
        .join()
        .expect("serve thread")
        .expect("graceful shutdown exits cleanly");
}

#[test]
fn a_full_queue_rejects_with_a_retry_hint_and_shutdown_drains_in_flight_work() {
    let (addr, server) = start(ServeConfig {
        jobs: 1,
        queue_capacity: 1,
        retry_after_ms: 250,
        ..ServeConfig::default()
    });

    // occupy the single worker with a long job …
    let mut busy = TestClient::connect(addr);
    busy.send(&Request::Submit {
        spec: Box::new(JobSpec::sweep(CircuitSource::iscas85("c432"), [0, 40])),
    });
    let Response::Accepted { .. } = busy.next() else {
        panic!("first submission admitted");
    };
    // … give the worker a moment to pop it off the queue …
    std::thread::sleep(std::time::Duration::from_millis(150));

    // … then fill the queue; the overflow submission must be rejected
    // promptly, not parked
    let mut eager = TestClient::connect(addr);
    let mut rejections = 0;
    for _ in 0..2 {
        eager.send(&Request::Submit {
            spec: Box::new(solve_spec()),
        });
        match eager.next() {
            Response::Accepted { .. } => {}
            Response::Rejected {
                reason,
                retry_after_ms,
            } => {
                rejections += 1;
                assert!(reason.contains("queue full"), "reason names the cause");
                assert_eq!(retry_after_ms, Some(250), "rejection carries the hint");
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert!(rejections >= 1, "a bounded queue must reject overflow");

    // shutdown drains: the in-flight sweep still completes and its
    // client still receives the terminal result line
    let mut control = TestClient::connect(addr);
    control.send(&Request::Shutdown);
    let Response::Stopping { .. } = control.next() else {
        panic!("shutdown request answers with stopping");
    };
    let drained = loop {
        match busy.next() {
            Response::Event { .. } => {}
            Response::Result { result, .. } => break result,
            other => panic!("unexpected response: {other:?}"),
        }
    };
    assert!(
        drained.as_sweep().is_some(),
        "in-flight job ran to completion"
    );
    server
        .join()
        .expect("serve thread")
        .expect("drained shutdown exits cleanly");

    // and a post-drain submission is refused, not hung: either the
    // listener is already gone (connection refused) or the session is
    // answered with a rejection / closed without a result
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(stream) => {
            let mut late = TestClient {
                reader: BufReader::new(stream.try_clone().expect("clone socket")),
                writer: stream,
            };
            late.send(&Request::Submit {
                spec: Box::new(solve_spec()),
            });
            matches!(late.next_or_eof(), None | Some(Response::Rejected { .. }))
        }
    };
    assert!(refused, "a draining/stopped server refuses new work");
}

impl TestClient {
    /// Like [`TestClient::next`] but treats EOF as `None` — for
    /// post-shutdown probes where the server may already be gone.
    fn next_or_eof(&mut self) -> Option<Response> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(wire::decode_response(line.trim_end()).expect("response decodes")),
        }
    }
}
