//! The historical sweep driver, now a thin shim over
//! [`BistSession::sweep`](crate::BistSession::sweep).

use bist_netlist::Circuit;

use crate::session::{BistSession, MixedSchemeConfig, MixedSchemeError, SweepSummary};

/// Back-compat alias: the sweep result type now lives with the session.
pub type ExplorerSummary = SweepSummary;

/// Sweeps the `(p, d)` trade-off for one circuit — the machinery behind the
/// paper's Figures 5/7/8 and Table 2.
///
/// Deprecated: [`BistSession::sweep`] exposes the same operation on the
/// incremental pipeline, plus `solve_at` for individual points, sharing
/// fault simulation and deterministic top-ups across the whole sweep.
/// This shim opens a fresh session per `sweep` call (so a single call is
/// already incremental) and is kept for one release.
///
/// # Example
///
/// ```no_run
/// # #![allow(deprecated)]
/// use bist_core::{MixedSchemeConfig, TradeoffExplorer};
///
/// let c = bist_netlist::iscas85::circuit("c3540").unwrap();
/// let explorer = TradeoffExplorer::new(&c, MixedSchemeConfig::default());
/// let summary = explorer.sweep(&[0, 100, 200, 500, 1000])?;
/// for s in summary.solutions() {
///     println!("{s}");
/// }
/// # Ok::<(), bist_core::MixedSchemeError>(())
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use BistSession::sweep — the session keeps its incremental state \
            alive across calls, this shim rebuilds it per sweep"
)]
#[derive(Debug)]
pub struct TradeoffExplorer<'c> {
    circuit: &'c Circuit,
    config: MixedSchemeConfig,
}

#[allow(deprecated)]
impl<'c> TradeoffExplorer<'c> {
    /// Creates an explorer for `circuit`.
    pub fn new(circuit: &'c Circuit, config: MixedSchemeConfig) -> Self {
        TradeoffExplorer { circuit, config }
    }

    /// The flow configuration.
    pub fn config(&self) -> &MixedSchemeConfig {
        &self.config
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Solves the scheme for every prefix length in `prefix_lengths`, on
    /// one fresh incremental session.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MixedSchemeError`] encountered.
    pub fn sweep(&self, prefix_lengths: &[usize]) -> Result<ExplorerSummary, MixedSchemeError> {
        BistSession::new(self.circuit, self.config.clone()).sweep(prefix_lengths)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_monotone_cost_frontier_on_c432() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let explorer = TradeoffExplorer::new(&c, MixedSchemeConfig::default());
        let summary = explorer.sweep(&[0, 100, 400]).unwrap();
        let areas: Vec<f64> = summary
            .solutions()
            .iter()
            .map(|s| s.generator_area_mm2)
            .collect();
        // the paper's central claim: longer mixed sequence, cheaper generator
        assert!(
            areas[0] > areas[2],
            "p=0 generator ({:.3}) must cost more than p=400 ({:.3})",
            areas[0],
            areas[2]
        );
        // all points reach (essentially) the same coverage; longer
        // prefixes may catch a few faults the ATPG aborted on, so exact
        // equality is not guaranteed — closeness is
        let covs: Vec<usize> = summary
            .solutions()
            .iter()
            .map(|s| s.coverage.detected)
            .collect();
        let total = summary.solutions()[0].coverage.total();
        let spread = covs.iter().max().unwrap() - covs.iter().min().unwrap();
        assert!(
            spread * 100 <= total,
            "coverage spread {spread} too wide for universe {total}"
        );
    }

    #[test]
    fn selection_helpers() {
        let c = bist_netlist::iscas85::c17();
        let explorer = TradeoffExplorer::new(&c, MixedSchemeConfig::default());
        let summary = explorer.sweep(&[0, 8, 32]).unwrap();
        assert!(summary.cheapest().is_some());
        assert_eq!(summary.shortest().unwrap().prefix_len, 0);
        assert!(summary.cheapest_within_length(10_000).is_some());
        let display = summary.to_string();
        assert!(display.contains("% of chip"));
    }
}
