use std::fmt;

use bist_netlist::Circuit;

use crate::scheme::{MixedScheme, MixedSchemeConfig, MixedSchemeError, MixedSolution};

/// Sweeps the `(p, d)` trade-off for one circuit — the machinery behind the
/// paper's Figures 5/7/8 and Table 2.
///
/// For every requested prefix length the full flow is solved (fault
/// simulation → ATPG top-up → generator synthesis → replay verification),
/// yielding a cost/length frontier from the pure-deterministic extreme
/// (`p = 0`, maximal generator) towards the bare-LFSR asymptote.
///
/// # Example
///
/// ```no_run
/// use bist_core::{MixedSchemeConfig, TradeoffExplorer};
///
/// let c = bist_netlist::iscas85::circuit("c3540").unwrap();
/// let explorer = TradeoffExplorer::new(&c, MixedSchemeConfig::default());
/// let summary = explorer.sweep(&[0, 100, 200, 500, 1000])?;
/// for s in summary.solutions() {
///     println!("{s}");
/// }
/// # Ok::<(), bist_core::MixedSchemeError>(())
/// ```
#[derive(Debug)]
pub struct TradeoffExplorer<'c> {
    scheme: MixedScheme<'c>,
}

impl<'c> TradeoffExplorer<'c> {
    /// Creates an explorer for `circuit`.
    pub fn new(circuit: &'c Circuit, config: MixedSchemeConfig) -> Self {
        TradeoffExplorer {
            scheme: MixedScheme::new(circuit, config),
        }
    }

    /// The underlying flow.
    pub fn scheme(&self) -> &MixedScheme<'c> {
        &self.scheme
    }

    /// Solves the scheme for every prefix length in `prefix_lengths`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MixedSchemeError`] encountered.
    pub fn sweep(&self, prefix_lengths: &[usize]) -> Result<ExplorerSummary, MixedSchemeError> {
        let mut solutions = Vec::with_capacity(prefix_lengths.len());
        for &p in prefix_lengths {
            solutions.push(self.scheme.solve(p)?);
        }
        Ok(ExplorerSummary { solutions })
    }
}

/// The result of a trade-off sweep: one [`MixedSolution`] per prefix
/// length, with selection helpers.
#[derive(Debug, Clone)]
pub struct ExplorerSummary {
    solutions: Vec<MixedSolution>,
}

impl ExplorerSummary {
    /// All solved points, in sweep order.
    pub fn solutions(&self) -> &[MixedSolution] {
        &self.solutions
    }

    /// The cheapest solution (by generator area).
    pub fn cheapest(&self) -> Option<&MixedSolution> {
        self.solutions
            .iter()
            .min_by(|a, b| a.generator_area_mm2.total_cmp(&b.generator_area_mm2))
    }

    /// The shortest total sequence.
    pub fn shortest(&self) -> Option<&MixedSolution> {
        self.solutions.iter().min_by_key(|s| s.total_len())
    }

    /// The cheapest solution whose total sequence length stays within
    /// `max_len` — the paper's "careful balance" selection rule.
    pub fn cheapest_within_length(&self, max_len: usize) -> Option<&MixedSolution> {
        self.solutions
            .iter()
            .filter(|s| s.total_len() <= max_len)
            .min_by(|a, b| a.generator_area_mm2.total_cmp(&b.generator_area_mm2))
    }

    /// The cheapest solution with overhead at most `max_overhead_pct` of
    /// the nominal chip area.
    pub fn within_overhead(&self, max_overhead_pct: f64) -> Option<&MixedSolution> {
        self.solutions
            .iter()
            .filter(|s| s.overhead_pct() <= max_overhead_pct)
            .min_by_key(|s| s.total_len())
    }
}

impl fmt::Display for ExplorerSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>8} {:>8} {:>8} {:>12} {:>10}",
            "p", "d", "p+d", "cost (mm2)", "% of chip"
        )?;
        for s in &self.solutions {
            writeln!(
                f,
                "{:>8} {:>8} {:>8} {:>12.3} {:>10.1}",
                s.prefix_len,
                s.det_len,
                s.total_len(),
                s.generator_area_mm2,
                s.overhead_pct()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_monotone_cost_frontier_on_c432() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let explorer = TradeoffExplorer::new(&c, MixedSchemeConfig::default());
        let summary = explorer.sweep(&[0, 100, 400]).unwrap();
        let areas: Vec<f64> = summary
            .solutions()
            .iter()
            .map(|s| s.generator_area_mm2)
            .collect();
        // the paper's central claim: longer mixed sequence, cheaper generator
        assert!(
            areas[0] > areas[2],
            "p=0 generator ({:.3}) must cost more than p=400 ({:.3})",
            areas[0],
            areas[2]
        );
        // all points reach (essentially) the same coverage; longer
        // prefixes may catch a few faults the ATPG aborted on, so exact
        // equality is not guaranteed — closeness is
        let covs: Vec<usize> = summary
            .solutions()
            .iter()
            .map(|s| s.coverage.detected)
            .collect();
        let total = summary.solutions()[0].coverage.total();
        let spread = covs.iter().max().unwrap() - covs.iter().min().unwrap();
        assert!(
            spread * 100 <= total,
            "coverage spread {spread} too wide for universe {total}"
        );
    }

    #[test]
    fn selection_helpers() {
        let c = bist_netlist::iscas85::c17();
        let explorer = TradeoffExplorer::new(&c, MixedSchemeConfig::default());
        let summary = explorer.sweep(&[0, 8, 32]).unwrap();
        assert!(summary.cheapest().is_some());
        assert_eq!(summary.shortest().unwrap().prefix_len, 0);
        assert!(summary.cheapest_within_length(10_000).is_some());
        let display = summary.to_string();
        assert!(display.contains("% of chip"));
    }
}
