//! The mixed BIST test scheme — the paper's end-to-end contribution.
//!
//! A *mixed test sequence* is a pseudo-random prefix of length `p`
//! (classical LFSR, scan-expanded for wide circuits) followed by a
//! deterministic suffix of length `d` computed by an ATPG for exactly the
//! faults the prefix left undetected. The corresponding *mixed hardware
//! generator* shares one register of D flip-flops between both phases: an
//! LFSR recurrence drives it during the prefix, a decoder recognizes the
//! hand-over state, and from then on a synthesized LFSROM next-pattern
//! network replays the deterministic suffix — order preserved, which the
//! two-pattern stuck-open tests require.
//!
//! This crate implements the incremental flow ([`BistSession`]: fault
//! universe built once, prefix fault simulation advanced across
//! checkpoints, ATPG cached per open-fault frontier), the shared-register
//! hardware ([`MixedGenerator`], verified by cycle-accurate replay and
//! implementing the workspace-wide [`Tpg`](bist_tpg::Tpg) trait), and the
//! `(p, d)` trade-off sweep behind the paper's Figures 5/7/8 and Table 2
//! ([`BistSession::sweep`]); the substrate crates are re-exported under
//! [`prelude`]. The historical one-shot faces are gone (see DESIGN.md §3
//! for the history) — the `bist-engine` crate's typed job API is the
//! public face of the workspace, and sessions remain the lower-level
//! building block it drives.
//!
//! # Quickstart
//!
//! ```
//! use bist_core::{BistSession, MixedSchemeConfig};
//!
//! let c17 = bist_netlist::iscas85::c17();
//! let mut session = BistSession::new(&c17, MixedSchemeConfig::default());
//! let solution = session.solve_at(8)?; // 8 pseudo-random patterns, then ATPG
//! assert!(solution.coverage.efficiency_pct() == 100.0);
//! assert!(solution.generator.verify());
//! # Ok::<(), bist_core::MixedSchemeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mixed;
/// The complete simulated self-test loop of the paper's Figure 1:
/// generator → circuit under test → MISR signature → PASS/FAIL.
pub mod selftest;
mod session;

pub use mixed::{BuildMixedError, HandoverDecode, MixedGenerator};
pub use session::{
    sweep_circuits, BistSession, CollapseMode, MixedSchemeConfig, MixedSchemeError, MixedSolution,
    SessionStats, SweepSummary,
};

/// One-stop re-exports of the substrate crates.
pub mod prelude {
    pub use bist_atpg::{AtpgOptions, TestGenerator};
    pub use bist_fault::{Fault, FaultList, FaultStatus};
    pub use bist_faultsim::{CoverageCurve, CoverageReport, FaultSim, SimCounters, Testability};
    pub use bist_lfsr::{
        lfsr_netlist, paper_poly, primitive_poly, pseudo_random_patterns, Lfsr, Misr, Polynomial,
        ScanExpander,
    };
    pub use bist_lfsrom::LfsromGenerator;
    pub use bist_logicsim::{PackedSim, Pattern, SeqSim};
    pub use bist_netlist::{iscas85, Circuit, CircuitBuilder, GateKind};
    pub use bist_synth::{AreaModel, CellCount};
    pub use bist_tpg::Tpg;

    pub use crate::{
        sweep_circuits, BistSession, CollapseMode, MixedGenerator, MixedSchemeConfig,
        MixedSolution, SessionStats, SweepSummary,
    };
}
