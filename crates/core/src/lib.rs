//! The mixed BIST test scheme — the paper's end-to-end contribution.
//!
//! A *mixed test sequence* is a pseudo-random prefix of length `p`
//! (classical LFSR, scan-expanded for wide circuits) followed by a
//! deterministic suffix of length `d` computed by an ATPG for exactly the
//! faults the prefix left undetected. The corresponding *mixed hardware
//! generator* shares one register of D flip-flops between both phases: an
//! LFSR recurrence drives it during the prefix, a decoder recognizes the
//! hand-over state, and from then on a synthesized LFSROM next-pattern
//! network replays the deterministic suffix — order preserved, which the
//! two-pattern stuck-open tests require.
//!
//! This crate is the workspace facade: it implements the flow
//! ([`MixedScheme`]), the shared-register hardware ([`MixedGenerator`],
//! verified by cycle-accurate replay) and the `(p, d)` trade-off
//! exploration ([`TradeoffExplorer`]) behind the paper's Figures 5/7/8 and
//! Table 2, and re-exports the substrate crates under [`prelude`].
//!
//! # Quickstart
//!
//! ```
//! use bist_core::{MixedScheme, MixedSchemeConfig};
//!
//! let c17 = bist_netlist::iscas85::c17();
//! let scheme = MixedScheme::new(&c17, MixedSchemeConfig::default());
//! let solution = scheme.solve(8)?; // 8 pseudo-random patterns, then ATPG
//! assert!(solution.coverage.efficiency_pct() == 100.0);
//! assert!(solution.generator.verify());
//! # Ok::<(), bist_core::MixedSchemeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explorer;
mod mixed;
mod scheme;
/// The complete simulated self-test loop of the paper's Figure 1:
/// generator → circuit under test → MISR signature → PASS/FAIL.
pub mod selftest;

pub use explorer::{ExplorerSummary, TradeoffExplorer};
pub use mixed::{BuildMixedError, MixedGenerator};
pub use scheme::{MixedScheme, MixedSchemeConfig, MixedSchemeError, MixedSolution};

/// One-stop re-exports of the substrate crates.
pub mod prelude {
    pub use bist_atpg::{AtpgOptions, TestGenerator};
    pub use bist_fault::{Fault, FaultList, FaultStatus};
    pub use bist_faultsim::{CoverageCurve, CoverageReport, FaultSim, Testability};
    pub use bist_lfsr::{
        lfsr_netlist, paper_poly, primitive_poly, pseudo_random_patterns, Lfsr, Misr, Polynomial,
        ScanExpander,
    };
    pub use bist_lfsrom::LfsromGenerator;
    pub use bist_logicsim::{PackedSim, Pattern, SeqSim};
    pub use bist_netlist::{iscas85, Circuit, CircuitBuilder, GateKind};
    pub use bist_synth::{AreaModel, CellCount};

    pub use crate::{MixedGenerator, MixedScheme, MixedSchemeConfig, MixedSolution, TradeoffExplorer};
}
