use std::fmt;

use bist_lfsr::{Lfsr, Polynomial, ScanExpander};
use bist_lfsrom::{LfsromGenerator, SynthesizeLfsromError};
use bist_logicsim::{Pattern, SeqSim};
use bist_netlist::{Circuit, CircuitBuilder, GateKind, NodeId};
use bist_synth::{count_cells, AreaModel, CellCount};

/// Error returned by [`MixedGenerator::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildMixedError {
    /// Both the prefix and the deterministic suffix are empty.
    NoPatterns,
    /// Pattern width must be positive.
    ZeroWidth,
    /// Deterministic pattern `index` has the wrong width.
    WidthMismatch {
        /// Offending pattern position.
        index: usize,
        /// Expected width (the CUT's input count).
        expected: usize,
        /// Width found.
        got: usize,
    },
    /// The LFSROM synthesis failed.
    Lfsrom(SynthesizeLfsromError),
}

impl fmt::Display for BuildMixedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildMixedError::NoPatterns => write!(f, "mixed scheme with p = 0 and d = 0"),
            BuildMixedError::ZeroWidth => write!(f, "pattern width must be positive"),
            BuildMixedError::WidthMismatch {
                index,
                expected,
                got,
            } => write!(
                f,
                "deterministic pattern {index} is {got} bits wide, expected {expected}"
            ),
            BuildMixedError::Lfsrom(e) => write!(f, "LFSROM synthesis failed: {e}"),
        }
    }
}

impl std::error::Error for BuildMixedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildMixedError::Lfsrom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SynthesizeLfsromError> for BuildMixedError {
    fn from(e: SynthesizeLfsromError) -> Self {
        BuildMixedError::Lfsrom(e)
    }
}

/// How the hand-over from the pseudo-random to the deterministic phase is
/// detected in hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoverDecode {
    /// The paper's scheme: an AND decoder recognizes the LFSR-part state
    /// reached after the `p`-th pattern. Only sound while `p·w` does not
    /// exceed the LFSR period — states are unique within one period.
    LfsrState {
        /// The recognized state (LFSR-part bit mask).
        state: u64,
    },
    /// A clock counter with a terminal-count decoder. Used automatically
    /// when `p·w` exceeds the LFSR period `2^k − 1`, where state decoding
    /// would fire early — an engineering correction to the paper, which is
    /// silent on this case (see `DESIGN.md`).
    ClockCounter {
        /// The terminal count (`p·w`).
        count: u64,
        /// Counter width in flip-flops.
        bits: u32,
    },
    /// Single-phase generator (pure LFSR or pure LFSROM): nothing to
    /// decode.
    None,
}

/// The shared-register mixed BIST hardware generator (the paper's
/// Figure 3).
///
/// One register of `max(width, k)` D flip-flops plays both roles: during
/// the pseudo-random phase its first `k` cells run the LFSR recurrence
/// (the rest extending it as a delay line), and after the hand-over a
/// two-level LFSROM network drives it through the deterministic suffix.
/// Per-bit multiplexers select the feedback source; a decoder plus a mode
/// latch performs the switch.
///
/// Every built generator carries its structural netlist;
/// [`MixedGenerator::verify`] replays it cycle-accurately and checks both
/// phases bit-exactly.
///
/// # Example
///
/// ```
/// use bist_core::MixedGenerator;
/// use bist_lfsr::paper_poly;
/// use bist_logicsim::Pattern;
///
/// let det: Vec<Pattern> = ["00110", "11001"].iter().map(|s| s.parse().expect("valid pattern")).collect();
/// let generator = MixedGenerator::build(5, paper_poly(), 4, &det)?;
/// assert!(generator.verify());
/// # Ok::<(), bist_core::BuildMixedError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MixedGenerator {
    width: usize,
    poly: Polynomial,
    prefix_len: usize,
    deterministic: Vec<Pattern>,
    expected_random: Vec<Pattern>,
    codes: Vec<u64>,
    code_bits: usize,
    decode: HandoverDecode,
    netlist: Circuit,
}

impl MixedGenerator {
    /// Builds the mixed generator for a CUT with `width` primary inputs:
    /// `prefix_len` pseudo-random patterns from a Fibonacci LFSR on
    /// `poly` (seed 1), then the `deterministic` sequence.
    ///
    /// # Errors
    ///
    /// Returns [`BuildMixedError`] when both phases are empty, widths
    /// mismatch, or LFSROM synthesis fails.
    pub fn build(
        width: usize,
        poly: Polynomial,
        prefix_len: usize,
        deterministic: &[Pattern],
    ) -> Result<Self, BuildMixedError> {
        if width == 0 {
            return Err(BuildMixedError::ZeroWidth);
        }
        if prefix_len == 0 && deterministic.is_empty() {
            return Err(BuildMixedError::NoPatterns);
        }
        for (index, p) in deterministic.iter().enumerate() {
            if p.len() != width {
                return Err(BuildMixedError::WidthMismatch {
                    index,
                    expected: width,
                    got: p.len(),
                });
            }
        }
        let k = poly.degree() as usize;

        // software model of the pseudo-random phase
        let mut expander = ScanExpander::new(Lfsr::fibonacci(poly, 1), width);
        let expected_random = expander.patterns(prefix_len);
        let handover_state = expander.lfsr_state();
        let bridge = expander.chain();

        // LFSROM over (bridge +) deterministic suffix
        let lfsrom = if deterministic.is_empty() {
            None
        } else {
            let mut seq = Vec::with_capacity(deterministic.len() + 1);
            if prefix_len > 0 {
                seq.push(bridge);
            }
            seq.extend(deterministic.iter().cloned());
            Some(LfsromGenerator::synthesize(&seq)?)
        };
        let (codes, code_bits) = match &lfsrom {
            Some(g) => (g.codes().to_vec(), g.extra_flip_flops()),
            None => (Vec::new(), 0),
        };

        let decode = if prefix_len == 0 || deterministic.is_empty() {
            HandoverDecode::None
        } else {
            let clocks = (prefix_len * width) as u64;
            let period = (1u64 << k) - 1;
            if clocks <= period {
                HandoverDecode::LfsrState {
                    state: handover_state,
                }
            } else {
                HandoverDecode::ClockCounter {
                    count: clocks,
                    bits: 64 - clocks.leading_zeros(),
                }
            }
        };

        let netlist = build_netlist(
            width,
            poly,
            prefix_len,
            lfsrom.as_ref().map(LfsromGenerator::network),
            code_bits,
            decode,
        );

        Ok(MixedGenerator {
            width,
            poly,
            prefix_len,
            deterministic: deterministic.to_vec(),
            expected_random,
            codes,
            code_bits,
            decode,
            netlist,
        })
    }

    /// The test pattern width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The LFSR feedback polynomial.
    pub fn poly(&self) -> Polynomial {
        self.poly
    }

    /// Length `p` of the pseudo-random prefix.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// The deterministic suffix (length `d`).
    pub fn deterministic(&self) -> &[Pattern] {
        &self.deterministic
    }

    /// Total mixed sequence length `p + d`.
    pub fn total_len(&self) -> usize {
        self.prefix_len + self.deterministic.len()
    }

    /// The pseudo-random patterns the hardware will emit (software model).
    pub fn expected_random(&self) -> &[Pattern] {
        &self.expected_random
    }

    /// How the hand-over is decoded.
    pub fn decode(&self) -> HandoverDecode {
        self.decode
    }

    /// Number of disambiguation flip-flops in the LFSROM part.
    pub fn extra_flip_flops(&self) -> usize {
        self.code_bits
    }

    /// Per-step disambiguation codes of the LFSROM part (empty for pure
    /// pseudo-random generators). `codes()[0]` is the reset value of the
    /// disambiguation flip-flops of a pure-deterministic generator.
    pub fn codes(&self) -> &[u64] {
        &self.codes
    }

    /// The structural netlist of the generator.
    pub fn netlist(&self) -> &Circuit {
        &self.netlist
    }

    /// The generator's standard-cell inventory.
    pub fn cells(&self) -> CellCount {
        count_cells(&self.netlist)
    }

    /// Silicon area in mm² under `model`.
    pub fn area_mm2(&self, model: &AreaModel) -> f64 {
        model.area_mm2(&self.cells())
    }

    /// The register reset state that makes the netlist emit the verified
    /// sequence from power-on: `q0 = 1` seeds the LFSR recurrence when a
    /// pseudo-random phase exists; a pure-deterministic generator instead
    /// resets to the first suffix pattern plus its disambiguation code.
    /// Flip-flops not listed reset to `0`.
    ///
    /// This is the authoritative seeding — [`MixedGenerator::replay`]
    /// starts from it, and HDL emitters turn it into reset values so the
    /// synthesized module and the software model agree cycle for cycle.
    pub fn reset_states(&self) -> Vec<(NodeId, bool)> {
        let mut values = Vec::new();
        if self.prefix_len > 0 {
            let q0 = self.netlist.find("q0").expect("q0 exists");
            values.push((q0, true));
        } else if let Some(first) = self.deterministic.first() {
            for b in 0..self.width {
                let q = self
                    .netlist
                    .find(&format!("q{}", self.width - 1 - b))
                    .expect("pattern flip-flop exists");
                values.push((q, first.get(b)));
            }
            for cb in 0..self.code_bits {
                let c = self.netlist.find(&format!("c{cb}")).expect("code FF");
                values.push((c, (self.codes[0] >> cb) & 1 == 1));
            }
        }
        values
    }

    /// Clocks the netlist through both phases; returns the emitted
    /// (pseudo-random, deterministic) pattern sequences.
    pub fn replay(&self) -> (Vec<Pattern>, Vec<Pattern>) {
        let mut sim = SeqSim::new(&self.netlist);
        let pattern_ffs: Vec<NodeId> = (0..self.width)
            .map(|b| {
                self.netlist
                    .find(&format!("q{}", self.width - 1 - b))
                    .expect("pattern flip-flop exists")
            })
            .collect();
        let sample = |sim: &SeqSim<'_>| Pattern::from_fn(self.width, |b| sim.state(pattern_ffs[b]));

        for (ff, value) in self.reset_states() {
            sim.set_state(ff, value);
        }
        let mut random = Vec::with_capacity(self.prefix_len);
        let mut det = Vec::with_capacity(self.deterministic.len());
        if self.prefix_len > 0 {
            for _ in 0..self.prefix_len {
                for _ in 0..self.width {
                    sim.step(&[false]);
                }
                random.push(sample(&sim));
            }
            for _ in 0..self.deterministic.len() {
                sim.step(&[false]);
                det.push(sample(&sim));
            }
        } else {
            for t in 0..self.deterministic.len() {
                det.push(sample(&sim));
                if t + 1 < self.deterministic.len() {
                    sim.step(&[false]);
                }
            }
        }
        (random, det)
    }

    /// Replays the hardware and checks both phases bit-exactly against the
    /// software model / target sequence.
    pub fn verify(&self) -> bool {
        let (random, det) = self.replay();
        random == self.expected_random && det == self.deterministic
    }
}

impl bist_tpg::Tpg for MixedGenerator {
    fn architecture(&self) -> &'static str {
        "mixed"
    }

    fn width(&self) -> usize {
        self.width
    }

    fn test_length(&self) -> usize {
        self.total_len()
    }

    fn sequence(&self) -> Vec<Pattern> {
        self.expected_random
            .iter()
            .chain(&self.deterministic)
            .cloned()
            .collect()
    }

    fn cells(&self) -> CellCount {
        MixedGenerator::cells(self)
    }

    fn netlist(&self) -> Option<&Circuit> {
        Some(&self.netlist)
    }

    fn replay_netlist(&self) -> Option<Vec<Pattern>> {
        let (random, det) = self.replay();
        Some(random.into_iter().chain(det).collect())
    }
}

/// Emits the shared-register mixed generator netlist.
fn build_netlist(
    width: usize,
    poly: Polynomial,
    prefix_len: usize,
    network: Option<&bist_synth::TwoLevelNetwork>,
    code_bits: usize,
    decode: HandoverDecode,
) -> Circuit {
    let k = poly.degree() as usize;
    let has_random = prefix_len > 0;
    let has_det = network.is_some();
    let r_shift = if has_random { width.max(k) } else { width };

    let mut b = CircuitBuilder::new("mixed_generator");
    b.add_input("bist_en").expect("fresh name");

    let q_names: Vec<String> = (0..r_shift).map(|i| format!("q{i}")).collect();
    let c_names: Vec<String> = (0..code_bits).map(|j| format!("c{j}")).collect();

    // deterministic next-state network (over pattern-order inputs)
    let net_outs: Vec<String> = if let Some(net) = network {
        let mut inputs: Vec<&str> = (0..width)
            .map(|bit| q_names[width - 1 - bit].as_str())
            .collect();
        inputs.extend(c_names.iter().map(String::as_str));
        net.emit(&mut b, &inputs, "ns").expect("fresh namespace")
    } else {
        Vec::new()
    };

    // LFSR feedback
    if has_random {
        let taps: Vec<&str> = poly
            .taps()
            .iter()
            .map(|&t| q_names[(t - 1) as usize].as_str())
            .collect();
        if taps.len() == 1 {
            b.add_gate("lfsr_fb", GateKind::Buf, &taps).expect("fresh");
        } else {
            b.add_gate("lfsr_fb", GateKind::Xor, &taps).expect("fresh");
        }
    }

    // hand-over decoder + mode latch
    let mode_select = match decode {
        HandoverDecode::None => None,
        HandoverDecode::LfsrState { state } => {
            let mut literals: Vec<String> = Vec::with_capacity(k);
            for (i, q) in q_names.iter().enumerate().take(k) {
                if (state >> i) & 1 == 1 {
                    literals.push(q.clone());
                } else {
                    let inv = format!("dec_inv{i}");
                    b.add_gate(&inv, GateKind::Not, &[q]).expect("fresh");
                    literals.push(inv);
                }
            }
            let refs: Vec<&str> = literals.iter().map(String::as_str).collect();
            b.add_gate("dec", GateKind::And, &refs).expect("fresh");
            Some(emit_mode_latch(&mut b))
        }
        HandoverDecode::ClockCounter { count, bits } => {
            // ripple-increment counter: cnt_i' = cnt_i XOR carry_{i-1},
            // carry_i = cnt_i AND carry_{i-1}, carry_{-1} = 1
            let mut carry: Option<String> = None;
            let mut literals: Vec<String> = Vec::with_capacity(bits as usize);
            for i in 0..bits {
                let q = format!("cnt{i}");
                let next = format!("cnt{i}_n");
                match &carry {
                    None => {
                        b.add_gate(&next, GateKind::Not, &[&q]).expect("fresh");
                    }
                    Some(cy) => {
                        b.add_gate(&next, GateKind::Xor, &[&q, cy]).expect("fresh");
                    }
                }
                let new_carry = format!("cnt{i}_c");
                match &carry {
                    None => {
                        b.add_gate(&new_carry, GateKind::Buf, &[&q]).expect("fresh");
                    }
                    Some(cy) => {
                        b.add_gate(&new_carry, GateKind::And, &[&q, cy])
                            .expect("fresh");
                    }
                }
                carry = Some(new_carry);
                b.add_gate(&q, GateKind::Dff, &[&next]).expect("fresh");
                if (count >> i) & 1 == 1 {
                    literals.push(q);
                } else {
                    let inv = format!("dec_inv{i}");
                    b.add_gate(&inv, GateKind::Not, &[&q]).expect("fresh");
                    literals.push(inv);
                }
            }
            let refs: Vec<&str> = literals.iter().map(String::as_str).collect();
            b.add_gate("dec", GateKind::And, &refs).expect("fresh");
            Some(emit_mode_latch(&mut b))
        }
    };

    // per-cell feedback selection
    for i in 0..r_shift {
        let random_next = if i == 0 {
            "lfsr_fb".to_owned()
        } else {
            q_names[i - 1].clone()
        };
        let det_next = if has_det && i < width {
            Some(net_outs[width - 1 - i].clone())
        } else {
            None
        };
        let d_input = match (&mode_select, det_next) {
            (Some(sel), Some(dn)) => {
                let a = format!("mx{i}_r");
                let bb = format!("mx{i}_d");
                let y = format!("mx{i}");
                b.add_gate(&a, GateKind::And, &[&sel.not_mode, &random_next])
                    .expect("fresh");
                b.add_gate(&bb, GateKind::And, &[&sel.mode_next, &dn])
                    .expect("fresh");
                b.add_gate(&y, GateKind::Or, &[&a, &bb]).expect("fresh");
                y
            }
            (None, Some(dn)) if !has_random => dn,
            _ => random_next,
        };
        b.add_gate(&q_names[i], GateKind::Dff, &[&d_input])
            .expect("fresh");
    }

    // disambiguation flip-flops
    for (j, c) in c_names.iter().enumerate() {
        let out = &net_outs[width + j];
        let d_input = match &mode_select {
            Some(sel) => {
                let gated = format!("cgate{j}");
                b.add_gate(&gated, GateKind::And, &[&sel.mode_next, out])
                    .expect("fresh");
                gated
            }
            None => out.clone(),
        };
        b.add_gate(c, GateKind::Dff, &[&d_input]).expect("fresh");
    }

    // primary outputs in pattern order
    for bit in 0..width {
        b.mark_output(&q_names[width - 1 - bit]).expect("exists");
    }
    b.build().expect("mixed generator netlist is valid")
}

struct ModeSelect {
    mode_next: String,
    not_mode: String,
}

fn emit_mode_latch(b: &mut CircuitBuilder) -> ModeSelect {
    b.add_gate("mode_next", GateKind::Or, &["mode", "dec"])
        .expect("fresh");
    b.add_gate("mode", GateKind::Dff, &["mode_next"])
        .expect("fresh");
    b.add_gate("mode_next_n", GateKind::Not, &["mode_next"])
        .expect("fresh");
    ModeSelect {
        mode_next: "mode_next".to_owned(),
        not_mode: "mode_next_n".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_lfsr::{paper_poly, primitive_poly};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_patterns(rng: &mut StdRng, width: usize, count: usize) -> Vec<Pattern> {
        (0..count).map(|_| Pattern::random(rng, width)).collect()
    }

    #[test]
    fn verifies_small_mixed_generator() {
        let mut rng = StdRng::seed_from_u64(5);
        let det = random_patterns(&mut rng, 8, 6);
        let g = MixedGenerator::build(8, primitive_poly(8), 10, &det).expect("valid generator");
        assert!(g.verify());
        assert_eq!(g.total_len(), 16);
        assert!(matches!(g.decode(), HandoverDecode::LfsrState { .. }));
    }

    #[test]
    fn wide_register_narrow_lfsr() {
        // width > k: the register extends the LFSR
        let mut rng = StdRng::seed_from_u64(6);
        let det = random_patterns(&mut rng, 24, 4);
        let g = MixedGenerator::build(24, primitive_poly(8), 12, &det).expect("valid generator");
        assert!(g.verify());
    }

    #[test]
    fn narrow_register_wide_lfsr() {
        // width < k (the c17 situation: 5 inputs, 16-bit LFSR)
        let mut rng = StdRng::seed_from_u64(7);
        let det = random_patterns(&mut rng, 5, 4);
        let g = MixedGenerator::build(5, paper_poly(), 8, &det).expect("valid generator");
        assert!(g.verify());
    }

    #[test]
    fn pure_deterministic_generator() {
        let mut rng = StdRng::seed_from_u64(8);
        let det = random_patterns(&mut rng, 10, 7);
        let g = MixedGenerator::build(10, paper_poly(), 0, &det).expect("valid generator");
        assert!(g.verify());
        assert_eq!(g.decode(), HandoverDecode::None);
        let (random, replayed) = g.replay();
        assert!(random.is_empty());
        assert_eq!(replayed, det);
    }

    #[test]
    fn pure_pseudo_random_generator() {
        let g = MixedGenerator::build(12, primitive_poly(8), 20, &[]).expect("valid generator");
        assert!(g.verify());
        assert_eq!(g.decode(), HandoverDecode::None);
        let (random, det) = g.replay();
        assert_eq!(random.len(), 20);
        assert!(det.is_empty());
    }

    #[test]
    fn counter_decode_kicks_in_past_the_lfsr_period() {
        // p·w > 2^k − 1 forces the clock-counter hand-over
        let mut rng = StdRng::seed_from_u64(9);
        let det = random_patterns(&mut rng, 16, 3);
        let g = MixedGenerator::build(16, primitive_poly(6), 8, &det).expect("valid generator");
        assert!(matches!(g.decode(), HandoverDecode::ClockCounter { .. }));
        assert!(g.verify());
    }

    #[test]
    fn random_configurations_always_verify() {
        let mut rng = StdRng::seed_from_u64(10);
        for trial in 0..8 {
            let width = rng.gen_range(3..20);
            let p = rng.gen_range(0..12);
            let d = rng.gen_range(if p == 0 { 1 } else { 0 }..8);
            let det = random_patterns(&mut rng, width, d);
            let g =
                MixedGenerator::build(width, primitive_poly(8), p, &det).expect("valid generator");
            assert!(
                g.verify(),
                "trial {trial}: width {width}, p {p}, d {d} failed replay"
            );
        }
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            MixedGenerator::build(8, paper_poly(), 0, &[]),
            Err(BuildMixedError::NoPatterns)
        ));
        let det = vec![Pattern::zeros(5)];
        assert!(matches!(
            MixedGenerator::build(8, paper_poly(), 4, &det),
            Err(BuildMixedError::WidthMismatch { index: 0, .. })
        ));
    }

    #[test]
    fn mixed_costs_little_more_than_lfsrom_alone() {
        // the paper's §2.3 claim: sharing the D cells keeps the mixed
        // generator in the same cost class as the LFSROM
        let mut rng = StdRng::seed_from_u64(11);
        let det = random_patterns(&mut rng, 20, 12);
        let model = AreaModel::es2_1um();
        let mixed = MixedGenerator::build(20, paper_poly(), 50, &det).expect("valid generator");
        let lfsrom = bist_lfsrom::LfsromGenerator::synthesize(&det).expect("valid generator");
        let a_mixed = mixed.area_mm2(&model);
        let a_lfsrom = lfsrom.area_mm2(&model);
        assert!(
            a_mixed < a_lfsrom * 2.0,
            "mixed {a_mixed:.3} mm² vs LFSROM {a_lfsrom:.3} mm²"
        );
    }
}
