use std::fmt;

use bist_atpg::{AtpgOptions, TestGenerator};
use bist_fault::FaultList;
use bist_faultsim::{CoverageCurve, CoverageReport, FaultSim};
use bist_lfsr::{Lfsr, Polynomial, ScanExpander};
use bist_logicsim::Pattern;
use bist_netlist::Circuit;
use bist_synth::AreaModel;

use crate::mixed::{BuildMixedError, MixedGenerator};

/// Configuration of the mixed test scheme flow.
#[derive(Debug, Clone)]
pub struct MixedSchemeConfig {
    /// LFSR feedback polynomial for the pseudo-random phase (default: the
    /// paper's degree-16 polynomial, typo corrected — see `bist-lfsr`).
    pub poly: Polynomial,
    /// ATPG options for the deterministic top-up.
    pub atpg: AtpgOptions,
    /// Area model used for all silicon cost figures.
    pub area: AreaModel,
}

impl Default for MixedSchemeConfig {
    fn default() -> Self {
        MixedSchemeConfig {
            poly: bist_lfsr::paper_poly(),
            atpg: AtpgOptions::default(),
            area: AreaModel::es2_1um(),
        }
    }
}

/// Error returned by [`MixedScheme::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedSchemeError {
    /// Building the hardware generator failed.
    Build(BuildMixedError),
}

impl fmt::Display for MixedSchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixedSchemeError::Build(e) => write!(f, "generator construction failed: {e}"),
        }
    }
}

impl std::error::Error for MixedSchemeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MixedSchemeError::Build(e) => Some(e),
        }
    }
}

impl From<BuildMixedError> for MixedSchemeError {
    fn from(e: BuildMixedError) -> Self {
        MixedSchemeError::Build(e)
    }
}

/// One solved point of the mixed trade-off: the tuple `(p, d)` with its
/// coverage and silicon cost — one row of the paper's Table 2.
#[derive(Debug, Clone)]
pub struct MixedSolution {
    /// Pseudo-random prefix length `p`.
    pub prefix_len: usize,
    /// Deterministic suffix length `d`.
    pub det_len: usize,
    /// Coverage over the full mixed fault universe.
    pub coverage: CoverageReport,
    /// Coverage reached by the pseudo-random prefix alone.
    pub prefix_coverage: CoverageReport,
    /// Silicon area of the mixed hardware generator, mm².
    pub generator_area_mm2: f64,
    /// Nominal silicon area of the circuit under test, mm².
    pub chip_area_mm2: f64,
    /// The verified hardware generator.
    pub generator: MixedGenerator,
}

impl MixedSolution {
    /// Total mixed sequence length `p + d`.
    pub fn total_len(&self) -> usize {
        self.prefix_len + self.det_len
    }

    /// Generator area as a percentage of the nominal chip area — the
    /// paper's "% increase vs. chip size".
    pub fn overhead_pct(&self) -> f64 {
        100.0 * self.generator_area_mm2 / self.chip_area_mm2
    }
}

impl fmt::Display for MixedSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(p={}, d={}): coverage {:.2} %, generator {:.2} mm² ({:.1} % of chip)",
            self.prefix_len,
            self.det_len,
            self.coverage.coverage_pct(),
            self.generator_area_mm2,
            self.overhead_pct()
        )
    }
}

/// The end-to-end mixed BIST flow for one circuit under test.
///
/// For a chosen prefix length `p`: generate `p` pseudo-random patterns,
/// fault-simulate them, run the ATPG on the surviving faults, synthesize
/// the shared-register mixed generator for the resulting `(p, d)` pair,
/// verify it by replay, and report coverage plus silicon cost.
///
/// # Example
///
/// ```
/// use bist_core::{MixedScheme, MixedSchemeConfig};
///
/// let c17 = bist_netlist::iscas85::c17();
/// let scheme = MixedScheme::new(&c17, MixedSchemeConfig::default());
/// let s = scheme.solve(10)?;
/// assert_eq!(s.prefix_len, 10);
/// assert!(s.generator.verify());
/// # Ok::<(), bist_core::MixedSchemeError>(())
/// ```
#[derive(Debug)]
pub struct MixedScheme<'c> {
    circuit: &'c Circuit,
    config: MixedSchemeConfig,
}

impl<'c> MixedScheme<'c> {
    /// Creates the flow for `circuit`.
    pub fn new(circuit: &'c Circuit, config: MixedSchemeConfig) -> Self {
        MixedScheme { circuit, config }
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The flow configuration.
    pub fn config(&self) -> &MixedSchemeConfig {
        &self.config
    }

    /// Nominal silicon area of the circuit under test, mm².
    pub fn chip_area_mm2(&self) -> f64 {
        self.config.area.circuit_area_mm2(self.circuit)
    }

    /// The first `count` pseudo-random patterns of the scheme.
    pub fn pseudo_random_patterns(&self, count: usize) -> Vec<Pattern> {
        let lfsr = Lfsr::fibonacci(self.config.poly, 1);
        ScanExpander::new(lfsr, self.circuit.inputs().len()).patterns(count)
    }

    /// Solves the mixed scheme for prefix length `p`.
    ///
    /// `p = 0` yields the pure deterministic extreme (maximal generator,
    /// shortest sequence).
    ///
    /// # Errors
    ///
    /// Returns [`MixedSchemeError`] when the generator cannot be built
    /// (e.g. the circuit needs no patterns at all — not reachable for real
    /// fault universes).
    pub fn solve(&self, p: usize) -> Result<MixedSolution, MixedSchemeError> {
        let faults = FaultList::mixed_model(self.circuit);
        let mut sim = FaultSim::new(self.circuit, faults.clone());
        let random = self.pseudo_random_patterns(p);
        sim.simulate(&random);
        let prefix_coverage = sim.report();

        // ATPG over the faults the prefix left open
        let open = sim.open_faults();
        let remaining: FaultList = open.iter().map(|(_, f)| *f).collect();
        let run = TestGenerator::new(self.circuit, remaining, self.config.atpg).run();

        // merge statuses back into the full universe
        let mut statuses = sim.statuses().to_vec();
        for ((orig_idx, _), status) in open.iter().zip(&run.statuses) {
            statuses[*orig_idx] = *status;
        }
        let coverage = CoverageReport::from_statuses(&statuses);

        let det = run.sequence();
        let generator = MixedGenerator::build(
            self.circuit.inputs().len(),
            self.config.poly,
            p,
            &det,
        )?;
        debug_assert!(generator.verify(), "mixed generator failed replay");

        Ok(MixedSolution {
            prefix_len: p,
            det_len: det.len(),
            coverage,
            prefix_coverage,
            generator_area_mm2: generator.area_mm2(&self.config.area),
            chip_area_mm2: self.chip_area_mm2(),
            generator,
        })
    }

    /// The pure pseudo-random extreme `(p, d = 0)`: coverage of the prefix
    /// alone and the bare LFSR generator cost.
    ///
    /// # Errors
    ///
    /// Returns [`MixedSchemeError`] if `p` is zero.
    pub fn pseudo_random_solution(&self, p: usize) -> Result<MixedSolution, MixedSchemeError> {
        let faults = FaultList::mixed_model(self.circuit);
        let mut sim = FaultSim::new(self.circuit, faults);
        let random = self.pseudo_random_patterns(p);
        sim.simulate(&random);
        let report = sim.report();
        let generator =
            MixedGenerator::build(self.circuit.inputs().len(), self.config.poly, p, &[])?;
        Ok(MixedSolution {
            prefix_len: p,
            det_len: 0,
            coverage: report,
            prefix_coverage: report,
            generator_area_mm2: generator.area_mm2(&self.config.area),
            chip_area_mm2: self.chip_area_mm2(),
            generator,
        })
    }

    /// Coverage-versus-length curve of the pure pseudo-random sequence —
    /// the paper's Figure 4. `checkpoints` must be increasing.
    pub fn random_coverage_curve(&self, checkpoints: &[usize]) -> CoverageCurve {
        let faults = FaultList::mixed_model(self.circuit);
        let mut sim = FaultSim::new(self.circuit, faults);
        let lfsr = Lfsr::fibonacci(self.config.poly, 1);
        let mut expander = ScanExpander::new(lfsr, self.circuit.inputs().len());
        let mut points = Vec::with_capacity(checkpoints.len());
        let mut done = 0usize;
        for &cp in checkpoints {
            assert!(cp >= done, "checkpoints must be increasing");
            if cp > done {
                let chunk = expander.patterns(cp - done);
                sim.simulate(&chunk);
                done = cp;
            }
            points.push((cp, sim.report().coverage_pct()));
        }
        CoverageCurve::new(points)
    }

    /// Marks redundancy over the full universe by running the ATPG with an
    /// empty prefix and returning the achievable ceiling (the paper's
    /// "96.7 %" for C3540).
    pub fn achievable_coverage_pct(&self) -> f64 {
        let faults = FaultList::mixed_model(self.circuit);
        let run = TestGenerator::new(self.circuit, faults, self.config.atpg).run();
        run.report.achievable_pct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_solution_reaches_full_coverage() {
        let c17 = bist_netlist::iscas85::c17();
        let scheme = MixedScheme::new(&c17, MixedSchemeConfig::default());
        for p in [0usize, 4, 16] {
            let s = scheme.solve(p).unwrap();
            assert_eq!(s.coverage.undetected, 0, "p={p}");
            assert_eq!(s.coverage.efficiency_pct(), 100.0, "p={p}");
            assert!(s.generator.verify(), "p={p}");
            assert_eq!(s.prefix_len, p);
        }
    }

    #[test]
    fn longer_prefix_means_shorter_suffix() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let scheme = MixedScheme::new(&c, MixedSchemeConfig::default());
        let short = scheme.solve(0).unwrap();
        let long = scheme.solve(200).unwrap();
        assert!(
            long.det_len < short.det_len,
            "d(p=200)={} must undercut d(p=0)={}",
            long.det_len,
            short.det_len
        );
        // the longer prefix reaches at least the deterministic run's
        // coverage (it may additionally catch faults the ATPG aborted on)
        assert!(long.coverage.detected >= short.coverage.detected);
    }

    #[test]
    fn longer_prefix_means_cheaper_generator() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let scheme = MixedScheme::new(&c, MixedSchemeConfig::default());
        let full_det = scheme.solve(0).unwrap();
        let mixed = scheme.solve(200).unwrap();
        assert!(
            mixed.generator_area_mm2 < full_det.generator_area_mm2,
            "mixed {:.3} mm² must undercut pure deterministic {:.3} mm²",
            mixed.generator_area_mm2,
            full_det.generator_area_mm2
        );
    }

    #[test]
    fn random_curve_is_monotone_and_saturating() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let scheme = MixedScheme::new(&c, MixedSchemeConfig::default());
        let curve = scheme.random_coverage_curve(&[0, 25, 50, 100, 200]);
        assert!(curve.is_monotone());
        assert_eq!(curve.points()[0].1, 0.0);
        assert!(curve.final_coverage().unwrap() > 50.0);
    }

    #[test]
    fn pseudo_random_extreme() {
        let c17 = bist_netlist::iscas85::c17();
        let scheme = MixedScheme::new(&c17, MixedSchemeConfig::default());
        let s = scheme.pseudo_random_solution(64).unwrap();
        assert_eq!(s.det_len, 0);
        assert!(s.coverage.coverage_pct() > 80.0);
        assert!(s.generator_area_mm2 < 0.3, "a bare LFSR is cheap");
    }
}
