//! The historical one-shot flow, now a thin shim over
//! [`BistSession`](crate::BistSession).

use bist_faultsim::CoverageCurve;
use bist_logicsim::Pattern;
use bist_netlist::Circuit;

use crate::session::{BistSession, MixedSchemeConfig, MixedSchemeError, MixedSolution};

/// The end-to-end mixed BIST flow for one circuit under test — one-shot
/// form.
///
/// Every call rebuilds the fault universe and re-grades the whole
/// pseudo-random prefix from scratch; [`BistSession`] does the same work
/// incrementally and caches deterministic top-ups, which is why this
/// type is deprecated. It remains for one release as a drop-in shim:
/// results are bit-identical to the session's.
///
/// # Example
///
/// ```
/// # #![allow(deprecated)]
/// use bist_core::{MixedScheme, MixedSchemeConfig};
///
/// let c17 = bist_netlist::iscas85::c17();
/// let scheme = MixedScheme::new(&c17, MixedSchemeConfig::default());
/// let s = scheme.solve(10)?;
/// assert_eq!(s.prefix_len, 10);
/// assert!(s.generator.verify());
/// # Ok::<(), bist_core::MixedSchemeError>(())
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use BistSession: it builds the fault universe once, advances fault \
            simulation incrementally across prefix checkpoints and caches ATPG \
            top-ups per open-fault frontier"
)]
#[derive(Debug)]
pub struct MixedScheme<'c> {
    circuit: &'c Circuit,
    config: MixedSchemeConfig,
}

#[allow(deprecated)]
impl<'c> MixedScheme<'c> {
    /// Creates the flow for `circuit`.
    pub fn new(circuit: &'c Circuit, config: MixedSchemeConfig) -> Self {
        MixedScheme { circuit, config }
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The flow configuration.
    pub fn config(&self) -> &MixedSchemeConfig {
        &self.config
    }

    fn session(&self) -> BistSession<'c> {
        BistSession::new(self.circuit, self.config.clone())
    }

    /// Nominal silicon area of the circuit under test, mm².
    pub fn chip_area_mm2(&self) -> f64 {
        self.session().chip_area_mm2()
    }

    /// The first `count` pseudo-random patterns of the scheme.
    pub fn pseudo_random_patterns(&self, count: usize) -> Vec<Pattern> {
        self.session().pseudo_random_patterns(count)
    }

    /// Solves the mixed scheme for prefix length `p` — one-shot: a fresh
    /// [`BistSession`] per call.
    ///
    /// # Errors
    ///
    /// Returns [`MixedSchemeError`] when the generator cannot be built.
    pub fn solve(&self, p: usize) -> Result<MixedSolution, MixedSchemeError> {
        self.session().solve_at(p)
    }

    /// The pure pseudo-random extreme `(p, d = 0)`.
    ///
    /// # Errors
    ///
    /// Returns [`MixedSchemeError`] if `p` is zero.
    pub fn pseudo_random_solution(&self, p: usize) -> Result<MixedSolution, MixedSchemeError> {
        self.session().pseudo_random_solution(p)
    }

    /// Coverage-versus-length curve of the pure pseudo-random sequence —
    /// the paper's Figure 4. `checkpoints` must be increasing.
    pub fn random_coverage_curve(&self, checkpoints: &[usize]) -> CoverageCurve {
        assert!(
            checkpoints.windows(2).all(|w| w[0] <= w[1]),
            "checkpoints must be increasing"
        );
        self.session().random_coverage_curve(checkpoints)
    }

    /// Marks redundancy over the full universe by running the ATPG with an
    /// empty prefix and returning the achievable ceiling.
    pub fn achievable_coverage_pct(&self) -> f64 {
        self.session().achievable_coverage_pct()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn c17_solution_reaches_full_coverage() {
        let c17 = bist_netlist::iscas85::c17();
        let scheme = MixedScheme::new(&c17, MixedSchemeConfig::default());
        for p in [0usize, 4, 16] {
            let s = scheme.solve(p).unwrap();
            assert_eq!(s.coverage.undetected, 0, "p={p}");
            assert_eq!(s.coverage.efficiency_pct(), 100.0, "p={p}");
            assert!(s.generator.verify(), "p={p}");
            assert_eq!(s.prefix_len, p);
        }
    }

    #[test]
    fn longer_prefix_means_shorter_suffix() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let scheme = MixedScheme::new(&c, MixedSchemeConfig::default());
        let short = scheme.solve(0).unwrap();
        let long = scheme.solve(200).unwrap();
        assert!(
            long.det_len < short.det_len,
            "d(p=200)={} must undercut d(p=0)={}",
            long.det_len,
            short.det_len
        );
        // the longer prefix reaches at least the deterministic run's
        // coverage (it may additionally catch faults the ATPG aborted on)
        assert!(long.coverage.detected >= short.coverage.detected);
    }

    #[test]
    fn longer_prefix_means_cheaper_generator() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let scheme = MixedScheme::new(&c, MixedSchemeConfig::default());
        let full_det = scheme.solve(0).unwrap();
        let mixed = scheme.solve(200).unwrap();
        assert!(
            mixed.generator_area_mm2 < full_det.generator_area_mm2,
            "mixed {:.3} mm² must undercut pure deterministic {:.3} mm²",
            mixed.generator_area_mm2,
            full_det.generator_area_mm2
        );
    }

    #[test]
    fn random_curve_is_monotone_and_saturating() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let scheme = MixedScheme::new(&c, MixedSchemeConfig::default());
        let curve = scheme.random_coverage_curve(&[0, 25, 50, 100, 200]);
        assert!(curve.is_monotone());
        assert_eq!(curve.points()[0].1, 0.0);
        assert!(curve.final_coverage().unwrap() > 50.0);
    }

    #[test]
    fn pseudo_random_extreme() {
        let c17 = bist_netlist::iscas85::c17();
        let scheme = MixedScheme::new(&c17, MixedSchemeConfig::default());
        let s = scheme.pseudo_random_solution(64).unwrap();
        assert_eq!(s.det_len, 0);
        assert!(s.coverage.coverage_pct() > 80.0);
        assert!(s.generator_area_mm2 < 0.3, "a bare LFSR is cheap");
    }
}
