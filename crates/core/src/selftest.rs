use bist_fault::Fault;
use bist_faultsim::serial;
use bist_lfsr::{Misr, Polynomial};
use bist_logicsim::{eval_pattern, Pattern};
use bist_netlist::Circuit;

/// Result of one simulated self-test session (the paper's Figure 1 loop:
/// generator → CUT → output response analyzer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BistRun {
    /// Final MISR signature.
    pub signature: u64,
    /// Number of test patterns applied.
    pub patterns_applied: usize,
}

impl BistRun {
    /// The PASS/FAIL verdict against a golden signature.
    pub fn passes(&self, golden: u64) -> bool {
        self.signature == golden
    }
}

/// Computes the golden (fault-free) signature: every pattern is applied
/// to the CUT and the response vector compacted into a MISR on
/// `misr_poly`.
///
/// # Example
///
/// ```
/// use bist_core::selftest::golden_signature;
/// use bist_core::prelude::*;
///
/// let c17 = iscas85::c17();
/// let patterns = pseudo_random_patterns(paper_poly(), 5, 20);
/// let run = golden_signature(&c17, &patterns, paper_poly());
/// assert_eq!(run.patterns_applied, 20);
/// ```
pub fn golden_signature(cut: &Circuit, patterns: &[Pattern], misr_poly: Polynomial) -> BistRun {
    let mut misr = Misr::new(misr_poly);
    for p in patterns {
        let response = Pattern::from_bits(&eval_pattern(cut, p));
        misr.absorb(&response);
    }
    BistRun {
        signature: misr.signature(),
        patterns_applied: patterns.len(),
    }
}

/// Computes the signature of a *faulty* machine: the given fault is
/// injected (with the correct two-pattern memory semantics for stuck-open
/// faults) while the same sequence is applied.
pub fn faulty_signature(
    cut: &Circuit,
    patterns: &[Pattern],
    fault: Fault,
    misr_poly: Polynomial,
) -> BistRun {
    let mut misr = Misr::new(misr_poly);
    let mut prev: Option<&Pattern> = None;
    for p in patterns {
        let values = serial::faulty_eval(cut, fault, prev, p)
            .unwrap_or_else(|| bist_logicsim::naive_eval(cut, &p.to_bits()));
        let response = Pattern::from_fn(cut.outputs().len(), |o| values[cut.outputs()[o].index()]);
        misr.absorb(&response);
        prev = Some(p);
    }
    BistRun {
        signature: misr.signature(),
        patterns_applied: patterns.len(),
    }
}

/// Samples `sample` faults from the universe, runs the full self-test loop
/// for each, and reports how many produce a failing signature. Detected
/// faults can still alias in the MISR (probability ≈ `2^-k`), so the rate
/// is bounded by, and normally within a hair of, the sequence's fault
/// coverage.
pub fn fail_rate(
    cut: &Circuit,
    patterns: &[Pattern],
    faults: &[Fault],
    misr_poly: Polynomial,
    sample: usize,
) -> f64 {
    let golden = golden_signature(cut, patterns, misr_poly).signature;
    let step = (faults.len() / sample.max(1)).max(1);
    let sampled: Vec<Fault> = faults.iter().copied().step_by(step).collect();
    if sampled.is_empty() {
        return 0.0;
    }
    let failing = sampled
        .iter()
        .filter(|&&f| faulty_signature(cut, patterns, f, misr_poly).signature != golden)
        .count();
    failing as f64 / sampled.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_fault::FaultList;
    use bist_lfsr::{paper_poly, pseudo_random_patterns};
    use bist_netlist::iscas85;

    #[test]
    fn golden_signature_is_deterministic() {
        let c17 = iscas85::c17();
        let patterns = pseudo_random_patterns(paper_poly(), 5, 30);
        let a = golden_signature(&c17, &patterns, paper_poly());
        let b = golden_signature(&c17, &patterns, paper_poly());
        assert_eq!(a, b);
    }

    #[test]
    fn injected_fault_fails_the_signature() {
        let c17 = iscas85::c17();
        // an exhaustive-ish sequence detects everything; signatures differ
        let patterns = pseudo_random_patterns(paper_poly(), 5, 64);
        let golden = golden_signature(&c17, &patterns, paper_poly());
        let faults = FaultList::stuck_at_collapsed(&c17);
        let mut failing = 0;
        for &f in faults.iter() {
            let run = faulty_signature(&c17, &patterns, f, paper_poly());
            if !run.passes(golden.signature) {
                failing += 1;
            }
        }
        // all 22 collapsed faults are detected by 64 patterns and a 16-bit
        // MISR makes aliasing (p = 2^-16 per fault) vanishingly unlikely
        assert_eq!(failing, faults.len());
    }

    #[test]
    fn fail_rate_tracks_coverage() {
        let c17 = iscas85::c17();
        let patterns = pseudo_random_patterns(paper_poly(), 5, 64);
        let faults = FaultList::mixed_model(&c17);
        let rate = fail_rate(&c17, &patterns, faults.faults(), paper_poly(), 40);
        assert!(
            rate > 0.9,
            "self-test should flag nearly all faults: {rate}"
        );
    }

    #[test]
    fn undetected_fault_passes() {
        // a sequence too short to detect anything interesting
        let c17 = iscas85::c17();
        let patterns = vec![Pattern::zeros(5)];
        let golden = golden_signature(&c17, &patterns, paper_poly());
        // G22 stuck-at-0: all-zero inputs drive G22 to 0 anyway
        let g22 = c17.find("G22").expect("c17 output G22");
        let run = faulty_signature(
            &c17,
            &patterns,
            Fault::StuckAt {
                site: g22,
                pin: None,
                value: false,
            },
            paper_poly(),
        );
        assert!(run.passes(golden.signature));
    }
}
