//! The incremental mixed-BIST pipeline.
//!
//! [`BistSession`] replaces the historical one-shot per-point flow:
//! instead of rebuilding the fault universe and re-grading the whole
//! pseudo-random prefix for every requested `p`, a session computes the
//! fault list **once**, advances one fault simulator **incrementally**
//! across monotone prefix checkpoints (snapshotting the status vector at
//! every checkpoint it passes), and caches ATPG results **per open-fault
//! frontier** — so sweeping `n` prefix lengths fault-simulates every
//! pseudo-random pattern at most once and never repeats a deterministic
//! top-up for an already-seen frontier.
//!
//! Grading itself runs over collapsed-class representatives only (see
//! [`CollapseMode`]): the session attaches a `CollapsedUniverse` once
//! and serves full-universe questions by projection, while every
//! committed result stays bit-identical to the uncollapsed flow.

use std::cmp::Ordering;
// determinism-vetted: the HashMap is the frontier→top-up cache, keyed
// lookup only, never iterated (sweep order comes from BTreeMap)
#[allow(clippy::disallowed_types)]
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;

use bist_atpg::{AtpgOptions, AtpgRun, CubeCache, TestGenerator};
use bist_fault::{CollapsedUniverse, FaultList, FaultStatus};
use bist_faultsim::{CoverageCurve, CoverageReport, FaultSim};
use bist_lfsr::{Lfsr, Polynomial, ScanExpander};
use bist_logicsim::Pattern;
use bist_netlist::Circuit;
use bist_par::Pool;
use bist_synth::AreaModel;

use crate::mixed::{BuildMixedError, MixedGenerator};

/// Configuration of the mixed test scheme flow.
#[derive(Debug, Clone)]
pub struct MixedSchemeConfig {
    /// LFSR feedback polynomial for the pseudo-random phase (default: the
    /// paper's degree-16 polynomial, typo corrected — see `bist-lfsr`).
    pub poly: Polynomial,
    /// ATPG options for the deterministic top-up.
    pub atpg: AtpgOptions,
    /// Area model used for all silicon cost figures.
    pub area: AreaModel,
    /// Pool width for fault simulation and ATPG batching (`0` =
    /// automatic: `BIST_THREADS` or the machine width; `1` = the
    /// historical serial engines). Every result is bit-identical at every
    /// width — this knob moves wall-clock only.
    pub threads: usize,
}

impl Default for MixedSchemeConfig {
    fn default() -> Self {
        MixedSchemeConfig {
            poly: bist_lfsr::paper_poly(),
            atpg: AtpgOptions::default(),
            area: AreaModel::es2_1um(),
            threads: 0,
        }
    }
}

/// Which stuck-at universe a [`BistSession`]'s PPSFP hot loop grades.
///
/// Between [`CollapseMode::InFlow`] and [`CollapseMode::Off`] every
/// committed result — each `(p, d)` point, coverage report, work
/// counter, digest, cache entry and wire byte — is **bit-identical**;
/// like [`MixedSchemeConfig::threads`] the default mode moves
/// wall-clock only. The knob therefore lives on the session, not the
/// config, and never participates in job digests.
/// [`CollapseMode::FullUniverse`] is different in kind: it commits the
/// pre-collapse counterfactual's own (equally valid) points — its ATPG
/// visits the uncollapsed frontier in a different order — and is tied
/// to the default mode by projected-status identity instead
/// ([`BistSession::full_universe_statuses_at`]). Run it cache-less:
/// since the knob is not in digests, its results would alias the
/// default mode's cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollapseMode {
    /// The default: the session builds a [`CollapsedUniverse`] once and
    /// grades collapsed-class representatives only. The committed mixed
    /// universe *is* the collapsed one, so reports are untouched; the
    /// handful of self-representing extras (fanout branches behind
    /// output pads) are graded alongside it so the session can answer
    /// full-universe questions exactly by projection
    /// ([`BistSession::full_universe_prefix_report`]).
    #[default]
    InFlow,
    /// No [`CollapsedUniverse`] is built and the projection APIs are
    /// unavailable — the exact historical session. Escape hatch:
    /// `BIST_COLLAPSE=off`.
    Off,
    /// Grade the **full** stuck-at universe (plus stuck-open) directly,
    /// frontier and reports included — the pre-collapse counterfactual
    /// that the `collapsed_session` blocks of `bench_sweep` /
    /// `bench_collapse` time the default mode against.
    /// `BIST_COLLAPSE=full`.
    FullUniverse,
}

impl CollapseMode {
    /// The session default, resolved from the `BIST_COLLAPSE`
    /// environment variable: `off`, `full`, anything else or unset ⇒
    /// [`CollapseMode::InFlow`].
    pub fn from_env() -> Self {
        match std::env::var("BIST_COLLAPSE").as_deref() {
            Ok("off") => CollapseMode::Off,
            Ok("full") => CollapseMode::FullUniverse,
            _ => CollapseMode::InFlow,
        }
    }
}

/// Error returned by the mixed-scheme flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedSchemeError {
    /// Building the hardware generator failed.
    Build(BuildMixedError),
}

impl fmt::Display for MixedSchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixedSchemeError::Build(e) => write!(f, "generator construction failed: {e}"),
        }
    }
}

impl std::error::Error for MixedSchemeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MixedSchemeError::Build(e) => Some(e),
        }
    }
}

impl From<BuildMixedError> for MixedSchemeError {
    fn from(e: BuildMixedError) -> Self {
        MixedSchemeError::Build(e)
    }
}

/// One solved point of the mixed trade-off: the tuple `(p, d)` with its
/// coverage and silicon cost — one row of the paper's Table 2.
#[derive(Debug, Clone)]
pub struct MixedSolution {
    /// Pseudo-random prefix length `p`.
    pub prefix_len: usize,
    /// Deterministic suffix length `d`.
    pub det_len: usize,
    /// Coverage over the full mixed fault universe.
    pub coverage: CoverageReport,
    /// Coverage reached by the pseudo-random prefix alone.
    pub prefix_coverage: CoverageReport,
    /// Silicon area of the mixed hardware generator, mm².
    pub generator_area_mm2: f64,
    /// Nominal silicon area of the circuit under test, mm².
    pub chip_area_mm2: f64,
    /// The verified hardware generator.
    pub generator: MixedGenerator,
}

impl MixedSolution {
    /// Total mixed sequence length `p + d`.
    pub fn total_len(&self) -> usize {
        self.prefix_len + self.det_len
    }

    /// Generator area as a percentage of the nominal chip area — the
    /// paper's "% increase vs. chip size".
    pub fn overhead_pct(&self) -> f64 {
        100.0 * self.generator_area_mm2 / self.chip_area_mm2
    }
}

impl fmt::Display for MixedSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(p={}, d={}): coverage {:.2} %, generator {:.2} mm² ({:.1} % of chip)",
            self.prefix_len,
            self.det_len,
            self.coverage.coverage_pct(),
            self.generator_area_mm2,
            self.overhead_pct()
        )
    }
}

/// Work counters of a [`BistSession`] — what the incremental pipeline
/// actually did, for perf tracking and the `BENCH_sweep` experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Pseudo-random patterns fault-simulated by the shared incremental
    /// simulator (each pattern counted once, however many checkpoints
    /// consume it).
    pub patterns_simulated: usize,
    /// Pseudo-random patterns graded by fallback simulators for
    /// non-monotone requests below the incremental front.
    pub patterns_resimulated: usize,
    /// Deterministic top-ups actually generated.
    pub atpg_runs: usize,
    /// Deterministic top-ups answered whole from the frontier cache
    /// (identical open-fault frontiers, typically past saturation).
    pub atpg_cache_hits: usize,
    /// Individual PODEM searches answered from the per-fault cube cache
    /// inside generated top-ups — the cross-checkpoint reuse that makes a
    /// sweep's later top-ups cheap even when frontiers differ.
    pub podem_cache_hits: usize,
    /// Checkpoint snapshots actually retained.
    pub snapshots_taken: usize,
    /// Checkpoint snapshots skipped by the adaptive cadence (cheaper to
    /// re-simulate the short gap than to copy the state).
    pub snapshots_skipped: usize,
}

/// The incremental mixed-BIST flow for one circuit under test.
///
/// A session owns the circuit's fault universe (built once), a fault
/// simulator advanced monotonically along the pseudo-random sequence
/// (with a status snapshot at every solved checkpoint), and a cache of
/// deterministic top-ups keyed by the open-fault frontier. On top of
/// that substrate it answers:
///
/// * [`BistSession::solve_at`] — the full mixed solution for one prefix
///   length `p` (fault simulation → ATPG top-up → generator synthesis →
///   replay verification);
/// * [`BistSession::sweep`] — many prefix lengths at once, sharing all
///   intermediate state: each pseudo-random pattern is simulated at most
///   once across the whole sweep;
/// * [`BistSession::random_coverage_curve`],
///   [`BistSession::pseudo_random_solution`],
///   [`BistSession::achievable_coverage_pct`] — the paper's auxiliary
///   experiments, drawing on the same shared state.
///
/// Results are bit-identical to solving each point on a fresh session —
/// the regression tests enforce it — the incremental state is purely a
/// performance improvement.
///
/// # Example
///
/// ```
/// use bist_core::{BistSession, MixedSchemeConfig};
///
/// let c17 = bist_netlist::iscas85::c17();
/// let mut session = BistSession::new(&c17, MixedSchemeConfig::default());
/// let summary = session.sweep(&[0, 4, 8, 16])?;
/// assert_eq!(summary.solutions().len(), 4);
/// // the fault universe was built once and each of the 16 prefix
/// // patterns was fault-simulated exactly once
/// assert_eq!(session.stats().patterns_simulated, 16);
/// # Ok::<(), bist_core::MixedSchemeError>(())
/// ```
#[derive(Debug)]
pub struct BistSession<'c> {
    circuit: &'c Circuit,
    config: MixedSchemeConfig,
    /// `config.atpg` with the session-wide pool width folded in.
    atpg_options: AtpgOptions,
    /// The committed universe: every report boundary, ATPG frontier and
    /// cache key speaks this list, in every [`CollapseMode`].
    faults: FaultList,
    /// What the simulator actually grades: the committed universe plus,
    /// in [`CollapseMode::InFlow`], the self-representing extras needed
    /// to project full-universe answers. Its first `committed_len`
    /// entries are exactly `faults`.
    graded: FaultList,
    /// `faults.len()` — the prefix of every graded status vector that
    /// the committed results are read from.
    committed_len: usize,
    /// Length of the collapsed stuck-at block that `graded` shares with
    /// `universe.representatives()` (0 when no universe is attached).
    collapsed_len: usize,
    mode: CollapseMode,
    /// Attached in [`CollapseMode::InFlow`] only.
    universe: Option<CollapsedUniverse>,
    /// The shared simulator, advanced monotonically; `simulated` prefix
    /// patterns have been consumed.
    sim: FaultSim<'c>,
    expander: ScanExpander,
    simulated: usize,
    /// Retained checkpoints: fault statuses and the stuck-open carry after
    /// exactly `p` prefix patterns, for checkpoints the adaptive cadence
    /// kept (see `statuses_at`).
    snapshots: BTreeMap<usize, Snapshot>,
    /// Deterministic top-ups keyed by the open-fault frontier (original
    /// universe indices, ascending).
    #[allow(clippy::disallowed_types)]
    atpg_cache: HashMap<Vec<usize>, Rc<AtpgRun>>,
    /// Per-fault search results shared by every top-up the session
    /// generates — adjacent checkpoints re-target mostly the same hard
    /// faults, so later top-ups are answered largely from memory.
    cube_cache: CubeCache,
    stats: SessionStats,
}

/// A retained checkpoint of the incremental simulator: everything needed
/// to serve `statuses_at(p)` directly or to resume grading from `p` —
/// including the pattern source positioned at `p`, so a resume generates
/// only the gap's patterns, never the whole prefix.
#[derive(Debug, Clone)]
struct Snapshot {
    statuses: Rc<Vec<FaultStatus>>,
    carry: Vec<bool>,
    expander: ScanExpander,
}

impl<'c> BistSession<'c> {
    /// Opens a session for `circuit`: builds the mixed fault universe
    /// and its [`CollapsedUniverse`] (each once) and seeds the
    /// incremental simulator. The collapse mode is
    /// [`CollapseMode::from_env`] — see [`BistSession::with_mode`] to
    /// pin one explicitly.
    pub fn new(circuit: &'c Circuit, config: MixedSchemeConfig) -> Self {
        Self::with_mode(circuit, config, CollapseMode::from_env())
    }

    /// Opens a session graded under an explicit [`CollapseMode`].
    /// Committed results are bit-identical in every mode.
    #[allow(clippy::disallowed_types)] // constructs the vetted cache map
    pub fn with_mode(circuit: &'c Circuit, config: MixedSchemeConfig, mode: CollapseMode) -> Self {
        let (faults, graded, universe, collapsed_len) = match mode {
            CollapseMode::Off => {
                let mixed = FaultList::mixed_model(circuit);
                (mixed.clone(), mixed, None, 0)
            }
            CollapseMode::InFlow => {
                let universe = CollapsedUniverse::build(circuit);
                let mixed = FaultList::mixed_model(circuit);
                // the mixed list's stuck-at block is the collapsed list,
                // which is also the representative list's stable prefix;
                // the extras past it are the self-representing branch
                // faults only the full universe needs
                let collapsed_len = mixed.num_stuck_at();
                let mut graded = mixed.clone();
                graded.extend(
                    universe
                        .representatives()
                        .iter()
                        .skip(collapsed_len)
                        .copied(),
                );
                debug_assert_eq!(
                    &universe.representatives().faults()[..collapsed_len],
                    &graded.faults()[..collapsed_len],
                    "collapsed stuck-at block must prefix the representatives"
                );
                (mixed, graded, Some(universe), collapsed_len)
            }
            CollapseMode::FullUniverse => {
                let mut full = FaultList::stuck_at_full(circuit);
                let collapsed_len = full.len();
                full.extend(FaultList::stuck_open(circuit).iter().copied());
                (full.clone(), full, None, collapsed_len)
            }
        };
        let committed_len = faults.len();
        let sim = FaultSim::new(circuit, graded.clone()).with_threads(config.threads);
        let expander = ScanExpander::new(Lfsr::fibonacci(config.poly, 1), circuit.inputs().len());
        let atpg_options = AtpgOptions {
            threads: if config.atpg.threads == 0 {
                config.threads
            } else {
                config.atpg.threads
            },
            ..config.atpg
        };
        BistSession {
            circuit,
            config,
            atpg_options,
            faults,
            graded,
            committed_len,
            collapsed_len,
            mode,
            universe,
            sim,
            expander,
            simulated: 0,
            snapshots: BTreeMap::new(),
            atpg_cache: HashMap::new(),
            cube_cache: CubeCache::new(),
            stats: SessionStats::default(),
        }
    }

    /// Rebuilds the session under `mode`, discarding any incremental
    /// state already accumulated (a fresh-session builder, meant to be
    /// called right after [`BistSession::new`]).
    pub fn with_collapse(self, mode: CollapseMode) -> Self {
        Self::with_mode(self.circuit, self.config, mode)
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The flow configuration.
    pub fn config(&self) -> &MixedSchemeConfig {
        &self.config
    }

    /// The committed mixed fault universe: the list every report,
    /// frontier and cache key speaks, whatever the [`CollapseMode`].
    pub fn faults(&self) -> &FaultList {
        &self.faults
    }

    /// The session's [`CollapseMode`].
    pub fn collapse_mode(&self) -> CollapseMode {
        self.mode
    }

    /// The collapsed universe the session grades through — attached in
    /// [`CollapseMode::InFlow`] only.
    pub fn collapse(&self) -> Option<&CollapsedUniverse> {
        self.universe.as_ref()
    }

    /// Work counters: patterns simulated, ATPG runs and cache hits.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Nominal silicon area of the circuit under test, mm².
    pub fn chip_area_mm2(&self) -> f64 {
        self.config.area.circuit_area_mm2(self.circuit)
    }

    /// The first `count` pseudo-random patterns of the scheme (a fresh
    /// stream; does not advance the session).
    pub fn pseudo_random_patterns(&self, count: usize) -> Vec<Pattern> {
        let lfsr = Lfsr::fibonacci(self.config.poly, 1);
        ScanExpander::new(lfsr, self.circuit.inputs().len()).patterns(count)
    }

    /// True when retaining a checkpoint snapshot at `p` is worth its copy
    /// cost: the cost of re-simulating the gap back from the nearest
    /// retained floor must exceed the cost of copying the status vector
    /// and the stuck-open carry. Both sides are counted in "elements
    /// touched", and the rule is a pure function of deterministic session
    /// state — never of timing or thread count.
    fn snapshot_pays_off(&self, p: usize, open_faults: usize) -> bool {
        let floor = self
            .snapshots
            .range(..=p)
            .next_back()
            .map(|(&q, _)| q)
            .unwrap_or(0);
        let gap = p - floor;
        // per-pattern grading cost: the good machine touches every node
        // once per 64-pattern block, and each live fault's cone walk is
        // charged a small constant of node visits
        let nodes = self.circuit.num_nodes();
        let per_pattern = 1 + (nodes + 8 * open_faults) / 64;
        let snapshot_cost = self.faults.len() + nodes;
        gap * per_pattern >= snapshot_cost
    }

    /// Fault statuses after exactly `p` prefix patterns. Requests at or
    /// beyond the incremental front advance the shared simulator (each
    /// pattern graded once); requests *below* the front resume a fallback
    /// simulator from the nearest retained snapshot, so they cost the gap
    /// — not the whole prefix. Checkpoints are snapshotted adaptively:
    /// only when the copy is cheaper than re-simulating the gap would be
    /// (`snapshot_pays_off`).
    fn statuses_at(&mut self, p: usize) -> Rc<Vec<FaultStatus>> {
        if let Some(snap) = self.snapshots.get(&p) {
            return Rc::clone(&snap.statuses);
        }
        let (statuses, carry, expander) = if p >= self.simulated {
            let chunk = self.expander.patterns(p - self.simulated);
            self.sim.simulate(&chunk);
            self.stats.patterns_simulated += chunk.len();
            self.simulated = p;
            (
                Rc::new(self.sim.statuses().to_vec()),
                self.sim.carry_bits().to_vec(),
                self.expander.clone(),
            )
        } else {
            // non-monotone request below the incremental front: resume a
            // fallback simulator from the nearest retained floor — paying
            // for the gap only, in generation as well as grading —
            // without disturbing the shared simulator
            let (floor, mut sim, mut expander) = match self.snapshots.range(..=p).next_back() {
                Some((&q, snap)) => (
                    q,
                    FaultSim::resume(
                        self.circuit,
                        self.graded.clone(),
                        &snap.statuses,
                        &snap.carry,
                        q as u32,
                    ),
                    snap.expander.clone(),
                ),
                None => (
                    0,
                    FaultSim::new(self.circuit, self.graded.clone()),
                    ScanExpander::new(
                        Lfsr::fibonacci(self.config.poly, 1),
                        self.circuit.inputs().len(),
                    ),
                ),
            };
            sim.set_threads(self.config.threads);
            let gap = expander.patterns(p - floor);
            sim.simulate(&gap);
            self.stats.patterns_resimulated += gap.len();
            (
                Rc::new(sim.statuses().to_vec()),
                sim.carry_bits().to_vec(),
                expander,
            )
        };
        // the cadence rule reads the committed universe only, so the
        // snapshot schedule (and the stats) are identical in every
        // collapse mode
        let open = statuses
            .iter()
            .take(self.committed_len)
            .filter(|s| s.is_open())
            .count();
        if self.snapshot_pays_off(p, open) {
            self.stats.snapshots_taken += 1;
            self.snapshots.insert(
                p,
                Snapshot {
                    statuses: Rc::clone(&statuses),
                    carry,
                    expander,
                },
            );
        } else {
            self.stats.snapshots_skipped += 1;
        }
        statuses
    }

    /// The deterministic top-up for `frontier` (ascending original-universe
    /// fault indices), answered from the cache when the same frontier was
    /// already solved; freshly generated top-ups still reuse every
    /// individual search the session has performed before (the per-fault
    /// cube cache).
    fn atpg_for(&mut self, frontier: &[usize]) -> Rc<AtpgRun> {
        if let Some(hit) = self.atpg_cache.get(frontier) {
            self.stats.atpg_cache_hits += 1;
            return Rc::clone(hit);
        }
        // frontier indices come from statuses_at over this same universe,
        // so they are always in range; the totalized lookup keeps this
        // production path panic-free regardless
        let remaining: FaultList = frontier
            .iter()
            .filter_map(|&i| self.faults.get(i).copied())
            .collect();
        let hits_before = self.cube_cache.hits();
        let run = Rc::new(
            TestGenerator::new(self.circuit, remaining, self.atpg_options)
                .run_with_cache(&mut self.cube_cache),
        );
        self.stats.atpg_runs += 1;
        self.stats.podem_cache_hits += self.cube_cache.hits() - hits_before;
        self.atpg_cache.insert(frontier.to_vec(), Rc::clone(&run));
        run
    }

    /// Solves the mixed scheme for prefix length `p`.
    ///
    /// `p = 0` yields the pure deterministic extreme (maximal generator,
    /// shortest sequence). Within one session, monotonically increasing
    /// requests reuse all prior fault simulation; equal open-fault
    /// frontiers reuse the deterministic top-up.
    ///
    /// # Errors
    ///
    /// Returns [`MixedSchemeError`] when the generator cannot be built
    /// (e.g. the circuit needs no patterns at all — not reachable for real
    /// fault universes).
    pub fn solve_at(&mut self, p: usize) -> Result<MixedSolution, MixedSchemeError> {
        let statuses = self.statuses_at(p);
        // every committed boundary reads the committed prefix of the
        // graded vector — the appended projection extras never enter
        // reports, frontiers or cache keys
        let committed = &statuses[..self.committed_len];
        let prefix_coverage = CoverageReport::from_statuses(committed);

        // ATPG over the faults the prefix left open
        let frontier: Vec<usize> = committed
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_open())
            .map(|(i, _)| i)
            .collect();
        let run = self.atpg_for(&frontier);

        // merge statuses back into the full universe
        let mut merged = committed.to_vec();
        for (&orig, &status) in frontier.iter().zip(&run.statuses) {
            merged[orig] = status;
        }
        let coverage = CoverageReport::from_statuses(&merged);

        let det = run.sequence();
        let generator =
            MixedGenerator::build(self.circuit.inputs().len(), self.config.poly, p, &det)?;
        debug_assert!(generator.verify(), "mixed generator failed replay");

        Ok(MixedSolution {
            prefix_len: p,
            det_len: det.len(),
            coverage,
            prefix_coverage,
            generator_area_mm2: generator.area_mm2(&self.config.area),
            chip_area_mm2: self.chip_area_mm2(),
            generator,
        })
    }

    /// Solves the scheme for every prefix length in `prefix_lengths`,
    /// sharing the session's incremental state across all points.
    ///
    /// Checkpoints are processed in ascending order internally (results
    /// come back in request order), so a sweep fault-simulates each
    /// pseudo-random pattern **at most once**, however the request list
    /// is arranged.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MixedSchemeError`] encountered.
    pub fn sweep(&mut self, prefix_lengths: &[usize]) -> Result<SweepSummary, MixedSchemeError> {
        let mut ascending: Vec<usize> = prefix_lengths.to_vec();
        ascending.sort_unstable();
        ascending.dedup();
        let mut solved: BTreeMap<usize, MixedSolution> = BTreeMap::new();
        for &p in &ascending {
            solved.insert(p, self.solve_at(p)?);
        }
        let solutions = prefix_lengths
            .iter()
            .map(|&p| match solved.get(&p) {
                Some(s) => Ok(s.clone()),
                // every request was inserted above, so this arm never
                // runs; answering it by solving keeps the path total
                None => self.solve_at(p),
            })
            .collect::<Result<_, _>>()?;
        Ok(SweepSummary { solutions })
    }

    /// Effective pool width of the session's engines.
    pub fn threads(&self) -> usize {
        self.sim.threads()
    }

    /// The pure pseudo-random extreme `(p, d = 0)`: coverage of the prefix
    /// alone and the bare LFSR generator cost.
    ///
    /// # Errors
    ///
    /// Returns [`MixedSchemeError`] if `p` is zero.
    pub fn pseudo_random_solution(&mut self, p: usize) -> Result<MixedSolution, MixedSchemeError> {
        let statuses = self.statuses_at(p);
        let report = CoverageReport::from_statuses(&statuses[..self.committed_len]);
        let generator =
            MixedGenerator::build(self.circuit.inputs().len(), self.config.poly, p, &[])?;
        Ok(MixedSolution {
            prefix_len: p,
            det_len: 0,
            coverage: report,
            prefix_coverage: report,
            generator_area_mm2: generator.area_mm2(&self.config.area),
            chip_area_mm2: self.chip_area_mm2(),
            generator,
        })
    }

    /// Coverage-versus-length curve of the pure pseudo-random sequence —
    /// the paper's Figure 4. Checkpoints may arrive in any order; the
    /// session snapshots make every point exact.
    pub fn random_coverage_curve(&mut self, checkpoints: &[usize]) -> CoverageCurve {
        let points = checkpoints
            .iter()
            .map(|&cp| {
                let statuses = self.statuses_at(cp);
                let report = CoverageReport::from_statuses(&statuses[..self.committed_len]);
                (cp, report.coverage_pct())
            })
            .collect();
        CoverageCurve::new(points)
    }

    /// Marks redundancy over the full universe by running the ATPG with an
    /// empty prefix and returning the achievable ceiling (the paper's
    /// "96.7 %" for C3540). Shares the `p = 0` frontier cache entry with
    /// [`BistSession::solve_at`].
    pub fn achievable_coverage_pct(&mut self) -> f64 {
        let frontier: Vec<usize> = (0..self.faults.len()).collect();
        self.atpg_for(&frontier).report.achievable_pct()
    }

    /// Fault statuses after exactly `p` prefix patterns, spoken in the
    /// **full uncollapsed universe**: `stuck_at_full` order followed by
    /// the stuck-open block. In [`CollapseMode::InFlow`] the stuck-at
    /// part is projected through the collapsed universe (each class
    /// member answers with its graded representative's status — the
    /// bit-identity `tests/collapse_identity.rs` proves); in
    /// [`CollapseMode::FullUniverse`] it is read straight off the
    /// simulator. Shares all incremental state with
    /// [`BistSession::solve_at`].
    ///
    /// # Panics
    ///
    /// Panics in [`CollapseMode::Off`], which grades the committed list
    /// only and has no universe to project into.
    pub fn full_universe_statuses_at(&mut self, p: usize) -> Vec<FaultStatus> {
        let committed_len = self.committed_len;
        let collapsed_len = self.collapsed_len;
        let statuses = self.statuses_at(p);
        match self.mode {
            CollapseMode::FullUniverse => statuses.to_vec(),
            CollapseMode::InFlow => {
                let universe = self.universe.as_ref().expect("InFlow attaches a universe");
                // representative r sits in the graded list either inside
                // the collapsed stuck-at block (same index) or among the
                // extras appended past the committed universe
                let per_rep: Vec<FaultStatus> = (0..universe.representatives().len())
                    .map(|r| {
                        let g = if r < collapsed_len {
                            r
                        } else {
                            committed_len + (r - collapsed_len)
                        };
                        statuses[g]
                    })
                    .collect();
                let mut full = universe.project(&per_rep);
                full.extend_from_slice(&statuses[collapsed_len..committed_len]);
                full
            }
            CollapseMode::Off => {
                panic!("full-universe projection is unavailable in CollapseMode::Off")
            }
        }
    }

    /// Coverage over the full uncollapsed universe after exactly `p`
    /// prefix patterns — [`BistSession::full_universe_statuses_at`]
    /// folded into a report.
    ///
    /// # Panics
    ///
    /// Panics in [`CollapseMode::Off`] (no universe to project into).
    pub fn full_universe_prefix_report(&mut self, p: usize) -> CoverageReport {
        CoverageReport::from_statuses(&self.full_universe_statuses_at(p))
    }
}

/// Sweeps the mixed trade-off over **many circuits at once**, one
/// independent [`BistSession`] per circuit, sharded across the pool
/// (`config.threads`, `0` = automatic). When more than one circuit rides
/// a parallel pool, each circuit's own engines run serially (one level of
/// parallelism, no oversubscription); a serial pool hands the full width
/// to every circuit in turn. Results are returned in circuit order and
/// are bit-identical to running each session by itself — the per-circuit
/// flows never interact.
///
/// # Errors
///
/// Propagates the first [`MixedSchemeError`] in circuit order.
pub fn sweep_circuits(
    circuits: &[Circuit],
    config: &MixedSchemeConfig,
    prefix_lengths: &[usize],
) -> Result<Vec<SweepSummary>, MixedSchemeError> {
    let pool = Pool::resolve(config.threads);
    let inner_threads = if pool.is_serial() || circuits.len() <= 1 {
        config.threads
    } else {
        1
    };
    pool.par_map(circuits, |circuit| {
        let mut per_circuit = config.clone();
        per_circuit.threads = inner_threads;
        let mut session = BistSession::new(circuit, per_circuit);
        session.sweep(prefix_lengths)
    })
    .into_iter()
    .collect()
}

/// The result of a trade-off sweep: one [`MixedSolution`] per requested
/// prefix length, with the paper's selection helpers.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    solutions: Vec<MixedSolution>,
}

impl SweepSummary {
    /// Assembles a summary from already-solved points, kept in the given
    /// (request) order. This is how drivers that solve point-by-point —
    /// emitting progress or checking cancellation between points — build
    /// the same summary [`BistSession::sweep`] returns.
    pub fn from_solutions(solutions: Vec<MixedSolution>) -> Self {
        SweepSummary { solutions }
    }

    /// All solved points, in request order.
    pub fn solutions(&self) -> &[MixedSolution] {
        &self.solutions
    }

    /// Cost-first comparison: generator area, then total sequence length,
    /// then prefix length — each ascending.
    fn by_area(a: &MixedSolution, b: &MixedSolution) -> Ordering {
        a.generator_area_mm2
            .total_cmp(&b.generator_area_mm2)
            .then_with(|| a.total_len().cmp(&b.total_len()))
            .then_with(|| a.prefix_len.cmp(&b.prefix_len))
    }

    /// Length-first comparison: total sequence length, then generator
    /// area, then prefix length — each ascending.
    fn by_length(a: &MixedSolution, b: &MixedSolution) -> Ordering {
        a.total_len()
            .cmp(&b.total_len())
            .then_with(|| a.generator_area_mm2.total_cmp(&b.generator_area_mm2))
            .then_with(|| a.prefix_len.cmp(&b.prefix_len))
    }

    /// The first minimum under `cmp`: full ties keep the earliest point in
    /// request order, so every selector is deterministic in the request
    /// list alone.
    fn select<'s>(
        solutions: impl Iterator<Item = &'s MixedSolution>,
        cmp: fn(&MixedSolution, &MixedSolution) -> Ordering,
    ) -> Option<&'s MixedSolution> {
        let mut best: Option<&MixedSolution> = None;
        for s in solutions {
            match best {
                Some(b) if cmp(s, b) != Ordering::Less => {}
                _ => best = Some(s),
            }
        }
        best
    }

    /// The cheapest solution (by generator area).
    ///
    /// Ties break deterministically: smaller total length `p + d` first,
    /// then smaller prefix `p`, then earliest in request order.
    pub fn cheapest(&self) -> Option<&MixedSolution> {
        Self::select(self.solutions.iter(), Self::by_area)
    }

    /// The shortest total sequence.
    ///
    /// Ties break deterministically: cheaper generator first, then
    /// smaller prefix `p`, then earliest in request order.
    pub fn shortest(&self) -> Option<&MixedSolution> {
        Self::select(self.solutions.iter(), Self::by_length)
    }

    /// The cheapest solution whose total sequence length stays within
    /// `max_len` — the paper's "careful balance" selection rule.
    ///
    /// Ties break exactly as in [`SweepSummary::cheapest`]: equal areas
    /// prefer the shorter total sequence, then the smaller prefix, then
    /// the earliest point in request order.
    pub fn cheapest_within_length(&self, max_len: usize) -> Option<&MixedSolution> {
        Self::select(
            self.solutions.iter().filter(|s| s.total_len() <= max_len),
            Self::by_area,
        )
    }

    /// The shortest solution with overhead at most `max_overhead_pct` of
    /// the nominal chip area.
    ///
    /// Ties break exactly as in [`SweepSummary::shortest`]: equal total
    /// lengths prefer the cheaper generator, then the smaller prefix,
    /// then the earliest point in request order.
    pub fn within_overhead(&self, max_overhead_pct: f64) -> Option<&MixedSolution> {
        Self::select(
            self.solutions
                .iter()
                .filter(|s| s.overhead_pct() <= max_overhead_pct),
            Self::by_length,
        )
    }
}

impl fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>8} {:>8} {:>8} {:>12} {:>10}",
            "p", "d", "p+d", "cost (mm2)", "% of chip"
        )?;
        for s in &self.solutions {
            writeln!(
                f,
                "{:>8} {:>8} {:>8} {:>12.3} {:>10.1}",
                s.prefix_len,
                s.det_len,
                s.total_len(),
                s.generator_area_mm2,
                s.overhead_pct()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_matches_one_shot_solves_bit_for_bit() {
        let c = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
        let mut session = BistSession::new(&c, MixedSchemeConfig::default());
        for p in [0usize, 50, 200] {
            let incremental = session.solve_at(p).expect("incremental solve");
            // the historical one-shot behaviour: a fresh session per point
            let one_shot = BistSession::new(&c, MixedSchemeConfig::default())
                .solve_at(p)
                .expect("one-shot solve");
            assert_eq!(incremental.prefix_len, one_shot.prefix_len);
            assert_eq!(incremental.det_len, one_shot.det_len);
            assert_eq!(
                incremental.generator.deterministic(),
                one_shot.generator.deterministic(),
                "p={p}: deterministic suffixes must be bit-identical"
            );
            assert_eq!(incremental.coverage, one_shot.coverage, "p={p}");
            assert_eq!(
                incremental.prefix_coverage, one_shot.prefix_coverage,
                "p={p}"
            );
            assert_eq!(
                incremental.generator_area_mm2, one_shot.generator_area_mm2,
                "p={p}"
            );
        }
    }

    #[test]
    fn monotone_sweep_simulates_each_pattern_once() {
        let c = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
        let mut session = BistSession::new(&c, MixedSchemeConfig::default());
        session.sweep(&[0, 25, 100, 250]).expect("sweep succeeds");
        let stats = session.stats();
        assert_eq!(stats.patterns_simulated, 250, "single incremental pass");
        assert_eq!(stats.patterns_resimulated, 0);
        // re-solving any earlier point is free
        session.solve_at(100).expect("solve succeeds");
        assert_eq!(session.stats().patterns_simulated, 250);
    }

    #[test]
    fn unordered_sweep_still_simulates_each_pattern_once() {
        let c = bist_netlist::iscas85::c17();
        let mut session = BistSession::new(&c, MixedSchemeConfig::default());
        let summary = session.sweep(&[16, 0, 8]).expect("sweep succeeds");
        assert_eq!(session.stats().patterns_simulated, 16);
        assert_eq!(session.stats().patterns_resimulated, 0);
        // request order preserved in the summary
        let ps: Vec<usize> = summary.solutions().iter().map(|s| s.prefix_len).collect();
        assert_eq!(ps, vec![16, 0, 8]);
    }

    #[test]
    fn saturated_frontiers_hit_the_atpg_cache() {
        // far past saturation the open frontier stops changing, so the
        // deterministic top-up is answered from the cache
        let c = bist_netlist::iscas85::c17();
        let mut session = BistSession::new(&c, MixedSchemeConfig::default());
        session.sweep(&[64, 96, 128]).expect("sweep succeeds");
        let stats = session.stats();
        assert!(
            stats.atpg_cache_hits >= 1,
            "saturated frontiers must reuse the top-up: {stats:?}"
        );
    }

    #[test]
    fn multi_point_sweep_reuses_podem_searches() {
        // the p=0 top-up searches every fault; later checkpoints re-target
        // a subset of the same hard faults, so their top-ups must be
        // answered largely from the per-fault cube cache
        let c = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
        let mut session = BistSession::new(&c, MixedSchemeConfig::default());
        session.sweep(&[0, 50, 150]).expect("sweep succeeds");
        let stats = session.stats();
        assert_eq!(stats.atpg_runs, 3);
        assert!(
            stats.podem_cache_hits > 0,
            "adjacent frontiers must reuse searches: {stats:?}"
        );
    }

    #[test]
    fn sweep_circuits_matches_individual_sessions() {
        let circuits = vec![
            bist_netlist::iscas85::c17(),
            bist_netlist::iscas85::circuit("c432").expect("known benchmark"),
        ];
        let prefixes = [0usize, 16, 64];
        let summaries = sweep_circuits(&circuits, &MixedSchemeConfig::default(), &prefixes)
            .expect("sweep succeeds");
        assert_eq!(summaries.len(), 2);
        for (circuit, summary) in circuits.iter().zip(&summaries) {
            let mut solo = BistSession::new(circuit, MixedSchemeConfig::default());
            let expect = solo.sweep(&prefixes).expect("sweep succeeds");
            for (a, b) in summary.solutions().iter().zip(expect.solutions()) {
                assert_eq!(a.det_len, b.det_len, "{}", circuit.name());
                assert_eq!(
                    a.generator.deterministic(),
                    b.generator.deterministic(),
                    "{}",
                    circuit.name()
                );
            }
        }
    }

    #[test]
    fn session_results_are_thread_count_independent() {
        let c = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
        let prefixes = [0usize, 40, 120];
        let serial_cfg = MixedSchemeConfig {
            threads: 1,
            ..MixedSchemeConfig::default()
        };
        let mut serial = BistSession::new(&c, serial_cfg);
        let expect = serial.sweep(&prefixes).expect("sweep succeeds");
        for threads in [2, 4] {
            let cfg = MixedSchemeConfig {
                threads,
                ..MixedSchemeConfig::default()
            };
            let mut session = BistSession::new(&c, cfg);
            let got = session.sweep(&prefixes).expect("sweep succeeds");
            for (a, b) in expect.solutions().iter().zip(got.solutions()) {
                assert_eq!(a.det_len, b.det_len, "threads={threads}");
                assert_eq!(
                    a.generator.deterministic(),
                    b.generator.deterministic(),
                    "threads={threads}"
                );
                assert_eq!(a.coverage, b.coverage, "threads={threads}");
            }
        }
    }

    #[test]
    fn adaptive_cadence_skips_cheap_snapshots_and_recovers() {
        // c17 checkpoints are so cheap to re-simulate that the cadence
        // should retain nothing — and fallback requests must still be
        // answered correctly from scratch
        let c17 = bist_netlist::iscas85::c17();
        let mut session = BistSession::new(&c17, MixedSchemeConfig::default());
        let a16 = session.solve_at(16).expect("solve succeeds");
        assert!(session.stats().snapshots_skipped > 0);
        let a8 = session.solve_at(8).expect("solve succeeds");

        let mut fresh = BistSession::new(&c17, MixedSchemeConfig::default());
        let b8 = fresh.solve_at(8).expect("solve succeeds");
        let b16 = fresh.solve_at(16).expect("solve succeeds");
        assert_eq!(a8.det_len, b8.det_len);
        assert_eq!(a16.det_len, b16.det_len);
        assert_eq!(a8.coverage, b8.coverage);
        assert_eq!(a16.coverage, b16.coverage);
    }

    #[test]
    fn c17_solutions_reach_full_coverage() {
        let c17 = bist_netlist::iscas85::c17();
        let mut session = BistSession::new(&c17, MixedSchemeConfig::default());
        for p in [0usize, 4, 16] {
            let s = session.solve_at(p).expect("solve succeeds");
            assert_eq!(s.coverage.undetected, 0, "p={p}");
            assert_eq!(s.coverage.efficiency_pct(), 100.0, "p={p}");
            assert!(s.generator.verify(), "p={p}");
            assert_eq!(s.prefix_len, p);
        }
    }

    #[test]
    fn non_monotone_requests_fall_back_without_corruption() {
        let c17 = bist_netlist::iscas85::c17();
        let mut forward = BistSession::new(&c17, MixedSchemeConfig::default());
        let a16 = forward.solve_at(16).expect("solve succeeds");
        let a8 = forward.solve_at(8).expect("solve succeeds"); // below the front: fallback
        assert!(forward.stats().patterns_resimulated > 0);

        let mut fresh = BistSession::new(&c17, MixedSchemeConfig::default());
        let b8 = fresh.solve_at(8).expect("solve succeeds");
        let b16 = fresh.solve_at(16).expect("solve succeeds");
        assert_eq!(a8.det_len, b8.det_len);
        assert_eq!(a8.coverage, b8.coverage);
        assert_eq!(a16.det_len, b16.det_len);
        assert_eq!(a16.coverage, b16.coverage);
    }

    #[test]
    fn random_curve_is_monotone_and_saturating() {
        let c = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
        let mut session = BistSession::new(&c, MixedSchemeConfig::default());
        let curve = session.random_coverage_curve(&[0, 25, 50, 100, 200]);
        assert!(curve.is_monotone());
        assert_eq!(curve.points()[0].1, 0.0);
        assert!(curve.final_coverage().expect("non-empty curve") > 50.0);
        assert_eq!(session.stats().patterns_simulated, 200);
    }

    #[test]
    fn selector_tie_breaking_is_documented_order() {
        // hand-built solutions with exact area/length ties: the selectors
        // must break them area → length → prefix → request order (and
        // length → area → prefix → request order for the length-first
        // family), never depending on float quirks or iteration internals
        let generator =
            MixedGenerator::build(5, bist_lfsr::paper_poly(), 4, &[]).expect("bare LFSR generator");
        let point = |prefix_len: usize, det_len: usize, area: f64| MixedSolution {
            prefix_len,
            det_len,
            coverage: CoverageReport::default(),
            prefix_coverage: CoverageReport::default(),
            generator_area_mm2: area,
            chip_area_mm2: 1.0, // overhead_pct == 100 * area
            generator: generator.clone(),
        };
        let summary = SweepSummary {
            solutions: vec![
                point(8, 4, 0.5),  // len 12
                point(4, 8, 0.25), // len 12, cheap
                point(2, 10, 0.25),
                point(2, 2, 0.75), // len 4, expensive
            ],
        };

        // area tie at 0.25: equal total length 12 for both candidates —
        // the smaller prefix (p=2) wins
        let cheapest = summary.cheapest().expect("non-empty");
        assert_eq!((cheapest.prefix_len, cheapest.det_len), (2, 10));
        // unique shortest
        let shortest = summary.shortest().expect("non-empty");
        assert_eq!(shortest.total_len(), 4);
        // within length 12: same area tie as `cheapest`
        let within = summary.cheapest_within_length(12).expect("feasible");
        assert_eq!((within.prefix_len, within.det_len), (2, 10));
        assert!(summary.cheapest_within_length(3).is_none());
        // overhead <= 50 % admits only the two 0.25 mm² points (len 12
        // each): area ties again, smaller prefix wins
        let balanced = summary.within_overhead(50.0).expect("feasible");
        assert_eq!((balanced.prefix_len, balanced.det_len), (2, 10));
        assert!(summary.within_overhead(10.0).is_none());

        // full tie (area, length, prefix): earliest in request order wins
        let dup = SweepSummary {
            solutions: vec![point(4, 8, 0.25), point(4, 8, 0.25)],
        };
        let first = dup.cheapest().expect("non-empty");
        assert!(std::ptr::eq(first, &dup.solutions[0]));
    }

    #[test]
    fn collapse_modes_commit_identical_results() {
        let c = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
        let prefixes = [0usize, 50, 120];
        let mut inflow =
            BistSession::with_mode(&c, MixedSchemeConfig::default(), CollapseMode::InFlow);
        let mut off = BistSession::with_mode(&c, MixedSchemeConfig::default(), CollapseMode::Off);
        let a = inflow.sweep(&prefixes).expect("sweep succeeds");
        let b = off.sweep(&prefixes).expect("sweep succeeds");
        for (x, y) in a.solutions().iter().zip(b.solutions()) {
            assert_eq!(x.det_len, y.det_len);
            assert_eq!(x.generator.deterministic(), y.generator.deterministic());
            assert_eq!(x.coverage, y.coverage);
            assert_eq!(x.prefix_coverage, y.prefix_coverage);
            assert_eq!(
                x.generator_area_mm2.to_bits(),
                y.generator_area_mm2.to_bits()
            );
        }
        // snapshot schedule, pattern counts, cache hits: all mode-invariant
        assert_eq!(inflow.stats(), off.stats());
        assert!(inflow.collapse().is_some());
        assert!(off.collapse().is_none());
        assert_eq!(inflow.faults().len(), off.faults().len());
    }

    #[test]
    fn projected_full_universe_matches_direct_full_grading() {
        let c = bist_netlist::iscas85::circuit("c432").expect("known benchmark");
        let config = MixedSchemeConfig::default();
        let mut inflow = BistSession::with_mode(&c, config.clone(), CollapseMode::InFlow);
        let mut full = BistSession::with_mode(&c, config, CollapseMode::FullUniverse);
        assert!(full.faults().len() > inflow.faults().len());
        for p in [0usize, 40, 90] {
            assert_eq!(
                inflow.full_universe_statuses_at(p),
                full.full_universe_statuses_at(p),
                "p={p}: projection must equal direct full-universe grading"
            );
            assert_eq!(
                inflow.full_universe_prefix_report(p),
                full.full_universe_prefix_report(p),
                "p={p}"
            );
        }
    }

    #[test]
    fn projection_survives_non_monotone_fallback() {
        let c17 = bist_netlist::iscas85::c17();
        let config = MixedSchemeConfig::default();
        let mut s = BistSession::with_mode(&c17, config.clone(), CollapseMode::InFlow);
        let late = s.full_universe_statuses_at(16);
        let early = s.full_universe_statuses_at(8); // below the front: fallback
        let mut fresh = BistSession::with_mode(&c17, config, CollapseMode::InFlow);
        assert_eq!(fresh.full_universe_statuses_at(8), early);
        assert_eq!(fresh.full_universe_statuses_at(16), late);
    }

    #[test]
    fn pseudo_random_extreme() {
        let c17 = bist_netlist::iscas85::c17();
        let mut session = BistSession::new(&c17, MixedSchemeConfig::default());
        let s = session.pseudo_random_solution(64).expect("p > 0");
        assert_eq!(s.det_len, 0);
        assert!(s.coverage.coverage_pct() > 80.0);
        assert!(s.generator_area_mm2 < 0.3, "a bare LFSR is cheap");
    }
}
