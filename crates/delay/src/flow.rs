use bist_atpg::{justify_cube, podem_cube, CubeOutcome, PodemOptions, TestCube};
use bist_fault::FaultStatus;
use bist_faultsim::CoverageReport;
use bist_logicsim::{InjectedFault, Pattern};
use bist_netlist::Circuit;

use crate::model::{TransitionFault, TransitionFaultList};
use crate::sim::TransitionSim;

/// Options for the transition-fault ATPG flow.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DelayAtpgOptions {
    /// Search limits handed to every PODEM call.
    pub podem: PodemOptions,
    /// Skip reverse-order compaction (compaction is on by default).
    pub no_compaction: bool,
    /// A pattern sequence assumed to have been applied *before* the
    /// deterministic patterns — the pseudo-random prefix of a mixed test
    /// scheme. Faults it detects are dropped before any search runs, and
    /// the emitted sequence is graded as its continuation.
    pub prefix: Vec<Pattern>,
}

/// One deterministic two-pattern delay test: the ordered
/// *(initialization, launch/capture)* pair for one transition fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayTestUnit {
    /// The two patterns, in application order.
    pub patterns: [Pattern; 2],
    /// Pre-fill cubes parallel to `patterns`.
    pub cubes: [TestCube; 2],
    /// The fault this unit was generated for.
    pub target: TransitionFault,
}

/// Outcome of a [`DelayTestGenerator`] run.
#[derive(Debug, Clone)]
pub struct DelayRun {
    /// The deterministic test units, in application order.
    pub units: Vec<DelayTestUnit>,
    /// Coverage over the input fault universe — including anything the
    /// prefix already detected.
    pub report: CoverageReport,
    /// Final status of every fault, parallel to the input universe.
    pub statuses: Vec<FaultStatus>,
    /// Number of faults the prefix alone had already detected.
    pub prefix_detected: usize,
    /// Number of PODEM searches performed (including justifications).
    pub atpg_calls: usize,
}

impl DelayRun {
    /// The flat ordered deterministic pattern sequence (pairs concatenated).
    pub fn sequence(&self) -> Vec<Pattern> {
        self.units
            .iter()
            .flat_map(|u| u.patterns.iter().cloned())
            .collect()
    }

    /// Number of deterministic patterns (twice the number of units).
    pub fn num_patterns(&self) -> usize {
        self.units.len() * 2
    }
}

/// Deterministic two-pattern test generation for transition faults — the
/// delay-fault analogue of [`bist_atpg::TestGenerator`], and the concrete
/// backing for the paper's claim (§3.1) that the mixed scheme's
/// deterministic suffix is what covers "very hard to detect faults like
/// delay ... ones".
///
/// For a slow-to-rise fault the capture vector V2 is a PODEM test for
/// *site stuck-at-0* (activation drives the fault-free site to 1 and
/// propagates the retained 0), and the initialization vector V1 justifies
/// *site = 0* so that V2 actually launches a rising transition; dually for
/// slow-to-fall, and with the branch driver standing in for the site on
/// fan-out branch faults.
///
/// # Example
///
/// ```
/// use bist_delay::{DelayAtpgOptions, DelayTestGenerator, TransitionFaultList};
///
/// let c17 = bist_netlist::iscas85::c17();
/// let faults = TransitionFaultList::universe(&c17);
/// let run = DelayTestGenerator::new(&c17, faults, DelayAtpgOptions::default()).run();
/// assert_eq!(run.report.undetected, 0); // c17 delay faults are all testable
/// ```
#[derive(Debug)]
pub struct DelayTestGenerator<'c> {
    circuit: &'c Circuit,
    faults: TransitionFaultList,
    options: DelayAtpgOptions,
}

impl<'c> DelayTestGenerator<'c> {
    /// Creates a generator targeting `faults` on `circuit`.
    pub fn new(
        circuit: &'c Circuit,
        faults: TransitionFaultList,
        options: DelayAtpgOptions,
    ) -> Self {
        DelayTestGenerator {
            circuit,
            faults,
            options,
        }
    }

    /// Runs the full flow: grade the prefix, search every remaining fault,
    /// fault-simulate for collateral drops, compact, re-grade.
    pub fn run(self) -> DelayRun {
        let DelayTestGenerator {
            circuit,
            faults,
            options,
        } = self;
        let mut session = TransitionSim::new(circuit, faults.clone());
        session.simulate(&options.prefix);
        let prefix_detected = session.report().detected;

        let mut units: Vec<DelayTestUnit> = Vec::new();
        let mut atpg_calls = 0usize;

        for fi in 0..faults.len() {
            if session.status_of(fi) != FaultStatus::Undetected {
                continue;
            }
            let fault = *faults.get(fi).expect("index in range");
            let podem_opts = PodemOptions {
                fill_seed: options
                    .podem
                    .fill_seed
                    .wrapping_add((fi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ..options.podem
            };
            let unit = match generate_unit(circuit, fault, podem_opts, &mut atpg_calls) {
                Ok(unit) => unit,
                Err(Verdict::Redundant) => {
                    session.set_status(fi, FaultStatus::Redundant);
                    continue;
                }
                Err(Verdict::Aborted) => {
                    session.set_status(fi, FaultStatus::Aborted);
                    continue;
                }
            };
            session.simulate(&unit.patterns);
            if session.status_of(fi) == FaultStatus::Detected {
                units.push(unit);
            } else {
                debug_assert!(
                    false,
                    "generated pair does not detect {}",
                    fault.describe(circuit)
                );
                session.set_status(fi, FaultStatus::Aborted);
            }
        }

        let baseline_detected = session.report().detected;
        if !options.no_compaction {
            units = compact(circuit, &faults, &options.prefix, units, baseline_detected);
        }

        // authoritative final grading: prefix, then the compacted sequence
        let mut final_session = TransitionSim::new(circuit, faults.clone());
        final_session.simulate(&options.prefix);
        for unit in &units {
            final_session.simulate(&unit.patterns);
        }
        let mut statuses = final_session.statuses().to_vec();
        for (fi, status) in statuses.iter_mut().enumerate() {
            if *status == FaultStatus::Undetected {
                if let s @ (FaultStatus::Redundant | FaultStatus::Aborted) = session.status_of(fi) {
                    *status = s
                }
            }
        }
        let report = CoverageReport::from_statuses(&statuses);
        DelayRun {
            units,
            report,
            statuses,
            prefix_detected,
            atpg_calls,
        }
    }
}

enum Verdict {
    Redundant,
    Aborted,
}

/// The PODEM target for the capture vector: a stuck-at fault that retains
/// the initial value at the faulted line.
fn capture_target(fault: TransitionFault) -> InjectedFault {
    InjectedFault {
        site: fault.site,
        pin: fault.pin,
        stuck: fault.initial_value(),
    }
}

fn generate_unit(
    circuit: &Circuit,
    fault: TransitionFault,
    podem_opts: PodemOptions,
    atpg_calls: &mut usize,
) -> Result<DelayTestUnit, Verdict> {
    *atpg_calls += 1;
    let (v2, v2_cube) = match podem_cube(circuit, capture_target(fault), podem_opts) {
        CubeOutcome::Test { pattern, cube } => (pattern, cube),
        CubeOutcome::Redundant => return Err(Verdict::Redundant),
        CubeOutcome::Aborted => return Err(Verdict::Aborted),
    };
    let driver = fault.driver(circuit);
    *atpg_calls += 1;
    let (v1, v1_cube) = match justify_cube(circuit, &[(driver, fault.initial_value())], podem_opts)
    {
        CubeOutcome::Test { pattern, cube } => (pattern, cube),
        CubeOutcome::Redundant => return Err(Verdict::Redundant),
        CubeOutcome::Aborted => return Err(Verdict::Aborted),
    };
    Ok(DelayTestUnit {
        patterns: [v1, v2],
        cubes: [v1_cube, v2_cube],
        target: fault,
    })
}

/// Reverse-order compaction over whole pairs, with forward verification —
/// the delay analogue of the stuck-at flow's compactor. The prefix is
/// replayed before both gradings so cross-boundary launches stay honest.
fn compact(
    circuit: &Circuit,
    faults: &TransitionFaultList,
    prefix: &[Pattern],
    units: Vec<DelayTestUnit>,
    baseline_detected: usize,
) -> Vec<DelayTestUnit> {
    let mut reverse_session = TransitionSim::new(circuit, faults.clone());
    reverse_session.simulate(prefix);
    let mut keep = vec![false; units.len()];
    for (k, unit) in units.iter().enumerate().rev() {
        let newly = reverse_session.simulate(&unit.patterns);
        if newly > 0 {
            keep[k] = true;
        }
    }
    let compacted: Vec<DelayTestUnit> = units
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(u, _)| u.clone())
        .collect();
    if compacted.len() == units.len() {
        return units;
    }
    let mut verify = TransitionSim::new(circuit, faults.clone());
    verify.simulate(prefix);
    for unit in &compacted {
        verify.simulate(&unit.patterns);
    }
    if verify.report().detected >= baseline_detected {
        compacted
    } else {
        units
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_full_flow_covers_everything() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = TransitionFaultList::universe(&c17);
        let total = faults.len();
        let run = DelayTestGenerator::new(&c17, faults, DelayAtpgOptions::default()).run();
        assert_eq!(run.report.total(), total);
        assert_eq!(run.report.undetected, 0);
        assert_eq!(run.report.aborted, 0);
        assert_eq!(run.prefix_detected, 0, "no prefix was given");
        for unit in &run.units {
            assert!(crate::serial::detects(
                &c17,
                unit.target,
                &unit.patterns[0],
                &unit.patterns[1]
            ));
        }
    }

    #[test]
    fn prefix_shrinks_the_deterministic_set() {
        use rand::{rngs::StdRng, SeedableRng};
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = TransitionFaultList::universe(&c);
        let mut rng = StdRng::seed_from_u64(5);
        let prefix: Vec<Pattern> = (0..256)
            .map(|_| Pattern::random(&mut rng, c.inputs().len()))
            .collect();

        let bare = DelayTestGenerator::new(&c, faults.clone(), DelayAtpgOptions::default()).run();
        let topped = DelayTestGenerator::new(
            &c,
            faults,
            DelayAtpgOptions {
                prefix,
                ..DelayAtpgOptions::default()
            },
        )
        .run();
        assert!(topped.prefix_detected > 0);
        assert!(
            topped.num_patterns() < bare.num_patterns(),
            "prefix {} vs bare {}",
            topped.num_patterns(),
            bare.num_patterns()
        );
        // the mixed run must reach at least the deterministic-only coverage
        assert!(topped.report.coverage_pct() >= bare.report.coverage_pct() - 1e-9);
    }

    #[test]
    fn compaction_shrinks_or_preserves() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = TransitionFaultList::universe(&c17);
        let uncompacted = DelayTestGenerator::new(
            &c17,
            faults.clone(),
            DelayAtpgOptions {
                no_compaction: true,
                ..DelayAtpgOptions::default()
            },
        )
        .run();
        let compacted = DelayTestGenerator::new(&c17, faults, DelayAtpgOptions::default()).run();
        assert!(compacted.num_patterns() <= uncompacted.num_patterns());
        assert_eq!(compacted.report.detected, uncompacted.report.detected);
    }

    #[test]
    fn redundant_transition_faults_are_proven() {
        // y = OR(a, AND(a, b)): the AND output can never affect y when
        // a=0 forces... actually a=0 makes AND=0 and y=a=0; a slow-to-rise
        // on the AND output is unobservable (stuck-at-0 there is redundant).
        use bist_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("red");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("t", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("y", GateKind::Or, &["a", "t"]).unwrap();
        b.mark_output("y").unwrap();
        let c = b.build().unwrap();
        let t = c.find("t").unwrap();
        let faults: TransitionFaultList = [TransitionFault::stem(t, crate::Transition::SlowToRise)]
            .into_iter()
            .collect();
        let run = DelayTestGenerator::new(&c, faults, DelayAtpgOptions::default()).run();
        assert_eq!(run.report.redundant, 1);
        assert_eq!(run.report.undetected, 0);
    }

    #[test]
    fn sequence_concatenates_pairs_in_order() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = TransitionFaultList::universe(&c17);
        let run = DelayTestGenerator::new(&c17, faults, DelayAtpgOptions::default()).run();
        let seq = run.sequence();
        assert_eq!(seq.len(), run.num_patterns());
        for (k, unit) in run.units.iter().enumerate() {
            assert_eq!(seq[2 * k], unit.patterns[0]);
            assert_eq!(seq[2 * k + 1], unit.patterns[1]);
        }
    }
}
