//! Gate-level transition (delay) faults for the LFSROM mixed-BIST
//! reproduction.
//!
//! The paper's central argument for a *mixed* test scheme is that
//! pseudo-random sequences, adequate for stuck-at faults, "are no longer
//! efficient" for "much more realistic and complex faults like delay ...
//! faults" (§2.2), so the deterministic LFSROM suffix must carry them.
//! The 1995 evaluation only exercises stuck-at and stuck-open models; this
//! crate supplies the delay-fault side of the claim so the reproduction
//! can *measure* it:
//!
//! * [`TransitionFault`] / [`TransitionFaultList`] — the classical
//!   gate-level transition fault model (slow-to-rise / slow-to-fall, stems
//!   and fan-out branches).
//! * [`TransitionSim`] — a PPSFP-style packed simulator grading a pattern
//!   *sequence* under the BIST convention that pattern `t-1` initializes
//!   pattern `t` (launch) and pattern `t` captures.
//! * [`serial::detects`] — a naive single-pair reference the packed engine
//!   is property-tested against.
//! * [`DelayTestGenerator`] — two-pattern deterministic ATPG (a PODEM
//!   stuck-at search for the capture vector plus a justification for the
//!   initialization vector), with prefix-aware grading so a mixed
//!   `p`-random + `d`-deterministic delay test can be built and costed
//!   exactly like the paper's stuck-at/stuck-open flow.
//!
//! # Example: the paper's §3.1 claim, measured
//!
//! ```
//! use bist_delay::{DelayAtpgOptions, DelayTestGenerator, TransitionFaultList, TransitionSim};
//!
//! let c17 = bist_netlist::iscas85::c17();
//! let faults = TransitionFaultList::universe(&c17);
//!
//! // deterministic top-up after a (tiny) pseudo-random prefix
//! let prefix = bist_lfsr::pseudo_random_patterns(bist_lfsr::primitive_poly(16), 5, 8);
//! let run = DelayTestGenerator::new(
//!     &c17,
//!     faults,
//!     DelayAtpgOptions { prefix, ..DelayAtpgOptions::default() },
//! )
//! .run();
//! assert_eq!(run.report.undetected, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
mod model;
pub mod serial;
mod sim;

pub use flow::{DelayAtpgOptions, DelayRun, DelayTestGenerator, DelayTestUnit};
pub use model::{Transition, TransitionFault, TransitionFaultList};
pub use sim::TransitionSim;
