use std::fmt;

use bist_netlist::{Circuit, GateKind, NodeId};

/// The direction of the late transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Transition {
    /// The node rises too slowly: under the second pattern it still shows
    /// the *initial* value `0`.
    SlowToRise,
    /// The node falls too slowly: under the second pattern it still shows
    /// the *initial* value `1`.
    SlowToFall,
}

impl Transition {
    /// Both directions, for iteration.
    pub const BOTH: [Transition; 2] = [Transition::SlowToRise, Transition::SlowToFall];

    /// The value the node holds *before* the (late) transition — also the
    /// value the faulty node erroneously retains under the second pattern.
    pub fn initial_value(self) -> bool {
        matches!(self, Transition::SlowToFall)
    }

    /// The value the fault-free node reaches under the second pattern.
    pub fn final_value(self) -> bool {
        !self.initial_value()
    }

    /// The opposite direction.
    pub fn opposite(self) -> Transition {
        match self {
            Transition::SlowToRise => Transition::SlowToFall,
            Transition::SlowToFall => Transition::SlowToRise,
        }
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Transition::SlowToRise => "slow-to-rise",
            Transition::SlowToFall => "slow-to-fall",
        })
    }
}

/// A gate-level transition (gross-delay) fault.
///
/// A transition fault at a node means the node's output transition is so
/// late that, at capture time of the *next* pattern, the node still shows
/// its old value. Under the standard consecutive-pattern application of a
/// BIST generator — each pattern's predecessor is the initialization
/// vector — detection requires the ordered pair *(V1, V2)* where V1 sets
/// the site to the initial value and V2 both launches the transition and
/// propagates the (temporarily) stuck value to a primary output. This is
/// precisely the "much more realistic and complex" fault class the paper's
/// sections 2.2/3.1 argue pseudo-random sequences handle poorly and the
/// deterministic LFSROM suffix exists to cover.
///
/// Like stuck-at faults, transition faults live on a stem (`pin: None`) or
/// on the fan-out branch feeding pin `pin` of gate `site`.
///
/// # Example
///
/// ```
/// use bist_delay::{Transition, TransitionFault};
///
/// let c17 = bist_netlist::iscas85::c17();
/// let g10 = c17.find("G10").unwrap();
/// let f = TransitionFault::stem(g10, Transition::SlowToRise);
/// assert_eq!(f.initial_value(), false);
/// assert_eq!(f.describe(&c17), "G10 slow-to-rise");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionFault {
    /// Faulted node (the gate whose input pin is late, for branch faults).
    pub site: NodeId,
    /// Fan-in pin index for branch faults, `None` for stem faults.
    pub pin: Option<u8>,
    /// Direction of the late transition.
    pub transition: Transition,
}

impl TransitionFault {
    /// A stem transition fault on `site`.
    pub fn stem(site: NodeId, transition: Transition) -> Self {
        TransitionFault {
            site,
            pin: None,
            transition,
        }
    }

    /// A branch transition fault as seen by fan-in `pin` of gate `site`.
    pub fn branch(site: NodeId, pin: u8, transition: Transition) -> Self {
        TransitionFault {
            site,
            pin: Some(pin),
            transition,
        }
    }

    /// The value the faulty line shows under the second pattern.
    pub fn initial_value(&self) -> bool {
        self.transition.initial_value()
    }

    /// The line whose transition is late: the stem itself, or the branch's
    /// *driver* stem for branch faults.
    pub fn driver(&self, circuit: &Circuit) -> NodeId {
        match self.pin {
            None => self.site,
            Some(p) => circuit.node(self.site).fanin()[p as usize],
        }
    }

    /// Human-readable description using node names.
    pub fn describe(&self, circuit: &Circuit) -> String {
        match self.pin {
            None => format!("{} {}", circuit.node(self.site).name(), self.transition),
            Some(p) => format!(
                "{}->{} (pin {}) {}",
                circuit.node(self.driver(circuit)).name(),
                circuit.node(self.site).name(),
                p,
                self.transition
            ),
        }
    }
}

/// An ordered universe of transition faults over one circuit.
///
/// # Example
///
/// ```
/// use bist_delay::TransitionFaultList;
///
/// let c17 = bist_netlist::iscas85::c17();
/// let faults = TransitionFaultList::universe(&c17);
/// // c17: 11 nodes carry transition faults, every stem in both directions
/// assert!(faults.len() >= 22);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransitionFaultList {
    faults: Vec<TransitionFault>,
}

impl TransitionFaultList {
    /// An empty list.
    pub fn new() -> Self {
        TransitionFaultList { faults: Vec::new() }
    }

    /// The standard transition-fault universe: both directions on every
    /// stem (primary inputs and combinational gates; constants and flip-
    /// flops carry no transitions), plus both directions on every fan-out
    /// branch whose driver stem has fan-out greater than one (single-fan-out
    /// branches are equivalent to their stems and are collapsed away).
    pub fn universe(circuit: &Circuit) -> Self {
        let mut faults = Vec::new();
        for &id in circuit.topo_order() {
            let node = circuit.node(id);
            match node.kind() {
                GateKind::Const0 | GateKind::Const1 | GateKind::Dff => continue,
                _ => {}
            }
            for t in Transition::BOTH {
                faults.push(TransitionFault::stem(id, t));
            }
        }
        for &id in circuit.topo_order() {
            let node = circuit.node(id);
            if !node.kind().is_combinational() {
                continue;
            }
            for (pin, &driver) in node.fanin().iter().enumerate() {
                if circuit.fanout(driver).len() > 1 {
                    for t in Transition::BOTH {
                        faults.push(TransitionFault::branch(id, pin as u8, t));
                    }
                }
            }
        }
        TransitionFaultList { faults }
    }

    /// Only the stem faults of [`TransitionFaultList::universe`].
    pub fn stems_only(circuit: &Circuit) -> Self {
        let universe = Self::universe(circuit);
        TransitionFaultList {
            faults: universe
                .faults
                .into_iter()
                .filter(|f| f.pin.is_none())
                .collect(),
        }
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if the list holds no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault at `index`.
    pub fn get(&self, index: usize) -> Option<&TransitionFault> {
        self.faults.get(index)
    }

    /// Iterates over the faults in order.
    pub fn iter(&self) -> std::slice::Iter<'_, TransitionFault> {
        self.faults.iter()
    }

    /// The faults as a slice.
    pub fn faults(&self) -> &[TransitionFault] {
        &self.faults
    }

    /// Appends a fault.
    pub fn push(&mut self, fault: TransitionFault) {
        self.faults.push(fault);
    }
}

impl FromIterator<TransitionFault> for TransitionFaultList {
    fn from_iter<I: IntoIterator<Item = TransitionFault>>(iter: I) -> Self {
        TransitionFaultList {
            faults: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a TransitionFaultList {
    type Item = &'a TransitionFault;
    type IntoIter = std::slice::Iter<'a, TransitionFault>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_value_conventions() {
        assert!(!Transition::SlowToRise.initial_value());
        assert!(Transition::SlowToRise.final_value());
        assert!(Transition::SlowToFall.initial_value());
        assert!(!Transition::SlowToFall.final_value());
        assert_eq!(Transition::SlowToRise.opposite(), Transition::SlowToFall);
    }

    #[test]
    fn universe_counts_on_c17() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = TransitionFaultList::universe(&c17);
        // 11 stems (5 PIs + 6 NANDs), each both directions = 22 stem faults
        let stems = faults.iter().filter(|f| f.pin.is_none()).count();
        assert_eq!(stems, 22);
        // every branch fault's driver must truly have fanout > 1
        for f in faults.iter().filter(|f| f.pin.is_some()) {
            assert!(c17.fanout(f.driver(&c17)).len() > 1);
        }
        // c17 has multi-fanout stems, so branch faults must exist
        assert!(faults.len() > stems);
    }

    #[test]
    fn stems_only_is_a_subset() {
        let c17 = bist_netlist::iscas85::c17();
        let all = TransitionFaultList::universe(&c17);
        let stems = TransitionFaultList::stems_only(&c17);
        assert!(stems.len() < all.len());
        assert!(stems.iter().all(|f| f.pin.is_none()));
    }

    #[test]
    fn describe_names_stem_and_branch() {
        let c17 = bist_netlist::iscas85::c17();
        let g10 = c17.find("G10").unwrap();
        let stem = TransitionFault::stem(g10, Transition::SlowToFall);
        assert_eq!(stem.describe(&c17), "G10 slow-to-fall");
        let faults = TransitionFaultList::universe(&c17);
        let branch = faults.iter().find(|f| f.pin.is_some()).unwrap();
        let text = branch.describe(&c17);
        assert!(text.contains("->"), "branch description: {text}");
    }

    #[test]
    fn constants_carry_no_stem_faults() {
        use bist_netlist::CircuitBuilder;
        let mut b = CircuitBuilder::new("k");
        b.add_input("a").unwrap();
        b.add_gate("one", GateKind::Const1, &[]).unwrap();
        b.add_gate("y", GateKind::And, &["a", "one"]).unwrap();
        b.mark_output("y").unwrap();
        let c = b.build().unwrap();
        let one = c.find("one").unwrap();
        let faults = TransitionFaultList::universe(&c);
        assert!(faults.iter().all(|f| f.site != one || f.pin.is_some()));
    }
}
