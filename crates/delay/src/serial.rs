//! Naive single-pair reference semantics for transition faults.
//!
//! [`detects`] re-derives detection from first principles — full-circuit
//! good evaluation of both vectors, explicit faulty re-evaluation of the
//! capture vector — with none of the packing, dropping or cone pruning of
//! [`TransitionSim`](crate::TransitionSim). Property tests pit the two
//! against each other.

use bist_logicsim::Pattern;
use bist_netlist::{Circuit, GateKind};

use crate::model::TransitionFault;

/// Evaluates every node of `circuit` under `pattern` (bit `i` of the
/// pattern drives input `i`), returning one value per node.
fn good_values(circuit: &Circuit, pattern: &Pattern) -> Vec<bool> {
    let mut values = vec![false; circuit.num_nodes()];
    for (i, &pi) in circuit.inputs().iter().enumerate() {
        values[pi.index()] = pattern.get(i);
    }
    let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
    for &id in circuit.topo_order() {
        let node = circuit.node(id);
        match node.kind() {
            GateKind::Input => {}
            GateKind::Dff => values[id.index()] = false,
            kind => {
                fanin_buf.clear();
                fanin_buf.extend(node.fanin().iter().map(|f| u64::from(values[f.index()])));
                values[id.index()] = kind.eval_word(&fanin_buf) & 1 == 1;
            }
        }
    }
    values
}

/// Evaluates `circuit` under `pattern` with `fault` active: the faulted
/// line is forced to its initial value (the launch is assumed to have
/// happened; callers check it separately).
fn faulty_values(circuit: &Circuit, fault: TransitionFault, pattern: &Pattern) -> Vec<bool> {
    let init = fault.initial_value();
    let mut values = vec![false; circuit.num_nodes()];
    for (i, &pi) in circuit.inputs().iter().enumerate() {
        values[pi.index()] = pattern.get(i);
    }
    if fault.pin.is_none() && circuit.node(fault.site).kind() == GateKind::Input {
        values[fault.site.index()] = init;
    }
    let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
    for &id in circuit.topo_order() {
        let node = circuit.node(id);
        match node.kind() {
            GateKind::Input => {}
            GateKind::Dff => values[id.index()] = false,
            kind => {
                fanin_buf.clear();
                for (k, f) in node.fanin().iter().enumerate() {
                    let forced = fault.pin == Some(k as u8) && id == fault.site;
                    let v = if forced { init } else { values[f.index()] };
                    fanin_buf.push(u64::from(v));
                }
                values[id.index()] = kind.eval_word(&fanin_buf) & 1 == 1;
                if fault.pin.is_none() && id == fault.site {
                    values[id.index()] = init;
                }
            }
        }
    }
    values
}

/// True if the ordered pair `(v1, v2)` detects `fault`: the faulted line
/// launches the target transition between the two vectors and the retained
/// value differs from the good machine at some primary output under `v2`.
///
/// # Example
///
/// ```
/// use bist_delay::{serial, Transition, TransitionFault};
/// use bist_logicsim::Pattern;
///
/// let c17 = bist_netlist::iscas85::c17();
/// let a = c17.inputs()[0];
/// let fault = TransitionFault::stem(a, Transition::SlowToRise);
/// let v1: Pattern = "00000".parse()?;
/// let same = serial::detects(&c17, fault, &v1, &v1);
/// assert!(!same, "no transition is launched by a repeated vector");
/// # Ok::<(), bist_logicsim::ParsePatternError>(())
/// ```
pub fn detects(circuit: &Circuit, fault: TransitionFault, v1: &Pattern, v2: &Pattern) -> bool {
    let g1 = good_values(circuit, v1);
    let g2 = good_values(circuit, v2);
    let driver = fault.driver(circuit);
    let init = fault.initial_value();
    let launched = g1[driver.index()] == init && g2[driver.index()] != init;
    if !launched {
        return false;
    }
    let f2 = faulty_values(circuit, fault, v2);
    circuit
        .outputs()
        .iter()
        .any(|&o| f2[o.index()] != g2[o.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Transition, TransitionFaultList};
    use crate::sim::TransitionSim;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn agrees_with_packed_engine_on_c17_pairs() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = TransitionFaultList::universe(&c17);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let v1 = Pattern::random(&mut rng, 5);
            let v2 = Pattern::random(&mut rng, 5);
            let fi = rng.gen_range(0..faults.len());
            let fault = *faults.get(fi).unwrap();

            let naive = detects(&c17, fault, &v1, &v2);

            let single: TransitionFaultList = [fault].into_iter().collect();
            let mut sim = TransitionSim::new(&c17, single);
            sim.simulate(&[v1.clone(), v2.clone()]);
            let packed = sim.report().detected == 1;
            assert_eq!(naive, packed, "{} on ({v1}, {v2})", fault.describe(&c17));
        }
    }

    #[test]
    fn launch_direction_is_respected() {
        let c17 = bist_netlist::iscas85::c17();
        let a = c17.inputs()[0];
        let rise = TransitionFault::stem(a, Transition::SlowToRise);
        let fall = TransitionFault::stem(a, Transition::SlowToFall);
        let lo = Pattern::zeros(5);
        let mut hi = Pattern::zeros(5);
        hi.set(0, true);
        // make side inputs propagate: brute-force over remaining bits
        let mut rise_hit = false;
        let mut fall_hit = false;
        for v in 0u32..32 {
            let mut p1 = lo.clone();
            let mut p2 = hi.clone();
            for b in 1..5 {
                p1.set(b, (v >> b) & 1 == 1);
                p2.set(b, (v >> b) & 1 == 1);
            }
            if detects(&c17, rise, &p1, &p2) {
                rise_hit = true;
                assert!(!detects(&c17, rise, &p2, &p1), "opposite order must fail");
            }
            if detects(&c17, fall, &p2, &p1) {
                fall_hit = true;
            }
        }
        assert!(rise_hit && fall_hit);
    }
}
