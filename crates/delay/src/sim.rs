use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bist_fault::FaultStatus;
use bist_faultsim::CoverageReport;
use bist_logicsim::{Pattern, PatternBlock};
use bist_netlist::{Circuit, GateKind, NodeId};

use crate::model::{TransitionFault, TransitionFaultList};

/// Parallel-pattern transition-fault simulator with fault dropping.
///
/// Patterns are applied as one continuous sequence — exactly what a BIST
/// generator does — so pattern `t-1` doubles as the initialization vector
/// of pattern `t`. A [`TransitionFault`] is detected at step `t` when the
/// faulted line transitions between `t-1` and `t` in the good machine
/// (launch) and the line's erroneously retained value is observed at a
/// primary output under pattern `t` (capture). The engine mirrors the
/// PPSFP structure of [`bist_faultsim::FaultSim`]: 64 patterns per block,
/// single-fault forward propagation over the fan-out cone, carry of the
/// last good values across block boundaries.
///
/// # Example
///
/// ```
/// use bist_delay::{TransitionFaultList, TransitionSim};
/// use bist_logicsim::Pattern;
///
/// let c17 = bist_netlist::iscas85::c17();
/// let faults = TransitionFaultList::universe(&c17);
/// let mut sim = TransitionSim::new(&c17, faults);
/// // one pattern alone launches no transition
/// assert_eq!(sim.simulate(&[Pattern::zeros(5)]), 0);
/// ```
#[derive(Debug)]
pub struct TransitionSim<'c> {
    circuit: &'c Circuit,
    faults: TransitionFaultList,
    status: Vec<FaultStatus>,
    first_detection: Vec<Option<u32>>,
    patterns_seen: u32,
    /// Good-machine value of every node for the last pattern of the
    /// previous block (the launch carry).
    last_bits: Vec<bool>,
    // --- scratch buffers, reused across blocks ---
    good: Vec<u64>,
    prev: Vec<u64>,
    fval: Vec<u64>,
    stamp: Vec<u32>,
    epoch: u32,
    topo_pos: Vec<u32>,
}

impl<'c> TransitionSim<'c> {
    /// Creates a simulator grading `faults` on `circuit`.
    pub fn new(circuit: &'c Circuit, faults: TransitionFaultList) -> Self {
        let n = circuit.num_nodes();
        let mut topo_pos = vec![0u32; n];
        for (pos, &id) in circuit.topo_order().iter().enumerate() {
            topo_pos[id.index()] = pos as u32;
        }
        let len = faults.len();
        TransitionSim {
            circuit,
            faults,
            status: vec![FaultStatus::Undetected; len],
            first_detection: vec![None; len],
            patterns_seen: 0,
            last_bits: vec![false; n],
            good: vec![0; n],
            prev: vec![0; n],
            fval: vec![0; n],
            stamp: vec![0; n],
            epoch: 0,
            topo_pos,
        }
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The fault universe being graded.
    pub fn faults(&self) -> &TransitionFaultList {
        &self.faults
    }

    /// Status of fault `index`.
    pub fn status_of(&self, index: usize) -> FaultStatus {
        self.status[index]
    }

    /// All statuses, parallel to [`TransitionSim::faults`].
    pub fn statuses(&self) -> &[FaultStatus] {
        &self.status
    }

    /// Overrides the status of fault `index` (the delay ATPG uses this for
    /// redundant / aborted bookkeeping).
    pub fn set_status(&mut self, index: usize, status: FaultStatus) {
        self.status[index] = status;
    }

    /// Global index of the first pattern whose capture detected fault
    /// `index`.
    pub fn first_detection(&self, index: usize) -> Option<u32> {
        self.first_detection[index]
    }

    /// Number of patterns consumed so far.
    pub fn patterns_seen(&self) -> u32 {
        self.patterns_seen
    }

    /// Forgets all grading results and the sequence position.
    pub fn reset(&mut self) {
        self.status.fill(FaultStatus::Undetected);
        self.first_detection.fill(None);
        self.patterns_seen = 0;
        self.last_bits.fill(false);
    }

    /// Grades `patterns` (in order, continuing any previously fed
    /// sequence). Returns the number of newly detected faults.
    pub fn simulate(&mut self, patterns: &[Pattern]) -> usize {
        let mut newly = 0;
        for chunk in patterns.chunks(64) {
            let block = PatternBlock::pack(self.circuit, chunk);
            newly += self.simulate_block(&block);
        }
        newly
    }

    /// Coverage summary over the whole universe.
    pub fn report(&self) -> CoverageReport {
        CoverageReport::from_statuses(&self.status)
    }

    /// The faults still open (undetected or aborted), with their indices.
    pub fn open_faults(&self) -> Vec<(usize, TransitionFault)> {
        self.faults
            .iter()
            .enumerate()
            .filter(|(i, _)| self.status[*i].is_open())
            .map(|(i, f)| (i, *f))
            .collect()
    }

    fn simulate_block(&mut self, block: &PatternBlock) -> usize {
        let valid = block.valid_mask();
        self.good_simulate(block);
        let first_ever = self.patterns_seen == 0;
        for (i, g) in self.good.iter().enumerate() {
            let carry = if first_ever {
                g & 1 // pattern 0 has no predecessor: prev := self (no launch)
            } else {
                u64::from(self.last_bits[i])
            };
            self.prev[i] = (g << 1) | carry;
        }
        let last = block.count() - 1;
        for (i, g) in self.good.iter().enumerate() {
            self.last_bits[i] = (g >> last) & 1 == 1;
        }

        let mut newly = 0;
        for fi in 0..self.faults.len() {
            if self.status[fi] != FaultStatus::Undetected {
                continue;
            }
            let fault = *self.faults.get(fi).expect("index in range");
            if let Some(mask) = self.try_detect(fault, valid) {
                let first = mask.trailing_zeros();
                self.status[fi] = FaultStatus::Detected;
                self.first_detection[fi] = Some(self.patterns_seen + first);
                newly += 1;
            }
        }
        self.patterns_seen += block.count() as u32;
        newly
    }

    fn good_simulate(&mut self, block: &PatternBlock) {
        for (i, &pi) in self.circuit.inputs().iter().enumerate() {
            self.good[pi.index()] = block.input_word(i);
        }
        let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
        for &id in self.circuit.topo_order() {
            let node = self.circuit.node(id);
            match node.kind() {
                GateKind::Input => {}
                GateKind::Dff => self.good[id.index()] = 0,
                kind => {
                    fanin_buf.clear();
                    fanin_buf.extend(node.fanin().iter().map(|f| self.good[f.index()]));
                    self.good[id.index()] = kind.eval_word(&fanin_buf);
                }
            }
        }
    }

    /// Word of patterns where the faulted line launches its transition:
    /// driver held the initial value at `t-1` and the final value at `t`.
    fn launch_mask(&self, fault: TransitionFault) -> u64 {
        let driver = fault.driver(self.circuit);
        let g = self.good[driver.index()];
        let before = self.prev[driver.index()];
        let init = fault.initial_value();
        let was_init = if init { before } else { !before };
        let is_final = if init { !g } else { g };
        was_init & is_final
    }

    /// Computes the faulty value at the effect site for this block, or
    /// `None` if the fault changes nothing.
    fn seed_value(&self, fault: TransitionFault, valid: u64) -> Option<(NodeId, u64)> {
        let excite = self.launch_mask(fault);
        if excite & valid == 0 {
            return None;
        }
        let init_word = if fault.initial_value() { !0u64 } else { 0 };
        match fault.pin {
            None => {
                // The stem erroneously retains the initial value where
                // excited; elsewhere it follows the good machine.
                let g = self.good[fault.site.index()];
                let fv = (g & !excite) | (init_word & excite);
                let diff = (fv ^ g) & valid;
                (diff != 0).then_some((fault.site, fv))
            }
            Some(p) => {
                // Only the branch into pin `p` is late: re-evaluate the gate
                // with that pin forced to the initial value where excited.
                let node = self.circuit.node(fault.site);
                let fanin: Vec<u64> = node
                    .fanin()
                    .iter()
                    .enumerate()
                    .map(|(k, f)| {
                        let g = self.good[f.index()];
                        if k == p as usize {
                            (g & !excite) | (init_word & excite)
                        } else {
                            g
                        }
                    })
                    .collect();
                let fv = node.kind().eval_word(&fanin);
                let g = self.good[fault.site.index()];
                let diff = (fv ^ g) & valid;
                (diff != 0).then_some((fault.site, fv))
            }
        }
    }

    /// Injects `fault` and propagates through its fan-out cone; returns the
    /// mask of patterns detecting it at a primary output, or `None`.
    fn try_detect(&mut self, fault: TransitionFault, valid: u64) -> Option<u64> {
        let (site, seed) = self.seed_value(fault, valid)?;

        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;

        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        self.fval[site.index()] = seed;
        self.stamp[site.index()] = epoch;
        let mut detect = 0u64;
        if self.circuit.is_output(site) {
            detect |= (seed ^ self.good[site.index()]) & valid;
        }
        for &s in self.circuit.fanout(site) {
            heap.push(Reverse((self.topo_pos[s.index()], s.index() as u32)));
        }

        let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
        let mut last_popped = u32::MAX;
        while let Some(Reverse((pos, idx))) = heap.pop() {
            if pos == last_popped {
                continue;
            }
            last_popped = pos;
            let id = NodeId::from_index(idx as usize);
            let node = self.circuit.node(id);
            if !node.kind().is_combinational() {
                continue;
            }
            fanin_buf.clear();
            fanin_buf.extend(node.fanin().iter().map(|f| {
                if self.stamp[f.index()] == epoch {
                    self.fval[f.index()]
                } else {
                    self.good[f.index()]
                }
            }));
            let fv = node.kind().eval_word(&fanin_buf);
            if fv == self.good[id.index()] {
                continue;
            }
            self.fval[id.index()] = fv;
            self.stamp[id.index()] = epoch;
            if self.circuit.is_output(id) {
                detect |= (fv ^ self.good[id.index()]) & valid;
            }
            for &s in self.circuit.fanout(id) {
                heap.push(Reverse((self.topo_pos[s.index()], s.index() as u32)));
            }
        }
        (detect != 0).then_some(detect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Transition;
    use rand::{rngs::StdRng, SeedableRng};

    fn random_sequence(width: usize, count: usize, seed: u64) -> Vec<Pattern> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| Pattern::random(&mut rng, width))
            .collect()
    }

    #[test]
    fn c17_random_sequence_reaches_full_transition_coverage() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = TransitionFaultList::universe(&c17);
        let total = faults.len();
        let mut sim = TransitionSim::new(&c17, faults);
        sim.simulate(&random_sequence(5, 3000, 7));
        assert_eq!(
            sim.report().detected,
            total,
            "c17 transition faults are all two-pattern testable"
        );
    }

    #[test]
    fn single_pattern_detects_nothing() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = TransitionFaultList::universe(&c17);
        let mut sim = TransitionSim::new(&c17, faults);
        assert_eq!(sim.simulate(&[Pattern::from_fn(5, |_| true)]), 0);
    }

    #[test]
    fn repeated_pattern_launches_nothing() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = TransitionFaultList::universe(&c17);
        let mut sim = TransitionSim::new(&c17, faults);
        let p = Pattern::from_fn(5, |i| i % 2 == 0);
        assert_eq!(sim.simulate(&[p.clone(), p.clone(), p]), 0);
    }

    #[test]
    fn hand_checked_buffer_chain() {
        // a -> buf -> y : slow-to-rise at "a" is detected exactly by the
        // ordered pair (0, 1); slow-to-fall by (1, 0).
        use bist_netlist::CircuitBuilder;
        let mut b = CircuitBuilder::new("chain");
        b.add_input("a").unwrap();
        b.add_gate("y", GateKind::Buf, &["a"]).unwrap();
        b.mark_output("y").unwrap();
        let c = b.build().unwrap();
        let a = c.find("a").unwrap();

        let rise: TransitionFaultList = [TransitionFault::stem(a, Transition::SlowToRise)]
            .into_iter()
            .collect();
        let mut sim = TransitionSim::new(&c, rise.clone());
        let zero = Pattern::from_bits(&[false]);
        let one = Pattern::from_bits(&[true]);
        sim.simulate(&[zero.clone(), one.clone()]);
        assert_eq!(sim.report().detected, 1);
        assert_eq!(sim.first_detection(0), Some(1), "capture happens at t=1");

        let mut sim = TransitionSim::new(&c, rise);
        sim.simulate(&[one.clone(), zero.clone()]);
        assert_eq!(
            sim.report().detected,
            0,
            "falling pair cannot launch a rise"
        );

        let fall: TransitionFaultList = [TransitionFault::stem(a, Transition::SlowToFall)]
            .into_iter()
            .collect();
        let mut sim = TransitionSim::new(&c, fall);
        sim.simulate(&[one, zero]);
        assert_eq!(sim.report().detected, 1);
    }

    #[test]
    fn branch_fault_requires_propagation_through_its_gate_only() {
        // stem s fans out to AND(s, en) and to output y2 = BUF(s).
        // The branch fault s->AND slow-to-rise needs en=1 at capture;
        // the stem fault is observable through the buffer regardless.
        use bist_netlist::CircuitBuilder;
        let mut b = CircuitBuilder::new("fan");
        b.add_input("s").unwrap();
        b.add_input("en").unwrap();
        b.add_gate("y1", GateKind::And, &["s", "en"]).unwrap();
        b.add_gate("y2", GateKind::Buf, &["s"]).unwrap();
        b.mark_output("y1").unwrap();
        b.mark_output("y2").unwrap();
        let c = b.build().unwrap();
        let y1 = c.find("y1").unwrap();
        let s = c.find("s").unwrap();

        let faults: TransitionFaultList = [
            TransitionFault::branch(y1, 0, Transition::SlowToRise),
            TransitionFault::stem(s, Transition::SlowToRise),
        ]
        .into_iter()
        .collect();

        // launch s: 0 -> 1 with en=0 at capture: branch undetected, stem
        // detected via y2
        let mut sim = TransitionSim::new(&c, faults.clone());
        sim.simulate(&[
            Pattern::from_bits(&[false, false]),
            Pattern::from_bits(&[true, false]),
        ]);
        assert_eq!(sim.status_of(0), FaultStatus::Undetected);
        assert_eq!(sim.status_of(1), FaultStatus::Detected);

        // same launch with en=1 at capture: both detected
        let mut sim = TransitionSim::new(&c, faults);
        sim.simulate(&[
            Pattern::from_bits(&[false, true]),
            Pattern::from_bits(&[true, true]),
        ]);
        assert_eq!(sim.status_of(0), FaultStatus::Detected);
        assert_eq!(sim.status_of(1), FaultStatus::Detected);
    }

    #[test]
    fn chunked_equals_monolithic() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = TransitionFaultList::universe(&c);
        let patterns = random_sequence(c.inputs().len(), 300, 42);

        let mut mono = TransitionSim::new(&c, faults.clone());
        mono.simulate(&patterns);

        let mut chunked = TransitionSim::new(&c, faults);
        for chunk in patterns.chunks(37) {
            chunked.simulate(chunk);
        }
        assert_eq!(mono.statuses(), chunked.statuses());
        for i in 0..mono.faults().len() {
            assert_eq!(
                mono.first_detection(i),
                chunked.first_detection(i),
                "fault {i}"
            );
        }
    }

    #[test]
    fn transition_coverage_lags_stuck_at_coverage() {
        // the paper's premise: the same random sequence detects fewer
        // delay faults than stuck-at faults (two-pattern tests are rarer)
        let c = bist_netlist::iscas85::circuit("c880").unwrap();
        let patterns = random_sequence(c.inputs().len(), 128, 880);

        let tf = TransitionFaultList::universe(&c);
        let mut tsim = TransitionSim::new(&c, tf);
        tsim.simulate(&patterns);

        let sa = bist_fault::FaultList::stuck_at_collapsed(&c);
        let mut ssim = bist_faultsim::FaultSim::new(&c, sa);
        ssim.simulate(&patterns);

        assert!(
            tsim.report().coverage_pct() < ssim.report().coverage_pct(),
            "transition {:.2}% vs stuck-at {:.2}%",
            tsim.report().coverage_pct(),
            ssim.report().coverage_pct()
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = TransitionFaultList::universe(&c17);
        let mut sim = TransitionSim::new(&c17, faults);
        sim.simulate(&random_sequence(5, 100, 1));
        assert!(sim.report().detected > 0);
        sim.reset();
        assert_eq!(sim.report().detected, 0);
        assert_eq!(sim.patterns_seen(), 0);
    }
}
