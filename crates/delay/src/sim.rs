use bist_fault::FaultStatus;
use bist_faultsim::{BlockCtx, CoverageReport, Seeds, SimCounters, WordFault, WordSim};
use bist_logicsim::Pattern;
use bist_netlist::Circuit;

use crate::model::{TransitionFault, TransitionFaultList};

/// Parallel-pattern transition-fault simulator with fault dropping.
///
/// Patterns are applied as one continuous sequence — exactly what a BIST
/// generator does — so pattern `t-1` doubles as the initialization vector
/// of pattern `t` (launch-on-capture). A [`TransitionFault`] is detected
/// at step `t` when the faulted line transitions between `t-1` and `t` in
/// the good machine (launch) and the line's erroneously retained value is
/// observed at a primary output under pattern `t` (capture).
///
/// This is the transition-delay instantiation of the model-generic
/// [`WordSim`] engine shared with [`bist_faultsim::FaultSim`]: the model
/// contributes only the launch mask and the retained-value seed word;
/// the flattened-graph good machine, allocation-free levelized cone
/// propagation, live-list fault dropping, `bist-par` sharding
/// (bit-identical at every thread count) and carry checkpoints come from
/// the shared engine.
///
/// # Example
///
/// ```
/// use bist_delay::{TransitionFaultList, TransitionSim};
/// use bist_logicsim::Pattern;
///
/// let c17 = bist_netlist::iscas85::c17();
/// let faults = TransitionFaultList::universe(&c17);
/// let mut sim = TransitionSim::new(&c17, faults);
/// // one pattern alone launches no transition
/// assert_eq!(sim.simulate(&[Pattern::zeros(5)]), 0);
/// ```
#[derive(Debug)]
pub struct TransitionSim<'c> {
    /// The universe, kept in list form for [`TransitionSim::faults`] /
    /// [`TransitionSim::open_faults`] (the engine holds its own flat copy).
    list: TransitionFaultList,
    inner: WordSim<'c, TransitionFault>,
}

impl<'c> TransitionSim<'c> {
    /// Creates a simulator grading `faults` on `circuit`, with the pool
    /// width taken from `BIST_THREADS` / the machine.
    pub fn new(circuit: &'c Circuit, faults: TransitionFaultList) -> Self {
        let flat: Vec<TransitionFault> = faults.iter().copied().collect();
        TransitionSim {
            list: faults,
            inner: WordSim::new(circuit, flat),
        }
    }

    /// Re-creates a simulator mid-sequence from a carry checkpoint (see
    /// [`TransitionSim::carry_bits`]); feeding the rest of the sequence
    /// behaves exactly like one simulator that consumed it end to end,
    /// except [`TransitionSim::first_detection`] only covers faults
    /// detected after the resume point.
    pub fn resume(
        circuit: &'c Circuit,
        faults: TransitionFaultList,
        statuses: &[FaultStatus],
        carry: &[bool],
        patterns_seen: u32,
    ) -> Self {
        let flat: Vec<TransitionFault> = faults.iter().copied().collect();
        TransitionSim {
            list: faults,
            inner: WordSim::resume(circuit, flat, statuses, carry, patterns_seen),
        }
    }

    /// Sets the pool width for subsequent [`TransitionSim::simulate`]
    /// calls (`0` = automatic). Grading results never depend on this knob.
    pub fn set_threads(&mut self, threads: usize) {
        self.inner.set_threads(threads);
    }

    /// Builder form of [`TransitionSim::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// The pool width grading currently uses.
    pub fn threads(&self) -> usize {
        self.inner.threads()
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &'c Circuit {
        self.inner.circuit()
    }

    /// The fault universe being graded.
    pub fn faults(&self) -> &TransitionFaultList {
        &self.list
    }

    /// Status of fault `index`.
    pub fn status_of(&self, index: usize) -> FaultStatus {
        self.inner.status_of(index)
    }

    /// All statuses, parallel to [`TransitionSim::faults`].
    pub fn statuses(&self) -> &[FaultStatus] {
        self.inner.statuses()
    }

    /// Overrides the status of fault `index` (the delay ATPG uses this for
    /// redundant / aborted bookkeeping).
    pub fn set_status(&mut self, index: usize, status: FaultStatus) {
        self.inner.set_status(index, status);
    }

    /// Global index of the first pattern whose capture detected fault
    /// `index`.
    pub fn first_detection(&self, index: usize) -> Option<u32> {
        self.inner.first_detection(index)
    }

    /// Number of patterns consumed so far.
    pub fn patterns_seen(&self) -> u32 {
        self.inner.patterns_seen()
    }

    /// The work performed so far. Deterministic at every thread width.
    pub fn counters(&self) -> SimCounters {
        self.inner.counters()
    }

    /// The good-machine node values after the last consumed pattern — the
    /// launch carry. Together with [`TransitionSim::statuses`] and
    /// [`TransitionSim::patterns_seen`] this is a complete mid-sequence
    /// checkpoint for [`TransitionSim::resume`].
    pub fn carry_bits(&self) -> &[bool] {
        self.inner.carry_bits()
    }

    /// Forgets all grading results and the sequence position.
    pub fn reset(&mut self) {
        self.inner.reset();
    }

    /// Grades `patterns` (in order, continuing any previously fed
    /// sequence). Returns the number of newly detected faults.
    pub fn simulate(&mut self, patterns: &[Pattern]) -> usize {
        self.inner.simulate(patterns)
    }

    /// Coverage summary over the whole universe.
    pub fn report(&self) -> CoverageReport {
        self.inner.report()
    }

    /// The faults still open (undetected or aborted), with their indices.
    pub fn open_faults(&self) -> Vec<(usize, TransitionFault)> {
        self.list
            .iter()
            .enumerate()
            .filter(|(i, _)| self.inner.status_of(*i).is_open())
            .map(|(i, f)| (i, *f))
            .collect()
    }
}

impl WordFault for TransitionFault {
    /// The retained-value seed at the effect site: where the launch mask
    /// excites the fault, the line (stem) or the gate input (branch)
    /// erroneously keeps its initial value through capture.
    fn seeds(&self, ctx: &BlockCtx<'_>) -> Seeds {
        let g = ctx.graph;
        let site = self.site.index();
        let excite = launch_mask(ctx, *self);
        if excite & ctx.valid == 0 {
            return Seeds::NONE;
        }
        let init_word = if self.initial_value() { !0u64 } else { 0 };
        let fv = match self.pin {
            None => {
                // The stem erroneously retains the initial value where
                // excited; elsewhere it follows the good machine.
                let good = ctx.good[site];
                (good & !excite) | (init_word & excite)
            }
            Some(p) => {
                // Only the branch into pin `p` is late: re-evaluate the gate
                // with that pin forced to the initial value where excited.
                g.kind(site)
                    .eval_word_iter(g.fanin(site).iter().enumerate().map(|(k, &f)| {
                        let good = ctx.good[f as usize];
                        if k == p as usize {
                            (good & !excite) | (init_word & excite)
                        } else {
                            good
                        }
                    }))
            }
        };
        let diff = (fv ^ ctx.good[site]) & ctx.valid;
        if diff == 0 {
            return Seeds::NONE;
        }
        Seeds::one(site as u32, fv)
    }
}

/// Word of patterns where the faulted line launches its transition:
/// driver held the initial value at `t-1` and the final value at `t`.
fn launch_mask(ctx: &BlockCtx<'_>, fault: TransitionFault) -> u64 {
    let driver = match fault.pin {
        None => fault.site.index(),
        Some(p) => ctx.graph.fanin(fault.site.index())[p as usize] as usize,
    };
    let g = ctx.good[driver];
    let before = ctx.prev[driver];
    let init = fault.initial_value();
    let was_init = if init { before } else { !before };
    let is_final = if init { !g } else { g };
    was_init & is_final
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Transition;
    use bist_netlist::GateKind;
    use rand::{rngs::StdRng, SeedableRng};

    fn random_sequence(width: usize, count: usize, seed: u64) -> Vec<Pattern> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| Pattern::random(&mut rng, width))
            .collect()
    }

    #[test]
    fn c17_random_sequence_reaches_full_transition_coverage() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = TransitionFaultList::universe(&c17);
        let total = faults.len();
        let mut sim = TransitionSim::new(&c17, faults);
        sim.simulate(&random_sequence(5, 3000, 7));
        assert_eq!(
            sim.report().detected,
            total,
            "c17 transition faults are all two-pattern testable"
        );
    }

    #[test]
    fn single_pattern_detects_nothing() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = TransitionFaultList::universe(&c17);
        let mut sim = TransitionSim::new(&c17, faults);
        assert_eq!(sim.simulate(&[Pattern::from_fn(5, |_| true)]), 0);
    }

    #[test]
    fn repeated_pattern_launches_nothing() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = TransitionFaultList::universe(&c17);
        let mut sim = TransitionSim::new(&c17, faults);
        let p = Pattern::from_fn(5, |i| i % 2 == 0);
        assert_eq!(sim.simulate(&[p.clone(), p.clone(), p]), 0);
    }

    #[test]
    fn hand_checked_buffer_chain() {
        // a -> buf -> y : slow-to-rise at "a" is detected exactly by the
        // ordered pair (0, 1); slow-to-fall by (1, 0).
        use bist_netlist::CircuitBuilder;
        let mut b = CircuitBuilder::new("chain");
        b.add_input("a").unwrap();
        b.add_gate("y", GateKind::Buf, &["a"]).unwrap();
        b.mark_output("y").unwrap();
        let c = b.build().unwrap();
        let a = c.find("a").unwrap();

        let rise: TransitionFaultList = [TransitionFault::stem(a, Transition::SlowToRise)]
            .into_iter()
            .collect();
        let mut sim = TransitionSim::new(&c, rise.clone());
        let zero = Pattern::from_bits(&[false]);
        let one = Pattern::from_bits(&[true]);
        sim.simulate(&[zero.clone(), one.clone()]);
        assert_eq!(sim.report().detected, 1);
        assert_eq!(sim.first_detection(0), Some(1), "capture happens at t=1");

        let mut sim = TransitionSim::new(&c, rise);
        sim.simulate(&[one.clone(), zero.clone()]);
        assert_eq!(
            sim.report().detected,
            0,
            "falling pair cannot launch a rise"
        );

        let fall: TransitionFaultList = [TransitionFault::stem(a, Transition::SlowToFall)]
            .into_iter()
            .collect();
        let mut sim = TransitionSim::new(&c, fall);
        sim.simulate(&[one, zero]);
        assert_eq!(sim.report().detected, 1);
    }

    #[test]
    fn branch_fault_requires_propagation_through_its_gate_only() {
        // stem s fans out to AND(s, en) and to output y2 = BUF(s).
        // The branch fault s->AND slow-to-rise needs en=1 at capture;
        // the stem fault is observable through the buffer regardless.
        use bist_netlist::CircuitBuilder;
        let mut b = CircuitBuilder::new("fan");
        b.add_input("s").unwrap();
        b.add_input("en").unwrap();
        b.add_gate("y1", GateKind::And, &["s", "en"]).unwrap();
        b.add_gate("y2", GateKind::Buf, &["s"]).unwrap();
        b.mark_output("y1").unwrap();
        b.mark_output("y2").unwrap();
        let c = b.build().unwrap();
        let y1 = c.find("y1").unwrap();
        let s = c.find("s").unwrap();

        let faults: TransitionFaultList = [
            TransitionFault::branch(y1, 0, Transition::SlowToRise),
            TransitionFault::stem(s, Transition::SlowToRise),
        ]
        .into_iter()
        .collect();

        // launch s: 0 -> 1 with en=0 at capture: branch undetected, stem
        // detected via y2
        let mut sim = TransitionSim::new(&c, faults.clone());
        sim.simulate(&[
            Pattern::from_bits(&[false, false]),
            Pattern::from_bits(&[true, false]),
        ]);
        assert_eq!(sim.status_of(0), FaultStatus::Undetected);
        assert_eq!(sim.status_of(1), FaultStatus::Detected);

        // same launch with en=1 at capture: both detected
        let mut sim = TransitionSim::new(&c, faults);
        sim.simulate(&[
            Pattern::from_bits(&[false, true]),
            Pattern::from_bits(&[true, true]),
        ]);
        assert_eq!(sim.status_of(0), FaultStatus::Detected);
        assert_eq!(sim.status_of(1), FaultStatus::Detected);
    }

    #[test]
    fn chunked_equals_monolithic() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = TransitionFaultList::universe(&c);
        let patterns = random_sequence(c.inputs().len(), 300, 42);

        let mut mono = TransitionSim::new(&c, faults.clone());
        mono.simulate(&patterns);

        let mut chunked = TransitionSim::new(&c, faults);
        for chunk in patterns.chunks(37) {
            chunked.simulate(chunk);
        }
        assert_eq!(mono.statuses(), chunked.statuses());
        for i in 0..mono.faults().len() {
            assert_eq!(
                mono.first_detection(i),
                chunked.first_detection(i),
                "fault {i}"
            );
        }
    }

    #[test]
    fn parallel_grading_is_bit_identical_to_serial() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = TransitionFaultList::universe(&c);
        let patterns = random_sequence(c.inputs().len(), 400, 7);

        let mut serial = TransitionSim::new(&c, faults.clone()).with_threads(1);
        serial.simulate(&patterns);

        for threads in [2, 4] {
            let mut par = TransitionSim::new(&c, faults.clone()).with_threads(threads);
            par.simulate(&patterns);
            assert_eq!(serial.statuses(), par.statuses(), "threads={threads}");
            for i in 0..serial.faults().len() {
                assert_eq!(
                    serial.first_detection(i),
                    par.first_detection(i),
                    "threads={threads}, fault {i}"
                );
            }
            assert_eq!(
                serial.counters(),
                par.counters(),
                "work counters drift at threads={threads}"
            );
        }
    }

    #[test]
    fn resume_from_carry_checkpoint_matches_straight_run() {
        let c = bist_netlist::iscas85::circuit("c432").unwrap();
        let faults = TransitionFaultList::universe(&c);
        let patterns = random_sequence(c.inputs().len(), 200, 23);

        let mut straight = TransitionSim::new(&c, faults.clone());
        straight.simulate(&patterns);

        let mut head = TransitionSim::new(&c, faults.clone());
        head.simulate(&patterns[..77]);
        let mut tail = TransitionSim::resume(
            &c,
            faults,
            head.statuses(),
            head.carry_bits(),
            head.patterns_seen(),
        );
        tail.simulate(&patterns[77..]);

        assert_eq!(straight.statuses(), tail.statuses());
        assert_eq!(straight.patterns_seen(), tail.patterns_seen());
    }

    #[test]
    fn transition_coverage_lags_stuck_at_coverage() {
        // the paper's premise: the same random sequence detects fewer
        // delay faults than stuck-at faults (two-pattern tests are rarer)
        let c = bist_netlist::iscas85::circuit("c880").unwrap();
        let patterns = random_sequence(c.inputs().len(), 128, 880);

        let tf = TransitionFaultList::universe(&c);
        let mut tsim = TransitionSim::new(&c, tf);
        tsim.simulate(&patterns);

        let sa = bist_fault::FaultList::stuck_at_collapsed(&c);
        let mut ssim = bist_faultsim::FaultSim::new(&c, sa);
        ssim.simulate(&patterns);

        assert!(
            tsim.report().coverage_pct() < ssim.report().coverage_pct(),
            "transition {:.2}% vs stuck-at {:.2}%",
            tsim.report().coverage_pct(),
            ssim.report().coverage_pct()
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let c17 = bist_netlist::iscas85::c17();
        let faults = TransitionFaultList::universe(&c17);
        let mut sim = TransitionSim::new(&c17, faults);
        sim.simulate(&random_sequence(5, 100, 1));
        assert!(sim.report().detected > 0);
        sim.reset();
        assert_eq!(sim.report().detected, 0);
        assert_eq!(sim.patterns_seen(), 0);
    }
}
