//! Content-addressed on-disk result cache.
//!
//! A mixed-BIST job is a pure function: the realized circuit, the flow
//! configuration and the variant's budgets fully determine the result,
//! bit for bit, at every pool width. The cache exploits that by
//! addressing results with a SHA-256 digest of exactly those inputs
//! (see [`job_digest`]): a repeated job — the batch-sweep workload shape
//! of the hybrid-BIST literature — is served from disk in milliseconds
//! instead of re-running seconds-to-minutes of fault simulation.
//!
//! **What participates in the key** — the canonical `.bench` text of the
//! *realized* circuit plus its name, the LFSR polynomial, the ATPG
//! options, the full area model, the job kind and its budgets, and
//! [`CACHE_SCHEMA_VERSION`]. The
//! schema version makes invalidation structural: when the stored layout
//! (or the meaning of any digested field) changes, the version bump
//! changes every key, and entries written by older trees are simply
//! never addressed again.
//!
//! **What does not** — the pool width (`threads`). Results are
//! bit-identical at every width, so a result computed at one width may
//! answer a job requested at any other.
//!
//! **Atomicity** — entries are written to a temporary file in the cache
//! directory and then renamed into place. On POSIX filesystems the
//! rename is atomic, so concurrent writers (a parallel
//! [`Engine::run_batch`](crate::Engine::run_batch), or two `bist`
//! processes) race benignly: readers see either nothing or a complete
//! entry, never a torn one. A corrupt or foreign file decodes to `None`
//! and is treated as a miss.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use bist_faultmodel::FaultModel;
use bist_netlist::{bench, Circuit};
use bist_synth::CellKind;

use crate::codec::{self, CACHE_SCHEMA_VERSION};
use crate::digest::Sha256;
use crate::json;
use crate::result::JobResult;
use crate::spec::{HdlLanguage, JobSpec};

/// Environment variable naming the default cache directory.
pub const CACHE_DIR_ENV: &str = "BIST_CACHE_DIR";

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
}

/// In-memory recency tracking for the LRU size cap: a monotone tick is
/// recorded per key on every hit and store. Keys this handle never
/// touched (entries left by earlier processes) have no tick and evict
/// first, ordered by file mtime.
#[derive(Debug, Default)]
struct Recency {
    tick: AtomicU64,
    touched: Mutex<BTreeMap<String, u64>>,
}

impl Recency {
    fn touch(&self, key: &str) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        self.touched
            .lock()
            .expect("recency lock never poisoned")
            .insert(key.to_owned(), tick);
    }
}

/// Handle on one on-disk cache directory, with process-lifetime
/// hit/miss/store counters and an optional LRU size cap.
///
/// Cloning shares the counters and the recency state (an
/// [`Engine`](crate::Engine) and the caller observing it count
/// together). The directory is created lazily on the first store.
#[derive(Debug, Clone, Default)]
pub struct ResultCache {
    dir: PathBuf,
    capacity: Option<u64>,
    counters: Arc<Counters>,
    recency: Arc<Recency>,
}

/// What [`ResultCache::disk_stats`] found on disk, plus this handle's
/// lifetime eviction count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheDiskStats {
    /// Number of cache entries.
    pub entries: usize,
    /// Total size of all entries, bytes.
    pub bytes: u64,
    /// Entries evicted by the size cap since this handle was created.
    pub evictions: u64,
}

impl ResultCache {
    /// A cache rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        ResultCache {
            dir: dir.into(),
            ..ResultCache::default()
        }
    }

    /// Caps the cache at `bytes` on disk: every store that pushes the
    /// directory past the cap evicts least-recently-used entries (see
    /// [`ResultCache::evict_to`]) until it fits again. `bist serve`
    /// runs its server-lifetime cache with a cap; the one-shot CLI
    /// leaves it unbounded.
    #[must_use]
    pub fn with_capacity(mut self, bytes: u64) -> Self {
        self.capacity = Some(bytes);
        self
    }

    /// The configured size cap, if any.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// A cache rooted at `$BIST_CACHE_DIR`, if the variable is set and
    /// non-empty.
    pub fn from_env() -> Option<Self> {
        match std::env::var(CACHE_DIR_ENV) {
            Ok(dir) if !dir.is_empty() => Some(Self::at(dir)),
            _ => None,
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Jobs answered from disk since this cache handle was created.
    pub fn hits(&self) -> u64 {
        self.counters.hits.load(Ordering::Relaxed)
    }

    /// Jobs that had to be computed.
    pub fn misses(&self) -> u64 {
        self.counters.misses.load(Ordering::Relaxed)
    }

    /// Results written to disk.
    pub fn stores(&self) -> u64 {
        self.counters.stores.load(Ordering::Relaxed)
    }

    /// Entries evicted by the size cap since this handle was created.
    pub fn evictions(&self) -> u64 {
        self.counters.evictions.load(Ordering::Relaxed)
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Looks `key` up on disk, counting a hit or a miss. Anything short
    /// of a complete, same-schema entry — absent file, torn write,
    /// foreign layout — is a miss.
    pub fn lookup(&self, key: &str) -> Option<JobResult> {
        let result = std::fs::read_to_string(self.entry_path(key))
            .ok()
            .and_then(|text| json::parse(&text).ok())
            .and_then(|doc| codec::decode_result(&doc));
        match &result {
            Some(_) => {
                self.recency.touch(key);
                self.counters.hits.fetch_add(1, Ordering::Relaxed)
            }
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Stores `result` under `key` atomically (write to a temporary
    /// sibling, then rename). Storage failures are deliberately silent —
    /// a read-only or full cache directory degrades to "no cache", it
    /// never fails the job that just computed a perfectly good result.
    pub fn store(&self, key: &str, result: &JobResult) {
        let text = codec::encode_result(result).render_pretty();
        let path = self.entry_path(key);
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        // the temp name must be unique per *writer*, not just per
        // process: one run_batch can compute the same key on two pool
        // workers (duplicate jobs in a manifest), and a shared temp path
        // would let one writer rename the other's half-written file into
        // place — exactly the torn entry the rename scheme exists to
        // prevent
        static WRITER: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".tmp-{key}-{}-{}",
            std::process::id(),
            WRITER.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &path).is_ok() {
            self.counters.stores.fetch_add(1, Ordering::Relaxed);
            self.recency.touch(key);
            if let Some(capacity) = self.capacity {
                self.evict_to(capacity);
            }
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Evicts least-recently-used entries until the directory holds at
    /// most `budget` bytes; returns how many entries were removed (also
    /// accumulated into [`ResultCache::evictions`]).
    ///
    /// Recency is tracked in memory per handle (hits and stores touch a
    /// key); entries this handle never touched — left by earlier
    /// processes — are presumed coldest and evict first, oldest file
    /// modification time first. Removal failures are silent, like
    /// store's: a shared directory where another process already
    /// removed the file degrades gracefully.
    pub fn evict_to(&self, budget: u64) -> u64 {
        let mut entries: Vec<(String, u64, SystemTime)> = Vec::new();
        let mut total: u64 = 0;
        if let Ok(dir) = std::fs::read_dir(&self.dir) {
            for entry in dir.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(key) = name.strip_suffix(".json") {
                    if name.starts_with('.') {
                        continue;
                    }
                    let meta = match entry.metadata() {
                        Ok(meta) => meta,
                        Err(_) => continue,
                    };
                    let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                    total += meta.len();
                    entries.push((key.to_owned(), meta.len(), mtime));
                }
            }
        }
        if total <= budget {
            return 0;
        }
        // coldest first: untouched entries by mtime (ties broken by key
        // for determinism), then touched entries by recency tick
        let ticks = self
            .recency
            .touched
            .lock()
            .expect("recency lock never poisoned");
        entries.sort_by(
            |(ka, _, ma), (kb, _, mb)| match (ticks.get(ka), ticks.get(kb)) {
                (Some(a), Some(b)) => a.cmp(b),
                (None, Some(_)) => std::cmp::Ordering::Less,
                (Some(_), None) => std::cmp::Ordering::Greater,
                (None, None) => ma.cmp(mb).then_with(|| ka.cmp(kb)),
            },
        );
        drop(ticks);
        let mut evicted = 0;
        for (key, bytes, _) in entries {
            if total <= budget {
                break;
            }
            if std::fs::remove_file(self.entry_path(&key)).is_ok() {
                total = total.saturating_sub(bytes);
                evicted += 1;
                self.recency
                    .touched
                    .lock()
                    .expect("recency lock never poisoned")
                    .remove(&key);
            }
        }
        self.counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Counts the entries (and their bytes) currently on disk.
    pub fn disk_stats(&self) -> CacheDiskStats {
        let mut stats = CacheDiskStats {
            entries: 0,
            bytes: 0,
            evictions: self.evictions(),
        };
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.ends_with(".json") && !name.starts_with('.') {
                    stats.entries += 1;
                    stats.bytes += entry.metadata().map(|m| m.len()).unwrap_or(0);
                }
            }
        }
        stats
    }

    /// Removes every cache entry (leftover temporaries included);
    /// returns how many entries were removed.
    ///
    /// # Errors
    ///
    /// The first I/O error hit while listing or removing.
    pub fn clear(&self) -> std::io::Result<usize> {
        let mut removed = 0;
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if name.ends_with(".json") || name.starts_with(".tmp-") {
                std::fs::remove_file(entry.path())?;
                if name.ends_with(".json") && !name.starts_with('.') {
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }
}

/// A length-prefixed field write: unambiguous however the neighbouring
/// fields are shaped (no separator can be forged by field content).
fn feed(h: &mut Sha256, tag: &str, bytes: &[u8]) {
    h.update(&(tag.len() as u64).to_le_bytes());
    h.update(tag.as_bytes());
    h.update(&(bytes.len() as u64).to_le_bytes());
    h.update(bytes);
}

fn feed_u64(h: &mut Sha256, tag: &str, v: u64) {
    feed(h, tag, &v.to_le_bytes());
}

/// The content address of one job: a SHA-256 over the canonical
/// description of everything the result depends on.
///
/// Digested: the cache schema version, the job kind, the realized
/// circuit (name + canonical `.bench` text), the flow configuration
/// (polynomial, ATPG options, the full area model) and the variant's
/// budgets. **Not** digested: `config.threads` — results are
/// bit-identical at every pool width, so the cache deliberately serves
/// across widths.
pub fn job_digest(circuit: &Circuit, spec: &JobSpec) -> String {
    let mut h = Sha256::new();
    feed_u64(&mut h, "cache-schema", CACHE_SCHEMA_VERSION);
    feed(&mut h, "kind", spec.kind().as_bytes());
    feed(&mut h, "circuit-name", circuit.name().as_bytes());
    feed(&mut h, "netlist", bench::write(circuit).as_bytes());

    let config = spec.config();
    feed_u64(&mut h, "poly", config.poly.mask());
    feed_u64(
        &mut h,
        "atpg-backtrack",
        u64::from(config.atpg.podem.backtrack_limit),
    );
    feed_u64(&mut h, "atpg-fill-seed", config.atpg.podem.fill_seed);
    feed_u64(
        &mut h,
        "atpg-no-compaction",
        u64::from(config.atpg.no_compaction),
    );
    feed_u64(
        &mut h,
        "area-routing",
        config.area.routing_factor().to_bits(),
    );
    for kind in CellKind::ALL {
        feed_u64(
            &mut h,
            &format!("area-{kind}"),
            config.area.cell_area_um2(kind).to_bits(),
        );
    }

    match spec {
        JobSpec::SolveAt(s) => feed_u64(&mut h, "prefix-len", s.prefix_len as u64),
        JobSpec::Sweep(s) => {
            for &p in &s.prefix_lengths {
                feed_u64(&mut h, "prefix-len", p as u64);
            }
        }
        JobSpec::CoverageCurve(s) => {
            for &cp in &s.checkpoints {
                feed_u64(&mut h, "checkpoint", cp as u64);
            }
        }
        JobSpec::Bakeoff(s) => feed_u64(&mut h, "random-length", s.random_length as u64),
        JobSpec::EmitHdl(s) => {
            feed_u64(&mut h, "prefix-len", s.prefix_len as u64);
            let language = match s.language {
                HdlLanguage::Verilog => "verilog",
                HdlLanguage::Vhdl => "vhdl",
                HdlLanguage::Both => "both",
            };
            feed(&mut h, "language", language.as_bytes());
            feed(
                &mut h,
                "module-name",
                s.module_name
                    .as_deref()
                    .unwrap_or("\u{0}default")
                    .as_bytes(),
            );
            feed_u64(&mut h, "testbench", u64::from(s.testbench));
        }
        JobSpec::CoverageEstimate(s) => {
            feed_u64(&mut h, "prefix-len", s.prefix_len as u64);
            feed_u64(&mut h, "samples", s.samples as u64);
            feed_u64(&mut h, "confidence", u64::from(s.confidence));
            feed_u64(&mut h, "estimate-seed", s.seed);
        }
        // lint has no budgets: the circuit and schema version fully
        // determine the report
        JobSpec::AreaReport(_) | JobSpec::Lint(_) => {}
    }

    // The fault model joined the spec after stuck-at results were
    // already on disk: the default feeds nothing, so every digest (and
    // cache entry) minted before the field existed stays valid.
    let model = spec.fault_model();
    if !model.is_default() {
        feed(&mut h, "fault-model", model.name().as_bytes());
        if let FaultModel::Bridging { pairs, seed } = model {
            feed_u64(&mut h, "bridge-pairs", u64::from(pairs));
            feed_u64(&mut h, "bridge-seed", seed);
        }
    }
    h.finish_hex()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CircuitSource, SweepSpec};
    use bist_core::MixedSchemeConfig;

    fn c17() -> Circuit {
        bist_netlist::iscas85::c17()
    }

    fn sweep_spec(prefixes: &[usize], threads: usize) -> JobSpec {
        JobSpec::Sweep(SweepSpec {
            circuit: CircuitSource::iscas85("c17"),
            config: MixedSchemeConfig {
                threads,
                ..MixedSchemeConfig::default()
            },
            prefix_lengths: prefixes.to_vec(),
            fault_model: FaultModel::default(),
            estimate_first: false,
        })
    }

    #[test]
    fn digest_is_stable_and_budget_sensitive() {
        let a = job_digest(&c17(), &sweep_spec(&[0, 8], 0));
        assert_eq!(a, job_digest(&c17(), &sweep_spec(&[0, 8], 0)));
        assert_ne!(a, job_digest(&c17(), &sweep_spec(&[0, 9], 0)));
        assert_ne!(a, job_digest(&c17(), &sweep_spec(&[8, 0], 0)));
        assert_ne!(
            a,
            job_digest(&c17(), &JobSpec::solve_at(CircuitSource::iscas85("c17"), 0))
        );
    }

    #[test]
    fn digest_ignores_pool_width() {
        assert_eq!(
            job_digest(&c17(), &sweep_spec(&[0, 8], 1)),
            job_digest(&c17(), &sweep_spec(&[0, 8], 4))
        );
    }

    #[test]
    fn digest_sees_the_circuit_structure_and_name() {
        let c17 = c17();
        let renamed = bench::parse("c17b", &bench::write(&c17)).expect("round-trip");
        let spec = sweep_spec(&[0, 8], 0);
        assert_ne!(job_digest(&c17, &spec), job_digest(&renamed, &spec));
        let other = bist_netlist::iscas85::circuit("c432").expect("known");
        assert_ne!(job_digest(&c17, &spec), job_digest(&other, &spec));
    }

    #[test]
    fn digest_separates_fault_models_but_not_the_default_one() {
        // The explicit default must hash exactly like specs built before
        // the field existed (the constructor path): old cache entries
        // stay addressable.
        let baseline = job_digest(&c17(), &sweep_spec(&[0, 8], 0));
        let with_model = |model: FaultModel| {
            let mut spec = sweep_spec(&[0, 8], 0);
            if let JobSpec::Sweep(s) = &mut spec {
                s.fault_model = model;
            }
            job_digest(&c17(), &spec)
        };
        assert_eq!(baseline, with_model(FaultModel::StuckAt));

        let transition = with_model(FaultModel::Transition);
        let bridging = with_model(FaultModel::bridging());
        assert_ne!(baseline, transition);
        assert_ne!(baseline, bridging);
        assert_ne!(transition, bridging);
        // bridging universes are parameterized: pairs/seed are part of
        // the key
        assert_ne!(
            bridging,
            with_model(FaultModel::Bridging {
                pairs: 7,
                seed: 0x1dd9,
            })
        );
    }

    #[test]
    fn digest_ignores_estimate_first() {
        // The preview only changes what streams before the exact run; the
        // committed result is byte-identical, so an estimate-first job
        // must hit (and warm) the same cache entry as the plain one.
        let baseline = job_digest(&c17(), &sweep_spec(&[0, 8], 0));
        let mut spec = sweep_spec(&[0, 8], 0);
        if let JobSpec::Sweep(s) = &mut spec {
            s.estimate_first = true;
        }
        assert_eq!(baseline, job_digest(&c17(), &spec));
    }

    #[test]
    fn digest_sees_the_configuration() {
        let mut config = MixedSchemeConfig::default();
        config.atpg.podem.backtrack_limit += 1;
        let tweaked = JobSpec::Sweep(SweepSpec {
            circuit: CircuitSource::iscas85("c17"),
            config,
            prefix_lengths: vec![0, 8],
            fault_model: FaultModel::default(),
            estimate_first: false,
        });
        assert_ne!(
            job_digest(&c17(), &sweep_spec(&[0, 8], 0)),
            job_digest(&c17(), &tweaked)
        );
    }

    fn unique_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "bist-cache-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn tiny_result() -> JobResult {
        crate::Engine::with_threads(1)
            .run(JobSpec::lint(CircuitSource::iscas85("c17")))
            .expect("c17 lints")
    }

    #[test]
    fn capped_store_evicts_least_recently_used() {
        let dir = unique_dir("lru");
        let result = tiny_result();
        // measure one entry, then cap the cache at two entries' bytes
        let probe = ResultCache::at(&dir);
        probe.store("probe", &result);
        let entry_bytes = probe.disk_stats().bytes;
        probe.clear().expect("probe clear");
        assert!(entry_bytes > 0);

        let cache = ResultCache::at(&dir).with_capacity(2 * entry_bytes);
        assert_eq!(cache.capacity(), Some(2 * entry_bytes));
        cache.store("aaaa", &result);
        cache.store("bbbb", &result);
        assert_eq!(cache.evictions(), 0);
        // touch `aaaa` so `bbbb` is now the least recently used
        assert!(cache.lookup("aaaa").is_some());
        cache.store("cccc", &result);
        let stats = cache.disk_stats();
        assert_eq!(stats.entries, 2, "cap holds two entries");
        assert_eq!(stats.evictions, 1);
        assert!(cache.lookup("aaaa").is_some(), "recently used survives");
        assert!(cache.lookup("cccc").is_some(), "just-stored survives");
        assert!(cache.lookup("bbbb").is_none(), "LRU entry was evicted");
        cache.clear().expect("clear");
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn untouched_entries_evict_before_touched_ones() {
        let dir = unique_dir("lru-foreign");
        let result = tiny_result();
        // a "foreign" entry this handle never touched
        ResultCache::at(&dir).store("foreign", &result);
        let cache = ResultCache::at(&dir);
        cache.store("mine", &result);
        let evicted = cache.evict_to(cache.disk_stats().bytes - 1);
        assert_eq!(evicted, 1);
        assert!(cache.lookup("mine").is_some(), "touched entry survives");
        let stats = cache.disk_stats();
        assert_eq!(stats.entries, 1);
        cache.clear().expect("clear");
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn evict_to_is_a_noop_under_budget() {
        let dir = unique_dir("lru-noop");
        let cache = ResultCache::at(&dir);
        cache.store("only", &tiny_result());
        assert_eq!(cache.evict_to(u64::MAX), 0);
        assert_eq!(cache.evictions(), 0);
        cache.clear().expect("clear");
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn from_env_requires_the_variable() {
        // the test runner may or may not export it; only exercise the
        // explicit constructor here
        let cache = ResultCache::at("/tmp/bist-cache-test-nonexistent");
        assert_eq!(cache.disk_stats().entries, 0);
        assert_eq!(cache.clear().expect("missing dir clears to 0"), 0);
    }
}
