//! Serialization of [`JobResult`] for the on-disk result cache.
//!
//! The encoding is designed around one guarantee: **a decoded result is
//! bit-identical to the one that was stored**. Two consequences shape
//! the format:
//!
//! * every `f64` is stored as its IEEE-754 bit pattern
//!   ([`Json::f64_bits`]), never as a rounded decimal;
//! * the verified [`MixedGenerator`] is *not* flattened into the file.
//!   [`MixedGenerator::build`] is a pure function of
//!   `(width, poly, prefix_len, deterministic)`, so the cache stores
//!   exactly those inputs and rebuilds the generator (netlist, replay
//!   model, hand-over decode and all) on load. That keeps cache entries
//!   a few kilobytes instead of megabytes of netlist.
//!
//! Decoding is total: any structural mismatch — truncated file, foreign
//! layout, a generator that no longer rebuilds — returns `None` and the
//! cache treats the entry as a miss. The layout is versioned by
//! [`CACHE_SCHEMA_VERSION`]; bump it whenever this module (or anything
//! a digest or encoding depends on) changes meaning, and every stale
//! entry invalidates itself.

use bist_baselines::{Bakeoff, BakeoffRow};
use bist_core::{MixedGenerator, MixedSolution, SessionStats, SweepSummary};
use bist_faultsim::{CoverageCurve, CoverageReport};
use bist_lfsr::Polynomial;
use bist_lint::{Diagnostic, LintReport, RankedNode, RuleCode, ScoapSummary, Severity, Span};
use bist_logicsim::Pattern;

use crate::json::Json;
use crate::result::{
    AreaReportOutcome, BakeoffOutcome, CurveOutcome, EstimateOutcome, HdlOutcome, JobResult,
    LintOutcome, SolveAtOutcome, SweepOutcome,
};

/// Version of the cached-result layout *and* of the cache-key digest
/// recipe. Participates in both, so bumping it orphans every existing
/// entry at the lookup stage already.
///
/// History: 1 = initial layout; 2 = added the `lint` kind; 3 = added
/// the `estimate` kind.
pub const CACHE_SCHEMA_VERSION: u64 = 3;

/// Every architecture name a [`BakeoffRow`] can carry. Rows intern their
/// names as `&'static str`; decoding maps file strings back through this
/// table (an unknown name fails the decode — by construction it was
/// written by a different tree).
const ARCHITECTURES: [&str; 8] = [
    "mixed",
    "lfsrom",
    "lfsr",
    "cellular-automaton",
    "counter-pla",
    "lfsr-reseeding",
    "rom-counter",
    "weighted-random",
];

/// Encodes one result as the full cache-file document.
pub fn encode_result(result: &JobResult) -> Json {
    let (kind, body) = match result {
        JobResult::SolveAt(o) => ("solve-at", encode_solve_at(o)),
        JobResult::Sweep(o) => ("sweep", encode_sweep(o)),
        JobResult::CoverageCurve(o) => ("coverage-curve", encode_curve(o)),
        JobResult::Bakeoff(o) => ("bakeoff", encode_bakeoff(o)),
        JobResult::EmitHdl(o) => ("emit-hdl", encode_hdl(o)),
        JobResult::AreaReport(o) => ("area-report", encode_area(o)),
        JobResult::Lint(o) => ("lint", encode_lint(o)),
        JobResult::CoverageEstimate(o) => ("estimate", encode_estimate(o)),
    };
    let mut doc = Json::object();
    doc.push("cache_schema", Json::uint(CACHE_SCHEMA_VERSION as usize));
    doc.push("kind", Json::str(kind));
    doc.push("result", body);
    doc
}

/// Decodes a cache-file document; `None` on any mismatch.
pub fn decode_result(doc: &Json) -> Option<JobResult> {
    if doc.get("cache_schema")?.as_usize()? != CACHE_SCHEMA_VERSION as usize {
        return None;
    }
    let body = doc.get("result")?;
    Some(match doc.get("kind")?.as_str()? {
        "solve-at" => JobResult::SolveAt(decode_solve_at(body)?),
        "sweep" => JobResult::Sweep(decode_sweep(body)?),
        "coverage-curve" => JobResult::CoverageCurve(decode_curve(body)?),
        "bakeoff" => JobResult::Bakeoff(decode_bakeoff(body)?),
        "emit-hdl" => JobResult::EmitHdl(decode_hdl(body)?),
        "area-report" => JobResult::AreaReport(decode_area(body)?),
        "lint" => JobResult::Lint(decode_lint(body)?),
        "estimate" => JobResult::CoverageEstimate(decode_estimate(body)?),
        _ => return None,
    })
}

fn encode_coverage(r: &CoverageReport) -> Json {
    let mut o = Json::object();
    o.push("detected", Json::uint(r.detected));
    o.push("redundant", Json::uint(r.redundant));
    o.push("aborted", Json::uint(r.aborted));
    o.push("undetected", Json::uint(r.undetected));
    o
}

fn decode_coverage(j: &Json) -> Option<CoverageReport> {
    Some(CoverageReport {
        detected: j.get("detected")?.as_usize()?,
        redundant: j.get("redundant")?.as_usize()?,
        aborted: j.get("aborted")?.as_usize()?,
        undetected: j.get("undetected")?.as_usize()?,
    })
}

fn encode_stats(s: &SessionStats) -> Json {
    let mut o = Json::object();
    o.push("patterns_simulated", Json::uint(s.patterns_simulated));
    o.push("patterns_resimulated", Json::uint(s.patterns_resimulated));
    o.push("atpg_runs", Json::uint(s.atpg_runs));
    o.push("atpg_cache_hits", Json::uint(s.atpg_cache_hits));
    o.push("podem_cache_hits", Json::uint(s.podem_cache_hits));
    o.push("snapshots_taken", Json::uint(s.snapshots_taken));
    o.push("snapshots_skipped", Json::uint(s.snapshots_skipped));
    o
}

fn decode_stats(j: &Json) -> Option<SessionStats> {
    Some(SessionStats {
        patterns_simulated: j.get("patterns_simulated")?.as_usize()?,
        patterns_resimulated: j.get("patterns_resimulated")?.as_usize()?,
        atpg_runs: j.get("atpg_runs")?.as_usize()?,
        atpg_cache_hits: j.get("atpg_cache_hits")?.as_usize()?,
        podem_cache_hits: j.get("podem_cache_hits")?.as_usize()?,
        snapshots_taken: j.get("snapshots_taken")?.as_usize()?,
        snapshots_skipped: j.get("snapshots_skipped")?.as_usize()?,
    })
}

fn encode_solution(s: &MixedSolution) -> Json {
    let g = &s.generator;
    let mut gen_j = Json::object();
    gen_j.push("width", Json::uint(g.width()));
    gen_j.push("poly", Json::Str(format!("{:016x}", g.poly().mask())));
    gen_j.push("prefix_len", Json::uint(g.prefix_len()));
    gen_j.push(
        "deterministic",
        Json::Array(
            g.deterministic()
                .iter()
                .map(|p| Json::Str(p.to_string()))
                .collect(),
        ),
    );

    let mut o = Json::object();
    o.push("prefix_len", Json::uint(s.prefix_len));
    o.push("det_len", Json::uint(s.det_len));
    o.push("coverage", encode_coverage(&s.coverage));
    o.push("prefix_coverage", encode_coverage(&s.prefix_coverage));
    o.push("generator_area_mm2", Json::f64_bits(s.generator_area_mm2));
    o.push("chip_area_mm2", Json::f64_bits(s.chip_area_mm2));
    o.push("generator", gen_j);
    o
}

fn decode_solution(j: &Json) -> Option<MixedSolution> {
    let g = j.get("generator")?;
    let width = g.get("width")?.as_usize()?;
    let poly = Polynomial::from_mask(u64::from_str_radix(g.get("poly")?.as_str()?, 16).ok()?);
    let prefix_len = g.get("prefix_len")?.as_usize()?;
    let deterministic: Vec<Pattern> = g
        .get("deterministic")?
        .as_array()?
        .iter()
        .map(|p| p.as_str()?.parse().ok())
        .collect::<Option<_>>()?;
    let generator = MixedGenerator::build(width, poly, prefix_len, &deterministic).ok()?;

    let solution = MixedSolution {
        prefix_len: j.get("prefix_len")?.as_usize()?,
        det_len: j.get("det_len")?.as_usize()?,
        coverage: decode_coverage(j.get("coverage")?)?,
        prefix_coverage: decode_coverage(j.get("prefix_coverage")?)?,
        generator_area_mm2: j.get("generator_area_mm2")?.as_f64_bits()?,
        chip_area_mm2: j.get("chip_area_mm2")?.as_f64_bits()?,
        generator,
    };
    // internal consistency: the rebuilt generator must implement the
    // point the solution claims
    if solution.generator.prefix_len() != solution.prefix_len
        || solution.generator.deterministic().len() != solution.det_len
    {
        return None;
    }
    Some(solution)
}

fn encode_solve_at(o: &SolveAtOutcome) -> Json {
    let mut j = Json::object();
    j.push("circuit", Json::str(&o.circuit));
    j.push("solution", encode_solution(&o.solution));
    j.push("stats", encode_stats(&o.stats));
    j
}

fn decode_solve_at(j: &Json) -> Option<SolveAtOutcome> {
    Some(SolveAtOutcome {
        circuit: j.get("circuit")?.as_str()?.to_owned(),
        solution: decode_solution(j.get("solution")?)?,
        stats: decode_stats(j.get("stats")?)?,
    })
}

fn encode_sweep(o: &SweepOutcome) -> Json {
    let mut j = Json::object();
    j.push("circuit", Json::str(&o.circuit));
    j.push(
        "solutions",
        Json::Array(o.summary.solutions().iter().map(encode_solution).collect()),
    );
    j.push("stats", encode_stats(&o.stats));
    j
}

fn decode_sweep(j: &Json) -> Option<SweepOutcome> {
    let solutions: Vec<MixedSolution> = j
        .get("solutions")?
        .as_array()?
        .iter()
        .map(decode_solution)
        .collect::<Option<_>>()?;
    Some(SweepOutcome {
        circuit: j.get("circuit")?.as_str()?.to_owned(),
        summary: SweepSummary::from_solutions(solutions),
        stats: decode_stats(j.get("stats")?)?,
    })
}

fn encode_curve(o: &CurveOutcome) -> Json {
    let mut j = Json::object();
    j.push("circuit", Json::str(&o.circuit));
    j.push(
        "points",
        Json::Array(
            o.curve
                .points()
                .iter()
                .map(|&(len, pct)| {
                    let mut p = Json::object();
                    p.push("len", Json::uint(len));
                    p.push("pct", Json::f64_bits(pct));
                    p
                })
                .collect(),
        ),
    );
    j.push("fault_universe", Json::uint(o.fault_universe));
    j
}

fn decode_curve(j: &Json) -> Option<CurveOutcome> {
    let points: Vec<(usize, f64)> = j
        .get("points")?
        .as_array()?
        .iter()
        .map(|p| Some((p.get("len")?.as_usize()?, p.get("pct")?.as_f64_bits()?)))
        .collect::<Option<_>>()?;
    Some(CurveOutcome {
        circuit: j.get("circuit")?.as_str()?.to_owned(),
        curve: CoverageCurve::new(points),
        fault_universe: j.get("fault_universe")?.as_usize()?,
    })
}

fn encode_bakeoff(o: &BakeoffOutcome) -> Json {
    let mut j = Json::object();
    j.push("circuit", Json::str(&o.circuit));
    j.push(
        "rows",
        Json::Array(
            o.bakeoff
                .rows
                .iter()
                .map(|r| {
                    let mut row = Json::object();
                    row.push("architecture", Json::str(r.architecture));
                    row.push("test_length", Json::uint(r.test_length));
                    row.push("area_mm2", Json::f64_bits(r.area_mm2));
                    row.push("coverage_pct", Json::f64_bits(r.coverage_pct));
                    row.push("deterministic", Json::Bool(r.deterministic));
                    row
                })
                .collect(),
        ),
    );
    j.push("achievable_pct", Json::f64_bits(o.bakeoff.achievable_pct));
    j.push(
        "atpg_coverage_pct",
        Json::f64_bits(o.bakeoff.atpg_coverage_pct),
    );
    j.push(
        "deterministic_patterns",
        Json::uint(o.bakeoff.deterministic_patterns),
    );
    j
}

fn decode_bakeoff(j: &Json) -> Option<BakeoffOutcome> {
    let rows: Vec<BakeoffRow> = j
        .get("rows")?
        .as_array()?
        .iter()
        .map(|r| {
            let name = r.get("architecture")?.as_str()?;
            let architecture = *ARCHITECTURES.iter().find(|a| **a == name)?;
            Some(BakeoffRow {
                architecture,
                test_length: r.get("test_length")?.as_usize()?,
                area_mm2: r.get("area_mm2")?.as_f64_bits()?,
                coverage_pct: r.get("coverage_pct")?.as_f64_bits()?,
                deterministic: r.get("deterministic")?.as_bool()?,
            })
        })
        .collect::<Option<_>>()?;
    Some(BakeoffOutcome {
        circuit: j.get("circuit")?.as_str()?.to_owned(),
        bakeoff: Bakeoff {
            rows,
            achievable_pct: j.get("achievable_pct")?.as_f64_bits()?,
            atpg_coverage_pct: j.get("atpg_coverage_pct")?.as_f64_bits()?,
            deterministic_patterns: j.get("deterministic_patterns")?.as_usize()?,
        },
    })
}

fn optional_text(value: Option<&String>) -> Json {
    match value {
        Some(text) => Json::str(text),
        None => Json::Null,
    }
}

fn decode_optional_text(j: &Json) -> Option<Option<String>> {
    match j {
        Json::Null => Some(None),
        Json::Str(s) => Some(Some(s.clone())),
        _ => None,
    }
}

fn encode_hdl(o: &HdlOutcome) -> Json {
    let mut j = Json::object();
    j.push("circuit", Json::str(&o.circuit));
    j.push("module", Json::str(&o.module));
    j.push("solution", encode_solution(&o.solution));
    j.push("verilog", optional_text(o.verilog.as_ref()));
    j.push("vhdl", optional_text(o.vhdl.as_ref()));
    j.push("testbench", optional_text(o.testbench.as_ref()));
    j
}

fn decode_hdl(j: &Json) -> Option<HdlOutcome> {
    Some(HdlOutcome {
        circuit: j.get("circuit")?.as_str()?.to_owned(),
        module: j.get("module")?.as_str()?.to_owned(),
        solution: decode_solution(j.get("solution")?)?,
        verilog: decode_optional_text(j.get("verilog")?)?,
        vhdl: decode_optional_text(j.get("vhdl")?)?,
        testbench: decode_optional_text(j.get("testbench")?)?,
    })
}

fn encode_area(o: &AreaReportOutcome) -> Json {
    let mut j = Json::object();
    j.push("circuit", Json::str(&o.circuit));
    j.push("inputs", Json::uint(o.inputs));
    j.push("det_len", Json::uint(o.det_len));
    j.push("chip_mm2", Json::f64_bits(o.chip_mm2));
    j.push("generator_mm2", Json::f64_bits(o.generator_mm2));
    j.push("overhead_pct", Json::f64_bits(o.overhead_pct));
    j.push("coverage_pct", Json::f64_bits(o.coverage_pct));
    j
}

fn decode_area(j: &Json) -> Option<AreaReportOutcome> {
    Some(AreaReportOutcome {
        circuit: j.get("circuit")?.as_str()?.to_owned(),
        inputs: j.get("inputs")?.as_usize()?,
        det_len: j.get("det_len")?.as_usize()?,
        chip_mm2: j.get("chip_mm2")?.as_f64_bits()?,
        generator_mm2: j.get("generator_mm2")?.as_f64_bits()?,
        overhead_pct: j.get("overhead_pct")?.as_f64_bits()?,
        coverage_pct: j.get("coverage_pct")?.as_f64_bits()?,
    })
}

fn encode_diagnostic(d: &Diagnostic) -> Json {
    let mut j = Json::object();
    j.push("code", Json::str(d.code.code()));
    j.push("severity", Json::str(d.severity.label()));
    j.push("line", Json::uint(d.span.line));
    j.push("message", Json::str(&d.message));
    j
}

fn decode_diagnostic(j: &Json) -> Option<Diagnostic> {
    let severity = match j.get("severity")?.as_str()? {
        "info" => Severity::Info,
        "warning" => Severity::Warn,
        "error" => Severity::Error,
        _ => return None,
    };
    Some(Diagnostic {
        code: RuleCode::from_code(j.get("code")?.as_str()?)?,
        severity,
        message: j.get("message")?.as_str()?.to_owned(),
        span: Span::line(j.get("line")?.as_usize()?),
    })
}

fn encode_worst(worst: Option<&(String, u32)>) -> Json {
    match worst {
        Some((name, value)) => {
            let mut j = Json::object();
            j.push("name", Json::str(name));
            j.push("value", Json::uint(*value as usize));
            j
        }
        None => Json::Null,
    }
}

fn decode_worst(j: &Json) -> Option<Option<(String, u32)>> {
    match j {
        Json::Null => Some(None),
        _ => Some(Some((
            j.get("name")?.as_str()?.to_owned(),
            u32::try_from(j.get("value")?.as_usize()?).ok()?,
        ))),
    }
}

fn encode_scoap(s: &ScoapSummary) -> Json {
    let mut j = Json::object();
    j.push("nodes", Json::uint(s.nodes));
    j.push("max_cc0", encode_worst(s.max_cc0.as_ref()));
    j.push("max_cc1", encode_worst(s.max_cc1.as_ref()));
    j.push("max_co", encode_worst(s.max_co.as_ref()));
    j.push(
        "resistance",
        Json::Array(
            s.resistance
                .iter()
                .map(|r| {
                    let mut node = Json::object();
                    node.push("name", Json::str(&r.name));
                    node.push("cc0", Json::uint(r.cc0 as usize));
                    node.push("cc1", Json::uint(r.cc1 as usize));
                    node.push("co", Json::uint(r.co as usize));
                    node.push("score", Json::uint(r.score as usize));
                    node
                })
                .collect(),
        ),
    );
    j
}

fn decode_scoap(j: &Json) -> Option<ScoapSummary> {
    let resistance: Vec<RankedNode> = j
        .get("resistance")?
        .as_array()?
        .iter()
        .map(|r| {
            Some(RankedNode {
                name: r.get("name")?.as_str()?.to_owned(),
                cc0: u32::try_from(r.get("cc0")?.as_usize()?).ok()?,
                cc1: u32::try_from(r.get("cc1")?.as_usize()?).ok()?,
                co: u32::try_from(r.get("co")?.as_usize()?).ok()?,
                score: r.get("score")?.as_usize()? as u64,
            })
        })
        .collect::<Option<_>>()?;
    Some(ScoapSummary {
        nodes: j.get("nodes")?.as_usize()?,
        max_cc0: decode_worst(j.get("max_cc0")?)?,
        max_cc1: decode_worst(j.get("max_cc1")?)?,
        max_co: decode_worst(j.get("max_co")?)?,
        resistance,
    })
}

fn encode_lint(o: &LintOutcome) -> Json {
    let mut j = Json::object();
    j.push("circuit", Json::str(&o.circuit));
    j.push(
        "diagnostics",
        Json::Array(o.report.diagnostics.iter().map(encode_diagnostic).collect()),
    );
    j.push(
        "scoap",
        match &o.report.scoap {
            Some(s) => encode_scoap(s),
            None => Json::Null,
        },
    );
    j
}

fn decode_lint(j: &Json) -> Option<LintOutcome> {
    let diagnostics: Vec<Diagnostic> = j
        .get("diagnostics")?
        .as_array()?
        .iter()
        .map(decode_diagnostic)
        .collect::<Option<_>>()?;
    let scoap = match j.get("scoap")? {
        Json::Null => None,
        s => Some(decode_scoap(s)?),
    };
    Some(LintOutcome {
        circuit: j.get("circuit")?.as_str()?.to_owned(),
        report: LintReport { diagnostics, scoap },
    })
}

fn encode_estimate(o: &EstimateOutcome) -> Json {
    let mut j = Json::object();
    j.push("circuit", Json::str(&o.circuit));
    j.push("fault_universe", Json::uint(o.fault_universe));
    j.push("representatives", Json::uint(o.representatives));
    j.push("prefix_len", Json::uint(o.prefix_len));
    j.push("samples", Json::uint(o.samples));
    j.push("detected_samples", Json::uint(o.detected_samples));
    j.push("estimate_pct", Json::f64_bits(o.estimate_pct));
    j.push("lo_pct", Json::f64_bits(o.lo_pct));
    j.push("hi_pct", Json::f64_bits(o.hi_pct));
    j.push("confidence", Json::uint(o.confidence as usize));
    j.push("seed", Json::Str(format!("{:016x}", o.seed)));
    j
}

fn decode_estimate(j: &Json) -> Option<EstimateOutcome> {
    Some(EstimateOutcome {
        circuit: j.get("circuit")?.as_str()?.to_owned(),
        fault_universe: j.get("fault_universe")?.as_usize()?,
        representatives: j.get("representatives")?.as_usize()?,
        prefix_len: j.get("prefix_len")?.as_usize()?,
        samples: j.get("samples")?.as_usize()?,
        detected_samples: j.get("detected_samples")?.as_usize()?,
        estimate_pct: j.get("estimate_pct")?.as_f64_bits()?,
        lo_pct: j.get("lo_pct")?.as_f64_bits()?,
        hi_pct: j.get("hi_pct")?.as_f64_bits()?,
        confidence: u32::try_from(j.get("confidence")?.as_usize()?).ok()?,
        seed: u64::from_str_radix(j.get("seed")?.as_str()?, 16).ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::spec::{CircuitSource, JobSpec};
    use crate::Engine;

    fn round_trip(result: &JobResult) -> JobResult {
        let text = encode_result(result).render_pretty();
        let doc = json::parse(&text).expect("encoder emits valid JSON");
        decode_result(&doc).expect("own encoding decodes")
    }

    fn assert_solutions_identical(a: &MixedSolution, b: &MixedSolution) {
        assert_eq!(a.prefix_len, b.prefix_len);
        assert_eq!(a.det_len, b.det_len);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.prefix_coverage, b.prefix_coverage);
        assert_eq!(
            a.generator_area_mm2.to_bits(),
            b.generator_area_mm2.to_bits()
        );
        assert_eq!(a.chip_area_mm2.to_bits(), b.chip_area_mm2.to_bits());
        assert_eq!(a.generator.deterministic(), b.generator.deterministic());
        assert_eq!(a.generator.poly(), b.generator.poly());
        assert_eq!(
            bist_netlist::bench::write(a.generator.netlist()),
            bist_netlist::bench::write(b.generator.netlist())
        );
    }

    #[test]
    fn sweep_round_trips_bit_identically() {
        let engine = Engine::with_threads(1);
        let result = engine
            .run(JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 4, 8]))
            .expect("c17 sweep");
        let back = round_trip(&result);
        let (a, b) = (
            result.as_sweep().expect("sweep"),
            back.as_sweep().expect("sweep"),
        );
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.summary.solutions().len(), b.summary.solutions().len());
        for (x, y) in a.summary.solutions().iter().zip(b.summary.solutions()) {
            assert_solutions_identical(x, y);
        }
    }

    #[test]
    fn hdl_round_trips_artefacts_byte_exactly() {
        let engine = Engine::with_threads(1);
        let result = engine
            .run(JobSpec::emit_hdl(CircuitSource::iscas85("c17"), 4))
            .expect("c17 hdl");
        let back = round_trip(&result);
        let (a, b) = (
            result.as_emit_hdl().expect("hdl"),
            back.as_emit_hdl().expect("hdl"),
        );
        assert_eq!(a.module, b.module);
        assert_eq!(a.verilog, b.verilog);
        assert_eq!(a.vhdl, b.vhdl);
        assert_eq!(a.testbench, b.testbench);
        assert_solutions_identical(&a.solution, &b.solution);
    }

    #[test]
    fn curve_and_area_round_trip() {
        let engine = Engine::with_threads(1);
        let curve = engine
            .run(JobSpec::coverage_curve(
                CircuitSource::iscas85("c17"),
                [0, 8],
            ))
            .expect("c17 curve");
        let back = round_trip(&curve);
        let (a, b) = (
            curve.as_coverage_curve().expect("curve"),
            back.as_coverage_curve().expect("curve"),
        );
        assert_eq!(a.fault_universe, b.fault_universe);
        assert_eq!(a.curve.points().len(), b.curve.points().len());
        for ((l1, c1), (l2, c2)) in a.curve.points().iter().zip(b.curve.points()) {
            assert_eq!(l1, l2);
            assert_eq!(c1.to_bits(), c2.to_bits());
        }

        let area = engine
            .run(JobSpec::area_report(CircuitSource::iscas85("c17")))
            .expect("c17 area");
        let back = round_trip(&area);
        let (a, b) = (
            area.as_area_report().expect("area"),
            back.as_area_report().expect("area"),
        );
        assert_eq!(a.det_len, b.det_len);
        assert_eq!(a.chip_mm2.to_bits(), b.chip_mm2.to_bits());
        assert_eq!(a.overhead_pct.to_bits(), b.overhead_pct.to_bits());
    }

    #[test]
    fn bakeoff_round_trips_and_interns_architectures() {
        let engine = Engine::with_threads(1);
        let result = engine
            .run(JobSpec::bakeoff(CircuitSource::iscas85("c17"), 16))
            .expect("c17 bakeoff");
        let back = round_trip(&result);
        let (a, b) = (
            result.as_bakeoff().expect("bakeoff"),
            back.as_bakeoff().expect("bakeoff"),
        );
        assert_eq!(a.bakeoff.rows.len(), b.bakeoff.rows.len());
        for (x, y) in a.bakeoff.rows.iter().zip(&b.bakeoff.rows) {
            // pointer-equal interned names, value-equal payloads
            assert_eq!(x.architecture, y.architecture);
            assert_eq!(x.test_length, y.test_length);
            assert_eq!(x.area_mm2.to_bits(), y.area_mm2.to_bits());
            assert_eq!(x.coverage_pct.to_bits(), y.coverage_pct.to_bits());
        }
        assert_eq!(
            a.bakeoff.achievable_pct.to_bits(),
            b.bakeoff.achievable_pct.to_bits()
        );
    }

    #[test]
    fn lint_round_trips_exactly() {
        let engine = Engine::with_threads(1);
        let result = engine
            .run(JobSpec::lint(CircuitSource::iscas85("c17")))
            .expect("c17 lint");
        let back = round_trip(&result);
        let (a, b) = (
            result.as_lint().expect("lint"),
            back.as_lint().expect("lint"),
        );
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.report, b.report);
        assert!(a.report.scoap.is_some());

        // a parse-failure report (no SCOAP summary) round-trips too
        let broken = engine
            .run(JobSpec::lint(CircuitSource::bench(
                "broken",
                "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)",
            )))
            .expect("lint reports defects instead of failing");
        let back = round_trip(&broken);
        assert_eq!(
            broken.as_lint().expect("lint").report,
            back.as_lint().expect("lint").report
        );
    }

    #[test]
    fn estimate_round_trips_bit_identically() {
        let engine = Engine::with_threads(1);
        let result = engine
            .run(JobSpec::estimate(CircuitSource::iscas85("c17"), 32))
            .expect("c17 estimate");
        let back = round_trip(&result);
        let (a, b) = (
            result.as_estimate().expect("estimate"),
            back.as_estimate().expect("estimate"),
        );
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.fault_universe, b.fault_universe);
        assert_eq!(a.representatives, b.representatives);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.detected_samples, b.detected_samples);
        assert_eq!(a.estimate_pct.to_bits(), b.estimate_pct.to_bits());
        assert_eq!(a.lo_pct.to_bits(), b.lo_pct.to_bits());
        assert_eq!(a.hi_pct.to_bits(), b.hi_pct.to_bits());
        assert_eq!(a.confidence, b.confidence);
        assert_eq!(a.seed, b.seed);
    }

    #[test]
    fn foreign_documents_decode_to_none() {
        for text in [
            "{}",
            r#"{"cache_schema": 999, "kind": "sweep", "result": {}}"#,
            r#"{"cache_schema": 3, "kind": "unheard-of", "result": {}}"#,
            r#"{"cache_schema": 3, "kind": "sweep", "result": {"circuit": "x"}}"#,
            // entries written before the lint / estimate kinds existed
            r#"{"cache_schema": 1, "kind": "sweep", "result": {}}"#,
            r#"{"cache_schema": 2, "kind": "sweep", "result": {}}"#,
        ] {
            let doc = json::parse(text).expect("well-formed JSON");
            assert!(decode_result(&doc).is_none(), "`{text}` must not decode");
        }
    }
}
