//! Dependency-free SHA-256, the content address of the result cache.
//!
//! The workspace is fully offline (no crates.io), so the cache's digest
//! primitive lives in-tree: a straightforward, safe implementation of
//! FIPS 180-4 SHA-256. Throughput is irrelevant here — a cache key
//! digests a few kilobytes of canonical job description against seconds
//! -to-minutes of fault simulation — collision resistance is what makes
//! "same digest ⇒ same job" sound.

/// Streaming SHA-256 hasher.
///
/// # Example
///
/// ```
/// use bist_engine::digest::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finish_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher (FIPS 180-4 initial state).
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: [0; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    /// Absorbs `bytes` into the running digest.
    pub fn update(&mut self, bytes: &[u8]) {
        self.length_bytes = self.length_bytes.wrapping_add(bytes.len() as u64);
        let mut rest = bytes;
        if self.buffered > 0 {
            let take = rest.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("split_at(64) yields 64 bytes"));
            rest = tail;
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Pads, finalizes and returns the 32-byte digest.
    pub fn finish(mut self) -> [u8; 32] {
        let bit_len = self.length_bytes.wrapping_mul(8);
        // padding never changes the message length bookkeeping
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        // pad to 56 mod 64, then the 8-byte big-endian bit length
        let pad_len = 1 + (119 - self.buffered) % 64;
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        let total = pad_len + 8;
        let keep = self.length_bytes;
        self.update(&pad[..total]);
        debug_assert_eq!(self.buffered, 0, "padding fills the final block");
        self.length_bytes = keep;
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// The digest as 64 lowercase hex characters.
    pub fn finish_hex(self) -> String {
        let mut out = String::with_capacity(64);
        for byte in self.finish() {
            out.push_str(&format!("{byte:02x}"));
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        let sums = [a, b, c, d, e, f, g, h];
        for (s, v) in self.state.iter_mut().zip(sums) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot convenience: the hex SHA-256 of `bytes`.
pub fn sha256_hex(bytes: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(bytes);
    h.finish_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVP known-answer vectors
    #[test]
    fn known_answers() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            h.finish_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn chunking_is_irrelevant() {
        let data: Vec<u8> = (0..251u32).map(|i| (i % 251) as u8).collect();
        let whole = sha256_hex(&data);
        for chunk in [1usize, 3, 63, 64, 65, 250] {
            let mut h = Sha256::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finish_hex(), whole, "chunk size {chunk}");
        }
    }
}
