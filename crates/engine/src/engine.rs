//! The job scheduler and per-job drivers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bist_baselines::{bakeoff, BakeoffConfig};
use bist_core::{BistSession, MixedGenerator, MixedSolution, SweepSummary};
use bist_faultmodel::{estimate_coverage, ModelSession};
use bist_faultsim::{CoverageCurve, CoverageReport};
use bist_hdl::{emit_verilog, emit_verilog_testbench, emit_vhdl, lint, HdlOptions};
use bist_lint::{LintOptions, LintReport};
use bist_logicsim::{Pattern, SeqSim};
use bist_netlist::{bench, Circuit};
use bist_par::Pool;

use crate::cache::{job_digest, ResultCache};
use crate::error::BistError;
use crate::handle::{JobHandle, JobSlot, SlotGuard};
use crate::progress::{CancelToken, JobId, ProgressEvent, ProgressFeed};
use crate::result::{
    AreaReportOutcome, BakeoffOutcome, CurveOutcome, EstimateOutcome, HdlOutcome, JobResult,
    LintOutcome, SolveAtOutcome, SweepOutcome,
};
use crate::spec::{
    AreaReportSpec, BakeoffSpec, CircuitSource, CoverageCurveSpec, EmitHdlSpec, EstimateSpec,
    HdlLanguage, JobSpec, LintSpec, SolveAtSpec, SweepSpec, DEFAULT_ESTIMATE_CONFIDENCE,
    DEFAULT_ESTIMATE_SAMPLES, DEFAULT_ESTIMATE_SEED,
};

/// The single public face of the workspace: validates [`JobSpec`]s,
/// schedules them across the `bist-par` pool, streams [`ProgressEvent`]s
/// and returns typed [`JobResult`]s.
///
/// One engine serves any number of jobs. [`Engine::submit`] returns an
/// asynchronous [`JobHandle`] carrying a per-job event feed, a
/// [`CancelToken`] and a blocking [`JobHandle::wait`]; the synchronous
/// [`Engine::run`] / [`Engine::run_batch`] are thin submit-then-wait
/// wrappers. Results are bit-identical at every pool width and to
/// driving [`BistSession`] by hand — the engine adds scheduling,
/// validation, progress and cancellation, never different numbers.
///
/// Cloning an engine is cheap and yields a second handle on the *same*
/// engine: the clones share the pool width, the result cache (and its
/// counters) and the job-id counter.
///
/// # Example
///
/// ```
/// use bist_engine::{CircuitSource, Engine, JobSpec};
///
/// let engine = Engine::new();
/// let result = engine.run(JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]))?;
/// let sweep = result.as_sweep().expect("sweep jobs yield sweep outcomes");
/// assert_eq!(sweep.summary.solutions().len(), 2);
/// # Ok::<(), bist_engine::BistError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

#[derive(Debug, Default)]
struct EngineInner {
    /// Pool width for batch sharding and the per-job engines (`0` =
    /// automatic: `BIST_THREADS` or the machine width).
    threads: usize,
    next_job: AtomicU64,
    cache: Option<ResultCache>,
}

impl Clone for EngineInner {
    fn clone(&self) -> Self {
        EngineInner {
            threads: self.threads,
            next_job: AtomicU64::new(self.next_job.load(Ordering::SeqCst)),
            cache: self.cache.clone(),
        }
    }
}

impl Engine {
    /// An engine with the automatic pool width (`BIST_THREADS` or the
    /// machine width).
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine pinned to a pool width (`1` = fully serial).
    pub fn with_threads(threads: usize) -> Self {
        Engine {
            inner: Arc::new(EngineInner {
                threads,
                ..EngineInner::default()
            }),
        }
    }

    /// The effective pool width jobs will run at.
    pub fn threads(&self) -> usize {
        Pool::resolve(self.inner.threads).threads()
    }

    /// Attaches a content-addressed result cache: jobs whose digest
    /// (realized circuit + configuration + budgets, see
    /// [`crate::cache::job_digest`]) matches a stored entry are answered
    /// from disk — bit-identically, at any pool width — and freshly
    /// computed results are stored for the next run.
    ///
    /// Engines have no cache unless one is attached; the `bist` CLI
    /// resolves `--cache-dir` / `BIST_CACHE_DIR` and attaches it here.
    ///
    /// # Example
    ///
    /// ```no_run
    /// use bist_engine::{Engine, ResultCache};
    ///
    /// let engine = Engine::new().with_result_cache(ResultCache::at("/var/cache/bist"));
    /// assert!(engine.cache().is_some());
    /// ```
    #[must_use]
    pub fn with_result_cache(mut self, cache: ResultCache) -> Self {
        Arc::make_mut(&mut self.inner).cache = Some(cache);
        self
    }

    /// The attached result cache, if any (its counters report this
    /// engine's hits/misses/stores).
    pub fn cache(&self) -> Option<&ResultCache> {
        self.inner.cache.as_ref()
    }

    fn next_id(&self) -> JobId {
        JobId(self.inner.next_job.fetch_add(1, Ordering::SeqCst))
    }

    /// Submits one job for asynchronous execution; the returned
    /// [`JobHandle`] owns the job's private progress feed, its
    /// cancellation token and the blocking [`JobHandle::wait`].
    ///
    /// # Examples
    ///
    /// ```
    /// use bist_engine::{CircuitSource, Engine, JobSpec, ProgressEvent};
    /// use std::time::Duration;
    ///
    /// let engine = Engine::new();
    /// let handle = engine.submit(JobSpec::solve_at(CircuitSource::iscas85("c17"), 8));
    /// // pull events without busy-waiting while the job runs
    /// while !handle.is_finished() {
    ///     if let Some(event) = handle.progress().poll_timeout(Duration::from_millis(10)) {
    ///         assert_eq!(event.job(), handle.id());
    ///     }
    /// }
    /// let result = handle.wait()?;
    /// assert!(result.as_solve_at().is_some());
    /// # Ok::<(), bist_engine::BistError>(())
    /// ```
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        let mut handles = self.submit_batch_with_cancel(vec![spec], &CancelToken::new());
        handles.pop().expect("one spec in, one handle out")
    }

    /// [`Engine::submit`] with a caller-held cancellation token.
    pub fn submit_with_cancel(&self, spec: JobSpec, cancel: &CancelToken) -> JobHandle {
        let mut handles = self.submit_batch_with_cancel(vec![spec], cancel);
        handles.pop().expect("one spec in, one handle out")
    }

    /// Submits a batch of jobs sharded across the pool, returning one
    /// [`JobHandle`] per spec, in spec order.
    ///
    /// With a parallel pool and more than one job, each job's own
    /// engines run serially (one level of parallelism, no
    /// oversubscription) — results are bit-identical either way.
    pub fn submit_batch(&self, specs: Vec<JobSpec>) -> Vec<JobHandle> {
        self.submit_batch_with_cancel(specs, &CancelToken::new())
    }

    /// [`Engine::submit_batch`] with a shared cancellation token:
    /// cancelling it stops every job still running at its next
    /// checkpoint.
    pub fn submit_batch_with_cancel(
        &self,
        specs: Vec<JobSpec>,
        cancel: &CancelToken,
    ) -> Vec<JobHandle> {
        let pool = Pool::resolve(self.inner.threads);
        let inner_threads = if pool.is_serial() || specs.len() <= 1 {
            self.inner.threads
        } else {
            1
        };
        let mut handles = Vec::with_capacity(specs.len());
        let mut work: Vec<(JobId, JobSpec, ProgressFeed, SlotGuard)> =
            Vec::with_capacity(specs.len());
        for mut spec in specs {
            if spec.config().threads == 0 {
                spec.set_threads(inner_threads);
            }
            let id = self.next_id();
            let label = format!("{} {}", spec.kind(), spec.circuit().label());
            let feed = ProgressFeed::new();
            let slot = Arc::new(JobSlot::default());
            handles.push(JobHandle {
                id,
                label: label.clone(),
                feed: feed.clone(),
                cancel: cancel.clone(),
                slot: slot.clone(),
            });
            feed.push(ProgressEvent::Queued { job: id, label });
            work.push((id, spec, feed, SlotGuard(slot)));
        }
        let engine = self.clone();
        let cancel = cancel.clone();
        std::thread::Builder::new()
            .name("bist-engine".to_owned())
            .spawn(move || {
                let pool = Pool::resolve(engine.inner.threads);
                pool.par_map(&work, |(id, spec, feed, guard)| {
                    match engine.execute(*id, spec, &cancel, feed) {
                        Ok((result, cached)) => guard.0.fill(Ok(result), cached),
                        Err(e) => guard.0.fill(Err(e), false),
                    }
                });
            })
            .expect("spawn engine scheduler thread");
        handles
    }

    /// Runs one job to completion — [`Engine::submit`] followed by
    /// [`JobHandle::wait`].
    ///
    /// # Examples
    ///
    /// ```
    /// use bist_engine::{CircuitSource, Engine, JobSpec};
    ///
    /// let engine = Engine::new();
    /// let result = engine.run(JobSpec::solve_at(CircuitSource::iscas85("c17"), 8))?;
    /// let solved = result.as_solve_at().expect("solve-at outcome");
    /// println!("{}", solved.solution); // "(p=8, d=…): coverage …"
    /// # Ok::<(), bist_engine::BistError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Any [`BistError`]: spec validation, circuit realization, the flow
    /// itself.
    pub fn run(&self, spec: JobSpec) -> Result<JobResult, BistError> {
        self.run_with_cancel(spec, &CancelToken::new())
    }

    /// [`Engine::run`] with a caller-held cancellation token; the job
    /// observes it between checkpoints and returns
    /// [`BistError::Canceled`].
    pub fn run_with_cancel(
        &self,
        spec: JobSpec,
        cancel: &CancelToken,
    ) -> Result<JobResult, BistError> {
        self.submit_with_cancel(spec, cancel).wait()
    }

    /// Runs a batch of jobs — [`Engine::submit_batch`] followed by a
    /// [`JobHandle::wait`] per handle. Returns one result per spec, in
    /// spec order.
    pub fn run_batch(&self, specs: Vec<JobSpec>) -> Vec<Result<JobResult, BistError>> {
        self.run_batch_with_cancel(specs, &CancelToken::new())
    }

    /// [`Engine::run_batch`] with a shared cancellation token: cancelling
    /// it stops every job still running at its next checkpoint.
    pub fn run_batch_with_cancel(
        &self,
        specs: Vec<JobSpec>,
        cancel: &CancelToken,
    ) -> Vec<Result<JobResult, BistError>> {
        self.submit_batch_with_cancel(specs, cancel)
            .into_iter()
            .map(JobHandle::wait)
            .collect()
    }

    /// Validates, realizes and drives one job, bracketing it with
    /// lifecycle events. The boolean marks a result answered from the
    /// cache.
    fn execute(
        &self,
        id: JobId,
        spec: &JobSpec,
        cancel: &CancelToken,
        feed: &ProgressFeed,
    ) -> Result<(JobResult, bool), BistError> {
        feed.push(ProgressEvent::Started { job: id });
        let result = self.drive(id, spec, cancel, feed);
        match &result {
            Ok((_, cached)) => feed.push(ProgressEvent::Finished {
                job: id,
                cache_hit: *cached,
            }),
            Err(BistError::Canceled) => feed.push(ProgressEvent::Canceled { job: id }),
            Err(e) => feed.push(ProgressEvent::Failed {
                job: id,
                message: e.to_string(),
            }),
        }
        result
    }

    fn drive(
        &self,
        id: JobId,
        spec: &JobSpec,
        cancel: &CancelToken,
        feed: &ProgressFeed,
    ) -> Result<(JobResult, bool), BistError> {
        spec.validate()?;
        if cancel.is_canceled() {
            return Err(BistError::Canceled);
        }
        // lint's contract is to *report* netlist defects, not fail on
        // them: a `.bench` source that doesn't parse becomes a
        // one-diagnostic report. (Uncached — the cache key requires a
        // realized circuit, and a defective source has none.)
        if let (JobSpec::Lint(_), CircuitSource::Bench { name, text }) = (spec, spec.circuit()) {
            if let Err(diagnostic) = bist_lint::parse_pass(name, text) {
                feed.push(ProgressEvent::Pass {
                    job: id,
                    name: "parse".to_owned(),
                });
                return Ok((
                    JobResult::Lint(LintOutcome {
                        circuit: name.clone(),
                        report: LintReport {
                            diagnostics: vec![diagnostic],
                            scoap: None,
                        },
                    }),
                    false,
                ));
            }
        }
        let circuit = spec.circuit().realize()?;
        // content-addressed short-circuit: a digest hit answers the job
        // from disk, bit-identically, without touching a session (a
        // cached job emits no Checkpoint events — only its lifecycle)
        let key = self
            .inner
            .cache
            .as_ref()
            .map(|cache| (cache, job_digest(&circuit, spec)));
        if let Some((cache, key)) = &key {
            if let Some(hit) = cache.lookup(key) {
                return Ok((hit, true));
            }
        }
        let result = match spec {
            JobSpec::SolveAt(s) => self.drive_solve_at(id, s, &circuit, feed),
            JobSpec::Sweep(s) => self.drive_sweep(id, s, &circuit, cancel, feed),
            JobSpec::CoverageCurve(s) => self.drive_curve(id, s, &circuit, cancel, feed),
            JobSpec::Bakeoff(s) => self.drive_bakeoff(s, &circuit),
            JobSpec::EmitHdl(s) => self.drive_emit_hdl(id, s, &circuit, feed),
            JobSpec::AreaReport(s) => self.drive_area_report(id, s, &circuit, feed),
            JobSpec::Lint(s) => self.drive_lint(id, s, &circuit, cancel, feed),
            JobSpec::CoverageEstimate(s) => self.drive_estimate(id, s, &circuit, feed),
        };
        if let (Some((cache, key)), Ok(result)) = (&key, &result) {
            cache.store(key, result);
        }
        result.map(|result| (result, false))
    }

    fn checkpoint(
        &self,
        feed: &ProgressFeed,
        id: JobId,
        prefix_len: usize,
        report: &CoverageReport,
    ) {
        feed.push(ProgressEvent::Checkpoint {
            job: id,
            prefix_len,
            coverage_pct: report.coverage_pct(),
        });
    }

    /// The estimate-first preview: a sampled Wilson-interval coverage
    /// estimate at `prefix_len`, pushed before the exact run produces
    /// anything. Runs only on a cold cache (`drive`'s digest lookup
    /// short-circuits first), uses the default sample budget, and never
    /// touches the job's outcome.
    fn estimate_preview(
        &self,
        feed: &ProgressFeed,
        id: JobId,
        s_config: &bist_core::MixedSchemeConfig,
        circuit: &Circuit,
        prefix_len: usize,
    ) {
        let e = estimate_coverage(
            circuit,
            s_config,
            prefix_len,
            DEFAULT_ESTIMATE_SAMPLES,
            DEFAULT_ESTIMATE_CONFIDENCE,
            DEFAULT_ESTIMATE_SEED,
        );
        feed.push(ProgressEvent::Estimate {
            job: id,
            prefix_len,
            samples: e.samples,
            estimate_pct: e.estimate_pct,
            lo_pct: e.lo_pct,
            hi_pct: e.hi_pct,
            confidence: e.confidence,
        });
    }

    // Single-point jobs (solve-at, emit-hdl, area-report) have no
    // internal checkpoint, so their only cancellation boundary is the
    // one before work starts (in `drive`): once the point is solved the
    // finished result is returned rather than discarded as canceled.

    fn drive_solve_at(
        &self,
        id: JobId,
        s: &SolveAtSpec,
        circuit: &Circuit,
        feed: &ProgressFeed,
    ) -> Result<JobResult, BistError> {
        if s.estimate_first {
            self.estimate_preview(feed, id, &s.config, circuit, s.prefix_len);
        }
        let mut session = ModelSession::new(circuit, s.config.clone(), s.fault_model);
        let solution = session.solve_at(s.prefix_len)?;
        self.checkpoint(feed, id, s.prefix_len, &solution.coverage);
        Ok(JobResult::SolveAt(SolveAtOutcome {
            circuit: circuit.name().to_owned(),
            solution,
            stats: session.stats(),
        }))
    }

    fn drive_sweep(
        &self,
        id: JobId,
        s: &SweepSpec,
        circuit: &Circuit,
        cancel: &CancelToken,
        feed: &ProgressFeed,
    ) -> Result<JobResult, BistError> {
        if s.estimate_first {
            // preview the sweep's longest prefix — the point the exact
            // run will take longest to confirm
            let longest = s.prefix_lengths.iter().copied().max().unwrap_or(0);
            self.estimate_preview(feed, id, &s.config, circuit, longest);
        }
        let mut session = ModelSession::new(circuit, s.config.clone(), s.fault_model);
        // ascending solve order keeps the incremental contract (each
        // pseudo-random pattern graded at most once) while leaving a
        // cancellation/progress boundary between points; results are
        // bit-identical to `ModelSession::sweep`
        let mut ascending: Vec<usize> = s.prefix_lengths.clone();
        ascending.sort_unstable();
        ascending.dedup();
        let mut solved: std::collections::BTreeMap<usize, MixedSolution> =
            std::collections::BTreeMap::new();
        for &p in &ascending {
            if cancel.is_canceled() {
                return Err(BistError::Canceled);
            }
            let solution = session.solve_at(p)?;
            self.checkpoint(feed, id, p, &solution.coverage);
            solved.insert(p, solution);
        }
        let solutions: Vec<MixedSolution> =
            s.prefix_lengths.iter().map(|p| solved[p].clone()).collect();
        Ok(JobResult::Sweep(SweepOutcome {
            circuit: circuit.name().to_owned(),
            summary: SweepSummary::from_solutions(solutions),
            stats: session.stats(),
        }))
    }

    fn drive_curve(
        &self,
        id: JobId,
        s: &CoverageCurveSpec,
        circuit: &Circuit,
        cancel: &CancelToken,
        feed: &ProgressFeed,
    ) -> Result<JobResult, BistError> {
        let mut session = ModelSession::new(circuit, s.config.clone(), s.fault_model);
        let universe = session.universe_len();
        let mut ascending: Vec<usize> = s.checkpoints.clone();
        ascending.sort_unstable();
        ascending.dedup();
        let mut at: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for &cp in &ascending {
            if cancel.is_canceled() {
                return Err(BistError::Canceled);
            }
            let point = session.random_coverage_curve(&[cp]);
            let pct = point.points()[0].1;
            feed.push(ProgressEvent::Checkpoint {
                job: id,
                prefix_len: cp,
                coverage_pct: pct,
            });
            at.insert(cp, pct);
        }
        let points: Vec<(usize, f64)> = s.checkpoints.iter().map(|&cp| (cp, at[&cp])).collect();
        Ok(JobResult::CoverageCurve(CurveOutcome {
            circuit: circuit.name().to_owned(),
            curve: CoverageCurve::new(points),
            fault_universe: universe,
        }))
    }

    fn drive_bakeoff(&self, s: &BakeoffSpec, circuit: &Circuit) -> Result<JobResult, BistError> {
        // one indivisible kernel: no internal checkpoint to cancel at
        let config = BakeoffConfig {
            random_length: s.random_length,
            model: s.config.area.clone(),
            threads: s.config.threads,
        };
        Ok(JobResult::Bakeoff(BakeoffOutcome {
            circuit: circuit.name().to_owned(),
            bakeoff: bakeoff(circuit, &config),
        }))
    }

    fn drive_emit_hdl(
        &self,
        id: JobId,
        s: &EmitHdlSpec,
        circuit: &Circuit,
        feed: &ProgressFeed,
    ) -> Result<JobResult, BistError> {
        let mut session = BistSession::new(circuit, s.config.clone());
        let solution = session.solve_at(s.prefix_len)?;
        self.checkpoint(feed, id, s.prefix_len, &solution.coverage);

        let module = s
            .module_name
            .clone()
            .unwrap_or_else(|| format!("{}_bist", circuit.name()));
        let generator = &solution.generator;
        let netlist = generator.netlist();
        let mut options = HdlOptions::default().with_module_name(module.clone());
        for (ff, value) in generator.reset_states() {
            options = options.with_reset_value(ff, value);
        }

        let verilog = match s.language {
            HdlLanguage::Verilog | HdlLanguage::Both => {
                let text = emit_verilog(netlist, &options);
                lint::check_verilog(&text)?;
                Some(text)
            }
            HdlLanguage::Vhdl => None,
        };
        let vhdl = match s.language {
            HdlLanguage::Vhdl | HdlLanguage::Both => {
                let text = emit_vhdl(netlist, &options);
                lint::check_vhdl(&text)?;
                Some(text)
            }
            HdlLanguage::Verilog => None,
        };
        let testbench = if s.testbench {
            let expected = cycle_trace(generator);
            let text = emit_verilog_testbench(netlist, &options, &expected);
            lint::check_verilog(&text)?;
            Some(text)
        } else {
            None
        };

        Ok(JobResult::EmitHdl(HdlOutcome {
            circuit: circuit.name().to_owned(),
            module,
            solution,
            verilog,
            vhdl,
            testbench,
        }))
    }

    fn analysis_pass(&self, feed: &ProgressFeed, id: JobId, name: &str) {
        feed.push(ProgressEvent::Pass {
            job: id,
            name: name.to_owned(),
        });
    }

    fn drive_lint(
        &self,
        id: JobId,
        s: &LintSpec,
        circuit: &Circuit,
        cancel: &CancelToken,
        feed: &ProgressFeed,
    ) -> Result<JobResult, BistError> {
        let options = LintOptions::default();
        // parse pass: recover the source map so diagnostics carry line
        // spans — against the user's own text for Bench sources, against
        // the canonical `.bench` serialization for everything else
        self.analysis_pass(feed, id, "parse");
        let map = match &s.circuit {
            CircuitSource::Bench { name, text } => {
                bist_lint::parse_pass(name, text).ok().map(|(_, m)| m)
            }
            _ => {
                let text = bench::write(circuit);
                bist_lint::parse_pass(circuit.name(), &text)
                    .ok()
                    .map(|(_, m)| m)
            }
        };
        if cancel.is_canceled() {
            return Err(BistError::Canceled);
        }
        self.analysis_pass(feed, id, "structural");
        let mut diagnostics = bist_lint::structural_pass(circuit, map.as_ref(), &options);
        if cancel.is_canceled() {
            return Err(BistError::Canceled);
        }
        self.analysis_pass(feed, id, "scoap");
        let (scoap_diags, summary) = bist_lint::scoap_pass(circuit, map.as_ref(), &options);
        diagnostics.extend(scoap_diags);
        Ok(JobResult::Lint(LintOutcome {
            circuit: circuit.name().to_owned(),
            report: LintReport {
                diagnostics,
                scoap: Some(summary),
            }
            .normalize(),
        }))
    }

    fn drive_estimate(
        &self,
        id: JobId,
        s: &EstimateSpec,
        circuit: &Circuit,
        feed: &ProgressFeed,
    ) -> Result<JobResult, BistError> {
        // one indivisible sampled grading pass: like solve-at, the only
        // cancellation boundary is the one before work starts
        let e = estimate_coverage(
            circuit,
            &s.config,
            s.prefix_len,
            s.samples,
            s.confidence,
            s.seed,
        );
        feed.push(ProgressEvent::Checkpoint {
            job: id,
            prefix_len: s.prefix_len,
            coverage_pct: e.estimate_pct,
        });
        Ok(JobResult::CoverageEstimate(EstimateOutcome {
            circuit: circuit.name().to_owned(),
            fault_universe: e.fault_universe,
            representatives: e.representatives,
            prefix_len: e.prefix_len,
            samples: e.samples,
            detected_samples: e.detected_samples,
            estimate_pct: e.estimate_pct,
            lo_pct: e.lo_pct,
            hi_pct: e.hi_pct,
            confidence: e.confidence,
            seed: e.seed,
        }))
    }

    fn drive_area_report(
        &self,
        id: JobId,
        s: &AreaReportSpec,
        circuit: &Circuit,
        feed: &ProgressFeed,
    ) -> Result<JobResult, BistError> {
        let mut session = BistSession::new(circuit, s.config.clone());
        let solution = session.solve_at(0)?;
        self.checkpoint(feed, id, 0, &solution.coverage);
        Ok(JobResult::AreaReport(AreaReportOutcome {
            circuit: circuit.name().to_owned(),
            inputs: circuit.inputs().len(),
            det_len: solution.det_len,
            chip_mm2: solution.chip_area_mm2,
            generator_mm2: solution.generator_area_mm2,
            overhead_pct: solution.overhead_pct(),
            coverage_pct: solution.coverage.coverage_pct(),
        }))
    }
}

/// The generator's primary outputs sampled every clock from the reset
/// state — exactly what the self-checking testbench compares against.
fn cycle_trace(generator: &MixedGenerator) -> Vec<Pattern> {
    let netlist = generator.netlist();
    let width = bist_core::MixedGenerator::width(generator);
    let mut sim = SeqSim::new(netlist);
    for (ff, value) in generator.reset_states() {
        sim.set_state(ff, value);
    }
    let outputs: Vec<_> = netlist.outputs().to_vec();
    let sample = |sim: &SeqSim<'_>| Pattern::from_fn(width, |b| sim.state(outputs[b]));
    let cycles = generator.prefix_len() * width + generator.deterministic().len();
    let mut trace = Vec::with_capacity(cycles + 1);
    trace.push(sample(&sim));
    for _ in 0..cycles {
        sim.step(&[false]);
        trace.push(sample(&sim));
    }
    trace
}
