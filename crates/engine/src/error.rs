//! The workspace-wide error hierarchy.
//!
//! Every failure an [`Engine`](crate::Engine) job can hit — malformed
//! netlist sources, unknown benchmark names, infeasible specs, generator
//! construction, HDL lint — surfaces as one [`BistError`], source-located
//! where a source exists. Nothing in the job pipeline panics on bad
//! input.

use std::fmt;

use bist_core::MixedSchemeError;
use bist_hdl::lint::LintError;
use bist_netlist::ParseBenchError;

/// Any failure of a [`crate::Engine`] job, from spec validation to HDL
/// emission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BistError {
    /// A netlist source failed to parse or assemble.
    Parse {
        /// Name of the source (circuit/file label) being parsed.
        source_name: String,
        /// 1-based line the defect is attributed to; `0` when the defect
        /// is a property of the whole netlist (e.g. no primary inputs).
        line: usize,
        /// Human-readable description of the defect.
        message: String,
    },
    /// A benchmark name not present in the requested family.
    UnknownCircuit {
        /// Benchmark family, e.g. `"iscas85"`.
        family: &'static str,
        /// The unknown name.
        name: String,
    },
    /// A job spec failed validation before any work started.
    InvalidSpec {
        /// Job kind, e.g. `"sweep"`.
        job: &'static str,
        /// What is wrong with the spec.
        message: String,
    },
    /// The mixed-scheme flow failed (generator construction).
    Scheme(MixedSchemeError),
    /// Emitted HDL failed the lint audit.
    Hdl {
        /// 1-based line in the emitted HDL text.
        line: usize,
        /// Lint message.
        message: String,
    },
    /// The job observed its cancellation token and stopped cooperatively.
    Canceled,
}

impl BistError {
    /// Wraps a [`ParseBenchError`] for the source called `source_name`.
    pub fn from_parse(source_name: impl Into<String>, error: ParseBenchError) -> Self {
        BistError::Parse {
            source_name: source_name.into(),
            line: error.line(),
            message: match error {
                ParseBenchError::Syntax { message, .. } => message,
                ParseBenchError::Build { error, .. } => error.to_string(),
            },
        }
    }
}

impl fmt::Display for BistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BistError::Parse {
                source_name,
                line: 0,
                message,
            } => {
                write!(f, "{source_name}: netlist invalid: {message}")
            }
            BistError::Parse {
                source_name,
                line,
                message,
            } => {
                write!(f, "{source_name}:{line}: {message}")
            }
            BistError::UnknownCircuit { family, name } => {
                write!(f, "unknown {family} circuit `{name}`")
            }
            BistError::InvalidSpec { job, message } => {
                write!(f, "invalid {job} spec: {message}")
            }
            BistError::Scheme(e) => write!(f, "{e}"),
            BistError::Hdl { line, message } => {
                write!(f, "emitted HDL failed lint at line {line}: {message}")
            }
            BistError::Canceled => write!(f, "job canceled"),
        }
    }
}

impl std::error::Error for BistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BistError::Scheme(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MixedSchemeError> for BistError {
    fn from(e: MixedSchemeError) -> Self {
        BistError::Scheme(e)
    }
}

impl From<LintError> for BistError {
    fn from(e: LintError) -> Self {
        BistError::Hdl {
            line: e.line,
            message: e.message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_errors_carry_the_source_line() {
        let err = bist_netlist::bench::parse("broken", "INPUT(a)\nOUTPUT(y)\nwhat")
            .expect_err("malformed source");
        let wrapped = BistError::from_parse("broken", err);
        assert!(matches!(wrapped, BistError::Parse { line: 3, .. }));
        assert!(wrapped.to_string().contains("broken:3:"));
    }

    #[test]
    fn whole_netlist_defects_render_without_a_line() {
        let err = bist_netlist::bench::parse("empty", "").expect_err("no inputs");
        let wrapped = BistError::from_parse("empty", err);
        assert!(matches!(wrapped, BistError::Parse { line: 0, .. }));
        assert!(wrapped.to_string().contains("netlist invalid"));
    }
}
