//! Asynchronous job handles.
//!
//! [`Engine::submit`](crate::Engine::submit) returns immediately with a
//! [`JobHandle`] that owns everything a caller needs to follow one job:
//! a private [`ProgressFeed`] carrying only that job's events, a
//! [`CancelToken`] scoped to it, and a blocking [`JobHandle::wait`] that
//! yields the [`JobResult`]. The handle replaces the old pattern of
//! subscribing to the engine-wide feed and demultiplexing by
//! [`JobId`](crate::JobId).

use std::sync::{Arc, Condvar, Mutex};

use crate::error::BistError;
use crate::progress::{CancelToken, JobId, ProgressFeed};
use crate::result::JobResult;

/// One-shot result slot shared between a job's runner and its handle.
#[derive(Debug, Default)]
pub(crate) struct JobSlot {
    state: Mutex<SlotState>,
    done: Condvar,
}

#[derive(Debug, Default)]
struct SlotState {
    outcome: Option<(Result<JobResult, BistError>, bool)>,
    filled: bool,
}

impl JobSlot {
    /// Publishes the job's outcome and wakes every waiter. `cached` is
    /// true when the result was answered from the [`ResultCache`]
    /// (see [`crate::ResultCache`]) without re-simulation.
    pub(crate) fn fill(&self, result: Result<JobResult, BistError>, cached: bool) {
        let mut state = self.state.lock().expect("slot lock never poisoned");
        if !state.filled {
            state.outcome = Some((result, cached));
            state.filled = true;
        }
        drop(state);
        self.done.notify_all();
    }

    fn is_finished(&self) -> bool {
        self.state.lock().expect("slot lock never poisoned").filled
    }

    fn cached(&self) -> Option<bool> {
        self.state
            .lock()
            .expect("slot lock never poisoned")
            .outcome
            .as_ref()
            .map(|(_, cached)| *cached)
    }

    fn wait(&self) -> Result<JobResult, BistError> {
        let mut state = self.state.lock().expect("slot lock never poisoned");
        loop {
            if let Some((result, _)) = state.outcome.take() {
                return result;
            }
            if state.filled {
                // a second wait on an already-consumed slot: the runner
                // can never refill it, so report cancellation rather
                // than blocking forever
                return Err(BistError::Canceled);
            }
            state = self.done.wait(state).expect("slot lock never poisoned");
        }
    }
}

/// Guard that guarantees a [`JobSlot`] is eventually filled: if the
/// runner unwinds (a panic inside the pool) the guard's drop publishes
/// [`BistError::Canceled`] so a blocked [`JobHandle::wait`] never hangs.
#[derive(Debug)]
pub(crate) struct SlotGuard(pub(crate) Arc<JobSlot>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        // no-op when the runner already filled the slot
        self.0.fill(Err(BistError::Canceled), false);
    }
}

/// An asynchronously running (or completed) job, returned by
/// [`Engine::submit`](crate::Engine::submit).
///
/// The handle owns the job's private event feed and cancellation token;
/// dropping it without [`JobHandle::wait`]ing detaches the job, which
/// still runs to completion (and still populates the result cache).
///
/// # Example
///
/// ```
/// use bist_engine::{CircuitSource, Engine, JobSpec};
///
/// let engine = Engine::new();
/// let handle = engine.submit(JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]));
/// assert_eq!(handle.label(), "sweep c17");
/// let result = handle.wait()?;
/// assert!(result.as_sweep().is_some());
/// # Ok::<(), bist_engine::BistError>(())
/// ```
#[derive(Debug)]
pub struct JobHandle {
    pub(crate) id: JobId,
    pub(crate) label: String,
    pub(crate) feed: ProgressFeed,
    pub(crate) cancel: CancelToken,
    pub(crate) slot: Arc<JobSlot>,
}

impl JobHandle {
    /// The engine-assigned job id (also carried by every event on
    /// [`JobHandle::progress`]).
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Human-readable label (`"sweep c432"`, …).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The job's private progress feed: every event on it belongs to
    /// this job, so no demultiplexing is needed. Clone the feed to keep
    /// pulling events after [`JobHandle::wait`] consumes the handle.
    pub fn progress(&self) -> &ProgressFeed {
        &self.feed
    }

    /// The job's cancellation token (clone it to cancel from another
    /// thread).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Requests cooperative cancellation; the job observes it at its
    /// next checkpoint boundary and [`JobHandle::wait`] returns
    /// [`BistError::Canceled`].
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// True once the job has completed (successfully or not) and
    /// [`JobHandle::wait`] will return without blocking.
    pub fn is_finished(&self) -> bool {
        self.slot.is_finished()
    }

    /// Whether the finished job was answered from the result cache —
    /// `None` while the job is still running.
    pub fn cache_hit(&self) -> Option<bool> {
        self.slot.cached()
    }

    /// Blocks until the job completes and returns its result.
    ///
    /// # Errors
    ///
    /// Any [`BistError`] the job produced: spec validation, circuit
    /// realization, the flow itself, or [`BistError::Canceled`].
    pub fn wait(self) -> Result<JobResult, BistError> {
        self.slot.wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_fill_then_wait_round_trips() {
        let slot = JobSlot::default();
        assert!(!slot.is_finished());
        assert_eq!(slot.cached(), None);
        slot.fill(Err(BistError::Canceled), true);
        assert!(slot.is_finished());
        assert_eq!(slot.cached(), Some(true));
        assert!(matches!(slot.wait(), Err(BistError::Canceled)));
    }

    #[test]
    fn slot_first_fill_wins() {
        let slot = JobSlot::default();
        slot.fill(Err(BistError::Canceled), false);
        slot.fill(
            Err(BistError::InvalidSpec {
                job: "sweep",
                message: "late".to_owned(),
            }),
            true,
        );
        assert_eq!(slot.cached(), Some(false));
        assert!(matches!(slot.wait(), Err(BistError::Canceled)));
    }

    #[test]
    fn slot_guard_fills_on_drop() {
        let slot = Arc::new(JobSlot::default());
        drop(SlotGuard(slot.clone()));
        assert!(slot.is_finished());
        assert!(matches!(slot.wait(), Err(BistError::Canceled)));
    }

    #[test]
    fn wait_blocks_until_filled_from_another_thread() {
        let slot = Arc::new(JobSlot::default());
        let filler = slot.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            filler.fill(Err(BistError::Canceled), false);
        });
        assert!(matches!(slot.wait(), Err(BistError::Canceled)));
        t.join().expect("filler thread");
    }
}
