//! A minimal JSON tree, writer and parser.
//!
//! The workspace vendors no serde, so the pieces that need structured
//! interchange — the on-disk result cache, the `bist` CLI's
//! `--format json` output, the bench harness reports — share this small
//! dependency-free implementation. It is deliberately modest: a [`Json`]
//! tree, a deterministic renderer (object keys keep insertion order, so
//! equal trees render byte-identically), and a strict parser for the
//! full JSON grammar minus exotic number forms.
//!
//! Exactness convention: `f64` values that must round-trip *bit-exactly*
//! (cached results) are stored as 16-hex-digit bit strings via
//! [`Json::f64_bits`] / [`Json::as_f64_bits`]; plain [`Json::Float`] is
//! for human-facing output where shortest-round-trip decimal rendering
//! is the point.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (JSON numbers without fraction/exponent).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved (and rendered).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An object value under construction.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends `key: value` to an object (panics on non-objects — a
    /// builder misuse, not a data error).
    pub fn push(&mut self, key: impl Into<String>, value: Json) -> &mut Json {
        match self {
            Json::Object(pairs) => pairs.push((key.into(), value)),
            _ => panic!("Json::push on a non-object"),
        }
        self
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value from any unsigned counter.
    ///
    /// # Panics
    ///
    /// Panics if `v` exceeds `i64::MAX` (no workspace counter does).
    pub fn uint(v: usize) -> Json {
        Json::Int(i64::try_from(v).expect("counter fits i64"))
    }

    /// A bit-exact `f64`: 16 lowercase hex digits of [`f64::to_bits`].
    pub fn f64_bits(v: f64) -> Json {
        Json::Str(format!("{:016x}", v.to_bits()))
    }

    /// Reads a value written by [`Json::f64_bits`].
    pub fn as_f64_bits(&self) -> Option<f64> {
        let s = self.as_str()?;
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(f64::from_bits)
    }

    /// The value under `key`, for objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The integer payload as a non-negative count.
    pub fn as_usize(&self) -> Option<usize> {
        usize::try_from(self.as_i64()?).ok()
    }

    /// The numeric payload (integers widen losslessly up to 2⁵³).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the tree as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the tree as indented multi-line JSON (2-space indent,
    /// trailing newline).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // shortest round-trip decimal; ".0" keeps integral
                    // floats typed as floats on re-parse
                    let text = format!("{v}");
                    let decimal = text.contains(['.', 'e', 'E']);
                    out.push_str(&text);
                    if !decimal {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    write_escaped(out, &pairs[i].0);
                    out.push_str(": ");
                    pairs[i].1.write(out, indent, depth + 1);
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        match indent {
            Some(w) => {
                out.push('\n');
                out.push_str(&" ".repeat(w * (depth + 1)));
            }
            None => {
                if i > 0 {
                    out.push(' ');
                }
            }
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the defect.
    pub offset: usize,
    /// What was expected / found.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Deepest container nesting [`parse`] accepts. Parsing recurses per
/// level, so without a bound a hostile document (a corrupted cache
/// entry is untrusted input) could overflow the stack and abort the
/// process instead of returning an error. No producer in this
/// workspace nests past single digits.
pub const MAX_DEPTH: usize = 128;

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut at = 0usize;
    let value = parse_value(bytes, &mut at, 0)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(err(at, "trailing characters after the document"));
    }
    Ok(value)
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while *at < bytes.len() && matches!(bytes[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(bytes: &[u8], at: &mut usize, c: u8) -> Result<(), JsonError> {
    if *at < bytes.len() && bytes[*at] == c {
        *at += 1;
        Ok(())
    } else {
        Err(err(*at, format!("expected `{}`", c as char)))
    }
}

fn parse_value(bytes: &[u8], at: &mut usize, depth: usize) -> Result<Json, JsonError> {
    skip_ws(bytes, at);
    if depth > MAX_DEPTH {
        return Err(err(*at, format!("nesting deeper than {MAX_DEPTH} levels")));
    }
    match bytes.get(*at) {
        None => Err(err(*at, "unexpected end of input")),
        Some(b'{') => {
            *at += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(Json::Object(pairs));
            }
            loop {
                skip_ws(bytes, at);
                let key = parse_string(bytes, at)?;
                skip_ws(bytes, at);
                expect(bytes, at, b':')?;
                let value = parse_value(bytes, at, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(Json::Object(pairs));
                    }
                    _ => return Err(err(*at, "expected `,` or `}` in object")),
                }
            }
        }
        Some(b'[') => {
            *at += 1;
            let mut items = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, at, depth + 1)?);
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(err(*at, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, at)?)),
        Some(b't') => parse_keyword(bytes, at, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, at, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, at, "null", Json::Null),
        Some(_) => parse_number(bytes, at),
    }
}

fn parse_keyword(
    bytes: &[u8],
    at: &mut usize,
    keyword: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*at..].starts_with(keyword.as_bytes()) {
        *at += keyword.len();
        Ok(value)
    } else {
        Err(err(*at, format!("expected `{keyword}`")))
    }
}

fn parse_number(bytes: &[u8], at: &mut usize) -> Result<Json, JsonError> {
    let start = *at;
    if bytes.get(*at) == Some(&b'-') {
        *at += 1;
    }
    let mut saw_digit = false;
    let mut fractional = false;
    while let Some(&b) = bytes.get(*at) {
        match b {
            b'0'..=b'9' => saw_digit = true,
            b'.' | b'e' | b'E' | b'+' | b'-' => fractional = true,
            _ => break,
        }
        *at += 1;
    }
    if !saw_digit {
        return Err(err(start, "expected a value"));
    }
    let text = std::str::from_utf8(&bytes[start..*at]).expect("ASCII number run");
    if fractional {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| err(start, format!("malformed number `{text}`")))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| err(start, format!("integer out of range `{text}`")))
    }
}

fn parse_string(bytes: &[u8], at: &mut usize) -> Result<String, JsonError> {
    expect(bytes, at, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*at) {
            None => return Err(err(*at, "unterminated string")),
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *at += 1;
                match bytes.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*at + 1..*at + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*at, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*at, "malformed \\u escape"))?;
                        // surrogate pairs are not needed by any producer
                        // in this workspace; reject rather than mangle
                        let c = char::from_u32(code)
                            .ok_or_else(|| err(*at, "\\u escape is not a scalar value"))?;
                        out.push(c);
                        *at += 4;
                    }
                    _ => return Err(err(*at, "unknown escape")),
                }
                *at += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar (input is &str, so boundaries
                // are valid)
                let rest = std::str::from_utf8(&bytes[*at..]).expect("valid UTF-8 tail");
                let c = rest.chars().next().expect("non-empty tail");
                out.push(c);
                *at += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_deterministically() {
        let mut obj = Json::object();
        obj.push("name", Json::str("c432"));
        obj.push("points", Json::Array(vec![Json::Int(0), Json::Int(100)]));
        obj.push("speedup", Json::Float(2.5));
        assert_eq!(
            obj.render(),
            r#"{"name": "c432", "points": [0, 100], "speedup": 2.5}"#
        );
        assert_eq!(obj.render(), obj.clone().render());
    }

    #[test]
    fn parses_what_it_renders() {
        let mut obj = Json::object();
        obj.push("a", Json::Int(-42));
        obj.push("b", Json::Bool(true));
        obj.push("c", Json::Null);
        obj.push("d", Json::str("line\nbreak \"quoted\" \\slash"));
        obj.push("e", Json::Array(vec![Json::Float(0.125), Json::Int(7)]));
        obj.push("f", Json::Object(Vec::new()));
        for text in [obj.render(), obj.render_pretty()] {
            assert_eq!(parse(&text).expect("round-trip parses"), obj);
        }
    }

    #[test]
    fn f64_bits_round_trip_exactly() {
        for v in [0.0, -0.0, 1.0 / 3.0, 96.70000000000001, f64::MIN_POSITIVE] {
            let j = Json::f64_bits(v);
            let back = parse(&j.render()).expect("valid");
            assert_eq!(back.as_f64_bits().expect("bits").to_bits(), v.to_bits());
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", "01x"] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing() {
        // a corrupted/planted cache entry must produce a JsonError, not
        // a stack-overflow abort
        let hostile = "[".repeat(100_000);
        let e = parse(&hostile).expect_err("too deep");
        assert!(e.message.contains("nesting"), "{e}");
        // the documented bound itself is fine
        let deep = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&deep).is_ok());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""caf\u00e9 \t tab""#).expect("valid");
        assert_eq!(v.as_str(), Some("café \t tab"));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 3, "pct": 96.7, "ok": true, "xs": [1]}"#).expect("valid");
        assert_eq!(v.get("n").and_then(Json::as_usize), Some(3));
        assert_eq!(v.get("pct").and_then(Json::as_f64), Some(96.7));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
    }
}
