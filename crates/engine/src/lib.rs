//! `bist-engine` — the job-oriented public face of the mixed-BIST
//! workspace.
//!
//! Every workload the reproduction supports — solving one `(p, d)`
//! point, sweeping the trade-off, grading coverage curves, baking off
//! TPG architectures, emitting synthesizable HDL, pricing the
//! full-deterministic extreme — is one typed [`JobSpec`]: a plain struct
//! naming a [`CircuitSource`], a
//! [`MixedSchemeConfig`] and the variant's
//! budgets. An [`Engine`] validates specs, schedules them across the
//! `bist-par` pool, streams [`ProgressEvent`]s through a pull-based
//! [`ProgressFeed`], observes cooperative [`CancelToken`]s at checkpoint
//! boundaries, and returns typed [`JobResult`]s. Every failure — a
//! malformed `.bench` file, an unknown benchmark, an infeasible spec —
//! comes back as a source-located [`BistError`], never a panic.
//!
//! The shape follows the hybrid-BIST scheduling literature (test jobs as
//! schedulable units with explicit budgets): new workload variants
//! become new [`JobSpec`] variants behind the same engine, instead of
//! new ad-hoc entry points.
//!
//! Because every job is a pure function of its spec, an engine can carry
//! a content-addressed [`ResultCache`]
//! ([`Engine::with_result_cache`]): repeated jobs are answered from disk
//! bit-identically — the batch-sweep workload of the `bist` CLI hits it
//! constantly. See the [`cache`] module for the key/invalidation scheme.
//!
//! For long-running hosts — above all the `bist serve` daemon — jobs
//! are submitted asynchronously: [`Engine::submit`] returns a
//! [`JobHandle`] owning a *per-job* [`ProgressFeed`], a [`CancelToken`]
//! and a blocking [`JobHandle::wait`]. The [`wire`] module gives specs,
//! results and events a versioned newline-delimited-JSON encoding for
//! shipping them across a socket.
//!
//! # Quickstart
//!
//! ```
//! use bist_engine::{CircuitSource, Engine, JobSpec, ProgressEvent};
//!
//! let engine = Engine::new();
//! let handle = engine.submit(JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8, 16]));
//! let feed = handle.progress().clone(); // keep pulling after wait()
//! let result = handle.wait()?;
//!
//! let sweep = result.as_sweep().expect("sweep jobs yield sweep outcomes");
//! assert_eq!(sweep.summary.solutions().len(), 3);
//! // the per-job event stream saw every solved checkpoint
//! let checkpoints = feed
//!     .drain()
//!     .into_iter()
//!     .filter(|e| matches!(e, ProgressEvent::Checkpoint { .. }))
//!     .count();
//! assert_eq!(checkpoints, 3);
//! # Ok::<(), bist_engine::BistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod digest;
mod engine;
mod error;
mod handle;
pub mod json;
mod progress;
mod result;
mod spec;
pub mod wire;

pub use cache::{CacheDiskStats, ResultCache, CACHE_DIR_ENV};
pub use engine::Engine;
pub use handle::JobHandle;
pub use wire::{WireError, WIRE_SCHEMA_VERSION};
// The config/outcome vocabulary jobs are written in, re-exported so
// engine consumers (the `bist` CLI above all) need no substrate crates.
pub use bist_core::{MixedSchemeConfig, MixedSolution, SessionStats, SweepSummary};
pub use bist_faultmodel::{FaultModel, ParseFaultModelError};
pub use bist_lint::{
    fmt_scoap, Diagnostic, LintOptions, LintReport, RankedNode, RuleCode, ScoapSummary, Severity,
    Span, SCOAP_INF,
};
pub use error::BistError;
pub use progress::{CancelToken, JobId, ProgressEvent, ProgressFeed};
pub use result::{
    AreaReportOutcome, BakeoffOutcome, CurveOutcome, EstimateOutcome, HdlOutcome, JobResult,
    LintOutcome, SolveAtOutcome, SweepOutcome,
};
pub use spec::{
    AreaReportSpec, BakeoffSpec, CircuitSource, CoverageCurveSpec, EmitHdlSpec, EstimateSpec,
    HdlLanguage, JobSpec, LintSpec, SolveAtSpec, SweepSpec, DEFAULT_ESTIMATE_CONFIDENCE,
    DEFAULT_ESTIMATE_SAMPLES, DEFAULT_ESTIMATE_SEED,
};
