//! `bist-engine` — the job-oriented public face of the mixed-BIST
//! workspace.
//!
//! Every workload the reproduction supports — solving one `(p, d)`
//! point, sweeping the trade-off, grading coverage curves, baking off
//! TPG architectures, emitting synthesizable HDL, pricing the
//! full-deterministic extreme — is one typed [`JobSpec`]: a plain struct
//! naming a [`CircuitSource`], a
//! [`MixedSchemeConfig`] and the variant's
//! budgets. An [`Engine`] validates specs, schedules them across the
//! `bist-par` pool, streams [`ProgressEvent`]s through a pull-based
//! [`ProgressFeed`], observes cooperative [`CancelToken`]s at checkpoint
//! boundaries, and returns typed [`JobResult`]s. Every failure — a
//! malformed `.bench` file, an unknown benchmark, an infeasible spec —
//! comes back as a source-located [`BistError`], never a panic.
//!
//! The shape follows the hybrid-BIST scheduling literature (test jobs as
//! schedulable units with explicit budgets): new workload variants
//! become new [`JobSpec`] variants behind the same engine, instead of
//! new ad-hoc entry points.
//!
//! Because every job is a pure function of its spec, an engine can carry
//! a content-addressed [`ResultCache`]
//! ([`Engine::with_result_cache`]): repeated jobs are answered from disk
//! bit-identically — the batch-sweep workload of the `bist` CLI hits it
//! constantly. See the [`cache`] module for the key/invalidation scheme.
//!
//! # Quickstart
//!
//! ```
//! use bist_engine::{CircuitSource, Engine, JobSpec, ProgressEvent};
//!
//! let engine = Engine::new();
//! let feed = engine.progress();
//! let result = engine.run(JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8, 16]))?;
//!
//! let sweep = result.as_sweep().expect("sweep jobs yield sweep outcomes");
//! assert_eq!(sweep.summary.solutions().len(), 3);
//! // the pull-based event stream saw every solved checkpoint
//! let checkpoints = feed
//!     .drain()
//!     .into_iter()
//!     .filter(|e| matches!(e, ProgressEvent::Checkpoint { .. }))
//!     .count();
//! assert_eq!(checkpoints, 3);
//! # Ok::<(), bist_engine::BistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod digest;
mod engine;
mod error;
pub mod json;
mod progress;
mod result;
mod spec;

pub use cache::{CacheDiskStats, ResultCache, CACHE_DIR_ENV};
pub use engine::Engine;
// The config/outcome vocabulary jobs are written in, re-exported so
// engine consumers (the `bist` CLI above all) need no substrate crates.
pub use bist_core::{MixedSchemeConfig, MixedSolution, SessionStats, SweepSummary};
pub use bist_lint::{
    fmt_scoap, Diagnostic, LintOptions, LintReport, RankedNode, RuleCode, ScoapSummary, Severity,
    Span, SCOAP_INF,
};
pub use error::BistError;
pub use progress::{CancelToken, JobId, ProgressEvent, ProgressFeed};
pub use result::{
    AreaReportOutcome, BakeoffOutcome, CurveOutcome, HdlOutcome, JobResult, LintOutcome,
    SolveAtOutcome, SweepOutcome,
};
pub use spec::{
    AreaReportSpec, BakeoffSpec, CircuitSource, CoverageCurveSpec, EmitHdlSpec, HdlLanguage,
    JobSpec, LintSpec, SolveAtSpec, SweepSpec,
};
