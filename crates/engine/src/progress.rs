//! Streaming progress and cooperative cancellation.
//!
//! The engine never calls back into user code: it pushes
//! [`ProgressEvent`]s onto a shared queue and the caller **pulls** them
//! whenever convenient through a [`ProgressFeed`] — from the same thread
//! between jobs, or from another thread while a batch runs. Cancellation
//! is equally cooperative: a [`CancelToken`] is a flag the caller sets
//! and running jobs observe at their next checkpoint boundary.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Identifier of one submitted job, unique within an
/// [`Engine`](crate::Engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// One progress notification from a running [`Engine`](crate::Engine).
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// The job was accepted and is waiting for a pool worker.
    Queued {
        /// The job.
        job: JobId,
        /// Human-readable label (`"sweep c432"`, …).
        label: String,
    },
    /// A worker started executing the job.
    Started {
        /// The job.
        job: JobId,
    },
    /// The job passed an internal checkpoint — one solved prefix length,
    /// one coverage-curve point — with the fault coverage reached so far.
    Checkpoint {
        /// The job.
        job: JobId,
        /// The prefix length / sequence position just completed.
        prefix_len: usize,
        /// Fault coverage reached so far, percent.
        coverage_pct: f64,
    },
    /// The job entered a named analysis pass (lint jobs emit one per
    /// pass: `"parse"`, `"structural"`, `"scoap"`).
    Pass {
        /// The job.
        job: JobId,
        /// Pass name.
        name: String,
    },
    /// The job completed successfully.
    Finished {
        /// The job.
        job: JobId,
    },
    /// The job failed; the error also comes back from the `run` call.
    Failed {
        /// The job.
        job: JobId,
        /// Rendered error message.
        message: String,
    },
    /// The job observed its cancellation token and stopped.
    Canceled {
        /// The job.
        job: JobId,
    },
}

impl ProgressEvent {
    /// The job this event belongs to.
    pub fn job(&self) -> JobId {
        match self {
            ProgressEvent::Queued { job, .. }
            | ProgressEvent::Started { job }
            | ProgressEvent::Checkpoint { job, .. }
            | ProgressEvent::Pass { job, .. }
            | ProgressEvent::Finished { job }
            | ProgressEvent::Failed { job, .. }
            | ProgressEvent::Canceled { job } => *job,
        }
    }
}

/// Pull-based consumer handle for an engine's event stream.
///
/// Cloning is cheap; all clones drain the same queue (each event is
/// delivered once, to whichever handle pulls it first).
///
/// Memory stays bounded for every consumer shape: an engine whose feed
/// was never handed out (no [`Engine::progress`](crate::Engine::progress)
/// call, or every handle dropped) records nothing at all, and a
/// subscribed-but-idle consumer is capped at [`ProgressFeed::CAPACITY`]
/// pending events — the oldest are dropped first and counted by
/// [`ProgressFeed::dropped`].
#[derive(Debug, Clone, Default)]
pub struct ProgressFeed {
    queue: Arc<Mutex<FeedState>>,
}

#[derive(Debug, Default)]
struct FeedState {
    events: VecDeque<ProgressEvent>,
    dropped: u64,
}

impl ProgressFeed {
    /// Upper bound on pending (undelivered) events; pushing past it
    /// drops the oldest pending event.
    pub const CAPACITY: usize = 65_536;

    /// An empty feed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes and returns the oldest pending event, if any.
    pub fn poll(&self) -> Option<ProgressEvent> {
        self.queue
            .lock()
            .expect("feed lock never poisoned")
            .events
            .pop_front()
    }

    /// Removes and returns all pending events, oldest first.
    ///
    /// # Examples
    ///
    /// ```
    /// use bist_engine::{CircuitSource, Engine, JobSpec, ProgressEvent};
    ///
    /// let engine = Engine::new();
    /// let feed = engine.progress(); // subscribe *before* running
    /// engine.run(JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]))?;
    ///
    /// let events = feed.drain();
    /// // lifecycle brackets with one checkpoint per solved prefix length
    /// assert!(matches!(events.first(), Some(ProgressEvent::Queued { .. })));
    /// assert!(matches!(events.last(), Some(ProgressEvent::Finished { .. })));
    /// let checkpoints = events
    ///     .iter()
    ///     .filter(|e| matches!(e, ProgressEvent::Checkpoint { .. }))
    ///     .count();
    /// assert_eq!(checkpoints, 2);
    /// assert!(feed.is_empty(), "drain removes what it returns");
    /// # Ok::<(), bist_engine::BistError>(())
    /// ```
    pub fn drain(&self) -> Vec<ProgressEvent> {
        self.queue
            .lock()
            .expect("feed lock never poisoned")
            .events
            .drain(..)
            .collect()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.queue
            .lock()
            .expect("feed lock never poisoned")
            .events
            .len()
    }

    /// True when no event is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the queue hit [`ProgressFeed::CAPACITY`]
    /// without being drained.
    pub fn dropped(&self) -> u64 {
        self.queue.lock().expect("feed lock never poisoned").dropped
    }

    /// True when someone besides the engine holds a handle on this feed.
    pub(crate) fn has_subscribers(&self) -> bool {
        Arc::strong_count(&self.queue) > 1
    }

    pub(crate) fn push(&self, event: ProgressEvent) {
        // no subscriber, no record: an engine used purely for its return
        // values must not accumulate events nobody will ever pull
        if !self.has_subscribers() {
            return;
        }
        let mut state = self.queue.lock().expect("feed lock never poisoned");
        if state.events.len() >= Self::CAPACITY {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(event);
    }
}

/// Cooperative cancellation flag shared between the caller and running
/// jobs.
///
/// Cancelling is a request, not preemption: a job notices the flag at
/// its next checkpoint boundary (between sweep points, between curve
/// checkpoints) and returns [`BistError::Canceled`](crate::BistError).
/// Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation of every job holding this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_canceled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_is_fifo_and_shared_between_clones() {
        let feed = ProgressFeed::new();
        let other = feed.clone();
        feed.push(ProgressEvent::Started { job: JobId(1) });
        feed.push(ProgressEvent::Finished { job: JobId(1) });
        assert_eq!(other.len(), 2);
        assert_eq!(other.poll(), Some(ProgressEvent::Started { job: JobId(1) }));
        assert_eq!(feed.poll(), Some(ProgressEvent::Finished { job: JobId(1) }));
        assert!(feed.poll().is_none());
        assert!(feed.is_empty());
    }

    #[test]
    fn unsubscribed_feeds_record_nothing() {
        // a feed with a single (engine-side) handle drops pushes outright
        let feed = ProgressFeed::new();
        feed.push(ProgressEvent::Started { job: JobId(1) });
        assert!(feed.is_empty());
        assert_eq!(feed.dropped(), 0);
    }

    #[test]
    fn pending_events_are_capped_oldest_first() {
        let feed = ProgressFeed::new();
        let subscriber = feed.clone();
        for i in 0..(ProgressFeed::CAPACITY as u64 + 3) {
            feed.push(ProgressEvent::Started { job: JobId(i) });
        }
        assert_eq!(subscriber.len(), ProgressFeed::CAPACITY);
        assert_eq!(subscriber.dropped(), 3);
        // the oldest three were dropped; delivery resumes at JobId(3)
        assert_eq!(
            subscriber.poll(),
            Some(ProgressEvent::Started { job: JobId(3) })
        );
    }

    #[test]
    fn cancel_token_is_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_canceled());
        token.cancel();
        assert!(clone.is_canceled());
    }
}
