//! Streaming progress and cooperative cancellation.
//!
//! The engine never calls back into user code: it pushes
//! [`ProgressEvent`]s onto a shared queue and the caller **pulls** them
//! whenever convenient through a [`ProgressFeed`] — from the same thread
//! between jobs, or from another thread while a batch runs. Since the
//! handle redesign each submitted job carries its *own* feed (see
//! [`JobHandle::progress`](crate::JobHandle::progress)), so consumers
//! never have to demultiplex interleaved batches. Cancellation is
//! equally cooperative: a [`CancelToken`] is a flag the caller sets and
//! running jobs observe at their next checkpoint boundary.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Identifier of one submitted job, unique within an
/// [`Engine`](crate::Engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// One progress notification from a running [`Engine`](crate::Engine).
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// The job was accepted and is waiting for a pool worker.
    Queued {
        /// The job.
        job: JobId,
        /// Human-readable label (`"sweep c432"`, …).
        label: String,
    },
    /// A worker started executing the job.
    Started {
        /// The job.
        job: JobId,
    },
    /// The job passed an internal checkpoint — one solved prefix length,
    /// one coverage-curve point — with the fault coverage reached so far.
    Checkpoint {
        /// The job.
        job: JobId,
        /// The prefix length / sequence position just completed.
        prefix_len: usize,
        /// Fault coverage reached so far, percent.
        coverage_pct: f64,
    },
    /// The statistically qualified preview an estimate-first job emits
    /// before its exact run produces anything: a Wilson-interval
    /// coverage estimate from the representative sample. At most one per
    /// job, always before the first [`ProgressEvent::Checkpoint`]; a
    /// warm cache hit answers exactly and skips the preview.
    Estimate {
        /// The job.
        job: JobId,
        /// Prefix length the estimate speaks for (a sweep previews its
        /// longest prefix).
        prefix_len: usize,
        /// Faults sampled.
        samples: usize,
        /// Point estimate of the coverage, percent.
        estimate_pct: f64,
        /// Lower bound of the confidence interval, percent.
        lo_pct: f64,
        /// Upper bound of the confidence interval, percent.
        hi_pct: f64,
        /// Confidence level of the interval, percent.
        confidence: u32,
    },
    /// The job entered a named analysis pass (lint jobs emit one per
    /// pass: `"parse"`, `"structural"`, `"scoap"`).
    Pass {
        /// The job.
        job: JobId,
        /// Pass name.
        name: String,
    },
    /// The job completed successfully.
    Finished {
        /// The job.
        job: JobId,
        /// True when the result came from the warm cache rather than a
        /// fresh computation — same bytes either way, but clients (and
        /// `bist serve` subscribers) can tell the difference.
        cache_hit: bool,
    },
    /// The job failed; the error also comes back from the `run` call.
    Failed {
        /// The job.
        job: JobId,
        /// Rendered error message.
        message: String,
    },
    /// The job observed its cancellation token and stopped.
    Canceled {
        /// The job.
        job: JobId,
    },
}

impl ProgressEvent {
    /// The job this event belongs to.
    pub fn job(&self) -> JobId {
        match self {
            ProgressEvent::Queued { job, .. }
            | ProgressEvent::Started { job }
            | ProgressEvent::Checkpoint { job, .. }
            | ProgressEvent::Estimate { job, .. }
            | ProgressEvent::Pass { job, .. }
            | ProgressEvent::Finished { job, .. }
            | ProgressEvent::Failed { job, .. }
            | ProgressEvent::Canceled { job } => *job,
        }
    }

    /// The same event re-addressed to `job` — used by `bist serve` to
    /// translate engine-internal ids into the ids handed to clients.
    pub fn with_job(self, job: JobId) -> ProgressEvent {
        match self {
            ProgressEvent::Queued { label, .. } => ProgressEvent::Queued { job, label },
            ProgressEvent::Started { .. } => ProgressEvent::Started { job },
            ProgressEvent::Checkpoint {
                prefix_len,
                coverage_pct,
                ..
            } => ProgressEvent::Checkpoint {
                job,
                prefix_len,
                coverage_pct,
            },
            ProgressEvent::Estimate {
                prefix_len,
                samples,
                estimate_pct,
                lo_pct,
                hi_pct,
                confidence,
                ..
            } => ProgressEvent::Estimate {
                job,
                prefix_len,
                samples,
                estimate_pct,
                lo_pct,
                hi_pct,
                confidence,
            },
            ProgressEvent::Pass { name, .. } => ProgressEvent::Pass { job, name },
            ProgressEvent::Finished { cache_hit, .. } => ProgressEvent::Finished { job, cache_hit },
            ProgressEvent::Failed { message, .. } => ProgressEvent::Failed { job, message },
            ProgressEvent::Canceled { .. } => ProgressEvent::Canceled { job },
        }
    }
}

/// Pull-based consumer handle for an event stream.
///
/// Cloning is cheap; all clones drain the same queue (each event is
/// delivered once, to whichever handle pulls it first).
///
/// Memory stays bounded for every consumer shape: a feed nobody
/// subscribed to (every caller-side handle dropped) records nothing at
/// all, and a subscribed-but-idle consumer is capped at
/// [`ProgressFeed::CAPACITY`] pending events — the oldest are dropped
/// first and counted by [`ProgressFeed::dropped`].
///
/// Consumers may spin on [`ProgressFeed::poll`] or, kinder to the host,
/// block with [`ProgressFeed::poll_timeout`] — the producing side wakes
/// sleepers on every push.
#[derive(Debug, Clone, Default)]
pub struct ProgressFeed {
    shared: Arc<FeedShared>,
}

#[derive(Debug, Default)]
struct FeedShared {
    state: Mutex<FeedState>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct FeedState {
    events: VecDeque<ProgressEvent>,
    dropped: u64,
}

impl ProgressFeed {
    /// Upper bound on pending (undelivered) events; pushing past it
    /// drops the oldest pending event.
    pub const CAPACITY: usize = 65_536;

    /// An empty feed.
    pub fn new() -> Self {
        Self::default()
    }

    fn state(&self) -> std::sync::MutexGuard<'_, FeedState> {
        self.shared.state.lock().expect("feed lock never poisoned")
    }

    /// Removes and returns the oldest pending event, if any.
    pub fn poll(&self) -> Option<ProgressEvent> {
        self.state().events.pop_front()
    }

    /// Blocks until an event is pending (returning it) or the timeout
    /// elapses (returning `None`).
    ///
    /// This is the non-busy-waiting sibling of [`ProgressFeed::poll`]:
    /// the CLI's progress renderer and the `bist serve` event pumps park
    /// here instead of sleeping in a poll loop, and wake on the very
    /// push that makes an event available.
    pub fn poll_timeout(&self, timeout: Duration) -> Option<ProgressEvent> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state();
        loop {
            if let Some(event) = state.events.pop_front() {
                return Some(event);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _timed_out) = self
                .shared
                .ready
                .wait_timeout(state, deadline - now)
                .expect("feed lock never poisoned");
            state = next;
        }
    }

    /// Removes and returns all pending events, oldest first.
    ///
    /// # Examples
    ///
    /// ```
    /// use bist_engine::{CircuitSource, Engine, JobSpec, ProgressEvent};
    ///
    /// let engine = Engine::new();
    /// let handle = engine.submit(JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]));
    /// let feed = handle.progress().clone(); // survives the wait below
    /// handle.wait()?;
    ///
    /// let events = feed.drain();
    /// // lifecycle brackets with one checkpoint per solved prefix length
    /// assert!(matches!(events.first(), Some(ProgressEvent::Queued { .. })));
    /// assert!(matches!(events.last(), Some(ProgressEvent::Finished { .. })));
    /// let checkpoints = events
    ///     .iter()
    ///     .filter(|e| matches!(e, ProgressEvent::Checkpoint { .. }))
    ///     .count();
    /// assert_eq!(checkpoints, 2);
    /// assert!(feed.is_empty(), "drain removes what it returns");
    /// # Ok::<(), bist_engine::BistError>(())
    /// ```
    pub fn drain(&self) -> Vec<ProgressEvent> {
        self.state().events.drain(..).collect()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.state().events.len()
    }

    /// True when no event is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the queue hit [`ProgressFeed::CAPACITY`]
    /// without being drained.
    pub fn dropped(&self) -> u64 {
        self.state().dropped
    }

    /// True when someone besides the engine holds a handle on this feed.
    pub(crate) fn has_subscribers(&self) -> bool {
        Arc::strong_count(&self.shared) > 1
    }

    pub(crate) fn push(&self, event: ProgressEvent) {
        // no subscriber, no record: an engine used purely for its return
        // values must not accumulate events nobody will ever pull
        if !self.has_subscribers() {
            return;
        }
        let mut state = self.state();
        if state.events.len() >= Self::CAPACITY {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(event);
        drop(state);
        self.shared.ready.notify_all();
    }
}

/// Cooperative cancellation flag shared between the caller and running
/// jobs.
///
/// Cancelling is a request, not preemption: a job notices the flag at
/// its next checkpoint boundary (between sweep points, between curve
/// checkpoints) and returns [`BistError::Canceled`](crate::BistError).
/// Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation of every job holding this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_canceled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_is_fifo_and_shared_between_clones() {
        let feed = ProgressFeed::new();
        let other = feed.clone();
        feed.push(ProgressEvent::Started { job: JobId(1) });
        feed.push(ProgressEvent::Finished {
            job: JobId(1),
            cache_hit: false,
        });
        assert_eq!(other.len(), 2);
        assert_eq!(other.poll(), Some(ProgressEvent::Started { job: JobId(1) }));
        assert_eq!(
            feed.poll(),
            Some(ProgressEvent::Finished {
                job: JobId(1),
                cache_hit: false,
            })
        );
        assert!(feed.poll().is_none());
        assert!(feed.is_empty());
    }

    #[test]
    fn unsubscribed_feeds_record_nothing() {
        // a feed with a single (engine-side) handle drops pushes outright
        let feed = ProgressFeed::new();
        feed.push(ProgressEvent::Started { job: JobId(1) });
        assert!(feed.is_empty());
        assert_eq!(feed.dropped(), 0);
    }

    #[test]
    fn pending_events_are_capped_oldest_first() {
        let feed = ProgressFeed::new();
        let subscriber = feed.clone();
        for i in 0..(ProgressFeed::CAPACITY as u64 + 3) {
            feed.push(ProgressEvent::Started { job: JobId(i) });
        }
        assert_eq!(subscriber.len(), ProgressFeed::CAPACITY);
        assert_eq!(subscriber.dropped(), 3);
        // the oldest three were dropped; delivery resumes at JobId(3)
        assert_eq!(
            subscriber.poll(),
            Some(ProgressEvent::Started { job: JobId(3) })
        );
    }

    #[test]
    fn poll_timeout_returns_pending_event_immediately() {
        let feed = ProgressFeed::new();
        let subscriber = feed.clone();
        feed.push(ProgressEvent::Started { job: JobId(7) });
        assert_eq!(
            subscriber.poll_timeout(Duration::from_secs(5)),
            Some(ProgressEvent::Started { job: JobId(7) })
        );
    }

    #[test]
    fn poll_timeout_times_out_empty() {
        let feed = ProgressFeed::new();
        let start = Instant::now();
        assert_eq!(feed.poll_timeout(Duration::from_millis(20)), None);
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn poll_timeout_wakes_on_push_from_another_thread() {
        let feed = ProgressFeed::new();
        let producer = feed.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            producer.push(ProgressEvent::Finished {
                job: JobId(9),
                cache_hit: true,
            });
        });
        // generous timeout: the wake, not the deadline, should end the wait
        let got = feed.poll_timeout(Duration::from_secs(10));
        t.join().expect("producer thread");
        assert_eq!(
            got,
            Some(ProgressEvent::Finished {
                job: JobId(9),
                cache_hit: true,
            })
        );
    }

    #[test]
    fn with_job_retags_every_variant() {
        let to = JobId(42);
        let cases = vec![
            ProgressEvent::Queued {
                job: JobId(1),
                label: "sweep c17".to_owned(),
            },
            ProgressEvent::Started { job: JobId(1) },
            ProgressEvent::Checkpoint {
                job: JobId(1),
                prefix_len: 8,
                coverage_pct: 50.0,
            },
            ProgressEvent::Estimate {
                job: JobId(1),
                prefix_len: 128,
                samples: 256,
                estimate_pct: 91.5,
                lo_pct: 87.2,
                hi_pct: 94.6,
                confidence: 95,
            },
            ProgressEvent::Pass {
                job: JobId(1),
                name: "scoap".to_owned(),
            },
            ProgressEvent::Finished {
                job: JobId(1),
                cache_hit: true,
            },
            ProgressEvent::Failed {
                job: JobId(1),
                message: "boom".to_owned(),
            },
            ProgressEvent::Canceled { job: JobId(1) },
        ];
        for event in cases {
            assert_eq!(event.with_job(to).job(), to);
        }
    }

    #[test]
    fn cancel_token_is_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_canceled());
        token.cancel();
        assert!(clone.is_canceled());
    }
}
