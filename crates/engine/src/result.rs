//! Typed job outcomes.
//!
//! Each [`JobSpec`](crate::JobSpec) variant produces the matching
//! [`JobResult`] variant; the `as_*` accessors unwrap the expected one
//! without pattern-matching boilerplate.

use bist_baselines::Bakeoff;
use bist_core::{MixedSolution, SessionStats, SweepSummary};
use bist_faultsim::CoverageCurve;
use bist_lint::LintReport;

/// Outcome of a [`JobSpec::SolveAt`](crate::JobSpec::SolveAt) job.
#[derive(Debug, Clone)]
pub struct SolveAtOutcome {
    /// Circuit under test.
    pub circuit: String,
    /// The solved `(p, d)` point.
    pub solution: MixedSolution,
    /// Work counters of the session that solved it.
    pub stats: SessionStats,
}

/// Outcome of a [`JobSpec::Sweep`](crate::JobSpec::Sweep) job.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Circuit under test.
    pub circuit: String,
    /// One solution per requested prefix length, in request order.
    pub summary: SweepSummary,
    /// Work counters of the shared incremental session.
    pub stats: SessionStats,
}

/// Outcome of a [`JobSpec::CoverageCurve`](crate::JobSpec::CoverageCurve)
/// job.
#[derive(Debug, Clone)]
pub struct CurveOutcome {
    /// Circuit under test.
    pub circuit: String,
    /// Coverage at every requested checkpoint, in request order.
    pub curve: CoverageCurve,
    /// Size of the mixed fault universe graded against.
    pub fault_universe: usize,
}

/// Outcome of a [`JobSpec::Bakeoff`](crate::JobSpec::Bakeoff) job.
#[derive(Debug, Clone)]
pub struct BakeoffOutcome {
    /// Circuit under test.
    pub circuit: String,
    /// Every architecture's row.
    pub bakeoff: Bakeoff,
}

/// Outcome of a [`JobSpec::EmitHdl`](crate::JobSpec::EmitHdl) job: the
/// lint-clean artefacts, ready to write to disk.
#[derive(Debug, Clone)]
pub struct HdlOutcome {
    /// Circuit under test.
    pub circuit: String,
    /// Module/entity name used in the artefacts.
    pub module: String,
    /// The solved point the generator implements.
    pub solution: MixedSolution,
    /// Structural Verilog, when requested.
    pub verilog: Option<String>,
    /// Structural VHDL, when requested.
    pub vhdl: Option<String>,
    /// Self-checking Verilog testbench, when requested.
    pub testbench: Option<String>,
}

/// Outcome of an [`JobSpec::AreaReport`](crate::JobSpec::AreaReport) job —
/// one row of the paper's Figure 6.
#[derive(Debug, Clone)]
pub struct AreaReportOutcome {
    /// Circuit under test.
    pub circuit: String,
    /// Number of primary inputs (pattern width).
    pub inputs: usize,
    /// Full deterministic test set size.
    pub det_len: usize,
    /// Nominal chip area, mm².
    pub chip_mm2: f64,
    /// Full-deterministic LFSROM generator area, mm².
    pub generator_mm2: f64,
    /// Generator area as a percentage of the nominal chip area.
    pub overhead_pct: f64,
    /// Coverage the deterministic set reaches, percent.
    pub coverage_pct: f64,
}

/// Outcome of a [`JobSpec::Lint`](crate::JobSpec::Lint) job: the full
/// static-analysis report.
///
/// A `.bench` source that fails to parse still yields a `LintOutcome`
/// (the parse defect as its single error diagnostic) rather than a job
/// failure — lint's contract is to *report* defects, not to die on them.
#[derive(Debug, Clone)]
pub struct LintOutcome {
    /// Circuit under test.
    pub circuit: String,
    /// Diagnostics and the SCOAP testability summary.
    pub report: LintReport,
}

/// Outcome of a
/// [`JobSpec::CoverageEstimate`](crate::JobSpec::CoverageEstimate) job:
/// a sampled coverage figure with its confidence interval. All figures
/// speak in the full stuck-at universe.
#[derive(Debug, Clone)]
pub struct EstimateOutcome {
    /// Circuit under test.
    pub circuit: String,
    /// Size of the full stuck-at universe being estimated.
    pub fault_universe: usize,
    /// Equivalence-class representatives in the collapsed universe.
    pub representatives: usize,
    /// Pseudo-random prefix length graded.
    pub prefix_len: usize,
    /// Faults actually sampled (the request, capped at the universe).
    pub samples: usize,
    /// Sampled faults whose class representative was detected.
    pub detected_samples: usize,
    /// Point estimate of the coverage, percent.
    pub estimate_pct: f64,
    /// Lower bound of the confidence interval, percent.
    pub lo_pct: f64,
    /// Upper bound of the confidence interval, percent.
    pub hi_pct: f64,
    /// Confidence level, percent (90, 95 or 99).
    pub confidence: u32,
    /// The sampling seed the estimate is pinned to.
    pub seed: u64,
}

/// The typed outcome of one engine job.
#[derive(Debug, Clone)]
pub enum JobResult {
    /// From [`JobSpec::SolveAt`](crate::JobSpec::SolveAt).
    SolveAt(SolveAtOutcome),
    /// From [`JobSpec::Sweep`](crate::JobSpec::Sweep).
    Sweep(SweepOutcome),
    /// From [`JobSpec::CoverageCurve`](crate::JobSpec::CoverageCurve).
    CoverageCurve(CurveOutcome),
    /// From [`JobSpec::Bakeoff`](crate::JobSpec::Bakeoff).
    Bakeoff(BakeoffOutcome),
    /// From [`JobSpec::EmitHdl`](crate::JobSpec::EmitHdl).
    EmitHdl(HdlOutcome),
    /// From [`JobSpec::AreaReport`](crate::JobSpec::AreaReport).
    AreaReport(AreaReportOutcome),
    /// From [`JobSpec::Lint`](crate::JobSpec::Lint).
    Lint(LintOutcome),
    /// From [`JobSpec::CoverageEstimate`](crate::JobSpec::CoverageEstimate).
    CoverageEstimate(EstimateOutcome),
}

impl JobResult {
    /// The solve-at outcome, if this is one.
    pub fn as_solve_at(&self) -> Option<&SolveAtOutcome> {
        match self {
            JobResult::SolveAt(o) => Some(o),
            _ => None,
        }
    }

    /// The sweep outcome, if this is one.
    pub fn as_sweep(&self) -> Option<&SweepOutcome> {
        match self {
            JobResult::Sweep(o) => Some(o),
            _ => None,
        }
    }

    /// The coverage-curve outcome, if this is one.
    pub fn as_coverage_curve(&self) -> Option<&CurveOutcome> {
        match self {
            JobResult::CoverageCurve(o) => Some(o),
            _ => None,
        }
    }

    /// The bake-off outcome, if this is one.
    pub fn as_bakeoff(&self) -> Option<&BakeoffOutcome> {
        match self {
            JobResult::Bakeoff(o) => Some(o),
            _ => None,
        }
    }

    /// The HDL outcome, if this is one.
    pub fn as_emit_hdl(&self) -> Option<&HdlOutcome> {
        match self {
            JobResult::EmitHdl(o) => Some(o),
            _ => None,
        }
    }

    /// The area-report outcome, if this is one.
    pub fn as_area_report(&self) -> Option<&AreaReportOutcome> {
        match self {
            JobResult::AreaReport(o) => Some(o),
            _ => None,
        }
    }

    /// The lint outcome, if this is one.
    pub fn as_lint(&self) -> Option<&LintOutcome> {
        match self {
            JobResult::Lint(o) => Some(o),
            _ => None,
        }
    }

    /// The coverage-estimate outcome, if this is one.
    pub fn as_estimate(&self) -> Option<&EstimateOutcome> {
        match self {
            JobResult::CoverageEstimate(o) => Some(o),
            _ => None,
        }
    }

    /// The circuit under test the job ran on.
    pub fn circuit(&self) -> &str {
        match self {
            JobResult::SolveAt(o) => &o.circuit,
            JobResult::Sweep(o) => &o.circuit,
            JobResult::CoverageCurve(o) => &o.circuit,
            JobResult::Bakeoff(o) => &o.circuit,
            JobResult::EmitHdl(o) => &o.circuit,
            JobResult::AreaReport(o) => &o.circuit,
            JobResult::Lint(o) => &o.circuit,
            JobResult::CoverageEstimate(o) => &o.circuit,
        }
    }
}
