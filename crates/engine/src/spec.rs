//! Typed job requests.
//!
//! Every workload the workspace supports is one [`JobSpec`] variant — a
//! plain struct naming a circuit source, a [`MixedSchemeConfig`] and the
//! variant's budgets. Specs are inert data: nothing is parsed, validated
//! or simulated until an [`Engine`](crate::Engine) runs them, and every
//! defect surfaces as a typed [`BistError`] instead of a panic.

use bist_core::MixedSchemeConfig;
use bist_faultmodel::FaultModel;
use bist_netlist::{bench, iscas85, iscas89, Circuit};

use crate::error::BistError;

/// Where a job's circuit under test comes from.
///
/// Sources are realized lazily by the engine; a bad source fails the job
/// with a located [`BistError::Parse`] or [`BistError::UnknownCircuit`],
/// never a panic.
// `Inline(Circuit)` dominates the enum size (a `Circuit` header is a few
// hundred bytes), but specs are built once per job and moved a constant
// number of times — indirection would cost an allocation per spec clone
// for no measurable win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum CircuitSource {
    /// An ISCAS-85 benchmark by name (`"c17"` … `"c7552"`).
    Iscas85 {
        /// Benchmark name.
        name: String,
    },
    /// An ISCAS-89 sequential benchmark by name (`"s27"` … `"s5378"`).
    Iscas89 {
        /// Benchmark name.
        name: String,
    },
    /// `.bench` source text, parsed on realization.
    Bench {
        /// Label used for the circuit and in error messages.
        name: String,
        /// The `.bench` netlist text.
        text: String,
    },
    /// An already-built circuit.
    Inline(Circuit),
}

impl CircuitSource {
    /// Convenience constructor for [`CircuitSource::Iscas85`].
    pub fn iscas85(name: impl Into<String>) -> Self {
        CircuitSource::Iscas85 { name: name.into() }
    }

    /// Convenience constructor for [`CircuitSource::Iscas89`].
    pub fn iscas89(name: impl Into<String>) -> Self {
        CircuitSource::Iscas89 { name: name.into() }
    }

    /// Convenience constructor for [`CircuitSource::Bench`].
    pub fn bench(name: impl Into<String>, text: impl Into<String>) -> Self {
        CircuitSource::Bench {
            name: name.into(),
            text: text.into(),
        }
    }

    /// The label used in progress events and error messages.
    pub fn label(&self) -> &str {
        match self {
            CircuitSource::Iscas85 { name }
            | CircuitSource::Iscas89 { name }
            | CircuitSource::Bench { name, .. } => name,
            CircuitSource::Inline(c) => c.name(),
        }
    }

    /// Produces the circuit under test.
    ///
    /// # Errors
    ///
    /// [`BistError::UnknownCircuit`] for unknown benchmark names and
    /// [`BistError::Parse`] (source-located) for malformed `.bench` text.
    pub fn realize(&self) -> Result<Circuit, BistError> {
        match self {
            CircuitSource::Iscas85 { name } => {
                iscas85::circuit(name).ok_or_else(|| BistError::UnknownCircuit {
                    family: "iscas85",
                    name: name.clone(),
                })
            }
            CircuitSource::Iscas89 { name } => {
                iscas89::circuit(name).ok_or_else(|| BistError::UnknownCircuit {
                    family: "iscas89",
                    name: name.clone(),
                })
            }
            CircuitSource::Bench { name, text } => {
                bench::parse(name, text).map_err(|e| BistError::from_parse(name, e))
            }
            CircuitSource::Inline(c) => Ok(c.clone()),
        }
    }
}

/// Which HDL artefacts an [`EmitHdlSpec`] job produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HdlLanguage {
    /// Structural Verilog only.
    Verilog,
    /// Structural VHDL only.
    Vhdl,
    /// Both languages (the `bist emit-hdl` default).
    #[default]
    Both,
}

/// Solve the mixed scheme at one prefix length `p`.
///
/// # Examples
///
/// ```
/// use bist_engine::{CircuitSource, Engine, JobSpec, SolveAtSpec};
///
/// let spec = SolveAtSpec {
///     circuit: CircuitSource::iscas85("c17"),
///     config: Default::default(),
///     prefix_len: 4,
///     fault_model: Default::default(),
///     estimate_first: false,
/// };
/// let result = Engine::new().run(JobSpec::SolveAt(spec))?;
/// let solved = result.as_solve_at().expect("solve-at outcome");
/// assert_eq!(solved.solution.prefix_len, 4);
/// # Ok::<(), bist_engine::BistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SolveAtSpec {
    /// The circuit under test.
    pub circuit: CircuitSource,
    /// Flow configuration.
    pub config: MixedSchemeConfig,
    /// Pseudo-random prefix length `p`.
    pub prefix_len: usize,
    /// Which fault universe to grade and top up against. The default
    /// ([`FaultModel::StuckAt`]) hashes, encodes and caches exactly as
    /// specs did before this field existed.
    pub fault_model: FaultModel,
    /// Emit a [`ProgressEvent::Estimate`](crate::ProgressEvent::Estimate)
    /// — a Wilson-interval coverage preview from the representative
    /// sample — before the exact run streams its result. Off by default;
    /// the flag never participates in digests, caching or the outcome
    /// (a warm cache hit skips the preview entirely).
    pub estimate_first: bool,
}

/// Sweep the `(p, d)` trade-off over many prefix lengths on one
/// incremental session.
///
/// # Examples
///
/// ```
/// use bist_engine::{CircuitSource, Engine, JobSpec};
///
/// let result = Engine::new().run(JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 4, 8]))?;
/// let sweep = result.as_sweep().expect("sweep outcome");
/// // one solution per requested prefix length, in request order
/// let lengths: Vec<usize> = sweep.summary.solutions().iter().map(|s| s.prefix_len).collect();
/// assert_eq!(lengths, [0, 4, 8]);
/// # Ok::<(), bist_engine::BistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The circuit under test.
    pub circuit: CircuitSource,
    /// Flow configuration.
    pub config: MixedSchemeConfig,
    /// Prefix lengths to solve, in the order results should come back.
    pub prefix_lengths: Vec<usize>,
    /// Which fault universe to grade and top up against. The default
    /// ([`FaultModel::StuckAt`]) hashes, encodes and caches exactly as
    /// specs did before this field existed.
    pub fault_model: FaultModel,
    /// Emit a [`ProgressEvent::Estimate`](crate::ProgressEvent::Estimate)
    /// at the sweep's longest prefix before the exact run streams its
    /// checkpoints. Off by default; never participates in digests,
    /// caching or the outcome (a warm cache hit skips the preview).
    pub estimate_first: bool,
}

/// Grade the pure pseudo-random sequence at the given checkpoints — the
/// paper's Figure 4 curve.
///
/// # Examples
///
/// ```
/// use bist_engine::{CircuitSource, Engine, JobSpec};
///
/// let result =
///     Engine::new().run(JobSpec::coverage_curve(CircuitSource::iscas85("c17"), [0, 8, 16]))?;
/// let curve = result.as_coverage_curve().expect("curve outcome");
/// assert_eq!(curve.curve.points().len(), 3);
/// assert!(curve.curve.is_monotone(), "coverage never drops with length");
/// # Ok::<(), bist_engine::BistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CoverageCurveSpec {
    /// The circuit under test.
    pub circuit: CircuitSource,
    /// Flow configuration.
    pub config: MixedSchemeConfig,
    /// Sequence lengths to report coverage at, in result order.
    pub checkpoints: Vec<usize>,
    /// Which fault universe to grade. The default
    /// ([`FaultModel::StuckAt`]) hashes, encodes and caches exactly as
    /// specs did before this field existed.
    pub fault_model: FaultModel,
}

/// Run every surveyed TPG architecture on one circuit, on equal terms.
///
/// # Examples
///
/// ```
/// use bist_engine::{CircuitSource, Engine, JobSpec};
///
/// let result = Engine::new().run(JobSpec::bakeoff(CircuitSource::iscas85("c17"), 16))?;
/// let bakeoff = result.as_bakeoff().expect("bakeoff outcome");
/// // the paper's two extremes are always among the rows
/// assert!(bakeoff.bakeoff.row("lfsr").is_some());
/// assert!(bakeoff.bakeoff.row("lfsrom").is_some());
/// # Ok::<(), bist_engine::BistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BakeoffSpec {
    /// The circuit under test.
    pub circuit: CircuitSource,
    /// Flow configuration (the area model prices every row).
    pub config: MixedSchemeConfig,
    /// Pattern budget granted to the pseudo-random architectures.
    pub random_length: usize,
}

/// Solve the scheme and render the mixed generator as synthesizable HDL.
///
/// # Examples
///
/// ```
/// use bist_engine::{CircuitSource, Engine, EmitHdlSpec, HdlLanguage, JobSpec};
///
/// let spec = EmitHdlSpec {
///     circuit: CircuitSource::iscas85("c17"),
///     config: Default::default(),
///     prefix_len: 4,
///     language: HdlLanguage::Verilog,
///     module_name: Some("c17_bist".to_owned()),
///     testbench: false,
/// };
/// let result = Engine::new().run(JobSpec::EmitHdl(spec))?;
/// let hdl = result.as_emit_hdl().expect("hdl outcome");
/// assert!(hdl.verilog.as_deref().expect("verilog requested").contains("module c17_bist"));
/// assert!(hdl.vhdl.is_none(), "only the requested language is emitted");
/// # Ok::<(), bist_engine::BistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EmitHdlSpec {
    /// The circuit under test.
    pub circuit: CircuitSource,
    /// Flow configuration.
    pub config: MixedSchemeConfig,
    /// Pseudo-random prefix length `p` of the generator to emit.
    pub prefix_len: usize,
    /// Which artefacts to produce.
    pub language: HdlLanguage,
    /// Module/entity name; default `"{circuit}_bist"`.
    pub module_name: Option<String>,
    /// Also emit the self-checking Verilog testbench (requires a
    /// Verilog-producing `language`).
    pub testbench: bool,
}

/// Price the full-deterministic extreme: LFSROM generator area versus
/// nominal chip area — one row of the paper's Figure 6 / Table 1.
///
/// # Examples
///
/// ```
/// use bist_engine::{CircuitSource, Engine, JobSpec};
///
/// let result = Engine::new().run(JobSpec::area_report(CircuitSource::iscas85("c17")))?;
/// let report = result.as_area_report().expect("area outcome");
/// // the paper's shape claim: full-deterministic BIST on a tiny circuit
/// // costs several times the chip itself
/// assert!(report.overhead_pct > 100.0);
/// # Ok::<(), bist_engine::BistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AreaReportSpec {
    /// The circuit under test.
    pub circuit: CircuitSource,
    /// Flow configuration.
    pub config: MixedSchemeConfig,
}

/// Default sample budget of a [`EstimateSpec`].
pub const DEFAULT_ESTIMATE_SAMPLES: usize = 256;

/// Default confidence level of a [`EstimateSpec`], percent.
pub const DEFAULT_ESTIMATE_CONFIDENCE: u32 = 95;

/// Default sampling seed of a [`EstimateSpec`].
pub const DEFAULT_ESTIMATE_SEED: u64 = 0xb157;

/// Estimate the coverage a pseudo-random prefix reaches by grading a
/// seed-pinned stratified sample of the stuck-at universe — the cheap,
/// statistically qualified answer a service returns before the exact
/// sweep finishes.
///
/// # Examples
///
/// ```
/// use bist_engine::{CircuitSource, Engine, EstimateSpec, JobSpec};
///
/// let spec = EstimateSpec {
///     circuit: CircuitSource::iscas85("c17"),
///     config: Default::default(),
///     prefix_len: 32,
///     samples: 20,
///     confidence: 95,
///     seed: 0xb157,
/// };
/// let result = Engine::new().run(JobSpec::CoverageEstimate(spec))?;
/// let estimate = result.as_estimate().expect("estimate outcome");
/// assert_eq!(estimate.samples, 20);
/// assert!(estimate.lo_pct <= estimate.estimate_pct);
/// assert!(estimate.estimate_pct <= estimate.hi_pct);
/// # Ok::<(), bist_engine::BistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EstimateSpec {
    /// The circuit under test.
    pub circuit: CircuitSource,
    /// Flow configuration.
    pub config: MixedSchemeConfig,
    /// Pseudo-random prefix length to grade the sample against.
    pub prefix_len: usize,
    /// Faults to sample (capped at the universe size; must be ≥ 1).
    pub samples: usize,
    /// Confidence level of the interval, percent (90, 95 or 99).
    pub confidence: u32,
    /// Sampling seed the estimate is pinned to: the same spec always
    /// selects the same faults and returns the same interval.
    pub seed: u64,
}

/// Statically analyze the circuit: structural rules plus SCOAP
/// testability, no simulation.
///
/// # Examples
///
/// ```
/// use bist_engine::{CircuitSource, Engine, JobSpec};
///
/// let result = Engine::new().run(JobSpec::lint(CircuitSource::iscas85("c17")))?;
/// let lint = result.as_lint().expect("lint outcome");
/// assert!(!lint.report.has_errors(), "c17 is structurally clean");
/// assert!(lint.report.scoap.is_some(), "valid circuits get a SCOAP summary");
/// # Ok::<(), bist_engine::BistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LintSpec {
    /// The circuit under test.
    pub circuit: CircuitSource,
    /// Flow configuration (threads are irrelevant to lint; carried for
    /// uniformity with every other job).
    pub config: MixedSchemeConfig,
}

/// One schedulable unit of work — the public vocabulary of the engine.
///
/// Every variant is a plain-data struct; construct them directly or via
/// the [`JobSpec`] convenience constructors, then hand them to
/// [`Engine::run`](crate::Engine::run) or
/// [`Engine::run_batch`](crate::Engine::run_batch).
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// Solve one `(p, d)` point.
    SolveAt(SolveAtSpec),
    /// Sweep many prefix lengths incrementally.
    Sweep(SweepSpec),
    /// Coverage-versus-length curve of the pure pseudo-random phase.
    CoverageCurve(CoverageCurveSpec),
    /// TPG architecture bake-off.
    Bakeoff(BakeoffSpec),
    /// HDL emission of the solved mixed generator.
    EmitHdl(EmitHdlSpec),
    /// Full-deterministic area report.
    AreaReport(AreaReportSpec),
    /// Static analysis (structural rules + SCOAP testability).
    Lint(LintSpec),
    /// Sampled coverage estimate with a confidence interval.
    CoverageEstimate(EstimateSpec),
}

impl JobSpec {
    /// A [`JobSpec::SolveAt`] with the default configuration.
    pub fn solve_at(circuit: CircuitSource, prefix_len: usize) -> Self {
        JobSpec::SolveAt(SolveAtSpec {
            circuit,
            config: MixedSchemeConfig::default(),
            prefix_len,
            fault_model: FaultModel::default(),
            estimate_first: false,
        })
    }

    /// A [`JobSpec::Sweep`] with the default configuration.
    pub fn sweep(circuit: CircuitSource, prefix_lengths: impl Into<Vec<usize>>) -> Self {
        JobSpec::Sweep(SweepSpec {
            circuit,
            config: MixedSchemeConfig::default(),
            prefix_lengths: prefix_lengths.into(),
            fault_model: FaultModel::default(),
            estimate_first: false,
        })
    }

    /// A [`JobSpec::CoverageCurve`] with the default configuration.
    pub fn coverage_curve(circuit: CircuitSource, checkpoints: impl Into<Vec<usize>>) -> Self {
        JobSpec::CoverageCurve(CoverageCurveSpec {
            circuit,
            config: MixedSchemeConfig::default(),
            checkpoints: checkpoints.into(),
            fault_model: FaultModel::default(),
        })
    }

    /// A [`JobSpec::Bakeoff`] with the default configuration.
    pub fn bakeoff(circuit: CircuitSource, random_length: usize) -> Self {
        JobSpec::Bakeoff(BakeoffSpec {
            circuit,
            config: MixedSchemeConfig::default(),
            random_length,
        })
    }

    /// A [`JobSpec::EmitHdl`] (both languages, no testbench) with the
    /// default configuration.
    pub fn emit_hdl(circuit: CircuitSource, prefix_len: usize) -> Self {
        JobSpec::EmitHdl(EmitHdlSpec {
            circuit,
            config: MixedSchemeConfig::default(),
            prefix_len,
            language: HdlLanguage::Both,
            module_name: None,
            testbench: false,
        })
    }

    /// A [`JobSpec::AreaReport`] with the default configuration.
    pub fn area_report(circuit: CircuitSource) -> Self {
        JobSpec::AreaReport(AreaReportSpec {
            circuit,
            config: MixedSchemeConfig::default(),
        })
    }

    /// A [`JobSpec::Lint`] with the default configuration.
    pub fn lint(circuit: CircuitSource) -> Self {
        JobSpec::Lint(LintSpec {
            circuit,
            config: MixedSchemeConfig::default(),
        })
    }

    /// A [`JobSpec::CoverageEstimate`] with the default configuration,
    /// sample budget, confidence level and seed.
    pub fn estimate(circuit: CircuitSource, prefix_len: usize) -> Self {
        JobSpec::CoverageEstimate(EstimateSpec {
            circuit,
            config: MixedSchemeConfig::default(),
            prefix_len,
            samples: DEFAULT_ESTIMATE_SAMPLES,
            confidence: DEFAULT_ESTIMATE_CONFIDENCE,
            seed: DEFAULT_ESTIMATE_SEED,
        })
    }

    /// The job kind as a short lowercase noun (used in labels and
    /// [`BistError::InvalidSpec`]).
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::SolveAt(_) => "solve-at",
            JobSpec::Sweep(_) => "sweep",
            JobSpec::CoverageCurve(_) => "coverage-curve",
            JobSpec::Bakeoff(_) => "bakeoff",
            JobSpec::EmitHdl(_) => "emit-hdl",
            JobSpec::AreaReport(_) => "area-report",
            JobSpec::Lint(_) => "lint",
            JobSpec::CoverageEstimate(_) => "estimate",
        }
    }

    /// The circuit source the job will run on.
    pub fn circuit(&self) -> &CircuitSource {
        match self {
            JobSpec::SolveAt(s) => &s.circuit,
            JobSpec::Sweep(s) => &s.circuit,
            JobSpec::CoverageCurve(s) => &s.circuit,
            JobSpec::Bakeoff(s) => &s.circuit,
            JobSpec::EmitHdl(s) => &s.circuit,
            JobSpec::AreaReport(s) => &s.circuit,
            JobSpec::Lint(s) => &s.circuit,
            JobSpec::CoverageEstimate(s) => &s.circuit,
        }
    }

    /// The fault model the job grades against — [`FaultModel::StuckAt`]
    /// for the job kinds that don't carry one (bakeoff, HDL emission,
    /// area report and lint always run the paper's stuck-at flow).
    pub fn fault_model(&self) -> FaultModel {
        match self {
            JobSpec::SolveAt(s) => s.fault_model,
            JobSpec::Sweep(s) => s.fault_model,
            JobSpec::CoverageCurve(s) => s.fault_model,
            JobSpec::Bakeoff(_)
            | JobSpec::EmitHdl(_)
            | JobSpec::AreaReport(_)
            | JobSpec::Lint(_)
            | JobSpec::CoverageEstimate(_) => FaultModel::StuckAt,
        }
    }

    /// The flow configuration the job will run with.
    pub fn config(&self) -> &MixedSchemeConfig {
        match self {
            JobSpec::SolveAt(s) => &s.config,
            JobSpec::Sweep(s) => &s.config,
            JobSpec::CoverageCurve(s) => &s.config,
            JobSpec::Bakeoff(s) => &s.config,
            JobSpec::EmitHdl(s) => &s.config,
            JobSpec::AreaReport(s) => &s.config,
            JobSpec::Lint(s) => &s.config,
            JobSpec::CoverageEstimate(s) => &s.config,
        }
    }

    /// Overrides the pool width of the job's configuration.
    pub(crate) fn set_threads(&mut self, threads: usize) {
        let config = match self {
            JobSpec::SolveAt(s) => &mut s.config,
            JobSpec::Sweep(s) => &mut s.config,
            JobSpec::CoverageCurve(s) => &mut s.config,
            JobSpec::Bakeoff(s) => &mut s.config,
            JobSpec::EmitHdl(s) => &mut s.config,
            JobSpec::AreaReport(s) => &mut s.config,
            JobSpec::Lint(s) => &mut s.config,
            JobSpec::CoverageEstimate(s) => &mut s.config,
        };
        config.threads = threads;
    }

    /// Checks the spec's own consistency — budgets, artefact
    /// combinations — without realizing the circuit.
    ///
    /// # Errors
    ///
    /// [`BistError::InvalidSpec`] describing the first defect found.
    pub fn validate(&self) -> Result<(), BistError> {
        let invalid = |message: &str| {
            Err(BistError::InvalidSpec {
                job: self.kind(),
                message: message.to_owned(),
            })
        };
        match self {
            JobSpec::Sweep(s) => {
                if s.prefix_lengths.is_empty() {
                    return invalid("prefix_lengths must name at least one checkpoint");
                }
            }
            JobSpec::CoverageCurve(s) => {
                if s.checkpoints.is_empty() {
                    return invalid("checkpoints must name at least one length");
                }
            }
            JobSpec::Bakeoff(s) => {
                if s.random_length == 0 {
                    return invalid("random_length must grant at least one pattern");
                }
            }
            JobSpec::EmitHdl(s) => {
                if s.testbench && s.language == HdlLanguage::Vhdl {
                    return invalid("the self-checking testbench is Verilog-only");
                }
                if let Some(name) = &s.module_name {
                    let ok = !name.is_empty()
                        && name
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                    if !ok {
                        return invalid("module_name must be a plain HDL identifier");
                    }
                }
            }
            JobSpec::CoverageEstimate(s) => {
                if s.samples == 0 {
                    return invalid("samples must grade at least one fault");
                }
                if !matches!(s.confidence, 90 | 95 | 99) {
                    return invalid("confidence must be 90, 95 or 99");
                }
            }
            JobSpec::SolveAt(_) | JobSpec::AreaReport(_) | JobSpec::Lint(_) => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_realize_or_fail_typed() {
        assert_eq!(
            CircuitSource::iscas85("c17")
                .realize()
                .expect("known benchmark")
                .inputs()
                .len(),
            5
        );
        assert!(matches!(
            CircuitSource::iscas85("c9999").realize(),
            Err(BistError::UnknownCircuit {
                family: "iscas85",
                ..
            })
        ));
        assert!(matches!(
            CircuitSource::iscas89("s9999").realize(),
            Err(BistError::UnknownCircuit {
                family: "iscas89",
                ..
            })
        ));
        assert!(matches!(
            CircuitSource::bench("junk", "INPUT(a)\nOUTPUT(y)\nwat").realize(),
            Err(BistError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn validation_rejects_empty_budgets() {
        let empty_sweep = JobSpec::sweep(CircuitSource::iscas85("c17"), Vec::new());
        assert!(matches!(
            empty_sweep.validate(),
            Err(BistError::InvalidSpec { job: "sweep", .. })
        ));
        let empty_curve = JobSpec::coverage_curve(CircuitSource::iscas85("c17"), Vec::new());
        assert!(empty_curve.validate().is_err());
        let zero_bakeoff = JobSpec::bakeoff(CircuitSource::iscas85("c17"), 0);
        assert!(zero_bakeoff.validate().is_err());
        let mut estimate = match JobSpec::estimate(CircuitSource::iscas85("c17"), 8) {
            JobSpec::CoverageEstimate(s) => s,
            _ => unreachable!(),
        };
        assert!(JobSpec::CoverageEstimate(estimate.clone())
            .validate()
            .is_ok());
        estimate.samples = 0;
        assert!(JobSpec::CoverageEstimate(estimate.clone())
            .validate()
            .is_err());
        estimate.samples = 16;
        estimate.confidence = 80;
        assert!(JobSpec::CoverageEstimate(estimate).validate().is_err());
        assert!(JobSpec::solve_at(CircuitSource::iscas85("c17"), 0)
            .validate()
            .is_ok());
    }

    #[test]
    fn validation_rejects_bad_hdl_specs() {
        let mut spec = match JobSpec::emit_hdl(CircuitSource::iscas85("c17"), 4) {
            JobSpec::EmitHdl(s) => s,
            _ => unreachable!(),
        };
        spec.module_name = Some("1bad name".to_owned());
        assert!(JobSpec::EmitHdl(spec.clone()).validate().is_err());
        spec.module_name = Some("fine_name".to_owned());
        assert!(JobSpec::EmitHdl(spec.clone()).validate().is_ok());
        spec.language = HdlLanguage::Vhdl;
        spec.testbench = true;
        assert!(JobSpec::EmitHdl(spec).validate().is_err());
    }
}
