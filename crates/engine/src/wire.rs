//! The versioned newline-delimited-JSON wire protocol of `bist serve`.
//!
//! Every message is one compact JSON object on one line (the [`Json`]
//! renderer never emits a raw newline — control characters are escaped
//! — so NDJSON framing is safe by construction). Every line carries a
//! `"v"` field holding [`WIRE_SCHEMA_VERSION`]; decoding a line from a
//! different version fails with a typed [`WireError`] instead of
//! misinterpreting fields.
//!
//! The protocol is a compatibility contract, unlike the cache-internal
//! [`codec`] layout: field names in this module are
//! stable. Result payloads delegate to [`codec::encode_result`] and
//! carry its embedded `cache_schema` version, so the two layers version
//! jointly — a result produced by a different tree fails to decode
//! rather than decoding wrongly. Bit-exactness survives the wire: every
//! `f64` crosses as its IEEE-754 bit pattern ([`Json::f64_bits`]), and
//! an [`CircuitSource::Inline`] circuit crosses as its canonical
//! `.bench` serialization (it decodes as [`CircuitSource::Bench`],
//! which realizes to the identical circuit).
//!
//! See `docs/PROTOCOL.md` for the session flow and a field-by-field
//! reference.

use bist_netlist::bench;
use bist_synth::CellKind;

use crate::codec;
use crate::json::Json;
use crate::progress::{JobId, ProgressEvent};
use crate::result::JobResult;
use crate::spec::{
    AreaReportSpec, BakeoffSpec, CircuitSource, CoverageCurveSpec, EmitHdlSpec, EstimateSpec,
    HdlLanguage, JobSpec, LintSpec, SolveAtSpec, SweepSpec,
};
use bist_core::MixedSchemeConfig;
use bist_faultmodel::{FaultModel, ParseFaultModelError};
use bist_lfsr::Polynomial;
use bist_synth::AreaModel;

/// Version of the wire schema. Bump on any change to field names,
/// value encodings or message kinds; peers at different versions
/// reject each other's lines with a [`WireError`] naming both versions.
pub const WIRE_SCHEMA_VERSION: u64 = 1;

/// A malformed, foreign-version or otherwise undecodable wire line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What failed to decode.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.message)
    }
}

impl std::error::Error for WireError {}

fn err(message: impl Into<String>) -> WireError {
    WireError {
        message: message.into(),
    }
}

/// One client-to-server message.
#[derive(Debug, Clone)]
pub enum Request {
    /// Submit a job for execution.
    Submit {
        /// The job to run (boxed: a spec dwarfs the other variants).
        spec: Box<JobSpec>,
    },
    /// Ask for the server's lifetime statistics.
    Stats,
    /// Ask the server to shut down gracefully (drain in-flight jobs,
    /// then exit).
    Shutdown,
}

/// One server-to-client message.
#[derive(Debug, Clone)]
pub enum Response {
    /// The submission was admitted; `job` identifies it in every
    /// subsequent event on this connection.
    Accepted {
        /// Server-assigned job number.
        job: u64,
    },
    /// The submission was refused — the queue is full or the server is
    /// draining. The client should retry after `retry_after_ms` (when
    /// given) or give up.
    Rejected {
        /// Human-readable refusal reason.
        reason: String,
        /// Suggested retry delay, milliseconds; `None` means "don't".
        retry_after_ms: Option<u64>,
    },
    /// A progress event from a running job (its [`ProgressEvent::job`]
    /// carries the server-assigned job number).
    Event {
        /// The event.
        event: ProgressEvent,
    },
    /// A job finished successfully.
    Result {
        /// Server-assigned job number.
        job: u64,
        /// True when the result was answered from the server's result
        /// cache without re-simulation.
        cached: bool,
        /// The result payload (boxed: it dwarfs the other variants).
        result: Box<JobResult>,
    },
    /// A job failed; the rendered [`BistError`](crate::BistError).
    Failed {
        /// Server-assigned job number.
        job: u64,
        /// Rendered error message.
        error: String,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// The server's lifetime statistics.
        stats: ServerStats,
    },
    /// Answer to [`Request::Shutdown`]: the server stopped accepting
    /// work and is draining.
    Stopping {
        /// Jobs still queued at the time of the request.
        queued: u64,
        /// Jobs executing at the time of the request.
        running: u64,
    },
}

/// Server-lifetime statistics, answered to [`Request::Stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Jobs admitted over the server's lifetime.
    pub submitted: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Jobs currently waiting in the queue.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Result-cache statistics, when the server runs with a cache.
    pub cache: Option<WireCacheStats>,
}

/// Result-cache statistics inside [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireCacheStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Results written.
    pub stores: u64,
    /// Entries evicted by the size cap.
    pub evictions: u64,
    /// Entries on disk right now.
    pub entries: u64,
    /// Bytes on disk right now.
    pub bytes: u64,
    /// The configured size cap, when one is set.
    pub capacity_bytes: Option<u64>,
}

fn uint64(v: u64) -> Json {
    match i64::try_from(v) {
        Ok(v) => Json::Int(v),
        // the JSON layer's integer is i64; the (theoretical) upper half
        // of the u64 domain crosses as a 16-hex-digit string instead of
        // panicking or truncating
        Err(_) => hex64(v),
    }
}

fn hex64(v: u64) -> Json {
    Json::Str(format!("{v:016x}"))
}

fn get<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    obj.get(key).ok_or_else(|| err(format!("missing `{key}`")))
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, WireError> {
    let value = get(obj, key)?;
    if let Some(v) = value.as_i64() {
        return u64::try_from(v).map_err(|_| err(format!("`{key}` is not a non-negative integer")));
    }
    // the hex-string fallback [`uint64`] uses above i64::MAX
    if let Some(s) = value.as_str() {
        if s.len() == 16 {
            if let Ok(v) = u64::from_str_radix(s, 16) {
                return Ok(v);
            }
        }
    }
    Err(err(format!("`{key}` is not a non-negative integer")))
}

fn get_usize(obj: &Json, key: &str) -> Result<usize, WireError> {
    get(obj, key)?
        .as_usize()
        .ok_or_else(|| err(format!("`{key}` is not a non-negative integer")))
}

fn get_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, WireError> {
    get(obj, key)?
        .as_str()
        .ok_or_else(|| err(format!("`{key}` is not a string")))
}

fn get_bool(obj: &Json, key: &str) -> Result<bool, WireError> {
    get(obj, key)?
        .as_bool()
        .ok_or_else(|| err(format!("`{key}` is not a boolean")))
}

fn get_hex64(obj: &Json, key: &str) -> Result<u64, WireError> {
    let s = get_str(obj, key)?;
    if s.len() != 16 {
        return Err(err(format!("`{key}` is not a 16-hex-digit word")));
    }
    u64::from_str_radix(s, 16).map_err(|_| err(format!("`{key}` is not a 16-hex-digit word")))
}

fn get_f64_bits(obj: &Json, key: &str) -> Result<f64, WireError> {
    get(obj, key)?
        .as_f64_bits()
        .ok_or_else(|| err(format!("`{key}` is not a bit-exact f64")))
}

fn envelope(kind: &str) -> Json {
    let mut o = Json::object();
    o.push("v", uint64(WIRE_SCHEMA_VERSION));
    o.push("type", Json::str(kind));
    o
}

fn open_envelope<'a>(line: &str, doc: &'a Json) -> Result<&'a str, WireError> {
    let _ = line;
    let v = get_u64(doc, "v")?;
    if v != WIRE_SCHEMA_VERSION {
        return Err(err(format!(
            "schema version {v} (this peer speaks {WIRE_SCHEMA_VERSION})"
        )));
    }
    get_str(doc, "type")
}

// ---------------------------------------------------------------- specs

fn encode_circuit(circuit: &CircuitSource) -> Json {
    let mut o = Json::object();
    match circuit {
        CircuitSource::Iscas85 { name } => {
            o.push("family", Json::str("iscas85"));
            o.push("name", Json::str(name));
        }
        CircuitSource::Iscas89 { name } => {
            o.push("family", Json::str("iscas89"));
            o.push("name", Json::str(name));
        }
        CircuitSource::Bench { name, text } => {
            o.push("family", Json::str("bench"));
            o.push("name", Json::str(name));
            o.push("text", Json::str(text));
        }
        // an inline circuit crosses the wire as its canonical `.bench`
        // serialization; it decodes as Bench and realizes identically
        CircuitSource::Inline(c) => {
            o.push("family", Json::str("bench"));
            o.push("name", Json::str(c.name()));
            o.push("text", Json::str(bench::write(c)));
        }
    }
    o
}

fn decode_circuit(j: &Json) -> Result<CircuitSource, WireError> {
    let name = get_str(j, "name")?.to_owned();
    match get_str(j, "family")? {
        "iscas85" => Ok(CircuitSource::Iscas85 { name }),
        "iscas89" => Ok(CircuitSource::Iscas89 { name }),
        "bench" => Ok(CircuitSource::Bench {
            name,
            text: get_str(j, "text")?.to_owned(),
        }),
        other => Err(err(format!("unknown circuit family `{other}`"))),
    }
}

fn encode_config(config: &MixedSchemeConfig) -> Json {
    let mut atpg = Json::object();
    atpg.push(
        "backtrack_limit",
        Json::uint(config.atpg.podem.backtrack_limit as usize),
    );
    atpg.push("fill_seed", hex64(config.atpg.podem.fill_seed));
    atpg.push("no_compaction", Json::Bool(config.atpg.no_compaction));
    atpg.push("threads", Json::uint(config.atpg.threads));
    let mut cells = Json::object();
    for kind in CellKind::ALL {
        cells.push(
            kind.to_string(),
            Json::f64_bits(config.area.cell_area_um2(kind)),
        );
    }
    let mut area = Json::object();
    area.push(
        "routing_factor",
        Json::f64_bits(config.area.routing_factor()),
    );
    area.push("cells_um2", cells);
    let mut o = Json::object();
    o.push("poly", hex64(config.poly.mask()));
    o.push("atpg", atpg);
    o.push("area", area);
    // advisory: the receiving engine re-resolves its own pool width
    // when 0; results are bit-identical at every width regardless
    o.push("threads", Json::uint(config.threads));
    o
}

fn decode_config(j: &Json) -> Result<MixedSchemeConfig, WireError> {
    let atpg = get(j, "atpg")?;
    let area = get(j, "area")?;
    let cells = get(area, "cells_um2")?;
    let mut areas = std::collections::BTreeMap::new();
    for kind in CellKind::ALL {
        areas.insert(kind, get_f64_bits(cells, &kind.to_string())?);
    }
    let backtrack_limit = u32::try_from(get_usize(atpg, "backtrack_limit")?)
        .map_err(|_| err("`backtrack_limit` exceeds u32"))?;
    let mut config = MixedSchemeConfig {
        poly: Polynomial::from_mask(get_hex64(j, "poly")?),
        area: AreaModel::with_areas(areas, get_f64_bits(area, "routing_factor")?),
        ..MixedSchemeConfig::default()
    };
    config.atpg.podem.backtrack_limit = backtrack_limit;
    config.atpg.podem.fill_seed = get_hex64(atpg, "fill_seed")?;
    config.atpg.no_compaction = get_bool(atpg, "no_compaction")?;
    config.atpg.threads = get_usize(atpg, "threads")?;
    config.threads = get_usize(j, "threads")?;
    Ok(config)
}

fn encode_lengths(lengths: &[usize]) -> Json {
    Json::Array(lengths.iter().map(|&l| Json::uint(l)).collect())
}

fn decode_lengths(obj: &Json, key: &str) -> Result<Vec<usize>, WireError> {
    get(obj, key)?
        .as_array()
        .ok_or_else(|| err(format!("`{key}` is not an array")))?
        .iter()
        .map(|v| {
            v.as_usize()
                .ok_or_else(|| err(format!("`{key}` holds a non-integer")))
        })
        .collect()
}

fn language_name(language: HdlLanguage) -> &'static str {
    match language {
        HdlLanguage::Verilog => "verilog",
        HdlLanguage::Vhdl => "vhdl",
        HdlLanguage::Both => "both",
    }
}

/// Encodes one [`JobSpec`] as a wire document (the `"spec"` payload of
/// a submit request).
pub fn encode_spec(spec: &JobSpec) -> Json {
    let mut o = Json::object();
    o.push("kind", Json::str(spec.kind()));
    o.push("circuit", encode_circuit(spec.circuit()));
    o.push("config", encode_config(spec.config()));
    match spec {
        JobSpec::SolveAt(s) => {
            o.push("prefix_len", Json::uint(s.prefix_len));
            // emitted only when set: default specs keep the wire bytes
            // peers that predate estimate-first serving expect
            if s.estimate_first {
                o.push("estimate_first", Json::Bool(true));
            }
        }
        JobSpec::Sweep(s) => {
            o.push("prefix_lengths", encode_lengths(&s.prefix_lengths));
            if s.estimate_first {
                o.push("estimate_first", Json::Bool(true));
            }
        }
        JobSpec::CoverageCurve(s) => {
            o.push("checkpoints", encode_lengths(&s.checkpoints));
        }
        JobSpec::Bakeoff(s) => {
            o.push("random_length", Json::uint(s.random_length));
        }
        JobSpec::EmitHdl(s) => {
            o.push("prefix_len", Json::uint(s.prefix_len));
            o.push("language", Json::str(language_name(s.language)));
            o.push(
                "module_name",
                match &s.module_name {
                    Some(name) => Json::str(name),
                    None => Json::Null,
                },
            );
            o.push("testbench", Json::Bool(s.testbench));
        }
        JobSpec::CoverageEstimate(s) => {
            o.push("prefix_len", Json::uint(s.prefix_len));
            o.push("samples", Json::uint(s.samples));
            o.push("confidence", Json::uint(s.confidence as usize));
            o.push("seed", hex64(s.seed));
        }
        JobSpec::AreaReport(_) | JobSpec::Lint(_) => {}
    }
    // Emitted only when the job grades something other than stuck-at:
    // the default spec's wire bytes are unchanged from schema-v1 peers
    // that predate the field, and such peers keep decoding our default
    // specs.
    let model = spec.fault_model();
    if !model.is_default() {
        o.push("fault_model", Json::str(model.to_string()));
    }
    o
}

/// The optional `fault_model` field: absent means stuck-at, the only
/// model that existed when the wire schema was minted.
fn decode_fault_model(j: &Json) -> Result<FaultModel, WireError> {
    match j.get("fault_model") {
        None | Some(Json::Null) => Ok(FaultModel::default()),
        Some(v) => v
            .as_str()
            .ok_or_else(|| err("`fault_model` is not a string"))?
            .parse()
            .map_err(|e: ParseFaultModelError| err(e.to_string())),
    }
}

/// The optional `estimate_first` flag: absent means off — the only
/// behaviour that existed before estimate-first serving.
fn decode_estimate_first(j: &Json) -> bool {
    j.get("estimate_first")
        .and_then(Json::as_bool)
        .unwrap_or(false)
}

/// Decodes a wire document produced by [`encode_spec`].
///
/// # Errors
///
/// [`WireError`] naming the first malformed or missing field.
pub fn decode_spec(j: &Json) -> Result<JobSpec, WireError> {
    let circuit = decode_circuit(get(j, "circuit")?)?;
    let config = decode_config(get(j, "config")?)?;
    match get_str(j, "kind")? {
        "solve-at" => Ok(JobSpec::SolveAt(SolveAtSpec {
            circuit,
            config,
            prefix_len: get_usize(j, "prefix_len")?,
            fault_model: decode_fault_model(j)?,
            estimate_first: decode_estimate_first(j),
        })),
        "sweep" => Ok(JobSpec::Sweep(SweepSpec {
            circuit,
            config,
            prefix_lengths: decode_lengths(j, "prefix_lengths")?,
            fault_model: decode_fault_model(j)?,
            estimate_first: decode_estimate_first(j),
        })),
        "coverage-curve" => Ok(JobSpec::CoverageCurve(CoverageCurveSpec {
            circuit,
            config,
            checkpoints: decode_lengths(j, "checkpoints")?,
            fault_model: decode_fault_model(j)?,
        })),
        "bakeoff" => Ok(JobSpec::Bakeoff(BakeoffSpec {
            circuit,
            config,
            random_length: get_usize(j, "random_length")?,
        })),
        "emit-hdl" => Ok(JobSpec::EmitHdl(EmitHdlSpec {
            circuit,
            config,
            prefix_len: get_usize(j, "prefix_len")?,
            language: match get_str(j, "language")? {
                "verilog" => HdlLanguage::Verilog,
                "vhdl" => HdlLanguage::Vhdl,
                "both" => HdlLanguage::Both,
                other => return Err(err(format!("unknown HDL language `{other}`"))),
            },
            module_name: match get(j, "module_name")? {
                Json::Null => None,
                name => Some(
                    name.as_str()
                        .ok_or_else(|| err("`module_name` is not a string or null"))?
                        .to_owned(),
                ),
            },
            testbench: get_bool(j, "testbench")?,
        })),
        "area-report" => Ok(JobSpec::AreaReport(AreaReportSpec { circuit, config })),
        "lint" => Ok(JobSpec::Lint(LintSpec { circuit, config })),
        "estimate" => Ok(JobSpec::CoverageEstimate(EstimateSpec {
            circuit,
            config,
            prefix_len: get_usize(j, "prefix_len")?,
            samples: get_usize(j, "samples")?,
            confidence: u32::try_from(get_usize(j, "confidence")?)
                .map_err(|_| err("`confidence` exceeds u32"))?,
            seed: get_hex64(j, "seed")?,
        })),
        other => Err(err(format!("unknown job kind `{other}`"))),
    }
}

// --------------------------------------------------------------- events

/// Encodes one [`ProgressEvent`] as a wire document.
pub fn encode_event(event: &ProgressEvent) -> Json {
    let mut o = Json::object();
    let (kind, job) = match event {
        ProgressEvent::Queued { job, .. } => ("queued", job),
        ProgressEvent::Started { job } => ("started", job),
        ProgressEvent::Checkpoint { job, .. } => ("checkpoint", job),
        ProgressEvent::Estimate { job, .. } => ("estimate", job),
        ProgressEvent::Pass { job, .. } => ("pass", job),
        ProgressEvent::Finished { job, .. } => ("finished", job),
        ProgressEvent::Failed { job, .. } => ("failed", job),
        ProgressEvent::Canceled { job } => ("canceled", job),
    };
    o.push("event", Json::str(kind));
    o.push("job", uint64(job.0));
    match event {
        ProgressEvent::Queued { label, .. } => {
            o.push("label", Json::str(label));
        }
        ProgressEvent::Checkpoint {
            prefix_len,
            coverage_pct,
            ..
        } => {
            o.push("prefix_len", Json::uint(*prefix_len));
            o.push("coverage_pct", Json::f64_bits(*coverage_pct));
        }
        ProgressEvent::Estimate {
            prefix_len,
            samples,
            estimate_pct,
            lo_pct,
            hi_pct,
            confidence,
            ..
        } => {
            o.push("prefix_len", Json::uint(*prefix_len));
            o.push("samples", Json::uint(*samples));
            o.push("estimate_pct", Json::f64_bits(*estimate_pct));
            o.push("lo_pct", Json::f64_bits(*lo_pct));
            o.push("hi_pct", Json::f64_bits(*hi_pct));
            o.push("confidence", Json::uint(*confidence as usize));
        }
        ProgressEvent::Pass { name, .. } => {
            o.push("name", Json::str(name));
        }
        ProgressEvent::Failed { message, .. } => {
            o.push("message", Json::str(message));
        }
        // emitted only when true: warm-cache answers flag themselves,
        // computed results keep the field-free bytes older peers expect
        ProgressEvent::Finished {
            cache_hit: true, ..
        } => {
            o.push("cache_hit", Json::Bool(true));
        }
        _ => {}
    }
    o
}

/// Decodes a wire document produced by [`encode_event`].
///
/// # Errors
///
/// [`WireError`] naming the first malformed or missing field.
pub fn decode_event(j: &Json) -> Result<ProgressEvent, WireError> {
    let job = JobId(get_u64(j, "job")?);
    match get_str(j, "event")? {
        "queued" => Ok(ProgressEvent::Queued {
            job,
            label: get_str(j, "label")?.to_owned(),
        }),
        "started" => Ok(ProgressEvent::Started { job }),
        "checkpoint" => Ok(ProgressEvent::Checkpoint {
            job,
            prefix_len: get_usize(j, "prefix_len")?,
            coverage_pct: get_f64_bits(j, "coverage_pct")?,
        }),
        "estimate" => Ok(ProgressEvent::Estimate {
            job,
            prefix_len: get_usize(j, "prefix_len")?,
            samples: get_usize(j, "samples")?,
            estimate_pct: get_f64_bits(j, "estimate_pct")?,
            lo_pct: get_f64_bits(j, "lo_pct")?,
            hi_pct: get_f64_bits(j, "hi_pct")?,
            confidence: u32::try_from(get_usize(j, "confidence")?)
                .map_err(|_| err("`confidence` exceeds u32"))?,
        }),
        "pass" => Ok(ProgressEvent::Pass {
            job,
            name: get_str(j, "name")?.to_owned(),
        }),
        "finished" => Ok(ProgressEvent::Finished {
            job,
            // absent on lines from peers that predate the flag (and on
            // every computed result): decodes as "not a cache hit"
            cache_hit: j.get("cache_hit").and_then(Json::as_bool).unwrap_or(false),
        }),
        "failed" => Ok(ProgressEvent::Failed {
            job,
            message: get_str(j, "message")?.to_owned(),
        }),
        "canceled" => Ok(ProgressEvent::Canceled { job }),
        other => Err(err(format!("unknown event `{other}`"))),
    }
}

// ---------------------------------------------------------------- stats

fn encode_stats(stats: &ServerStats) -> Json {
    let mut o = Json::object();
    o.push("uptime_ms", uint64(stats.uptime_ms));
    o.push("submitted", uint64(stats.submitted));
    o.push("completed", uint64(stats.completed));
    o.push("failed", uint64(stats.failed));
    o.push("rejected", uint64(stats.rejected));
    o.push("queued", uint64(stats.queued));
    o.push("running", uint64(stats.running));
    match &stats.cache {
        Some(c) => {
            let mut cache = Json::object();
            cache.push("hits", uint64(c.hits));
            cache.push("misses", uint64(c.misses));
            cache.push("stores", uint64(c.stores));
            cache.push("evictions", uint64(c.evictions));
            cache.push("entries", uint64(c.entries));
            cache.push("bytes", uint64(c.bytes));
            cache.push(
                "capacity_bytes",
                match c.capacity_bytes {
                    Some(cap) => uint64(cap),
                    None => Json::Null,
                },
            );
            o.push("cache", cache);
        }
        None => {
            o.push("cache", Json::Null);
        }
    }
    o
}

fn decode_stats(j: &Json) -> Result<ServerStats, WireError> {
    let cache = match get(j, "cache")? {
        Json::Null => None,
        c => Some(WireCacheStats {
            hits: get_u64(c, "hits")?,
            misses: get_u64(c, "misses")?,
            stores: get_u64(c, "stores")?,
            evictions: get_u64(c, "evictions")?,
            entries: get_u64(c, "entries")?,
            bytes: get_u64(c, "bytes")?,
            capacity_bytes: match get(c, "capacity_bytes")? {
                Json::Null => None,
                _ => Some(get_u64(c, "capacity_bytes")?),
            },
        }),
    };
    Ok(ServerStats {
        uptime_ms: get_u64(j, "uptime_ms")?,
        submitted: get_u64(j, "submitted")?,
        completed: get_u64(j, "completed")?,
        failed: get_u64(j, "failed")?,
        rejected: get_u64(j, "rejected")?,
        queued: get_u64(j, "queued")?,
        running: get_u64(j, "running")?,
        cache,
    })
}

// ---------------------------------------------------------------- lines

/// Renders one request as its single-line wire form (no trailing
/// newline; the transport adds the `\n` framing).
pub fn encode_request(request: &Request) -> String {
    let mut o = match request {
        Request::Submit { .. } => envelope("submit"),
        Request::Stats => envelope("stats"),
        Request::Shutdown => envelope("shutdown"),
    };
    if let Request::Submit { spec } = request {
        o.push("spec", encode_spec(spec));
    }
    o.render()
}

/// Parses one request line.
///
/// # Errors
///
/// [`WireError`] on malformed JSON, a foreign schema version, or any
/// missing/mistyped field.
pub fn decode_request(line: &str) -> Result<Request, WireError> {
    let doc = crate::json::parse(line).map_err(|e| err(format!("malformed JSON: {e}")))?;
    match open_envelope(line, &doc)? {
        "submit" => Ok(Request::Submit {
            spec: Box::new(decode_spec(get(&doc, "spec")?)?),
        }),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(err(format!("unknown request type `{other}`"))),
    }
}

/// Renders one response as its single-line wire form (no trailing
/// newline; the transport adds the `\n` framing).
pub fn encode_response(response: &Response) -> String {
    let mut o = match response {
        Response::Accepted { .. } => envelope("accepted"),
        Response::Rejected { .. } => envelope("rejected"),
        Response::Event { .. } => envelope("event"),
        Response::Result { .. } => envelope("result"),
        Response::Failed { .. } => envelope("failed"),
        Response::Stats { .. } => envelope("stats"),
        Response::Stopping { .. } => envelope("stopping"),
    };
    match response {
        Response::Accepted { job } => {
            o.push("job", uint64(*job));
        }
        Response::Rejected {
            reason,
            retry_after_ms,
        } => {
            o.push("reason", Json::str(reason));
            o.push(
                "retry_after_ms",
                match retry_after_ms {
                    Some(ms) => uint64(*ms),
                    None => Json::Null,
                },
            );
        }
        Response::Event { event } => {
            o.push("payload", encode_event(event));
        }
        Response::Result {
            job,
            cached,
            result,
        } => {
            o.push("job", uint64(*job));
            o.push("cached", Json::Bool(*cached));
            o.push("result", codec::encode_result(result));
        }
        Response::Failed { job, error } => {
            o.push("job", uint64(*job));
            o.push("error", Json::str(error));
        }
        Response::Stats { stats } => {
            o.push("stats", encode_stats(stats));
        }
        Response::Stopping { queued, running } => {
            o.push("queued", uint64(*queued));
            o.push("running", uint64(*running));
        }
    }
    o.render()
}

/// Parses one response line.
///
/// # Errors
///
/// [`WireError`] on malformed JSON, a foreign schema version, or any
/// missing/mistyped field.
pub fn decode_response(line: &str) -> Result<Response, WireError> {
    let doc = crate::json::parse(line).map_err(|e| err(format!("malformed JSON: {e}")))?;
    match open_envelope(line, &doc)? {
        "accepted" => Ok(Response::Accepted {
            job: get_u64(&doc, "job")?,
        }),
        "rejected" => Ok(Response::Rejected {
            reason: get_str(&doc, "reason")?.to_owned(),
            retry_after_ms: match get(&doc, "retry_after_ms")? {
                Json::Null => None,
                ms => Some(
                    ms.as_i64()
                        .and_then(|v| u64::try_from(v).ok())
                        .ok_or_else(|| err("`retry_after_ms` is not an integer or null"))?,
                ),
            },
        }),
        "event" => Ok(Response::Event {
            event: decode_event(get(&doc, "payload")?)?,
        }),
        "result" => Ok(Response::Result {
            job: get_u64(&doc, "job")?,
            cached: get_bool(&doc, "cached")?,
            result: Box::new(
                codec::decode_result(get(&doc, "result")?)
                    .ok_or_else(|| err("undecodable result payload (foreign cache schema?)"))?,
            ),
        }),
        "failed" => Ok(Response::Failed {
            job: get_u64(&doc, "job")?,
            error: get_str(&doc, "error")?.to_owned(),
        }),
        "stats" => Ok(Response::Stats {
            stats: decode_stats(get(&doc, "stats")?)?,
        }),
        "stopping" => Ok(Response::Stopping {
            queued: get_u64(&doc, "queued")?,
            running: get_u64(&doc, "running")?,
        }),
        other => Err(err(format!("unknown response type `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: &Request) -> String {
        let line = encode_request(request);
        let back = decode_request(&line).expect("decodes");
        let again = encode_request(&back);
        assert_eq!(line, again, "re-encode is bit-identical");
        line
    }

    #[test]
    fn submit_round_trips_every_kind() {
        let circuit = || CircuitSource::iscas85("c17");
        let specs = vec![
            JobSpec::solve_at(circuit(), 8),
            JobSpec::sweep(circuit(), [0, 8, 16]),
            JobSpec::coverage_curve(circuit(), [4, 32]),
            JobSpec::bakeoff(circuit(), 100),
            JobSpec::emit_hdl(circuit(), 4),
            JobSpec::area_report(circuit()),
            JobSpec::lint(circuit()),
            JobSpec::estimate(circuit(), 32),
        ];
        for spec in specs {
            let line = round_trip_request(&Request::Submit {
                spec: Box::new(spec),
            });
            assert!(line.starts_with("{\"v\": 1, \"type\": \"submit\""));
            assert!(!line.contains('\n'), "NDJSON frames stay single-line");
        }
    }

    #[test]
    fn fault_models_cross_the_wire_only_when_non_default() {
        let circuit = || CircuitSource::iscas85("c17");
        // default model: no field on the wire — bytes identical to a
        // peer that predates the concept
        let line = round_trip_request(&Request::Submit {
            spec: Box::new(JobSpec::sweep(circuit(), [0, 8])),
        });
        assert!(!line.contains("fault_model"), "{line}");

        for model in [
            FaultModel::Transition,
            FaultModel::bridging(),
            FaultModel::Bridging {
                pairs: 12,
                seed: 99,
            },
        ] {
            let mut spec = JobSpec::sweep(circuit(), [0, 8]);
            if let JobSpec::Sweep(s) = &mut spec {
                s.fault_model = model;
            }
            let line = round_trip_request(&Request::Submit {
                spec: Box::new(spec),
            });
            assert!(line.contains("fault_model"), "{line}");
            let Request::Submit { spec } = decode_request(&line).expect("decodes") else {
                panic!("submit round-trips as submit");
            };
            assert_eq!(spec.fault_model(), model);
        }

        // absent field decodes as stuck-at; a malformed one fails typed
        let stripped = line.replace(", \"fault_model\": \"transition\"", "");
        assert_eq!(stripped, line, "default line never carried the field");
        let bad = line.replace("\"sweep\"", "\"sweep\", \"fault_model\": \"warp\"");
        assert!(decode_request(&bad).is_err());
    }

    #[test]
    fn inline_circuits_cross_as_bench_text() {
        let circuit = CircuitSource::iscas85("c17").realize().expect("c17");
        let spec = JobSpec::lint(CircuitSource::Inline(circuit.clone()));
        let line = encode_request(&Request::Submit {
            spec: Box::new(spec),
        });
        let back = decode_request(&line).expect("decodes");
        let Request::Submit { spec } = back else {
            panic!("submit round-trips as submit");
        };
        assert!(matches!(spec.circuit(), CircuitSource::Bench { .. }));
        let realized = spec.circuit().realize().expect("bench text realizes");
        assert_eq!(realized.nodes().len(), circuit.nodes().len());
        // and the bench form is the fixed point: it re-encodes identically
        round_trip_request(&Request::Submit { spec });
    }

    #[test]
    fn control_requests_round_trip() {
        assert_eq!(
            round_trip_request(&Request::Stats),
            "{\"v\": 1, \"type\": \"stats\"}"
        );
        assert_eq!(
            round_trip_request(&Request::Shutdown),
            "{\"v\": 1, \"type\": \"shutdown\"}"
        );
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            Response::Accepted { job: 3 },
            Response::Rejected {
                reason: "queue full".to_owned(),
                retry_after_ms: Some(200),
            },
            Response::Rejected {
                reason: "shutting down".to_owned(),
                retry_after_ms: None,
            },
            Response::Event {
                event: ProgressEvent::Checkpoint {
                    job: JobId(3),
                    prefix_len: 16,
                    coverage_pct: 93.518_283_2,
                },
            },
            Response::Failed {
                job: 3,
                error: "solve-at: boom".to_owned(),
            },
            Response::Stats {
                stats: ServerStats {
                    uptime_ms: 1234,
                    submitted: 5,
                    completed: 4,
                    failed: 1,
                    rejected: 2,
                    queued: 0,
                    running: 0,
                    cache: Some(WireCacheStats {
                        hits: 3,
                        misses: 2,
                        stores: 2,
                        evictions: 1,
                        entries: 1,
                        bytes: 4096,
                        capacity_bytes: Some(1 << 20),
                    }),
                },
            },
            Response::Stopping {
                queued: 1,
                running: 2,
            },
        ];
        for response in responses {
            let line = encode_response(&response);
            let back = decode_response(&line).expect("decodes");
            assert_eq!(line, encode_response(&back), "re-encode is bit-identical");
        }
    }

    #[test]
    fn foreign_versions_are_rejected_by_name() {
        let line = "{\"v\":999,\"type\":\"stats\"}";
        let e = decode_request(line).expect_err("foreign version");
        assert!(e.message.contains("999"), "{e}");
        assert!(e.message.contains('1'), "{e}");
    }

    #[test]
    fn garbage_lines_fail_typed() {
        assert!(decode_request("not json").is_err());
        assert!(decode_request("{\"v\":1}").is_err());
        assert!(decode_response("{\"v\":1,\"type\":\"warp\"}").is_err());
    }

    #[test]
    fn events_round_trip_bit_exactly() {
        // a coverage value with no short decimal form survives the wire
        let pct = f64::from_bits(0x4057_6b0a_3d70_a3d7);
        let event = ProgressEvent::Checkpoint {
            job: JobId(9),
            prefix_len: 128,
            coverage_pct: pct,
        };
        let doc = encode_event(&event);
        let back = decode_event(&doc).expect("decodes");
        assert_eq!(back, event);
    }

    #[test]
    fn finished_carries_cache_hit_only_when_warm() {
        let cold = ProgressEvent::Finished {
            job: JobId(4),
            cache_hit: false,
        };
        let doc = encode_event(&cold);
        assert!(doc.get("cache_hit").is_none(), "cold line stays field-free");
        assert_eq!(decode_event(&doc).expect("decodes"), cold);

        let warm = ProgressEvent::Finished {
            job: JobId(4),
            cache_hit: true,
        };
        let doc = encode_event(&warm);
        assert_eq!(doc.get("cache_hit").and_then(Json::as_bool), Some(true));
        assert_eq!(decode_event(&doc).expect("decodes"), warm);
    }

    #[test]
    fn estimate_first_crosses_the_wire_only_when_set() {
        let circuit = || CircuitSource::iscas85("c17");
        // off (the default): no field — bytes identical to a peer that
        // predates estimate-first serving
        for spec in [
            JobSpec::solve_at(circuit(), 8),
            JobSpec::sweep(circuit(), [0, 8]),
        ] {
            let line = round_trip_request(&Request::Submit {
                spec: Box::new(spec),
            });
            assert!(!line.contains("estimate_first"), "{line}");
        }

        for mut spec in [
            JobSpec::solve_at(circuit(), 8),
            JobSpec::sweep(circuit(), [0, 8]),
        ] {
            match &mut spec {
                JobSpec::SolveAt(s) => s.estimate_first = true,
                JobSpec::Sweep(s) => s.estimate_first = true,
                _ => unreachable!(),
            }
            let line = round_trip_request(&Request::Submit {
                spec: Box::new(spec),
            });
            assert!(line.contains("\"estimate_first\": true"), "{line}");
            let Request::Submit { spec } = decode_request(&line).expect("decodes") else {
                panic!("submit round-trips as submit");
            };
            let set = match spec.as_ref() {
                JobSpec::SolveAt(s) => s.estimate_first,
                JobSpec::Sweep(s) => s.estimate_first,
                _ => unreachable!(),
            };
            assert!(set, "flag survives the round trip");
        }
    }

    #[test]
    fn estimate_events_round_trip_bit_exactly() {
        let event = ProgressEvent::Estimate {
            job: JobId(7),
            prefix_len: 200,
            samples: 256,
            estimate_pct: f64::from_bits(0x4056_f5c2_8f5c_28f6),
            lo_pct: f64::from_bits(0x4055_b0a3_d70a_3d71),
            hi_pct: f64::from_bits(0x4057_9999_9999_999a),
            confidence: 95,
        };
        let doc = encode_event(&event);
        let back = decode_event(&doc).expect("decodes");
        assert_eq!(back, event);

        // the event sits inside the same response envelope as every
        // other progress line
        let line = encode_response(&Response::Event {
            event: event.clone(),
        });
        let back = decode_response(&line).expect("decodes");
        assert_eq!(line, encode_response(&back), "re-encode is bit-identical");
    }
}
