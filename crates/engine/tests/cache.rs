//! End-to-end contract of the content-addressed result cache: warm runs
//! do zero flow work (observed through the hit/miss counters), results
//! served from disk are bit-identical to computed ones, and damaged
//! entries degrade to misses — never to wrong answers or panics.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use bist_engine::{CircuitSource, Engine, JobSpec, ProgressEvent, ResultCache};

/// A fresh, private cache directory per test (under cargo's per-target
/// scratch space, cleaned with the target dir).
fn fresh_dir(test: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "bist-cache-{test}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn three_jobs() -> Vec<JobSpec> {
    vec![
        JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 4, 8]),
        JobSpec::solve_at(CircuitSource::iscas85("c17"), 6),
        JobSpec::coverage_curve(CircuitSource::iscas85("c17"), [0, 8]),
    ]
}

fn sweep_fingerprint(result: &bist_engine::JobResult) -> String {
    let sweep = result.as_sweep().expect("sweep outcome");
    sweep
        .summary
        .solutions()
        .iter()
        .map(|s| {
            let det: Vec<String> = s
                .generator
                .deterministic()
                .iter()
                .map(ToString::to_string)
                .collect();
            format!(
                "p={} d={} cov={:?} area={:016x} det={}",
                s.prefix_len,
                s.det_len,
                s.coverage,
                s.generator_area_mm2.to_bits(),
                det.join(",")
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn warm_batch_rerun_is_all_hits_and_bit_identical() {
    let dir = fresh_dir("warm-batch");

    // cold: every job computes and stores
    let cold = Engine::with_threads(1).with_result_cache(ResultCache::at(&dir));
    let cold_results: Vec<_> = cold
        .run_batch(three_jobs())
        .into_iter()
        .map(|r| r.expect("job succeeds"))
        .collect();
    let cache = cold.cache().expect("attached");
    assert_eq!(cache.hits(), 0, "nothing to hit on a cold cache");
    assert_eq!(cache.misses(), 3);
    assert_eq!(cache.stores(), 3);
    assert_eq!(cache.disk_stats().entries, 3);

    // warm: a fresh engine over the same directory answers every job
    // from disk — the cache-hit counters are the assertion that zero
    // flow work (fault simulation, ATPG, synthesis) happened
    let warm = Engine::with_threads(1).with_result_cache(ResultCache::at(&dir));
    let handles = warm.submit_batch(three_jobs());
    let feeds: Vec<_> = handles.iter().map(|h| h.progress().clone()).collect();
    let mut warm_results = Vec::new();
    for handle in handles {
        // wait() consumes the handle, so sample cache_hit() once done
        while !handle.is_finished() {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(
            handle.cache_hit(),
            Some(true),
            "warm job answered from the cache"
        );
        warm_results.push(handle.wait().expect("job succeeds"));
    }
    let cache = warm.cache().expect("attached");
    assert_eq!(cache.hits(), 3, "every warm job must be a cache hit");
    assert_eq!(cache.misses(), 0);
    assert_eq!(cache.stores(), 0);

    // cached jobs still run the full lifecycle, minus checkpoints
    for feed in &feeds {
        let events = feed.drain();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, ProgressEvent::Finished { .. }))
                .count(),
            1
        );
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, ProgressEvent::Checkpoint { .. })),
            "a cache hit performs no checkpointed work"
        );
    }

    // and the answers are bit-identical to the computed ones
    assert_eq!(
        sweep_fingerprint(&cold_results[0]),
        sweep_fingerprint(&warm_results[0])
    );
    let (a, b) = (
        cold_results[1].as_solve_at().expect("solve"),
        warm_results[1].as_solve_at().expect("solve"),
    );
    assert_eq!(a.solution.det_len, b.solution.det_len);
    assert_eq!(
        a.solution.generator.deterministic(),
        b.solution.generator.deterministic()
    );
    assert_eq!(a.stats, b.stats, "cached stats are the producing run's");
    let (a, b) = (
        cold_results[2].as_coverage_curve().expect("curve"),
        warm_results[2].as_coverage_curve().expect("curve"),
    );
    assert_eq!(a.curve.points(), b.curve.points());
}

#[test]
fn warm_estimate_first_job_skips_the_preview() {
    let dir = fresh_dir("estimate-first");
    let with_preview = || {
        let mut spec = JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]);
        if let JobSpec::Sweep(s) = &mut spec {
            s.estimate_first = true;
        }
        spec
    };

    // cold: the preview streams, then the exact run computes and stores
    let cold = Engine::with_threads(1).with_result_cache(ResultCache::at(&dir));
    let handle = cold.submit(with_preview());
    let feed = handle.progress().clone();
    let cold_result = handle.wait().expect("sweep succeeds");
    assert!(
        feed.drain()
            .iter()
            .any(|e| matches!(e, ProgressEvent::Estimate { .. })),
        "cold estimate-first run streams a preview"
    );

    // warm: the flag never feeds the digest, so even a plain spec hits
    // the entry — and a hit answers exactly, skipping the preview
    let warm = Engine::with_threads(1).with_result_cache(ResultCache::at(&dir));
    for spec in [
        JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]),
        with_preview(),
    ] {
        let handle = warm.submit(spec);
        let feed = handle.progress().clone();
        let warm_result = handle.wait().expect("sweep succeeds");
        let events = feed.drain();
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, ProgressEvent::Estimate { .. })),
            "a warm job answers exactly — no preview: {events:?}"
        );
        assert_eq!(
            sweep_fingerprint(&cold_result),
            sweep_fingerprint(&warm_result)
        );
    }
    let cache = warm.cache().expect("attached");
    assert_eq!(cache.hits(), 2, "both warm specs address one entry");
}

#[test]
fn cache_serves_across_pool_widths() {
    let dir = fresh_dir("widths");
    let spec = || JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]);

    let serial = Engine::with_threads(1).with_result_cache(ResultCache::at(&dir));
    let computed = serial.run(spec()).expect("sweep succeeds");
    assert_eq!(serial.cache().expect("attached").stores(), 1);

    // the digest excludes the pool width: a 4-wide engine hits the
    // entry the 1-wide engine wrote
    let wide = Engine::with_threads(4).with_result_cache(ResultCache::at(&dir));
    let served = wide.run(spec()).expect("sweep succeeds");
    assert_eq!(wide.cache().expect("attached").hits(), 1);
    assert_eq!(sweep_fingerprint(&computed), sweep_fingerprint(&served));
}

#[test]
fn different_budgets_are_different_entries() {
    let dir = fresh_dir("budgets");
    let engine = Engine::with_threads(1).with_result_cache(ResultCache::at(&dir));
    engine
        .run(JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]))
        .expect("sweep succeeds");
    engine
        .run(JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 4]))
        .expect("sweep succeeds");
    let cache = engine.cache().expect("attached");
    assert_eq!(cache.hits(), 0, "distinct budgets may not alias");
    assert_eq!(cache.disk_stats().entries, 2);
}

#[test]
fn corrupt_entries_degrade_to_misses() {
    let dir = fresh_dir("corrupt");
    let spec = || JobSpec::solve_at(CircuitSource::iscas85("c17"), 4);

    let engine = Engine::with_threads(1).with_result_cache(ResultCache::at(&dir));
    let computed = engine.run(spec()).expect("solve succeeds");

    // truncate every entry mid-file
    for entry in std::fs::read_dir(&dir).expect("cache dir exists") {
        let path = entry.expect("entry").path();
        let text = std::fs::read_to_string(&path).expect("readable");
        std::fs::write(&path, &text[..text.len() / 2]).expect("writable");
    }

    let again = Engine::with_threads(1).with_result_cache(ResultCache::at(&dir));
    let recomputed = again.run(spec()).expect("solve succeeds");
    let cache = again.cache().expect("attached");
    assert_eq!(cache.hits(), 0, "a torn entry must not be served");
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.stores(), 1, "the recomputed result heals the entry");
    assert_eq!(
        computed.as_solve_at().expect("solve").solution.det_len,
        recomputed.as_solve_at().expect("solve").solution.det_len
    );
}

#[test]
fn duplicate_jobs_in_one_batch_race_benignly() {
    // two identical specs in one parallel batch share a cache key; both
    // writers must produce a complete entry (per-writer temp names), and
    // a fresh engine must be able to decode and serve it
    let dir = fresh_dir("dup-batch");
    let spec = || JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]);
    let engine = Engine::with_threads(4).with_result_cache(ResultCache::at(&dir));
    let results: Vec<_> = engine
        .run_batch(vec![spec(), spec()])
        .into_iter()
        .map(|r| r.expect("job succeeds"))
        .collect();
    assert_eq!(
        sweep_fingerprint(&results[0]),
        sweep_fingerprint(&results[1])
    );
    assert_eq!(
        ResultCache::at(&dir).disk_stats().entries,
        1,
        "identical jobs share one entry"
    );
    assert!(
        !std::fs::read_dir(&dir)
            .expect("cache dir exists")
            .flatten()
            .any(|e| e.file_name().to_string_lossy().starts_with(".tmp-")),
        "no temporary files survive the batch"
    );

    let warm = Engine::with_threads(1).with_result_cache(ResultCache::at(&dir));
    let served = warm.run(spec()).expect("sweep succeeds");
    assert_eq!(warm.cache().expect("attached").hits(), 1);
    assert_eq!(sweep_fingerprint(&results[0]), sweep_fingerprint(&served));
}

#[test]
fn clear_empties_the_directory() {
    let dir = fresh_dir("clear");
    let engine = Engine::with_threads(1).with_result_cache(ResultCache::at(&dir));
    engine
        .run(JobSpec::solve_at(CircuitSource::iscas85("c17"), 0))
        .expect("solve succeeds");
    let cache = ResultCache::at(&dir);
    assert_eq!(cache.disk_stats().entries, 1);
    assert_eq!(cache.clear().expect("clear succeeds"), 1);
    assert_eq!(cache.disk_stats().entries, 0);

    // an engine without a cache writes nothing
    let plain = Engine::with_threads(1);
    assert!(plain.cache().is_none());
    plain
        .run(JobSpec::solve_at(CircuitSource::iscas85("c17"), 0))
        .expect("solve succeeds");
    assert_eq!(cache.disk_stats().entries, 0);
}
