//! Integration tests: every `JobSpec` variant end-to-end through the
//! `Engine`, plus the event stream, cancellation and the error paths.

use bist_core::{BistSession, MixedSchemeConfig};
use bist_engine::{
    BistError, CancelToken, CircuitSource, EmitHdlSpec, Engine, FaultModel, HdlLanguage, JobSpec,
    ProgressEvent,
};

fn serial_config() -> MixedSchemeConfig {
    MixedSchemeConfig {
        threads: 1,
        ..MixedSchemeConfig::default()
    }
}

#[test]
fn solve_at_matches_a_hand_driven_session() {
    let engine = Engine::with_threads(1);
    let result = engine
        .run(JobSpec::solve_at(CircuitSource::iscas85("c17"), 8))
        .expect("solve job succeeds");
    let outcome = result.as_solve_at().expect("solve outcome");

    let c17 = bist_netlist::iscas85::c17();
    let expect = BistSession::new(&c17, serial_config())
        .solve_at(8)
        .expect("reference solve");
    assert_eq!(outcome.circuit, "c17");
    assert_eq!(outcome.solution.prefix_len, expect.prefix_len);
    assert_eq!(outcome.solution.det_len, expect.det_len);
    assert_eq!(outcome.solution.coverage, expect.coverage);
    assert_eq!(
        outcome.solution.generator.deterministic(),
        expect.generator.deterministic()
    );
    assert!(outcome.stats.patterns_simulated >= 8);
}

#[test]
fn sweep_is_bit_identical_to_the_session_and_keeps_request_order() {
    let engine = Engine::with_threads(1);
    let prefixes = [16usize, 0, 8]; // deliberately unordered
    let result = engine
        .run(JobSpec::sweep(CircuitSource::iscas85("c17"), prefixes))
        .expect("sweep job succeeds");
    let outcome = result.as_sweep().expect("sweep outcome");

    let c17 = bist_netlist::iscas85::c17();
    let expect = BistSession::new(&c17, serial_config())
        .sweep(&prefixes)
        .expect("reference sweep");
    let got_ps: Vec<usize> = outcome
        .summary
        .solutions()
        .iter()
        .map(|s| s.prefix_len)
        .collect();
    assert_eq!(got_ps, vec![16, 0, 8], "request order preserved");
    for (a, b) in outcome.summary.solutions().iter().zip(expect.solutions()) {
        assert_eq!(a.det_len, b.det_len);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.generator.deterministic(), b.generator.deterministic());
    }
    // the engine's point-by-point drive keeps the incremental contract
    assert_eq!(outcome.stats.patterns_simulated, 16);
    assert_eq!(outcome.stats.patterns_resimulated, 0);
}

#[test]
fn coverage_curve_matches_the_session_curve() {
    let engine = Engine::with_threads(1);
    let checkpoints = [0usize, 8, 32];
    let result = engine
        .run(JobSpec::coverage_curve(
            CircuitSource::iscas85("c17"),
            checkpoints,
        ))
        .expect("curve job succeeds");
    let outcome = result.as_coverage_curve().expect("curve outcome");

    let c17 = bist_netlist::iscas85::c17();
    let mut session = BistSession::new(&c17, serial_config());
    let expect = session.random_coverage_curve(&checkpoints);
    assert_eq!(outcome.curve.points(), expect.points());
    assert_eq!(outcome.fault_universe, session.faults().len());
    assert!(outcome.curve.is_monotone());
}

#[test]
fn bakeoff_puts_every_architecture_on_the_board() {
    let engine = Engine::with_threads(1);
    let result = engine
        .run(JobSpec::bakeoff(CircuitSource::iscas85("c17"), 64))
        .expect("bakeoff job succeeds");
    let outcome = result.as_bakeoff().expect("bakeoff outcome");
    assert!(
        outcome.bakeoff.rows.len() >= 5,
        "all surveyed architectures"
    );
    assert!(outcome.bakeoff.row("lfsr").is_some(), "plain LFSR row");
    for row in &outcome.bakeoff.rows {
        assert!(row.area_mm2 > 0.0, "{} has silicon cost", row.architecture);
        assert!(row.test_length > 0, "{} emits patterns", row.architecture);
    }
    assert!(outcome.bakeoff.achievable_pct > 0.0);
}

#[test]
fn emit_hdl_produces_lint_clean_artifacts_and_a_testbench() {
    let engine = Engine::with_threads(1);
    let spec = EmitHdlSpec {
        circuit: CircuitSource::iscas85("c17"),
        config: serial_config(),
        prefix_len: 4,
        language: HdlLanguage::Both,
        module_name: None,
        testbench: true,
    };
    let result = engine
        .run(JobSpec::EmitHdl(spec))
        .expect("emit job succeeds");
    let outcome = result.as_emit_hdl().expect("hdl outcome");
    assert_eq!(outcome.module, "c17_bist");
    let verilog = outcome.verilog.as_ref().expect("verilog requested");
    let vhdl = outcome.vhdl.as_ref().expect("vhdl requested");
    let testbench = outcome.testbench.as_ref().expect("testbench requested");
    assert!(verilog.contains("module c17_bist"));
    assert!(vhdl.contains("entity c17_bist is"));
    assert!(testbench.contains("module c17_bist_tb"));
    // artefacts were linted by the engine; spot-check anyway
    bist_hdl::lint::check_verilog(verilog).expect("verilog lints");
    bist_hdl::lint::check_vhdl(vhdl).expect("vhdl lints");
    assert_eq!(outcome.solution.prefix_len, 4);
}

#[test]
fn emit_hdl_handles_the_pure_deterministic_extreme() {
    let engine = Engine::with_threads(1);
    let spec = EmitHdlSpec {
        circuit: CircuitSource::iscas85("c17"),
        config: serial_config(),
        prefix_len: 0,
        language: HdlLanguage::Verilog,
        module_name: Some("c17_lfsrom_only".to_owned()),
        testbench: true,
    };
    let result = engine
        .run(JobSpec::EmitHdl(spec))
        .expect("emit job succeeds");
    let outcome = result.as_emit_hdl().expect("hdl outcome");
    assert_eq!(outcome.module, "c17_lfsrom_only");
    assert!(outcome.verilog.is_some());
    assert!(outcome.vhdl.is_none(), "only verilog requested");
    assert!(outcome.testbench.is_some());
}

#[test]
fn area_report_prices_the_deterministic_extreme() {
    let engine = Engine::with_threads(1);
    let result = engine
        .run(JobSpec::area_report(CircuitSource::iscas85("c17")))
        .expect("area job succeeds");
    let outcome = result.as_area_report().expect("area outcome");

    let c17 = bist_netlist::iscas85::c17();
    let expect = BistSession::new(&c17, serial_config())
        .solve_at(0)
        .expect("reference solve");
    assert_eq!(outcome.circuit, "c17");
    assert_eq!(outcome.inputs, 5);
    assert_eq!(outcome.det_len, expect.det_len);
    assert_eq!(outcome.generator_mm2, expect.generator_area_mm2);
    assert_eq!(outcome.chip_mm2, expect.chip_area_mm2);
    assert!((outcome.overhead_pct - expect.overhead_pct()).abs() < 1e-12);
}

#[test]
fn the_event_stream_narrates_a_job_lifecycle_in_order() {
    let engine = Engine::with_threads(1);
    let handle = engine.submit(JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]));
    let feed = handle.progress().clone();
    handle.wait().expect("sweep job succeeds");
    let events = feed.drain();
    assert!(matches!(&events[0], ProgressEvent::Queued { label, .. } if label == "sweep c17"));
    assert!(matches!(events[1], ProgressEvent::Started { .. }));
    let checkpoints: Vec<(usize, f64)> = events
        .iter()
        .filter_map(|e| match e {
            ProgressEvent::Checkpoint {
                prefix_len,
                coverage_pct,
                ..
            } => Some((*prefix_len, *coverage_pct)),
            _ => None,
        })
        .collect();
    assert_eq!(checkpoints.len(), 2);
    assert_eq!(checkpoints[0].0, 0);
    assert_eq!(checkpoints[1].0, 8);
    assert!(
        checkpoints[1].1 >= checkpoints[0].1,
        "coverage so far grows"
    );
    assert!(matches!(
        events.last(),
        Some(ProgressEvent::Finished { .. })
    ));
    // one job id threads through every event
    let id = events[0].job();
    assert!(events.iter().all(|e| e.job() == id));
    assert!(feed.is_empty(), "drain consumed everything");
}

#[test]
fn estimate_first_previews_before_the_first_checkpoint() {
    let engine = Engine::with_threads(1);
    let mut spec = JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]);
    if let JobSpec::Sweep(s) = &mut spec {
        s.estimate_first = true;
    }
    let handle = engine.submit(spec);
    let feed = handle.progress().clone();
    let result = handle.wait().expect("sweep job succeeds");
    let events = feed.drain();

    let previews: Vec<usize> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| matches!(e, ProgressEvent::Estimate { .. }).then_some(i))
        .collect();
    assert_eq!(previews.len(), 1, "exactly one preview per job: {events:?}");
    let first_checkpoint = events
        .iter()
        .position(|e| matches!(e, ProgressEvent::Checkpoint { .. }))
        .expect("exact checkpoints still stream");
    assert!(
        previews[0] < first_checkpoint,
        "the preview lands before any exact point"
    );
    match &events[previews[0]] {
        ProgressEvent::Estimate {
            prefix_len,
            samples,
            estimate_pct,
            lo_pct,
            hi_pct,
            confidence,
            ..
        } => {
            assert_eq!(*prefix_len, 8, "preview targets the longest prefix");
            assert!(*samples > 0);
            assert!(lo_pct <= estimate_pct && estimate_pct <= hi_pct);
            assert_eq!(*confidence, 95);
        }
        other => panic!("filtered to Estimate, got {other:?}"),
    }

    // the preview never perturbs the exact outcome
    let plain = engine
        .run(JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]))
        .expect("plain sweep");
    let with = result.as_sweep().expect("sweep outcome");
    let without = plain.as_sweep().expect("sweep outcome");
    for (a, b) in with
        .summary
        .solutions()
        .iter()
        .zip(without.summary.solutions())
    {
        assert_eq!(a.det_len, b.det_len);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.generator.deterministic(), b.generator.deterministic());
    }
}

#[test]
fn batches_run_in_spec_order_with_identical_results() {
    let engine = Engine::with_threads(1);
    let specs = vec![
        JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]),
        JobSpec::area_report(CircuitSource::iscas85("c17")),
        JobSpec::solve_at(CircuitSource::iscas85("c432"), 50),
    ];
    let results = engine.run_batch(specs);
    assert_eq!(results.len(), 3);
    let sweep = results[0].as_ref().expect("sweep ok");
    assert!(sweep.as_sweep().is_some());
    assert!(results[1]
        .as_ref()
        .expect("area ok")
        .as_area_report()
        .is_some());
    let solve = results[2].as_ref().expect("solve ok");
    let solo = engine
        .run(JobSpec::solve_at(CircuitSource::iscas85("c432"), 50))
        .expect("solo solve");
    assert_eq!(
        solve.as_solve_at().expect("solve outcome").solution.det_len,
        solo.as_solve_at().expect("solve outcome").solution.det_len,
        "batch and solo runs are bit-identical"
    );
}

#[test]
fn cancellation_is_cooperative_and_typed() {
    let engine = Engine::with_threads(1);
    let token = CancelToken::new();
    token.cancel();
    let handle = engine.submit_with_cancel(
        JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8, 16]),
        &token,
    );
    let feed = handle.progress().clone();
    let err = handle.wait().expect_err("pre-canceled token stops the job");
    assert_eq!(err, BistError::Canceled);
    let events = feed.drain();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ProgressEvent::Canceled { .. })),
        "cancellation is narrated: {events:?}"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, ProgressEvent::Checkpoint { .. })),
        "no checkpoint was reached"
    );
}

#[test]
fn error_paths_come_back_typed_with_failed_events() {
    let engine = Engine::with_threads(1);
    let mut failures = 0usize;
    let mut run = |spec: JobSpec| {
        let handle = engine.submit(spec);
        let feed = handle.progress().clone();
        let err = handle.wait().expect_err("job fails");
        failures += feed
            .drain()
            .into_iter()
            .filter(|e| matches!(e, ProgressEvent::Failed { .. }))
            .count();
        err
    };

    let err = run(JobSpec::solve_at(CircuitSource::iscas85("c9999"), 0));
    assert!(matches!(
        err,
        BistError::UnknownCircuit {
            family: "iscas85",
            ..
        }
    ));

    let err = run(JobSpec::sweep(
        CircuitSource::bench("broken", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)"),
        [0, 8],
    ));
    assert!(matches!(err, BistError::Parse { line: 3, .. }));

    let err = run(JobSpec::sweep(CircuitSource::iscas85("c17"), Vec::new()));
    assert!(matches!(err, BistError::InvalidSpec { job: "sweep", .. }));

    assert_eq!(failures, 3, "every failure is narrated on its own feed");
}

#[test]
fn fault_model_jobs_run_through_the_same_engine_face() {
    // transition and bridging specs drive the same submit/progress/wait
    // machinery as stuck-at ones, and their solutions verify
    let engine = Engine::with_threads(1);
    for model in [FaultModel::Transition, FaultModel::bridging()] {
        let mut spec = JobSpec::sweep(CircuitSource::iscas85("c17"), [0, 8]);
        if let JobSpec::Sweep(s) = &mut spec {
            s.fault_model = model;
        }
        let handle = engine.submit(spec);
        let feed = handle.progress().clone();
        let result = handle.wait().expect("model sweep succeeds");
        let sweep = result.as_sweep().expect("sweep outcome");
        assert_eq!(sweep.summary.solutions().len(), 2);
        for solution in sweep.summary.solutions() {
            assert!(solution.generator.verify());
        }
        let events = feed.drain();
        assert!(matches!(&events[0], ProgressEvent::Queued { label, .. } if label == "sweep c17"));
        let checkpoints = events
            .iter()
            .filter(|e| matches!(e, ProgressEvent::Checkpoint { .. }))
            .count();
        assert_eq!(checkpoints, 2, "one checkpoint per solved point");
        assert!(matches!(
            events.last(),
            Some(ProgressEvent::Finished { .. })
        ));
    }
}

#[test]
fn inline_and_bench_sources_run_like_builtin_ones() {
    let engine = Engine::with_threads(1);
    let c17_text = bist_netlist::iscas85::C17_BENCH;
    let from_text = engine
        .run(JobSpec::solve_at(CircuitSource::bench("c17", c17_text), 8))
        .expect("bench-text source");
    let inline = engine
        .run(JobSpec::solve_at(
            CircuitSource::Inline(bist_netlist::iscas85::c17()),
            8,
        ))
        .expect("inline source");
    assert_eq!(
        from_text.as_solve_at().expect("outcome").solution.det_len,
        inline.as_solve_at().expect("outcome").solution.det_len
    );
}
